#!/usr/bin/env python
"""Chaos layer: node faults vs. distributed-protocol workloads.

Runs the E14 chaos matrix: leader-election, gossip, and replicated-log
workloads under seeded node-fault plans (fail-stop crashes, fail-recover
pauses) composed with link-fault plans (drops, jitter), each point under
a liveness watchdog with its protocol safety property -- election
safety, gossip convergence, log agreement -- checked on the perturbed
result.  Node faults are planned, deterministic, and part of the point
fingerprint: the same seed and plans replay bit for bit.

With ``--demo-failstop`` the script crash-stops one core on top of the
``run_faults.py --demo-deadlock`` shape (one dropped request, retries
off) and shows the watchdog's diagnostic dump naming the dead node.

Usage:
    python examples/run_chaos.py                      # quick chaos sweep
    python examples/run_chaos.py --seeds 0 1 2 3 4    # go deeper
    python examples/run_chaos.py --table              # full E14 table
    python examples/run_chaos.py --demo-failstop      # watchdog crash demo
    python examples/run_chaos.py --selftest           # CI gate

Exit status is 1 when any safety property fails (the script doubles as
a CI gate via --selftest).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from dataclasses import replace  # noqa: E402

from repro.faults import (  # noqa: E402
    CRASH,
    PAUSE,
    DeadlockError,
    FaultPlan,
    NodeFault,
    NodeFaultPlan,
    Watchdog,
    node_fault_scenarios,
)
from repro.harness.experiments import (  # noqa: E402
    E14_PAUSE_CYCLES,
    E14_WINDOW,
    e14_chaos,
)
from repro.harness.parallel import result_fingerprint  # noqa: E402
from repro.isa.program import Assembler  # noqa: E402
from repro.sim.config import SystemConfig  # noqa: E402
from repro.system import System  # noqa: E402
from repro.verification.protocols import ProtocolViolation  # noqa: E402
from repro.workloads.protocols import gossip, leader_election  # noqa: E402


def demo_failstop() -> None:
    """Crash one core into the dropped-request deadlock: the dump names it."""
    print("--- watchdog demo: fail-stop node + one dropped request ---")
    programs = []
    for tid in range(3):
        asm = Assembler(f"chaos-demo.t{tid}")
        if tid == 2:
            asm.exec_(600)
        asm.li(1, 0x1_0000).li(2, tid + 1)
        asm.store(2, base=1, offset=8 * tid)
        asm.halt()
        programs.append(asm.build())
    link = FaultPlan(seed=0, drop_first_n=1, retries_enabled=False)
    node = NodeFaultPlan(seed=0, faults=(NodeFault(2, CRASH, 100),))
    system = System(SystemConfig(n_cores=3), programs, fault_plan=link,
                    node_plan=node)
    try:
        system.run(watchdog=Watchdog(system, check_interval=500))
    except DeadlockError as exc:
        print(exc)
        print("--- end demo (the dump names the crash-stopped node) ---\n")
    else:
        raise AssertionError("demo unexpectedly completed")


# ------------------------------------------------------------- selftest

def _run_point(workload, node_plan, fault_plan=None, superblocks=True):
    config = SystemConfig(n_cores=len(workload.programs))
    if not superblocks:
        config = replace(config, superblocks=False)
    system = System(config, workload.programs, workload.initial_memory,
                    fault_plan=fault_plan, node_plan=node_plan)
    return system.run(watchdog=Watchdog(system))


def selftest(seed=0) -> int:
    """CI gate: chaos properties hold, replays are byte-identical, the
    watchdog names crashed nodes, and paused cores really recover."""
    failures = []

    def check(label, ok, detail=""):
        mark = "ok" if ok else "FAIL"
        print(f"  [{mark}] {label}" + (f" -- {detail}" if detail else ""))
        if not ok:
            failures.append(label)

    print("chaos selftest")

    # The full (single-seed) chaos matrix: every property must hold and
    # the build itself asserts the directed fail-stop + recovery demos.
    try:
        result = e14_chaos(seeds=(seed,))
        rows = len(result.rows)
        crashed = sum(row[4] for row in result.rows)
        resumed = sum(row[6] for row in result.rows)
        check("E14 grid holds all safety properties", rows > 0,
              f"{rows} rows, {crashed} crashes, {resumed} resumes")
        check("chaos actually landed", crashed > 0 and resumed > 0)
        check("fail-stop dump names the dead node",
              result.data["directed"]["failstop"]["caught"])
        check("paused core resumed and converged",
              result.data["directed"]["recovery"]["resumes"] >= 1)
    except Exception as exc:  # noqa: BLE001 - any failure fails the gate
        check("E14 grid holds all safety properties", False, str(exc))

    # Determinism: same seed + plans => byte-identical results, with
    # superblock fusion on or off.
    scenarios = node_fault_scenarios(seed=seed, n_cores=4,
                                     window=E14_WINDOW,
                                     pause_cycles=E14_PAUSE_CYCLES)
    workload = leader_election(4)
    link = FaultPlan(seed=seed, drop_prob=0.08)
    fps = [result_fingerprint(_run_point(workload, scenarios["crash"], link,
                                         superblocks=sb))
           for sb in (True, True, False)]
    check("chaos replay is byte-identical", fps[0] == fps[1])
    check("superblocks on/off changes nothing observable",
          fps[0] == fps[2])

    # Fault-free invisibility: an inactive plan leaves no trace.
    clean = _run_point(gossip(4), None)
    inactive = _run_point(gossip(4), NodeFaultPlan(seed=seed))
    check("inactive plan is invisible",
          result_fingerprint(clean) == result_fingerprint(inactive)
          and not any(k.startswith("nodefaults.")
                      for k in clean.stats.snapshot()))

    # A pause delays the victim but every core still halts.
    paused = _run_point(gossip(4), NodeFaultPlan(seed=seed, faults=(
        NodeFault(1, PAUSE, 300, 400),)))
    check("pause-resume point halts with no crash record",
          not paused.crashed_core_ids()
          and paused.stats.snapshot().get("nodefaults.resumes") == 1)

    if failures:
        print(f"SELFTEST FAILED: {len(failures)} check(s)")
        return 1
    print("SELFTEST PASSED: chaos layer deterministic, safe, diagnosable")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, nargs="*", default=[0, 1, 2],
                        help="chaos seeds to sweep (default: 0 1 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for --selftest (default 0)")
    parser.add_argument("--table", action="store_true",
                        help="render the full E14 experiment table")
    parser.add_argument("--demo-failstop", action="store_true",
                        help="demonstrate the watchdog naming a dead node")
    parser.add_argument("--selftest", action="store_true",
                        help="run the CI selftest and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest(seed=args.seed)

    if args.demo_failstop:
        demo_failstop()
        if not args.table:
            return 0

    try:
        result = e14_chaos(seeds=tuple(args.seeds))
    except (ProtocolViolation, RuntimeError) as exc:
        print("chaos run violated a safety property or failed:")
        print(exc)
        return 1
    print(result.render())
    recovery = result.data["directed"]["recovery"]
    print(f"\ndirected: fail-stop hang caught with the dead node named; "
          f"recovery point resumed {recovery['resumes']} pause(s) in "
          f"{recovery['cycles']} cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main())

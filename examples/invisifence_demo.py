#!/usr/bin/env python
"""A guided tour of the InvisiFence mechanism.

Walks through the speculation lifecycle on directed programs:

1. a fence that would stall gets speculated past (episode + commit);
2. a conflicting remote write aborts an episode (violation + rollback,
   with the architectural result still correct);
3. the ~1 KB storage claim, printed from the storage model;
4. on-demand vs continuous mode on a lock workload.

Run:  python examples/invisifence_demo.py
"""

from repro import (
    Assembler,
    FenceKind,
    SpeculationMode,
    StallCause,
    StorageModel,
    SystemConfig,
    run_system,
)
from repro.system import System
from repro.workloads import locks

X, COLD = 0x1000, 0x20000


def part1_fence_speculation():
    print("=" * 70)
    print("1. Speculating past a fence")
    print("=" * 70)
    asm = Assembler("fence-demo")
    asm.li(1, COLD).li(2, 1)
    asm.store(2, base=1)            # cold store: ~120-cycle drain
    asm.fence(FenceKind.FULL)       # conventional hardware stalls HERE
    asm.exec_(50)                   # useful work the stall would block
    program = asm.build()

    for label, mode in [("conventional", SpeculationMode.NONE),
                        ("InvisiFence", SpeculationMode.ON_DEMAND)]:
        config = SystemConfig(n_cores=1).with_speculation(mode)
        result = run_system(config, [program])
        print(f"  {label:<14s} cycles={result.cycles:4d} "
              f"fence stall={result.stall_cycles(StallCause.FENCE):4d} "
              f"episodes={result.stats.sum(['spec.0.episodes']):.0f} "
              f"commits={result.commits()}")
    print()


def part2_violation_and_rollback():
    print("=" * 70)
    print("2. A conflicting remote write aborts the episode")
    print("=" * 70)
    victim = Assembler("victim")
    victim.li(1, X)
    victim.load(3, base=1)          # warm X
    victim.exec_(300)
    victim.li(1, COLD).li(2, 1)
    victim.store(2, base=1)         # open the window
    victim.fence(FenceKind.FULL)
    victim.li(1, X)
    victim.load(4, base=1)          # speculative read of X (SR bit)
    victim.exec_(200)
    attacker = Assembler("attacker")
    attacker.exec_(480)
    attacker.li(1, X).li(2, 55)
    attacker.store(2, base=1)       # invalidates the victim's SR block

    config = SystemConfig(n_cores=2).with_speculation(SpeculationMode.ON_DEMAND)
    system = System(config, [victim.build(), attacker.build()])
    result = system.run()
    print(f"  violations            = {result.violations()}")
    print(f"  rollback stall cycles = {result.stall_cycles(StallCause.ROLLBACK)}")
    print(f"  victim re-read X      = {result.core_reg(0, 4)} "
          "(0 pre-conflict or 55 post-conflict -- both legal)")
    print(f"  final X               = {result.read_word(X)} (attacker's 55)")
    print("  The speculative read was discarded and re-executed; no")
    print("  speculative state ever escaped to the attacker.\n")


def part3_storage():
    print("=" * 70)
    print("3. The storage claim: ~1 KB per core, independent of depth")
    print("=" * 70)
    print(StorageModel(SystemConfig().l1).report())
    print()


def part4_modes():
    print("=" * 70)
    print("4. On-demand vs continuous speculation on a contended lock")
    print("=" * 70)
    workload = locks.lock_contention(4, increments=20, lock_kind="ticket")
    for mode in (SpeculationMode.ON_DEMAND, SpeculationMode.CONTINUOUS):
        config = SystemConfig(n_cores=4).with_speculation(mode)
        result = run_system(config, workload.programs)
        workload.check(result)
        episodes = result.stats.sum(f"spec.{i}.episodes" for i in range(4))
        print(f"  {mode.value:<11s} cycles={result.cycles:6d} "
              f"episodes={episodes:5.0f} commits={result.commits():5d} "
              f"violations={result.violations():3d}")
    print("  Continuous mode speculates far more often (decoupling")
    print("  enforcement entirely) at the cost of more exposure.")


if __name__ == "__main__":
    part1_fence_speculation()
    part2_violation_and_rollback()
    part3_storage()
    part4_modes()

#!/usr/bin/env python
"""Where does a conventional multiprocessor's time go?

Runs the standard workload suite under SC, TSO, and RMO on conventional
(non-speculative) hardware and prints the per-workload cycle breakdown:
busy work vs memory stalls vs the *ordering* stalls InvisiFence targets
(fence drains, atomic serialisation, SC's load-after-store waits).

This is a small-scale rendition of experiment E1 (see EXPERIMENTS.md).

Run:  python examples/consistency_models.py [n_cores] [scale]
"""

import sys

from repro import ConsistencyModel, StallCause, SystemConfig, run_system
from repro.analysis.breakdown import system_breakdown
from repro.analysis.tables import ascii_table
from repro.workloads import standard_suite


def main(n_cores: int = 4, scale: float = 0.5):
    rows = []
    for name, workload in standard_suite(n_cores, scale).items():
        for model in ConsistencyModel:
            config = SystemConfig(n_cores=n_cores).with_consistency(model)
            result = run_system(config, workload.programs,
                                workload.initial_memory)
            workload.check(result)
            bd = system_breakdown(result)
            rows.append([
                name,
                model.value.upper(),
                result.cycles,
                f"{100 * bd.fraction('busy'):.0f}%",
                f"{100 * bd.fraction(StallCause.MEMORY.value):.0f}%",
                f"{100 * bd.ordering_fraction:.1f}%",
            ])
    print(ascii_table(
        ["workload", "model", "cycles", "busy", "memory", "ordering"],
        rows,
        title=f"Cycle breakdown, {n_cores} cores (conventional hardware)"))
    print("\nSC pays ordering cost on every store miss; TSO/RMO still pay")
    print("at fences and atomics -- the overhead InvisiFence removes.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    s = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(n, s)

#!/usr/bin/env python
"""Regenerate the paper's tables and figures (E1-E10) and ablations (A1-A5).

Usage:
    python examples/run_experiments.py                # everything, full scale
    python examples/run_experiments.py E2 A4          # a subset
    python examples/run_experiments.py --quick        # reduced scale (CI)
    python examples/run_experiments.py --csv out/     # also write CSVs
    python examples/run_experiments.py E2 --jobs 4    # parallel sweep
    python examples/run_experiments.py --jobs 1       # strictly serial (debug)
    python examples/run_experiments.py --times        # per-point wall times

Experiments (E*) declare their run grids up front; one shared scheduler
deduplicates identical (config, workload) points across experiments,
simulates each unique point exactly once -- fanned out over ``--jobs``
worker processes (default: all CPUs) -- and the tables are built from
the cached results.  Every simulation point is deterministic, so the
tables are bit-identical for any ``--jobs`` value.  Ablations (A*) run
in-process after the sweep.

Each experiment prints an ASCII table; EXPERIMENTS.md records a full-
scale run and compares it against the paper's claims.
"""

import os
import sys
import time

from repro.harness import Experiment, SweepScheduler, all_ablations, all_experiments


QUICK_OVERRIDES = {
    "E1": dict(n_cores=4, scale=0.3),
    "E2": dict(n_cores=4, scale=0.3),
    "E3": dict(n_cores=4, scale=0.3),
    "E5": dict(n_cores=4),
    "E6": dict(n_cores=4, scale=0.3),
    "E7": dict(scale=0.3, core_counts=(2, 4)),
    "E8": dict(n_cores=4, scale=0.3),
    "E9": dict(core_counts=(2, 4), scale=0.3),
    "E11": dict(n_programs=2),
    "E12": dict(n_programs=2),
}


def _flag_value(argv, flag):
    """Pop ``flag VALUE`` from argv; returns (value or None, remaining argv)."""
    if flag not in argv:
        return None, argv
    index = argv.index(flag)
    if index + 1 >= len(argv):
        raise SystemExit(f"{flag} needs an argument")
    value = argv[index + 1]
    return value, argv[:index] + argv[index + 2:]


def main(argv):
    quick = "--quick" in argv
    times = "--times" in argv
    argv = [a for a in argv if a not in ("--quick", "--times")]
    csv_dir, argv = _flag_value(argv, "--csv")
    jobs_arg, argv = _flag_value(argv, "--jobs")
    try:
        jobs = int(jobs_arg) if jobs_arg is not None else (os.cpu_count() or 1)
    except ValueError:
        print(f"--jobs expects an integer, got {jobs_arg!r}")
        return 1
    if jobs < 1:
        print("--jobs must be >= 1")
        return 1

    unknown_flags = [a for a in argv if a.startswith("-")]
    if unknown_flags:
        print(f"unknown flag(s): {' '.join(unknown_flags)}")
        return 1
    requested = [a.upper() for a in argv]
    registry = dict(all_experiments())
    registry.update(all_ablations())
    targets = requested or list(registry)
    for exp_id in targets:
        if exp_id not in registry:
            print(f"unknown experiment {exp_id}; choose from {list(registry)}")
            return 1

    # Phase 1: declare every experiment's grid; the shared scheduler
    # dedups identical points across experiments and simulates each
    # unique point exactly once.
    scheduler = SweepScheduler(jobs=jobs)
    kwargs_for = {}
    for exp_id in targets:
        entry = registry[exp_id]
        kwargs = QUICK_OVERRIDES.get(exp_id, {}) if quick else {}
        kwargs_for[exp_id] = kwargs
        if isinstance(entry, Experiment):
            scheduler.add(exp_id, entry.plan(**kwargs))

    if scheduler.unique_points:
        report = scheduler.run()
        print(report.render())
        if times:
            for label, seconds in sorted(report.point_seconds.items(),
                                         key=lambda kv: -kv[1]):
                print(f"  {seconds:8.2f}s  {label}")
        print()

    # Phase 2: build each table from the cached results (ablations
    # still run in-process here).
    for exp_id in targets:
        entry = registry[exp_id]
        kwargs = kwargs_for[exp_id]
        started = time.time()
        if isinstance(entry, Experiment):
            result = entry.build(scheduler.results_for(exp_id), **kwargs)
        else:
            result = entry(**kwargs)
        print(result.render())
        print(f"  ({time.time() - started:.1f}s)\n")
        if csv_dir:
            print(f"  wrote {result.write_csv(csv_dir)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python
"""Regenerate the paper's tables and figures (E1-E10) and ablations (A1-A5).

Usage:
    python examples/run_experiments.py            # everything, full scale
    python examples/run_experiments.py E2 A4      # a subset
    python examples/run_experiments.py --quick    # reduced scale (CI)
    python examples/run_experiments.py --csv out/ # also write CSVs

Each experiment prints an ASCII table; EXPERIMENTS.md records a full-
scale run and compares it against the paper's claims.
"""

import sys
import time

from repro.harness import all_ablations, all_experiments


QUICK_OVERRIDES = {
    "E1": dict(n_cores=4, scale=0.3),
    "E2": dict(n_cores=4, scale=0.3),
    "E3": dict(n_cores=4, scale=0.3),
    "E5": dict(n_cores=4),
    "E6": dict(n_cores=4, scale=0.3),
    "E7": dict(scale=0.3, core_counts=(2, 4)),
    "E8": dict(n_cores=4, scale=0.3),
    "E9": dict(core_counts=(2, 4), scale=0.3),
}


def main(argv):
    quick = "--quick" in argv
    csv_dir = None
    if "--csv" in argv:
        index = argv.index("--csv")
        if index + 1 >= len(argv):
            print("--csv needs a directory argument")
            return 1
        csv_dir = argv[index + 1]
        argv = argv[:index] + argv[index + 2:]
    requested = [a.upper() for a in argv if not a.startswith("-")]
    registry = dict(all_experiments())
    registry.update(all_ablations())
    targets = requested or list(registry)

    for exp_id in targets:
        if exp_id not in registry:
            print(f"unknown experiment {exp_id}; choose from {list(registry)}")
            return 1
        kwargs = QUICK_OVERRIDES.get(exp_id, {}) if quick else {}
        started = time.time()
        result = registry[exp_id](**kwargs)
        print(result.render())
        print(f"  ({time.time() - started:.1f}s)\n")
        if csv_dir:
            print(f"  wrote {result.write_csv(csv_dir)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

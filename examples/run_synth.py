#!/usr/bin/env python
"""Synthesize minimal fence sets against the ordering checker.

Takes the canonical fence-free litmus shapes (store buffering, message
passing, load buffering), runs them on the relaxed (RMO) machine, and
searches the minimal set of fence placements that restores a stronger
target model (SC or TSO) -- delta-debug style, against a two-layer
oracle: exhaustive axiomatic witness enumeration plus confirming
machine sweeps across speculation modes, timing skews and superblock
fusion.  Then prices the synthesized fences in cycles under each
speculation mode (the E13 table).

Usage:
    python examples/run_synth.py                     # all shapes, both targets
    python examples/run_synth.py --workload sb --target sc
    python examples/run_synth.py --seed 7 --max-queries 400
    python examples/run_synth.py --table             # full E13 table
    python examples/run_synth.py --selftest          # CI gate, exits nonzero on fail

Exit status is 1 when any synthesis fails to confirm a sufficient set
(or, under --selftest, when a known-minimal fence set is not recovered).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.isa.instructions import FenceKind  # noqa: E402
from repro.sim.config import ConsistencyModel, SpeculationMode  # noqa: E402
from repro.verification.synth import (  # noqa: E402
    fence_cost,
    synthesize_fences,
)
from repro.workloads.litmus import canonical_litmus_ir  # noqa: E402

TARGETS = {"sc": ConsistencyModel.SC, "tso": ConsistencyModel.TSO}


def run_synthesis(workloads, targets, seed, max_queries,
                  verbose=True):
    """Synthesize each (workload, target) pair; returns the results."""
    shapes = canonical_litmus_ir()
    results = {}
    for name in workloads:
        for target_name in targets:
            target = TARGETS[target_name]
            res = synthesize_fences(shapes[name], target, seed=seed,
                                    max_queries=max_queries)
            results[(name, target_name)] = res
            if verbose:
                status = "ok" if res.sufficient else "NOT CONFIRMED"
                print(f"{name:3s} -> {target_name:3s}  {res.describe()}  "
                      f"[{status}]")
                if res.placements:
                    cyc_none = fence_cost(shapes[name], res.placements,
                                          spec=SpeculationMode.NONE)
                    cyc_od = fence_cost(shapes[name], res.placements,
                                        spec=SpeculationMode.ON_DEMAND)
                    print(f"          fenced cycles: {cyc_none} (spec off) "
                          f"vs {cyc_od} (on-demand)")
    return results


# ------------------------------------------------------------- selftest

#: The known-minimal fence sets the synthesizer must recover (the
#: acceptance criteria of the synthesis subsystem): SB needs a
#: store-load fence per thread for SC and nothing for TSO; MP needs
#: store-store (writer) + load-load (reader); LB needs load-store in
#: each thread.
EXPECTED = {
    ("sb", "sc"): [(0, FenceKind.STORE_LOAD), (1, FenceKind.STORE_LOAD)],
    ("sb", "tso"): [],
    ("mp", "sc"): [(0, FenceKind.STORE_STORE), (1, FenceKind.LOAD_LOAD)],
    ("mp", "tso"): [(0, FenceKind.STORE_STORE), (1, FenceKind.LOAD_LOAD)],
    ("lb", "sc"): [(0, FenceKind.LOAD_STORE), (1, FenceKind.LOAD_STORE)],
    ("lb", "tso"): [(0, FenceKind.LOAD_STORE), (1, FenceKind.LOAD_STORE)],
}


def selftest(seed=0) -> int:
    """CI gate: the synthesizer recovers every known-minimal fence set,
    deterministically, and the synthesized StoreLoad fences actually
    cost drain stalls that speculation then wins back."""
    failures = []

    def check(label, ok, detail=""):
        mark = "ok" if ok else "FAIL"
        print(f"  [{mark}] {label}" + (f" -- {detail}" if detail else ""))
        if not ok:
            failures.append(label)

    print("fence-synthesis selftest")
    results = run_synthesis(["sb", "mp", "lb"], ["sc", "tso"],
                            seed=seed, max_queries=200, verbose=False)
    for key, expected in EXPECTED.items():
        res = results[key]
        got = sorted((p.thread, p.kind) for p in res.placements)
        check(f"{key[0]}->{key[1]} recovers {expected or 'no fences'}",
              got == sorted(expected) and res.sufficient,
              ", ".join(p.describe() for p in res.placements) or "none")
        check(f"{key[0]}->{key[1]} static oracle not capped",
              not res.capped)

    # Determinism: the same seed synthesizes the same artifact.
    shapes = canonical_litmus_ir()
    again = synthesize_fences(shapes["sb"], ConsistencyModel.SC, seed=seed)
    check("same seed, same fence set",
          again.placements == results[("sb", "sc")].placements
          and again.oracle_queries == results[("sb", "sc")].oracle_queries)

    # The economics: SB's synthesized StoreLoad fences stall with
    # speculation off; on-demand speculation recovers most of it.
    sb_fences = results[("sb", "sc")].placements
    unfenced = fence_cost(shapes["sb"], ())
    fenced_none = fence_cost(shapes["sb"], sb_fences,
                             spec=SpeculationMode.NONE)
    fenced_od = fence_cost(shapes["sb"], sb_fences,
                           spec=SpeculationMode.ON_DEMAND)
    check("StoreLoad fences cost cycles with speculation off",
          fenced_none > unfenced,
          f"{unfenced} unfenced vs {fenced_none} fenced")
    check("on-demand speculation recovers fence stalls",
          fenced_od < fenced_none,
          f"{fenced_none} spec=none vs {fenced_od} on-demand")

    if failures:
        print(f"SELFTEST FAILED: {len(failures)} check(s)")
        return 1
    print("SELFTEST PASSED: all known-minimal fence sets recovered")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", nargs="*",
                        choices=sorted(canonical_litmus_ir()),
                        help="litmus shapes to synthesize for (default: all)")
    parser.add_argument("--target", nargs="*", choices=sorted(TARGETS),
                        help="target models (default: sc and tso)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-queries", type=int, default=200,
                        help="oracle-query budget per synthesis (default 200)")
    parser.add_argument("--table", action="store_true",
                        help="render the full E13 experiment table")
    parser.add_argument("--selftest", action="store_true",
                        help="run the CI selftest and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest(seed=args.seed)

    if args.table:
        from repro.harness import e13_fence_synthesis
        result = e13_fence_synthesis(seed=args.seed,
                                     max_queries=args.max_queries)
        print(result.render())
        return 0

    results = run_synthesis(args.workload or sorted(canonical_litmus_ir()),
                            args.target or ["sc", "tso"],
                            seed=args.seed, max_queries=args.max_queries)
    return 0 if all(r.sufficient for r in results.values()) else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Fuzz the simulator's consistency machinery.

Generates seeded random litmus programs, runs each under a sweep of
consistency model x speculation mode x timing skew, and checks every
recorded execution against its own model's ordering axioms (SC / TSO /
RMO).  A faithful machine must report zero violations; any failure is
shrunk to a minimal litmus test and written out as a standalone
reproducer script.

Usage:
    python examples/run_fuzz.py                          # quick default sweep
    python examples/run_fuzz.py --programs 50 --seed 7   # go deeper
    python examples/run_fuzz.py --models sc tso          # subset of models
    python examples/run_fuzz.py --inject sc-load-no-drain   # prove detection
    python examples/run_fuzz.py --out-dir out/           # write reproducers

Exit status is 1 when violations were found on a faithful machine (or
when an injected bug was NOT caught), so the script doubles as a CI
gate.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim.config import ConsistencyModel  # noqa: E402
from repro.verification.fuzz import (  # noqa: E402
    INJECTIONS,
    fuzz_sweep,
    write_reproducer,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=20,
                        help="random programs per sweep (default 20)")
    parser.add_argument("--ops", type=int, default=8,
                        help="ops per thread (default 8)")
    parser.add_argument("--threads", type=int, default=2,
                        help="threads per program (default 2)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--models", nargs="*",
                        choices=[m.value for m in ConsistencyModel],
                        help="models to sweep (default: all)")
    parser.add_argument("--inject", choices=INJECTIONS,
                        help="plant a known bug; the sweep must catch it")
    parser.add_argument("--all-failures", action="store_true",
                        help="keep sweeping after the first failure")
    parser.add_argument("--out-dir",
                        help="write repro_<seed>.py reproducer scripts here")
    args = parser.parse_args(argv)

    models = ([ConsistencyModel(m) for m in args.models]
              if args.models else tuple(ConsistencyModel))
    report = fuzz_sweep(
        n_programs=args.programs,
        seed=args.seed,
        n_threads=args.threads,
        ops_per_thread=args.ops,
        models=models,
        inject=args.inject,
        stop_after=None if args.all_failures else 1,
    )
    print(f"fuzz sweep: {report.cases_run} cases, "
          f"{report.checks_passed} passed, "
          f"{len(report.failures)} violation(s)"
          + (f" [injected: {args.inject}]" if args.inject else ""))

    for failure in report.failures:
        print(f"\ncase {failure.case.describe()}")
        print(f"  shrunk to {failure.shrunk.instruction_count()} "
              f"instructions on {failure.shrunk.n_threads} thread(s)")
        for tid, ops in enumerate(failure.shrunk.threads):
            rendered = ", ".join(
                f"{op.kind}"
                + (f" [{op.addr:#x}]" if op.kind in ("load", "store", "swap")
                   else "")
                + (f"={op.value}" if op.kind in ("store", "swap") else "")
                for op in ops)
            print(f"    t{tid}: {rendered}")
        print("  " + failure.message.replace("\n", "\n  "))
        if args.out_dir:
            os.makedirs(args.out_dir, exist_ok=True)
            path = os.path.join(args.out_dir,
                                f"repro_{failure.case.seed}.py")
            write_reproducer(failure.shrunk, path)
            print(f"  reproducer written to {path}")

    if args.inject:
        if report.failures:
            print("\ninjected bug caught: the checking pipeline works")
            return 0
        print("\ninjected bug NOT caught -- checker regression!")
        return 1
    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Sharded multi-process simulation: 64-256 simulated cores.

Partitions the simulated machine over shard worker processes (each
owning a slice of the cores, their L1s, and a slice of the directory
homes) advancing in conservative bounded-lag epochs, with lookahead
taken from the interconnect's minimum latency.  The single-process
engine stays the deterministic oracle: on the documented exact-match
grid (docs/SHARDING.md) a sharded run reproduces its stats tables and
fingerprints bit for bit.

Usage:
    python examples/run_sharded.py                     # E15 scaling table
    python examples/run_sharded.py --cores 64 128      # subset of the grid
    python examples/run_sharded.py --shards 8          # wider partition
    python examples/run_sharded.py --bench             # measure + BENCH doc
    python examples/run_sharded.py --selftest          # CI gate

``--bench`` measures the full canonical grids (E1/E9/MEM, like
run_bench.py), attaches ``--baseline`` for speedups, adds the sharded
serial-vs-parallel capacity section, and writes the next
``BENCH_<n>.json``.  Exit status is 1 when any selftest check fails.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from dataclasses import replace  # noqa: E402

from repro.harness.bench import (  # noqa: E402
    attach_baseline,
    bench_grids,
    default_grids,
    load_bench,
    measure_sharded_point,
    next_bench_path,
    render_bench,
    sharded_bench_section,
    sharded_oracle_entry,
    write_bench,
)
from repro.harness.experiments import (  # noqa: E402
    E15_CORE_COUNTS,
    _e15_config,
    e15_sharded_scaling,
)
from repro.harness.parallel import result_fingerprint  # noqa: E402
from repro.sim.config import SystemConfig  # noqa: E402
from repro.sim.sharded import ShardingError, run_sharded  # noqa: E402
from repro.system import System  # noqa: E402
from repro.workloads.barriers import stencil  # noqa: E402
from repro.workloads.protocols import gossip  # noqa: E402


def _xbar5(n_cores: int) -> SystemConfig:
    """A small exact-match-grid crossbar config (link latency 5)."""
    config = SystemConfig(n_cores=n_cores)
    return replace(config, interconnect=replace(config.interconnect,
                                                link_latency=5))


# ------------------------------------------------------------- selftest

def selftest(shards: int = 4) -> int:
    """CI gate: oracle equality on grid points, a >= 64-core mesh point
    end-to-end through forked shard workers, transport invisibility,
    and clean refusals."""
    failures = []

    def check(label, ok, detail=""):
        mark = "ok" if ok else "FAIL"
        print(f"  [{mark}] {label}" + (f" -- {detail}" if detail else ""))
        if not ok:
            failures.append(label)

    print("sharded-simulation selftest")

    # Oracle equality on an exact-match grid point, forked and inline.
    config, wl = _xbar5(4), gossip(4)
    serial = System(config, wl.programs, wl.initial_memory).run()
    want = result_fingerprint(serial)
    forked = run_sharded(config, wl.programs, wl.initial_memory, shards=2,
                         mode="fork")
    inline = run_sharded(config, wl.programs, wl.initial_memory, shards=2,
                         mode="inline")
    check("sharded (fork) == serial oracle, bit for bit",
          result_fingerprint(forked) == want
          and forked.events == serial.events)
    check("inline driver == forked driver",
          result_fingerprint(inline) == result_fingerprint(forked))

    # shards=1 is literally the serial machine.
    single = run_sharded(config, wl.programs, wl.initial_memory, shards=1)
    check("shards=1 is the serial machine",
          result_fingerprint(single) == want)

    # A 64-core mesh point end-to-end through forked workers: the
    # workload's own validator asserts the answer.
    big_config = _e15_config(64)
    big = stencil(64, phases=2, cells_per_thread=4, compute_cycles=2)
    try:
        result = run_sharded(big_config, big.programs, big.initial_memory,
                             shards=shards, mode="fork")
        big.check(result)
        telemetry = result.sharding
        check("64-core mesh point completes via forked shards", True,
              f"{result.events} events, {telemetry['epochs']} epochs, "
              f"{telemetry['crossings']} crossings")
        check("sharded 64-core run is deterministic",
              result_fingerprint(run_sharded(
                  big_config, big.programs, big.initial_memory,
                  shards=shards, mode="fork")) == result_fingerprint(result))
    except Exception as exc:  # noqa: BLE001 - any failure fails the gate
        check("64-core mesh point completes via forked shards", False,
              str(exc))

    # Refusals are clean errors, not wrong answers.
    from repro.sim.config import SpeculationMode
    bad = SystemConfig(n_cores=4).with_speculation(
        SpeculationMode.ON_DEMAND, commit_arbitration=True)
    refused = False
    try:
        run_sharded(bad, wl.programs, wl.initial_memory, shards=2)
    except ShardingError:
        refused = True
    check("commit arbitration refused cleanly", refused)

    if failures:
        print(f"SELFTEST FAILED: {len(failures)} check(s)")
        return 1
    print("SELFTEST PASSED: sharded engine matches the oracle and scales")
    return 0


# ---------------------------------------------------------------- bench

def run_bench(args) -> int:
    grids = default_grids(quick=args.quick)
    print("measuring canonical grids (E1/E9/MEM)...")
    doc = bench_grids(grids, repeats=args.repeats,
                      progress=lambda line: print(f"  {line}"))
    if args.baseline:
        attach_baseline(doc, load_bench(args.baseline))

    print("measuring sharded capacity points...")
    points = [
        measure_sharded_point(
            "mesh64-gossip", _e15_config(64), gossip(64, repeat=1),
            shards=args.shards, repeats=args.repeats_sharded),
        measure_sharded_point(
            "mesh256-stencil", _e15_config(256),
            stencil(256, phases=2, cells_per_thread=4, compute_cycles=2),
            shards=args.shards, repeats=args.repeats_sharded),
    ]
    oracle = sharded_oracle_entry("xbar4-gossip-L5", _xbar5(4), gossip(4),
                                  shards=2)
    doc["sharded"] = sharded_bench_section(points, oracle)

    path = args.out or next_bench_path(
        os.path.join(os.path.dirname(__file__), ".."))
    write_bench(doc, path)
    print(render_bench(doc))
    print(f"wrote {os.path.normpath(path)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cores", type=int, nargs="*",
                        default=list(E15_CORE_COUNTS),
                        help="core counts for the E15 table")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard workers per point (default 4)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the CI selftest and exit")
    parser.add_argument("--bench", action="store_true",
                        help="measure and write the next BENCH_<n>.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline BENCH_<n>.json for --bench speedups")
    parser.add_argument("--quick", action="store_true",
                        help="--bench: small grids (not comparable to "
                             "full-scale baselines)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="--bench: repeats per grid point (default 3)")
    parser.add_argument("--repeats-sharded", type=int, default=1,
                        help="--bench: repeats per sharded point")
    parser.add_argument("--out", default=None,
                        help="--bench: explicit output path")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest(shards=args.shards)
    if args.bench:
        return run_bench(args)

    result = e15_sharded_scaling(core_counts=tuple(args.cores),
                                 shards=args.shards)
    print(result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Quickstart: build a two-thread program, run it, inspect the results.

Demonstrates the three layers of the public API:

1. write per-thread programs with the :class:`repro.Assembler`;
2. configure a machine with :class:`repro.SystemConfig`;
3. run with :func:`repro.run_system` and read cycles/registers/memory.

Run:  python examples/quickstart.py
"""

from repro import (
    Assembler,
    ConsistencyModel,
    FenceKind,
    SpeculationMode,
    SystemConfig,
    run_system,
)

DATA, FLAG = 0x1000, 0x2000


def build_producer():
    asm = Assembler("producer")
    asm.li(1, DATA)           # r1 = &data
    asm.li(2, FLAG)           # r2 = &flag
    asm.li(3, 42)
    asm.store(3, base=1)      # data = 42
    asm.fence(FenceKind.FULL)  # order data before flag (costs a drain!)
    asm.li(4, 1)
    asm.store(4, base=2)      # flag = 1
    asm.halt()
    return asm.build()


def build_consumer():
    asm = Assembler("consumer")
    asm.li(1, DATA)
    asm.li(2, FLAG)
    asm.label("spin")
    asm.load(3, base=2)       # wait for flag
    asm.beq(3, 0, "spin")
    asm.fence(FenceKind.FULL)
    asm.load(4, base=1)       # guaranteed to see 42
    asm.halt()
    return asm.build()


def main():
    programs = [build_producer(), build_consumer()]

    print("Fenced message passing, 2 cores, TSO:")
    print(f"{'configuration':<30s} {'cycles':>8s} {'ordering stalls':>16s}")
    for label, spec_mode in [("conventional", SpeculationMode.NONE),
                             ("InvisiFence on-demand", SpeculationMode.ON_DEMAND),
                             ("InvisiFence continuous", SpeculationMode.CONTINUOUS)]:
        config = (SystemConfig(n_cores=2)
                  .with_consistency(ConsistencyModel.TSO)
                  .with_speculation(spec_mode))
        result = run_system(config, programs)
        value = result.core_reg(1, 4)
        assert value == 42, "message passing broke!"
        print(f"{label:<30s} {result.cycles:>8d} "
              f"{result.ordering_stall_cycles():>16d}")

    print("\nThe consumer always reads 42: speculation never changes the")
    print("memory model, only removes its cost.")


if __name__ == "__main__":
    main()

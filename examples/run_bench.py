#!/usr/bin/env python
"""Measure simulator throughput per grid point and write BENCH_<n>.json.

Usage:
    python examples/run_bench.py                      # full E1+E9 grids
    python examples/run_bench.py --quick              # reduced grids
    python examples/run_bench.py --check              # 3-point schema smoke
    python examples/run_bench.py --out BENCH_2.json   # explicit output path
    python examples/run_bench.py --baseline old.json  # embed speedup vs old
    python examples/run_bench.py --repeats 3          # best-of-N wall times
    python examples/run_bench.py --profile 25         # cProfile one point
    python examples/run_bench.py --superblock-stats   # fusion coverage table

Each grid point (one deterministic simulation) reports wall seconds,
dispatched events/sec, simulated cycles/sec, and a result fingerprint
covering the full stats table.  ``--baseline`` additionally verifies the
fingerprints match the older run point-for-point -- a speedup claim is
only recorded when the stats tables are byte-identical.

``--check`` runs three small points, validates the emitted document
against the schema, and writes nothing; the default test pass uses it as
a smoke test (see docs/PERF.md for the full workflow).

``--profile N`` skips the bench entirely: it runs ONE representative
grid point (the first point of the quick MEM grid) under cProfile and
prints the top N functions by total self time -- the first place to
look when chasing an events/sec regression.

``--superblock-stats`` also skips the timing bench: it runs every grid
point once (``--quick``/``--check`` select the grids as usual) and
prints the trace-compiled-execution coverage per workload -- the
fraction of dynamic instructions retired inside fused superblocks and
the mean fused-block length.  Use it to see where the fusion detector
does and does not engage before reading a BENCH delta.
"""

import sys

from repro.harness.bench import (
    attach_baseline,
    bench_grids,
    check_grids,
    default_grids,
    load_bench,
    next_bench_path,
    render_bench,
    validate_bench,
    write_bench,
)


def _flag_value(argv, flag):
    if flag not in argv:
        return None, argv
    index = argv.index(flag)
    if index + 1 >= len(argv):
        raise SystemExit(f"{flag} needs an argument")
    return argv[index + 1], argv[:index] + argv[index + 2:]


def _profile_point(top_n):
    """cProfile one representative grid point; print top-N by tottime."""
    import cProfile
    import pstats

    from repro.harness.experiments import mem_plan
    from repro.system import System

    spec = mem_plan(n_cores=4, scale=0.3)[0]
    print(f"profiling {spec.label} ({spec.config.describe()})")

    def run():
        System(spec.config, spec.workload.programs,
               spec.workload.initial_memory).run()

    profiler = cProfile.Profile()
    profiler.runcall(run)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("tottime").print_stats(top_n)
    return 0


def _superblock_stats(grids):
    """Run every grid point once; print per-workload fusion coverage."""
    from repro.system import System

    width = max(len(s.label) for specs in grids.values() for s in specs)
    for grid_id, specs in sorted(grids.items()):
        print(f"{grid_id}:")
        print(f"  {'point'.ljust(width)}  coverage  mean-len  "
              "fused-instr  total-instr")
        for spec in specs:
            result = System(spec.config, spec.workload.programs,
                            spec.workload.initial_memory).run()
            total = result.total_instructions()
            print(f"  {spec.label.ljust(width)}  "
                  f"{result.fusion_coverage():8.1%}  "
                  f"{result.mean_superblock_length():8.2f}  "
                  f"{result.fused_instructions():11d}  {total:11d}")
    return 0


def main(argv):
    check = "--check" in argv
    quick = "--quick" in argv
    quiet = "--quiet" in argv
    sb_stats = "--superblock-stats" in argv
    argv = [a for a in argv if a not in ("--check", "--quick", "--quiet",
                                         "--superblock-stats")]
    out_path, argv = _flag_value(argv, "--out")
    baseline_path, argv = _flag_value(argv, "--baseline")
    repeats_arg, argv = _flag_value(argv, "--repeats")
    profile_arg, argv = _flag_value(argv, "--profile")
    try:
        repeats = int(repeats_arg) if repeats_arg is not None else 1
    except ValueError:
        print(f"--repeats expects an integer, got {repeats_arg!r}")
        return 1
    if repeats < 1:
        print("--repeats must be >= 1")
        return 1
    if profile_arg is not None:
        try:
            top_n = int(profile_arg)
        except ValueError:
            print(f"--profile expects an integer, got {profile_arg!r}")
            return 1
        if top_n < 1:
            print("--profile must be >= 1")
            return 1
        if argv:
            print(f"unknown argument(s): {' '.join(argv)}")
            return 1
        return _profile_point(top_n)
    if argv:
        print(f"unknown argument(s): {' '.join(argv)}")
        return 1

    grids = check_grids() if check else default_grids(quick=quick)
    if sb_stats:
        return _superblock_stats(grids)
    progress = None if (quiet or check) else lambda text: print(f"  {text}")
    doc = bench_grids(grids, repeats=repeats, progress=progress)
    validate_bench(doc)

    if baseline_path is not None:
        attach_baseline(doc, load_bench(baseline_path))

    if check:
        # The smoke points are ALU-heavy spin workloads: if none of them
        # retires instructions inside fused superblocks, trace-compiled
        # execution silently disengaged -- fail the check, don't just
        # report a slower bench later.
        unfused = [p["label"] for g in doc["grids"].values()
                   for p in g["points"] if not p["fused_instructions"]]
        if unfused:
            print("bench --check: zero superblock fusion coverage on: "
                  + ", ".join(unfused))
            return 1
        print("bench --check: schema ok, fusion coverage nonzero "
              f"({sum(len(g['points']) for g in doc['grids'].values())} "
              "points measured)")
        print(render_bench(doc))
        return 0

    path = out_path or next_bench_path()
    write_bench(doc, path)
    print(render_bench(doc))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

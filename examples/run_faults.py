#!/usr/bin/env python
"""Exercise the fault-injection subsystem and liveness watchdog.

Sweeps seeded random litmus programs over the named fault scenarios
(delay jitter, message duplication, transient link stalls,
drop-with-NACK-and-retry, and a combined storm) crossed with every
consistency model and speculation mode.  Every run executes under a
liveness watchdog and must pass its own model's ordering axioms: an
unreliable interconnect may change *timing*, never *order*.

With ``--demo-deadlock`` the script also drops one directory-bound
request with retries disabled and shows the watchdog converting the
resulting hang into a :class:`DeadlockError` whose diagnostic dump
names the stuck address and cores.  The node-fault variant of this
demo -- the same hang with a crash-stopped third core, whose death the
dump names -- lives in ``examples/run_chaos.py --demo-failstop``.

Usage:
    python examples/run_faults.py                     # quick scenario sweep
    python examples/run_faults.py --programs 8        # go deeper
    python examples/run_faults.py --scenarios storm   # subset
    python examples/run_faults.py --demo-deadlock     # watchdog demo

Exit status is 1 when any ordering check fails (the script doubles as a
CI gate).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.faults import (  # noqa: E402
    DeadlockError,
    FaultPlan,
    Watchdog,
    fault_scenarios,
)
from repro.harness.experiments import e12_fault_injection  # noqa: E402
from repro.isa.program import Assembler  # noqa: E402
from repro.sim.config import SystemConfig  # noqa: E402
from repro.system import System  # noqa: E402
from repro.verification.checker import ConsistencyViolation  # noqa: E402


def demo_deadlock() -> None:
    """Drop one coherence request with retries off: watchdog fires."""
    print("--- watchdog demo: one dropped request, retries disabled ---")
    plan = FaultPlan(seed=0, drop_first_n=1, retries_enabled=False)
    programs = []
    for tid in range(2):
        asm = Assembler(f"demo.t{tid}")
        asm.li(1, 0x1_0000).li(2, tid + 1)
        asm.store(2, base=1, offset=8 * tid)
        asm.halt()
        programs.append(asm.build())
    system = System(SystemConfig(n_cores=2), programs, fault_plan=plan)
    watchdog = Watchdog(system, check_interval=500)
    try:
        system.run(watchdog=watchdog)
    except DeadlockError as exc:
        print(exc)
        print("--- end demo (this hang became a diagnosable exception; "
              "see run_chaos.py --demo-failstop for the node-fault "
              "variant) ---\n")
    else:
        raise AssertionError("demo unexpectedly completed")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=4,
                        help="random programs per scenario (default 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenarios", nargs="*",
                        choices=sorted(fault_scenarios()),
                        help="scenario subset (default: all)")
    parser.add_argument("--demo-deadlock", action="store_true",
                        help="also demonstrate the watchdog's deadlock dump")
    args = parser.parse_args(argv)

    if args.demo_deadlock:
        demo_deadlock()

    try:
        result = e12_fault_injection(n_programs=args.programs,
                                     seed=args.seed)
    except ConsistencyViolation as exc:
        print("ordering violation under fault injection:")
        print(exc)
        return 1
    rows = result.rows
    if args.scenarios:
        wanted = set(args.scenarios)
        rows = [row for row in rows if row[0] in wanted]
        result.rows = rows
    print(result.render())

    total_runs = sum(row[2] for row in rows)
    total_passed = sum(row[3] for row in rows)
    print(f"\n{total_passed}/{total_runs} runs passed their ordering checks")
    return 0 if total_passed == total_runs else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Writing your own workload and studying it across configurations.

This walks through the full adoption path for the library:

1. author per-thread programs with the assembler + the provided
   synchronisation macros (here: a double-buffered pipeline where a
   stage hands blocks to the next stage through ticket-locked queues);
2. bundle them into a validated Workload;
3. sweep configurations with the harness helpers;
4. inspect the coherence protocol with the message trace.

Run:  python examples/custom_workload.py
"""

from repro import (
    Assembler,
    ConsistencyModel,
    FenceKind,
    SpeculationMode,
    SystemConfig,
)
from repro.harness.runner import compare_configs, six_point_configs
from repro.system import System
from repro.workloads.base import Layout, Workload
from repro.workloads import primitives


def build_pipeline_workload(stages: int = 4, items: int = 10,
                            work_cycles: int = 25) -> Workload:
    """A software pipeline: stage i locks a slot, processes the item,
    and passes it to stage i+1.  Slot i's word counts items that have
    passed stage i."""
    layout = Layout()
    slots = layout.padded_array(stages + 1)
    locks = layout.padded_array(stages + 1)

    programs = []
    for stage in range(stages):
        asm = Assembler(f"stage{stage}")
        asm.li(24, 1)

        def body(asm):
            # Wait until the previous stage has produced more items than
            # we've consumed (our output slot counts our consumption).
            asm.li(1, slots[stage])
            asm.li(2, slots[stage + 1])
            wait = f"wait_{stage}_{id(asm)}_{asm._instructions.__len__()}"
            asm.label(wait)
            asm.load(3, base=1)      # produced by upstream
            asm.load(4, base=2)      # consumed by us
            asm.beq(3, 4, wait)      # nothing new yet
            # Process the item...
            asm.exec_(work_cycles)
            # ...and publish it downstream under the slot lock.
            asm.li(5, locks[stage + 1])
            primitives.emit_tas_acquire(asm, 5)
            asm.load(4, base=2)
            asm.add(4, 4, 24)
            asm.store(4, base=2)
            asm.fence(FenceKind.STORE_STORE)
            primitives.emit_release(asm, 5)

        primitives.emit_counted_loop(asm, items, 10, body)
        asm.halt()
        programs.append(asm.build())

    # The source "stage -1": pre-fill slot 0 with every item.
    source = {slots[0]: items}

    def validate(result):
        for stage in range(1, stages + 1):
            passed = result.read_word(slots[stage])
            assert passed == items, (
                f"stage {stage}: {passed}/{items} items passed"
            )

    return Workload(
        name="pipeline",
        programs=programs,
        initial_memory=source,
        description=f"{stages}-stage pipeline x {items} items",
        validate=validate,
    )


def main():
    workload = build_pipeline_workload()
    print(f"Workload: {workload.description}\n")

    # Sweep the six main configurations.
    base = SystemConfig(n_cores=workload.n_threads)
    results = compare_configs(workload, six_point_configs(base))
    rmo = results["base-rmo"].cycles
    print(f"{'config':<10s} {'cycles':>8s} {'vs base-rmo':>12s} "
          f"{'ordering stalls':>16s}")
    for label in ("base-sc", "base-tso", "base-rmo",
                  "if-sc", "if-tso", "if-rmo"):
        r = results[label]
        print(f"{label:<10s} {r.cycles:>8d} {r.cycles / rmo:>12.3f} "
              f"{r.ordering_stall_cycles():>16d}")

    # Peek at the protocol with the trace facility.
    print("\nLast few coherence messages of an IF-SC run:")
    config = (base.with_consistency(ConsistencyModel.SC)
              .with_speculation(SpeculationMode.ON_DEMAND))
    system = System(config, workload.programs, workload.initial_memory)
    trace = system.enable_tracing()
    result = system.run()
    workload.check(result)
    print(trace.render(last=8))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Explore memory-model litmus tests on two engines.

For each litmus test this prints:

* the exhaustive set of outcomes under sequential consistency, from the
  reference interpreter's interleaving explorer; and
* the outcomes the timing simulator actually produces under each
  consistency model (with and without InvisiFence), over a grid of
  relative timings.

Observed outcomes are always a subset of what the model allows -- with
speculation on, that is the paper's "performance-transparent" claim.

Run:  python examples/litmus_explorer.py
"""

from repro import ConsistencyModel, SpeculationMode, SystemConfig
from repro.system import System
from repro.workloads.litmus import all_litmus_tests

SKEWS = [(a, b) for a in (0, 5, 17, 60, 130) for b in (0, 5, 17, 60, 130)]


def simulator_outcomes(test, model, spec_mode):
    outcomes = set()
    for skew in SKEWS:
        config = (SystemConfig(n_cores=test.n_threads)
                  .with_consistency(model)
                  .with_speculation(spec_mode))
        system = System(config, test.build(list(skew)))
        outcomes.add(test.observe(system.run()))
    return outcomes


def main():
    for test in all_litmus_tests():
        print("=" * 72)
        print(f"{test.name}")
        print("=" * 72)
        for model in ConsistencyModel:
            allowed = sorted(test.allowed[model])
            print(f"  {model.value.upper():<4s} allows {allowed}")
            for spec in (SpeculationMode.NONE, SpeculationMode.ON_DEMAND):
                observed = simulator_outcomes(test, model, spec)
                ok = observed <= test.allowed[model]
                tag = "OK " if ok else "BUG"
                print(f"       [{tag}] {spec.value:<10s} observed "
                      f"{sorted(observed)}")
                assert ok, "forbidden outcome observed!"
        print()


if __name__ == "__main__":
    main()

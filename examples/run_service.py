#!/usr/bin/env python
"""Run (or exercise) the resident experiment service.

Three modes:

``--serve``
    Start a long-lived server on ``--socket`` backed by the persistent
    result store at ``--store`` and block until Ctrl-C.  Any number of
    clients (``--submit`` below, or :class:`repro.service.ExperimentClient`
    in your own scripts) can then submit grids concurrently; repeated
    points are served from the store in microseconds.

``--submit``
    Connect to a running server, submit a small demo grid (six-point
    litmus-style configurations), stream per-point events, and print
    where each result came from.

``--selftest``
    The CI gate: no long-lived daemon.  Starts a server on a temporary
    socket with a temporary store, submits a tiny grid TWICE, restarts
    the server on the same store, and submits a third time -- asserting
    that the second and third submissions are served 100% from the
    persistent store with byte-identical results (proved by
    ``result_fingerprint`` equality) and that rate-limit rejection
    carries a usable ``retry_after``.  Exit status 0 on success.

Usage:
    python examples/run_service.py --selftest
    python examples/run_service.py --serve --store /tmp/repro-store
    python examples/run_service.py --submit               # other terminal
"""

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.parallel import RunSpec  # noqa: E402
from repro.isa.program import Assembler  # noqa: E402
from repro.service import (  # noqa: E402
    ExperimentClient,
    ExperimentServer,
    ExperimentService,
    RateLimitedError,
    ResultStore,
)
from repro.sim.config import SystemConfig  # noqa: E402
from repro.workloads.base import Workload  # noqa: E402

DEFAULT_SOCKET = "/tmp/repro-experiment-service.sock"
DEFAULT_STORE = "/tmp/repro-experiment-store"


def demo_grid(n_points: int = 3) -> list:
    """A tiny grid of two-core message-passing points, one per value."""
    specs = []
    for i in range(n_points):
        programs = []
        for tid in range(2):
            asm = Assembler(f"svc{i}.t{tid}")
            asm.li(1, 0x1_0000 + 64 * tid).li(2, (i + 1) * 10 + tid)
            asm.store(2, base=1)
            asm.halt()
            programs.append(asm.build())
        workload = Workload(f"svc-demo-{i}", programs, {})
        specs.append(RunSpec(f"point-{i}", SystemConfig(n_cores=2),
                             workload, check=False))
    return specs


def make_server(socket_path: str, store_dir: str, jobs: int,
                rate: float, burst: float, depth: int) -> ExperimentServer:
    service = ExperimentService(ResultStore(store_dir), jobs=jobs,
                                point_timeout=120.0, retries=1,
                                max_queue_depth=depth, rate=rate,
                                burst=burst)
    return ExperimentServer(socket_path, service)


def serve(args) -> int:
    server = make_server(args.socket, args.store, args.jobs, args.rate,
                         args.burst, args.depth)
    server.start()
    print(f"serving on {args.socket} (store: {args.store}); Ctrl-C to stop")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def submit(args) -> int:
    client = ExperimentClient(args.socket, client_id=f"cli-{os.getpid()}")
    if not client.ping():
        print(f"no server answering on {args.socket} (start one with "
              "--serve)")
        return 1
    started = time.perf_counter()
    results = client.run_grid_with_retry(
        demo_grid(args.points),
        on_event=lambda ev: print(f"  {ev['event']}: "
                                  f"{ev.get('label', ev.get('job', ''))} "
                                  f"{ev.get('source', '')}".rstrip()))
    elapsed = time.perf_counter() - started
    stats = client.last_job_stats
    print(f"{len(results)} point(s) in {elapsed * 1000:.1f} ms -- "
          f"{stats['from_store']} from store, {stats['simulated']} simulated")
    return 0


def selftest(args) -> int:
    failures = []

    def check(cond, what):
        print(f"  {'ok' if cond else 'FAIL'}: {what}")
        if not cond:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        socket_path = os.path.join(tmp, "svc.sock")
        store_dir = os.path.join(tmp, "store")
        grid = demo_grid(3)

        print("-- first server lifetime: simulate, then replay from store")
        server = make_server(socket_path, store_dir, jobs=2,
                             rate=50.0, burst=50.0, depth=8)
        server.start()
        def point_fps(events):
            return {ev["label"]: ev["result_fingerprint"]
                    for ev in events if ev["event"] == "point"}

        try:
            client = ExperimentClient(socket_path, client_id="selftest")
            first_events = []
            client.run_grid(grid, on_event=first_events.append)
            stats1 = client.last_job_stats
            check(stats1["simulated"] == len(grid),
                  f"first submission simulated all {len(grid)} points")

            second_events = []
            client.run_grid(grid, on_event=second_events.append)
            stats2 = client.last_job_stats
            check(stats2["from_store"] == len(grid)
                  and stats2["simulated"] == 0,
                  "second submission served 100% from the persistent store")
            fresh, replayed = point_fps(first_events), point_fps(second_events)
            check(fresh == replayed and len(replayed) == len(grid),
                  "store-served results are fingerprint-identical to "
                  "freshly simulated ones")
        finally:
            server.stop()

        print("-- second server lifetime, same store: survives restart")
        server = make_server(socket_path, store_dir, jobs=2,
                             rate=50.0, burst=50.0, depth=8)
        server.start()
        try:
            client = ExperimentClient(socket_path, client_id="selftest-2")
            client.run_grid(grid)
            stats3 = client.last_job_stats
            check(stats3["from_store"] == len(grid)
                  and stats3["simulated"] == 0,
                  "restarted server serves the grid from disk, 0 simulated")
            store_stats = client.stats()["store"]
            check(store_stats["records"] == len(grid),
                  f"store holds exactly {len(grid)} records")
        finally:
            server.stop()

        print("-- rate limiting: burst of 1, immediate resubmit rejected")
        server = make_server(socket_path, store_dir, jobs=1,
                             rate=0.5, burst=1.0, depth=8)
        server.start()
        try:
            client = ExperimentClient(socket_path, client_id="limited")
            client.run_grid(grid)
            try:
                client.run_grid(grid)
                check(False, "second burst submission rejected")
            except RateLimitedError as exc:
                check(exc.retry_after > 0,
                      f"rejected with retry_after={exc.retry_after:.2f}s")
        finally:
            server.stop()

    if failures:
        print(f"SELFTEST FAILED ({len(failures)}): {failures}")
        return 1
    print("SELFTEST PASSED: repeated grids served entirely from the "
          "persistent store")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--serve", action="store_true",
                      help="start a resident server and block")
    mode.add_argument("--submit", action="store_true",
                      help="submit the demo grid to a running server")
    mode.add_argument("--selftest", action="store_true",
                      help="end-to-end store/replay check (CI gate)")
    parser.add_argument("--socket", default=DEFAULT_SOCKET,
                        help="unix socket path (default %(default)s)")
    parser.add_argument("--store", default=DEFAULT_STORE,
                        help="persistent store directory "
                             "(default %(default)s)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (default: cpu count)")
    parser.add_argument("--points", type=int, default=3,
                        help="demo grid size for --submit")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="per-client job admissions per second")
    parser.add_argument("--burst", type=float, default=20.0,
                        help="per-client burst ceiling")
    parser.add_argument("--depth", type=int, default=16,
                        help="bounded job-queue depth")
    args = parser.parse_args(argv)
    if args.serve:
        return serve(args)
    if args.submit:
        return submit(args)
    return selftest(args)


if __name__ == "__main__":
    sys.exit(main())

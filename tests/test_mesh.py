"""Tests for the 2D mesh interconnect."""

import pytest

from dataclasses import replace

from repro.interconnect.mesh import Mesh
from repro.sim.config import InterconnectConfig, SystemConfig, Topology
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.system import System, run_system
from repro.workloads import locks
from tests.conftest import small_config


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive(self, msg):
        self.received.append((self.sim.now, msg))


def make_mesh(n_nodes, hop_latency=2, link_issue_interval=1):
    sim = Simulator()
    mesh = Mesh(sim, n_nodes, StatsRegistry(), hop_latency=hop_latency,
                link_issue_interval=link_issue_interval)
    sinks = []
    for node in range(n_nodes):
        sink = Sink(sim)
        mesh.attach(node, sink)
        sinks.append(sink)
    return sim, mesh, sinks


class TestGeometry:
    def test_grid_dimensions_cover_nodes(self):
        for n in (1, 2, 3, 4, 5, 8, 9, 16, 17):
            mesh = Mesh(Simulator(), n, StatsRegistry())
            assert mesh.width * mesh.height >= n
            coords = [mesh.coordinates(i) for i in range(n)]
            assert len(set(coords)) == n  # one tile per node

    def test_directory_node_at_centre(self):
        # The highest id (System's directory) sits at the central tile.
        mesh = Mesh(Simulator(), 9, StatsRegistry())  # 3x3
        assert mesh.coordinates(8) == (1, 1)

    def test_route_is_xy(self):
        mesh = Mesh(Simulator(), 16, StatsRegistry())  # 4x4
        src = next(i for i in range(16) if mesh.coordinates(i) == (0, 0))
        dst = next(i for i in range(16) if mesh.coordinates(i) == (2, 2))
        path = mesh.route(src, dst)
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_route_to_self(self):
        mesh = Mesh(Simulator(), 4, StatsRegistry())
        assert len(mesh.route(0, 0)) == 1


class TestDelivery:
    def test_latency_scales_with_hops(self):
        sim, mesh, sinks = make_mesh(9, hop_latency=3)
        corner = next(i for i in range(9) if mesh.coordinates(i) == (0, 0))
        far = next(i for i in range(9) if mesh.coordinates(i) == (2, 2))
        mesh.send(corner, far, "m")
        sim.run()
        t, _ = sinks[far].received[0]
        assert t == 3 * 4  # 4 hops x 3 cycles

    def test_fifo_per_pair(self):
        sim, mesh, sinks = make_mesh(9)
        for i in range(6):
            mesh.send(0, 8, i)
        sim.run()
        assert [m for _, m in sinks[8].received] == list(range(6))

    def test_link_contention_serialises(self):
        sim, mesh, sinks = make_mesh(4, hop_latency=1, link_issue_interval=4)
        a = next(i for i in range(4) if mesh.coordinates(i) == (0, 0))
        b = next(i for i in range(4) if mesh.coordinates(i) == (1, 0))
        mesh.send(a, b, "x")
        mesh.send(a, b, "y")
        sim.run()
        times = [t for t, _ in sinks[b].received]
        assert times[1] - times[0] >= 4

    def test_unknown_nodes_rejected(self):
        sim, mesh, _ = make_mesh(4)
        with pytest.raises(KeyError):
            mesh.send(0, 99, "m")
        with pytest.raises(KeyError):
            mesh.attach(99, Sink(sim))

    def test_double_attach_rejected(self):
        sim, mesh, _ = make_mesh(2)
        with pytest.raises(ValueError):
            mesh.attach(0, Sink(sim))

    def test_validation(self):
        with pytest.raises(ValueError):
            Mesh(Simulator(), 0, StatsRegistry())
        with pytest.raises(ValueError):
            Mesh(Simulator(), 4, StatsRegistry(), hop_latency=0)


class TestSystemOnMesh:
    def _mesh_config(self, n_cores):
        cfg = small_config(n_cores)
        return replace(cfg, interconnect=InterconnectConfig(
            topology=Topology.MESH, mesh_hop_latency=2))

    def test_workload_correct_on_mesh(self):
        wl = locks.lock_contention(4, increments=6, think_cycles=5)
        result = run_system(self._mesh_config(4), wl.programs,
                            check_invariants=True)
        wl.check(result)

    def test_mesh_vs_crossbar_both_correct_different_timing(self):
        wl = locks.lock_contention(4, increments=6, think_cycles=5)
        mesh_r = run_system(self._mesh_config(4), wl.programs)
        xbar_r = run_system(small_config(4), wl.programs)
        wl.check(mesh_r)
        wl.check(xbar_r)
        assert mesh_r.cycles != xbar_r.cycles  # genuinely different fabric

    def test_speculation_on_mesh(self):
        from repro.sim.config import SpeculationMode
        wl = locks.lock_contention(4, increments=6, think_cycles=5)
        config = self._mesh_config(4).with_speculation(SpeculationMode.ON_DEMAND)
        result = run_system(config, wl.programs, check_invariants=True)
        wl.check(result)


class TestMeshFastpathDeterminism:
    """The mesh fast path (inline calendar-bucket hops) is invisible.

    Same proof shape as the crossbar's in test_fastpath_determinism:
    every point run on the compat engine (fastpath=False, every hop
    through the Event-allocating slow path) must match the fast engine's
    result fingerprint, event count and cycle count exactly.
    """

    def _points(self):
        from repro.sim.config import SpeculationMode
        from repro.workloads.protocols import gossip

        def mesh_config(n_cores, n_homes=1):
            cfg = small_config(n_cores)
            return replace(cfg, n_homes=n_homes,
                           interconnect=InterconnectConfig(
                               topology=Topology.MESH, mesh_hop_latency=2))

        lock = locks.lock_contention(4, increments=6, think_cycles=5)
        return [
            ("locks", mesh_config(4), lock),
            ("locks-spec", mesh_config(4).with_speculation(
                SpeculationMode.CONTINUOUS), lock),
            ("gossip", mesh_config(8), gossip(8)),
            ("gossip-multihome", mesh_config(8, n_homes=4), gossip(8)),
        ]

    def _run(self, config, wl, fastpath):
        system = System(config, wl.programs, wl.initial_memory,
                        fastpath=fastpath)
        return system.run()

    def test_fastpath_vs_compat_fingerprints_match(self):
        from repro.harness.parallel import result_fingerprint
        for label, config, wl in self._points():
            fast = self._run(config, wl, fastpath=True)
            slow = self._run(config, wl, fastpath=False)
            assert result_fingerprint(fast) == result_fingerprint(slow), label
            assert fast.events == slow.events, label
            assert fast.cycles == slow.cycles, label

    def test_fast_send_skips_event_allocation(self):
        # The fast engine must not create Event objects for mesh hops:
        # traversal entries land directly in the calendar buckets.
        sim, mesh, sinks = make_mesh(9, hop_latency=2)
        corner = next(i for i in range(9) if mesh.coordinates(i) == (0, 0))
        far = next(i for i in range(9) if mesh.coordinates(i) == (2, 2))
        mesh.send(corner, far, "m")
        assert sim._pending >= 1
        # Every queued entry is a plain (fn, args) tuple, not an Event.
        for bucket in sim._buckets.values():
            for entry in bucket:
                assert type(entry) is tuple
        sim.run()
        assert sinks[far].received

"""Copy elision on block transfers is semantically invisible.

The memory-system fast path hands block payload lists over by reference
wherever the sender's copy dies (evictions, invalidation acks, fills,
directory intake on writebacks); ``SystemConfig.debug_copy_blocks=True``
restores the historical defensive copies at every one of those sites.
If the elision ever created a live alias -- two caches mutating one
list -- some stats table, register, or memory word would diverge, so
bit-identical result fingerprints across the flag prove aliasing safety.

The matrix crosses the flag with ``fastpath`` because the acceptance
bar for the overhaul is that *all four* engine variants agree.
"""

from dataclasses import replace

import pytest

from repro.harness.experiments import e1_plan, mem_plan
from repro.harness.parallel import result_fingerprint
from repro.system import System

# Sharing-heavy cross-section: every MEM point at a tiny scale exercises
# speculative rollback surrenders, invalidation acks and evictions; the
# E1 spin points add the no-speculation eviction/writeback paths.
_SPECS = mem_plan(n_cores=2, scale=0.2) + e1_plan(n_cores=2, scale=0.2)[:6]


def _run(spec, debug_copy_blocks, fastpath=True):
    config = replace(spec.config, debug_copy_blocks=debug_copy_blocks)
    system = System(config, spec.workload.programs,
                    spec.workload.initial_memory, fastpath=fastpath)
    return system.run()


@pytest.mark.parametrize("spec", _SPECS, ids=[s.label for s in _SPECS])
def test_elided_and_copied_fingerprints_match(spec):
    elided = _run(spec, debug_copy_blocks=False)
    copied = _run(spec, debug_copy_blocks=True)
    assert result_fingerprint(elided) == result_fingerprint(copied)
    assert elided.events == copied.events
    assert elided.cycles == copied.cycles


@pytest.mark.parametrize("spec", _SPECS[::5], ids=[s.label for s in _SPECS[::5]])
def test_flag_is_invisible_on_the_compat_path_too(spec):
    """debug_copy_blocks x fastpath: all four variants agree."""
    prints = {
        (debug, fast): result_fingerprint(_run(spec, debug, fast))
        for debug in (False, True)
        for fast in (True, False)
    }
    assert len(set(prints.values())) == 1, prints

"""Validation and derived-value tests for the configuration dataclasses."""

import pytest

from repro.sim.config import (
    CacheConfig,
    ConsistencyModel,
    CoreConfig,
    InterconnectConfig,
    MemoryConfig,
    SpeculationConfig,
    SpeculationMode,
    SystemConfig,
    paper_table2_config,
)


class TestCacheConfig:
    def test_defaults_derive_geometry(self):
        c = CacheConfig()
        assert c.n_blocks == 1024
        assert c.n_sets == 256
        assert c.offset_bits == 6

    def test_block_alignment_helpers(self):
        c = CacheConfig(block_bytes=64)
        assert c.block_of(0x1234) == 0x1200
        assert c.block_of(0x1200) == 0x1200

    def test_set_index_wraps(self):
        c = CacheConfig(size_bytes=1024, assoc=2, block_bytes=64)  # 8 sets
        assert c.n_sets == 8
        assert c.set_index(0) == 0
        assert c.set_index(64) == 1
        assert c.set_index(64 * 8) == 0

    def test_non_pow2_block_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(block_bytes=48)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=4, block_bytes=64)

    def test_zero_hit_latency_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(hit_latency=0)

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64 * 64 * 3, assoc=1, block_bytes=64)


class TestOtherConfigs:
    def test_memory_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(dram_latency=0)

    def test_interconnect_validation(self):
        with pytest.raises(ValueError):
            InterconnectConfig(port_issue_interval=0)
        InterconnectConfig(link_latency=0)  # zero links are allowed

    def test_core_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(store_buffer_entries=0)

    def test_speculation_validation(self):
        with pytest.raises(ValueError):
            SpeculationConfig(rollback_penalty=-1)
        with pytest.raises(ValueError):
            SpeculationConfig(max_rollbacks_before_stall=0)
        with pytest.raises(ValueError):
            SpeculationConfig(continuous_commit_interval=0)
        with pytest.raises(ValueError):
            SpeculationConfig(arbitration_latency=0)

    def test_speculation_enabled_property(self):
        assert not SpeculationConfig(mode=SpeculationMode.NONE).enabled
        assert SpeculationConfig(mode=SpeculationMode.ON_DEMAND).enabled
        assert SpeculationConfig(mode=SpeculationMode.CONTINUOUS).enabled


class TestSystemConfig:
    def test_with_consistency_is_a_copy(self):
        base = SystemConfig()
        sc = base.with_consistency(ConsistencyModel.SC)
        assert sc.core.consistency is ConsistencyModel.SC
        assert base.core.consistency is ConsistencyModel.TSO

    def test_with_speculation_merges_kwargs(self):
        cfg = SystemConfig().with_speculation(
            SpeculationMode.ON_DEMAND, rollback_penalty=99)
        assert cfg.speculation.mode is SpeculationMode.ON_DEMAND
        assert cfg.speculation.rollback_penalty == 99

    def test_with_cores(self):
        assert SystemConfig().with_cores(16).n_cores == 16

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(n_cores=0)

    def test_describe_mentions_key_parameters(self):
        text = SystemConfig().describe()
        assert "8 cores" in text
        assert "TSO" in text

    def test_paper_config_matches_documented_defaults(self):
        cfg = paper_table2_config()
        assert cfg.l1.size_bytes == 64 * 1024
        assert cfg.memory.dram_latency == 120
        assert not cfg.speculation.enabled

"""Tests for the consistency fuzzer: sweep, injection, shrinking,
reproducers."""

import os
import subprocess
import sys

import pytest

from repro.sim.config import ConsistencyModel, SpeculationMode
from repro.workloads.randmix import (
    MemOp,
    compile_litmus_ops,
    litmus_addr,
    litmus_instruction_count,
    random_litmus_ops,
)
from repro.verification.fuzz import (
    FuzzCase,
    _violation_of,
    fuzz_sweep,
    run_case,
    shrink_case,
    write_reproducer,
)

SC = ConsistencyModel.SC
TSO = ConsistencyModel.TSO


class TestLitmusIR:
    def test_written_values_globally_unique(self):
        threads = random_litmus_ops(3, 20, seed=7)
        values = [op.value for ops in threads for op in ops
                  if op.kind in ("store", "swap")]
        assert values, "generator produced no writes"
        assert len(set(values)) == len(values)
        assert 0 not in values  # never collides with the initial value

    def test_compiles_and_counts(self):
        threads = random_litmus_ops(2, 10, seed=3)
        programs = compile_litmus_ops(threads, skews=[5, 0])
        assert len(programs) == 2
        # skew padding + per-op instructions + HALT
        assert (len(programs[0].instructions)
                == 1 + litmus_instruction_count([threads[0]]) + 1)

    def test_seed_determinism(self):
        assert random_litmus_ops(2, 12, seed=9) == random_litmus_ops(
            2, 12, seed=9)
        assert random_litmus_ops(2, 12, seed=9) != random_litmus_ops(
            2, 12, seed=10)


class TestCleanSweep:
    """The faithful machine must fuzz clean: speculation is invisible."""

    def test_seeded_smoke_all_models_and_specs(self):
        report = fuzz_sweep(n_programs=3, seed=0, ops_per_thread=6)
        # 3 programs x 3 models x 3 spec modes x 2 skew sets
        assert report.cases_run == 54
        assert report.checks_passed == 54
        assert report.clean

    def test_three_threads_clean(self):
        report = fuzz_sweep(n_programs=2, seed=11, n_threads=3,
                            ops_per_thread=5, skew_variants=1)
        assert report.clean


class TestInjection:
    """A deliberately broken machine must be caught and minimized."""

    def test_sc_load_no_drain_caught_and_shrunk(self):
        report = fuzz_sweep(n_programs=10, seed=1, ops_per_thread=8,
                            models=[SC], inject="sc-load-no-drain")
        assert report.failures, "injected SC bug was not caught"
        failure = report.failures[0]
        assert failure.shrunk.instruction_count() <= 10
        assert "violated" in failure.message

    def test_stale_forward_caught(self):
        report = fuzz_sweep(n_programs=20, seed=2, ops_per_thread=10,
                            models=[TSO], inject="stale-forward")
        assert report.failures, "injected forwarding bug was not caught"
        assert "stale" in report.failures[0].message

    def test_unknown_injection_rejected(self):
        case = FuzzCase(threads=((MemOp("load", addr=litmus_addr(0)),),),
                        model=SC, spec=SpeculationMode.NONE,
                        inject="no-such-knob")
        with pytest.raises(ValueError, match="unknown injection"):
            run_case(case)


class TestShrinker:
    def golden_case(self):
        """A hand-planted stale-read bug buried in chaff: with SC loads
        no longer draining the store buffer, thread 0's read-back of its
        own store races thread 1's write and observes a stale value."""
        x, z = litmus_addr(1), litmus_addr(2)
        threads = (
            (MemOp("delay", cycles=6), MemOp("load", addr=x),
             MemOp("store", addr=x, value=1), MemOp("load", addr=x),
             MemOp("load", addr=z), MemOp("delay", cycles=3)),
            (MemOp("load", addr=z), MemOp("store", addr=x, value=6),
             MemOp("delay", cycles=2)),
        )
        return FuzzCase(threads=threads, model=SC,
                        spec=SpeculationMode.CONTINUOUS, skews=(3, 0),
                        seed=99, inject="sc-load-no-drain")

    def test_golden_shrink_to_litmus_size(self):
        case = self.golden_case()
        assert _violation_of(case) is not None, "planted bug not visible"
        shrunk = shrink_case(case)
        assert _violation_of(shrunk) is not None
        assert shrunk.instruction_count() <= 6
        # The essential ops survived: the racing store and a load.
        kinds = [op.kind for ops in shrunk.threads for op in ops]
        assert "store" in kinds and "load" in kinds

    def test_shrink_preserves_value_uniqueness(self):
        shrunk = shrink_case(self.golden_case())
        values = [op.value for ops in shrunk.threads for op in ops
                  if op.kind in ("store", "swap")]
        assert len(set(values)) == len(values)


class TestReproducer:
    def test_script_replays_violation(self, tmp_path):
        shrunk = shrink_case(TestShrinker().golden_case())
        path = write_reproducer(shrunk, str(tmp_path / "repro_golden.py"))
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run([sys.executable, path], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "violation reproduced" in proc.stdout

    def test_clean_case_reports_no_violation(self, tmp_path):
        threads = random_litmus_ops(2, 4, seed=5)
        case = FuzzCase(threads=tuple(tuple(t) for t in threads),
                        model=TSO, spec=SpeculationMode.NONE)
        path = write_reproducer(case, str(tmp_path / "repro_clean.py"))
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run([sys.executable, path], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no violation" in proc.stdout


class TestSpeculativeForwardReadSet:
    """Regression: the first faithful-machine bug the fuzzer found.

    A speculative load that forwards from the store buffer never touches
    the L1, so it used to leave no SR bit -- a remote write to that block
    before commit slipped past conflict detection, and the episode
    committed a post-fence load that had read its own pre-fence buffered
    store even though another core overwrote the location in between (a
    genuine TSO violation; found by the deep sweep at seed 1002).  The
    forwarded load must join the speculative read set so the remote
    write aborts the episode.
    """

    def _system(self):
        from repro.system import System
        from repro.verification.fuzz import fuzz_config

        a, b, c = litmus_addr(1), litmus_addr(2), litmus_addr(0)
        threads = (
            # t0 buffers four stores, speculates through the FULL fence
            # and forwards b=3 from its own buffer into the post-fence
            # load while the stores are still draining.
            (MemOp("store", addr=a, value=1), MemOp("store", addr=b, value=3),
             MemOp("store", addr=c, value=4), MemOp("store", addr=c, value=5),
             MemOp("fence"), MemOp("load", addr=b)),
            # t1 overwrites b during that window: t0's forwarded value is
            # now order-visible, so the episode must abort.
            (MemOp("load", addr=a), MemOp("load", addr=b),
             MemOp("store", addr=b, value=9), MemOp("load", addr=c),
             MemOp("store", addr=c, value=10)),
        )
        programs = compile_litmus_ops(threads, skews=[11, 11])
        config = fuzz_config(2, TSO, SpeculationMode.ON_DEMAND)
        return System(config, programs)

    def test_remote_write_to_forwarded_block_aborts_episode(self):
        from repro.verification.checker import check_execution
        from repro.verification.recorder import ExecutionRecorder

        system = self._system()
        recorder = ExecutionRecorder.attach(system)
        system.run(check_invariants=True)
        # The conflict is detected (exactly one abort on the forwarding
        # core) and the re-executed load reads the remote value, so the
        # committed execution satisfies TSO.
        assert system.stats.value(
            "spec.0.violations.external-invalidation") == 1
        check_execution(recorder, model=TSO)
        final_load = [r for r in recorder.committed
                      if r.core == 0 and r.is_read and r.addr == litmus_addr(2)]
        assert final_load and final_load[-1].value == 9
        assert not final_load[-1].forwarded


class TestVacuousnessGuard:
    def test_duplicate_written_values_rejected(self):
        x = litmus_addr(0)
        case = FuzzCase(
            threads=((MemOp("store", addr=x, value=1),),
                     (MemOp("store", addr=x, value=1),)),
            model=TSO, spec=SpeculationMode.NONE)
        with pytest.raises(RuntimeError, match="duplicate written values"):
            run_case(case)

    def test_report_counts_are_nonvacuous(self):
        threads = random_litmus_ops(2, 8, seed=4)
        case = FuzzCase(threads=tuple(tuple(t) for t in threads),
                        model=TSO, spec=SpeculationMode.ON_DEMAND)
        report = run_case(case)
        assert report["locations_skipped"] == 0
        assert report["ordering_locations_skipped"] == 0
        assert report["ordering_events"] > 0
        assert report["pending_at_end"] == 0


class TestHarnessExperiment:
    def test_e11_runs_and_is_clean(self):
        from repro.harness import e11_consistency_fuzz
        result = e11_consistency_fuzz(n_programs=2)
        faithful = [row for row in result.rows if row[0] == "faithful"]
        assert len(faithful) == len(ConsistencyModel)
        assert all(row[3] == 0 for row in faithful)
        broken = [row for row in result.rows if row[0].startswith("broken")]
        assert all(row[3] > 0 for row in broken)

    def test_e12_runs_and_is_clean(self):
        from repro.harness import e12_fault_injection
        result = e12_fault_injection(n_programs=2)
        assert all(row[2] == row[3] for row in result.rows)  # runs == passed
        faulty = [row for row in result.rows if row[0] != "none"]
        assert sum(row[6] for row in faulty) > 0  # faults really injected


class TestFaultPlanAxis:
    """Satellite: the fuzzer sweeps fault plans and reproducers replay them."""

    def _plan(self):
        from repro.faults import fault_scenarios
        return fault_scenarios(seed=6)["storm"]

    def test_fault_plans_axis_multiplies_cases_and_stays_clean(self):
        plans = [None, self._plan()]
        baseline = fuzz_sweep(n_programs=2, seed=21, ops_per_thread=5,
                              models=[TSO], skew_variants=1)
        report = fuzz_sweep(n_programs=2, seed=21, ops_per_thread=5,
                            models=[TSO], skew_variants=1,
                            fault_plans=plans)
        assert report.cases_run == 2 * baseline.cases_run
        assert report.clean

    def test_describe_names_the_plan(self):
        case = FuzzCase(threads=((MemOp("load", addr=litmus_addr(0)),),),
                        model=TSO, spec=SpeculationMode.NONE,
                        fault_plan=self._plan())
        assert "faults[" in case.describe()
        assert "seed=6" in case.describe()

    def test_shrinking_preserves_the_fault_plan(self):
        from dataclasses import replace
        plan = self._plan()
        case = replace(TestShrinker().golden_case(), fault_plan=plan)
        if _violation_of(case) is None:
            pytest.skip("planted bug masked by this fault timing")
        shrunk = shrink_case(case)
        assert shrunk.fault_plan == plan
        assert _violation_of(shrunk) is not None

    def test_reproducer_replays_the_fault_plan(self, tmp_path):
        threads = random_litmus_ops(2, 4, seed=8)
        case = FuzzCase(threads=tuple(tuple(t) for t in threads),
                        model=TSO, spec=SpeculationMode.CONTINUOUS,
                        fault_plan=self._plan())
        path = write_reproducer(case, str(tmp_path / "repro_faulty.py"))
        with open(path) as fh:
            text = fh.read()
        assert "from repro.faults import FaultPlan" in text
        assert "fault_plan=FaultPlan(" in text
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run([sys.executable, path], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no violation" in proc.stdout


class TestReproducerFidelity:
    """Satellite: reproducers must carry every FuzzCase axis.

    Regression: generated scripts silently dropped the ``superblocks``
    flag, so a violation only visible with fusion disabled replayed
    fused -- and vanished.  The round-trip tests execute the written
    script and demand the nonzero exit, across fusion on/off and with
    a fault plan riding along.
    """

    def _golden(self, **overrides):
        from dataclasses import replace
        return replace(TestShrinker().golden_case(), **overrides)

    def _exec(self, case, tmp_path, name):
        path = write_reproducer(case, str(tmp_path / name))
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        return subprocess.run([sys.executable, path], env=env,
                              capture_output=True, text=True, timeout=120)

    def test_reproducer_script_emits_superblocks(self):
        from repro.verification.fuzz import reproducer_script
        assert "superblocks=False" in reproducer_script(
            self._golden(superblocks=False))
        assert "superblocks=True" in reproducer_script(self._golden())

    def test_round_trip_with_superblocks_disabled(self, tmp_path):
        case = self._golden(superblocks=False)
        assert _violation_of(case) is not None, "planted bug not visible"
        proc = self._exec(case, tmp_path, "repro_nosb.py")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "violation reproduced" in proc.stdout

    def test_round_trip_with_superblocks_enabled(self, tmp_path):
        proc = self._exec(self._golden(), tmp_path, "repro_fused.py")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "violation reproduced" in proc.stdout

    def test_round_trip_with_fault_plan_still_fails(self, tmp_path):
        from repro.faults import fault_scenarios
        case = self._golden(fault_plan=fault_scenarios(seed=6)["storm"])
        if _violation_of(case) is None:
            pytest.skip("planted bug masked by this fault timing")
        proc = self._exec(case, tmp_path, "repro_storm.py")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "violation reproduced" in proc.stdout


class TestShrinkBudget:
    def test_shrinker_never_exceeds_its_budget(self, monkeypatch):
        # Regression: the thread-drop pass ignored the cap mid-pass and
        # the comparison was off by one, so a small max_runs used to buy
        # strictly more simulations than it named.
        import repro.verification.fuzz as fuzz_mod
        real = fuzz_mod._violation_of
        calls = []

        def counting(case):
            calls.append(case)
            return real(case)

        monkeypatch.setattr(fuzz_mod, "_violation_of", counting)
        shrink_case(TestShrinker().golden_case(), max_runs=3)
        assert len(calls) <= 3

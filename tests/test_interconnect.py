"""Tests for the crossbar interconnect."""

import pytest

from repro.interconnect import Crossbar
from repro.sim.config import InterconnectConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


class Sink:
    def __init__(self, sim=None):
        self.received = []
        self.sim = sim

    def receive(self, msg):
        if self.sim is not None:
            self.received.append((self.sim.now, msg))
        else:
            self.received.append(msg)


def make_xbar(link_latency=3, port_issue_interval=1):
    sim = Simulator()
    xbar = Crossbar(sim, InterconnectConfig(link_latency=link_latency,
                                            port_issue_interval=port_issue_interval),
                    StatsRegistry())
    return sim, xbar


def test_message_delivered_after_link_latency():
    sim, xbar = make_xbar(link_latency=5)
    a, b = Sink(sim), Sink(sim)
    xbar.attach(0, a)
    xbar.attach(1, b)
    xbar.send(0, 1, "hello")
    sim.run()
    assert b.received == [(5, "hello")]


def test_duplicate_node_id_rejected():
    _, xbar = make_xbar()
    xbar.attach(0, Sink())
    with pytest.raises(ValueError):
        xbar.attach(0, Sink())


def test_unknown_endpoints_rejected():
    _, xbar = make_xbar()
    xbar.attach(0, Sink())
    with pytest.raises(KeyError):
        xbar.send(0, 9, "x")
    with pytest.raises(KeyError):
        xbar.send(9, 0, "x")


def test_fifo_per_src_dst_pair():
    """Back-to-back sends from one source arrive in order -- the property
    the coherence protocol relies on."""
    sim, xbar = make_xbar(link_latency=4)
    a, b = Sink(sim), Sink(sim)
    xbar.attach(0, a)
    xbar.attach(1, b)
    for i in range(5):
        xbar.send(0, 1, i)
    sim.run()
    assert [m for _, m in b.received] == [0, 1, 2, 3, 4]
    # serialised injection: one per cycle, so arrivals are 1 apart
    times = [t for t, _ in b.received]
    assert times == [4, 5, 6, 7, 8]


def test_port_serialisation_queues_bursts():
    sim, xbar = make_xbar(link_latency=2, port_issue_interval=3)
    a, b = Sink(sim), Sink(sim)
    xbar.attach(0, a)
    xbar.attach(1, b)
    xbar.send(0, 1, "x")
    xbar.send(0, 1, "y")
    sim.run()
    times = [t for t, _ in b.received]
    assert times == [2, 5]  # second injection waited for the port


def test_independent_sources_do_not_queue_each_other():
    sim, xbar = make_xbar(link_latency=2)
    sinks = [Sink(sim) for _ in range(3)]
    for i, s in enumerate(sinks):
        xbar.attach(i, s)
    xbar.send(0, 2, "a")
    xbar.send(1, 2, "b")
    sim.run()
    times = sorted(t for t, _ in sinks[2].received)
    assert times == [2, 2]


def test_message_count_stat():
    sim, xbar = make_xbar()
    stats = xbar._sent  # the counter created at construction
    xbar.attach(0, Sink())
    xbar.attach(1, Sink())
    xbar.send(0, 1, "m")
    sim.run()
    assert stats.value == 1


def test_self_send_allowed():
    sim, xbar = make_xbar(link_latency=1)
    a = Sink(sim)
    xbar.attach(0, a)
    xbar.send(0, 0, "loop")
    sim.run()
    assert a.received == [(1, "loop")]

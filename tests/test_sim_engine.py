"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Event, SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0
    assert sim.events_dispatched == 0
    assert sim.pending_events == 0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 10


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, 3)
    sim.schedule(10, order.append, 1)
    sim.schedule(20, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_cycle_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(7, order.append, i)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_zero_delay_runs_within_current_cycle():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0, order.append, "inner")

    sim.schedule(5, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent_after_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(1, fired.append, "x")
    sim.run()
    event.cancel()  # no crash
    assert fired == ["x"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(50, fired.append, "boundary")
    sim.run(until=50)
    assert fired == ["boundary"]


def test_run_until_advances_clock_when_queue_drains_early():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "only")
    sim.run(until=50)
    assert fired == ["only"]
    assert sim.now == 50


def test_run_until_advances_clock_on_empty_queue():
    sim = Simulator()
    sim.run(until=30)
    assert sim.now == 30
    sim.run(until=20)  # never moves backwards
    assert sim.now == 30


def test_watchdog_raises_on_runaway():
    sim = Simulator()

    def reschedule():
        sim.schedule(1, reschedule)

    sim.schedule(0, reschedule)
    with pytest.raises(SimulationError, match="watchdog"):
        sim.run(max_events=100)


def test_step_dispatches_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(3, fired.append, 1)
    sim.schedule(5, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1, nested)
    sim.run()
    assert len(errors) == 1


def test_events_dispatched_counts_fired_only():
    sim = Simulator()
    keep = sim.schedule(1, lambda: None)
    drop = sim.schedule(2, lambda: None)
    drop.cancel()
    sim.run()
    assert sim.events_dispatched == 1


def test_drain_cancelled_compacts_queue():
    sim = Simulator()
    events = [sim.schedule(10 + i, lambda: None) for i in range(10)]
    for event in events[:8]:
        event.cancel()
    sim.drain_cancelled()
    assert sim.pending_events == 2
    sim.run()


def test_event_ordering_comparison():
    a = Event(1, 0, lambda: None, ())
    b = Event(1, 1, lambda: None, ())
    c = Event(2, 0, lambda: None, ())
    assert a < b < c


def test_callback_args_passed_through():
    sim = Simulator()
    got = []
    sim.schedule(1, lambda x, y: got.append((x, y)), 4, 2)
    sim.run()
    assert got == [(4, 2)]

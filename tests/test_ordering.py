"""Tests for the per-model ordering checker (SC / TSO / RMO axioms)."""

import pytest

from repro.isa.instructions import FenceKind
from repro.sim.config import ConsistencyModel, SpeculationMode
from repro.system import System
from repro.verification import (
    ConsistencyViolation,
    ExecutionRecorder,
    FenceRecord,
    check_execution,
    check_model_ordering,
)
from repro.verification.recorder import AccessKind, AccessRecord
from repro.workloads import litmus
from tests.conftest import small_config

X, Y = 0x1000, 0x1040

SC = ConsistencyModel.SC
TSO = ConsistencyModel.TSO
RMO = ConsistencyModel.RMO


def rec_with(records, fences=()):
    recorder = ExecutionRecorder()
    recorder.committed = list(records)
    recorder.fences = list(fences)
    return recorder


def W(seq, cycle, core, addr, value, po):
    return AccessRecord(seq, cycle, core, AccessKind.WRITE, addr, value,
                        None, False, po=po)


def R(seq, cycle, core, addr, value, po, forwarded=False):
    return AccessRecord(seq, cycle, core, AccessKind.READ, addr, value,
                        None, False, po=po, forwarded=forwarded)


def sb_relaxed_log():
    """Store-buffering litmus, both loads reading the initial value --
    the textbook outcome SC forbids and TSO/RMO allow."""
    return rec_with([
        R(0, 10, 0, Y, 0, po=2),
        R(1, 11, 1, X, 0, po=2),
        W(2, 20, 0, X, 1, po=1),
        W(3, 21, 1, Y, 2, po=1),
    ])


def mp_relaxed_log():
    """Message-passing litmus: flag observed, data stale -- forbidden
    under SC and TSO, allowed under RMO (no fences)."""
    return rec_with([
        W(0, 10, 0, X, 1, po=1),
        W(1, 11, 0, Y, 2, po=2),
        R(2, 12, 1, Y, 2, po=1),
        R(3, 13, 1, X, 0, po=2),
    ])


class TestStoreBuffering:
    def test_sc_rejects_relaxed_outcome(self):
        with pytest.raises(ConsistencyViolation, match="SC ordering"):
            check_model_ordering(sb_relaxed_log(), SC)

    def test_tso_accepts_relaxed_outcome(self):
        report = check_model_ordering(sb_relaxed_log(), TSO)
        assert report.events == 4
        assert report.locations_skipped == 0

    def test_rmo_accepts_relaxed_outcome(self):
        check_model_ordering(sb_relaxed_log(), RMO)

    def test_cycle_message_names_the_events(self):
        with pytest.raises(ConsistencyViolation,
                           match=r"(?s)--fr-->.*--po-->"):
            check_model_ordering(sb_relaxed_log(), SC)

    def test_storeload_fence_forbids_under_tso(self):
        # W x; MFENCE; R y  ||  W y; MFENCE; R x with both loads stale
        # is forbidden even under TSO.
        log = rec_with([
            R(0, 10, 0, Y, 0, po=3),
            R(1, 11, 1, X, 0, po=3),
            W(2, 20, 0, X, 1, po=1),
            W(3, 21, 1, Y, 2, po=1),
        ], fences=[
            FenceRecord(0, 2, FenceKind.STORE_LOAD, False),
            FenceRecord(1, 2, FenceKind.FULL, False),
        ])
        with pytest.raises(ConsistencyViolation, match="fence"):
            check_model_ordering(log, TSO)

    def test_store_buffering_with_forwarding_allowed_under_tso(self):
        # Each core forwards its own buffered store before reading the
        # other location stale: the classic SB+rfi outcome TSO allows.
        # Internal reads-from must stay out of the global order or this
        # legal execution would be flagged.
        log = rec_with([
            R(0, 5, 0, X, 1, po=2, forwarded=True),
            R(1, 6, 1, Y, 2, po=2, forwarded=True),
            R(2, 10, 0, Y, 0, po=3),
            R(3, 11, 1, X, 0, po=3),
            W(4, 20, 0, X, 1, po=1),
            W(5, 21, 1, Y, 2, po=1),
        ])
        check_model_ordering(log, TSO)
        with pytest.raises(ConsistencyViolation):
            check_model_ordering(log, SC)


class TestMessagePassing:
    def test_sc_and_tso_reject(self):
        for model in (SC, TSO):
            with pytest.raises(ConsistencyViolation):
                check_model_ordering(mp_relaxed_log(), model)

    def test_rmo_accepts_without_fences(self):
        check_model_ordering(mp_relaxed_log(), RMO)

    def test_rmo_rejects_with_correct_fences(self):
        log = rec_with(mp_relaxed_log().committed, fences=[
            FenceRecord(0, 2, FenceKind.STORE_STORE, False),  # between Ws
            FenceRecord(1, 2, FenceKind.LOAD_LOAD, False),    # between Rs
        ])
        # po indices must leave room for the fences.
        log.committed = [
            W(0, 10, 0, X, 1, po=1),
            W(1, 11, 0, Y, 2, po=3),
            R(2, 12, 1, Y, 2, po=1),
            R(3, 13, 1, X, 0, po=3),
        ]
        with pytest.raises(ConsistencyViolation, match="fence"):
            check_model_ordering(log, RMO)

    def test_rmo_accepts_with_wrong_direction_fences(self):
        # StoreLoad fences order neither the W->W nor the R->R pair, so
        # RMO still allows the relaxed outcome.
        log = rec_with([
            W(0, 10, 0, X, 1, po=1),
            W(1, 11, 0, Y, 2, po=3),
            R(2, 12, 1, Y, 2, po=1),
            R(3, 13, 1, X, 0, po=3),
        ], fences=[
            FenceRecord(0, 2, FenceKind.STORE_LOAD, False),
            FenceRecord(1, 2, FenceKind.STORE_LOAD, False),
        ])
        check_model_ordering(log, RMO)

    def test_atomic_is_full_barrier_under_rmo(self):
        # Replacing core 0's fence with an unrelated RMW still forbids
        # the stale read: atomics drain and block under every model.
        log = rec_with([
            W(0, 10, 0, X, 1, po=1),
            AccessRecord(1, 11, 0, AccessKind.RMW, 0x2000, 0, 7, False, po=2),
            W(2, 12, 0, Y, 2, po=3),
            R(3, 13, 1, Y, 2, po=1),
            R(4, 14, 1, X, 0, po=3),
        ], fences=[
            FenceRecord(1, 2, FenceKind.LOAD_LOAD, False),
        ])
        with pytest.raises(ConsistencyViolation, match="atomic"):
            check_model_ordering(log, RMO)


class TestUniproc:
    def test_same_address_po_preserved_under_every_model(self):
        # A core writes then reads back an older value: forbidden under
        # all three models via the per-location program-order edges.
        log = rec_with([
            W(0, 10, 1, X, 5, po=1),
            W(1, 20, 0, X, 1, po=1),
            R(2, 15, 0, X, 5, po=2),
        ])
        for model in (SC, TSO, RMO):
            with pytest.raises(ConsistencyViolation, match="po-loc"):
                check_model_ordering(log, model)


class TestInputValidation:
    def test_missing_po_rejected(self):
        log = rec_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 1, None, False),
        ])
        with pytest.raises(ValueError, match="program-order"):
            check_model_ordering(log, SC)

    def test_duplicate_po_rejected(self):
        log = rec_with([W(0, 10, 0, X, 1, po=1), W(1, 20, 0, Y, 2, po=1)])
        with pytest.raises(ValueError, match="duplicate"):
            check_model_ordering(log, SC)

    def test_out_of_thin_air_rejected(self):
        log = rec_with([R(0, 10, 0, X, 42, po=1)])
        with pytest.raises(ConsistencyViolation, match="thin-air"):
            check_model_ordering(log, SC)

    def test_duplicate_values_skip_rf_and_are_counted(self):
        log = rec_with([
            W(0, 10, 0, X, 1, po=1),
            W(1, 20, 1, X, 1, po=1),
            R(2, 30, 0, X, 1, po=2),
        ])
        report = check_model_ordering(log, SC)
        assert report.locations_skipped == 1

    def test_initial_values_respected(self):
        log = rec_with([R(0, 10, 0, X, 9, po=1)])
        check_model_ordering(log, SC, initial={X: 9})
        with pytest.raises(ConsistencyViolation):
            check_model_ordering(log, SC, initial={X: 1})


class TestRealExecutions:
    """Instrumented simulator runs must satisfy their own model."""

    @pytest.mark.parametrize("model", list(ConsistencyModel))
    @pytest.mark.parametrize("spec", list(SpeculationMode))
    def test_litmus_workloads_clean(self, model, spec):
        for make in (litmus.store_buffering, litmus.message_passing):
            for fenced in (False, True):
                test = make(fenced)
                programs = test.build([0, 7])
                config = (small_config(test.n_threads)
                          .with_consistency(model).with_speculation(spec))
                system = System(config, programs)
                recorder = ExecutionRecorder.attach(system)
                system.run(check_invariants=True)
                report = check_execution(recorder, model=model)
                assert report["ordering_events"] > 0
                assert report["pending_at_end"] == 0

    def test_fences_recorded_with_program_order(self):
        test = litmus.store_buffering(fenced=True)
        system = System(small_config(2), test.build([0, 0]))
        recorder = ExecutionRecorder.attach(system)
        system.run()
        assert len(recorder.fences) == 2
        for fence in recorder.fences:
            assert fence.po > 0
        check_execution(recorder, model=ConsistencyModel.TSO)


def RMW_(seq, cycle, core, addr, read, written, po):
    return AccessRecord(seq, cycle, core, AccessKind.RMW, addr, read,
                        written, False, po=po)


class TestRMWFenceNeighbors:
    """Satellite audit: fence-class edges with RMW neighbors.

    An RMW is both read-class (``_is_read``) and write-class
    (``_is_write_ish``), so every directional fence must order it on
    whichever side matches -- e.g. a load-load fence must order
    RMW -> R.  The audit found no hole: the class predicates include
    RMW on both sides, and under RMO a single-event RMW is *also* a
    full atomic hub (and under TSO it sits in the read chain), so the
    ordering is doubly enforced.  These hand-built logs lock the
    combined guarantee; the paired controls swap the RMW for a plain
    access and must check clean, proving the violation really hinges
    on the RMW's dual class membership.
    """

    def test_load_load_fence_orders_rmw_to_read(self):
        # c0: RMW X (reads 3); LL fence; R Y=0(init)
        # c1: W Y=2; RMW X (reads 0, writes 3, co-first)
        # Cycle: RMW(c0) ->fence-> R Y ->fr-> W Y ->atomic-> RMW(c1)
        #        ->co-> RMW(c0): only closes if the LL fence (or the
        #        atomic hub) treats the RMW as a read before it.
        rec = rec_with([
            RMW_(0, 2, 0, X, read=3, written=1, po=0),
            R(1, 0, 0, Y, 0, po=2),
            W(2, 1, 1, Y, 2, po=0),
            RMW_(3, 1, 1, X, read=0, written=3, po=1),
        ], fences=[FenceRecord(0, 1, FenceKind.LOAD_LOAD, False)])
        with pytest.raises(ConsistencyViolation):
            check_model_ordering(rec, ConsistencyModel.RMO)

    def test_plain_write_before_load_load_fence_is_not_ordered(self):
        # Control: same shape, plain W instead of the c0 RMW.  A W is
        # not read-class, so the LL fence orders nothing before it and
        # the outcome is legal under RMO.
        rec = rec_with([
            W(0, 2, 0, X, 1, po=0),
            R(1, 0, 0, Y, 0, po=2),
            W(2, 1, 1, Y, 2, po=0),
            RMW_(3, 1, 1, X, read=0, written=3, po=1),
        ], fences=[FenceRecord(0, 1, FenceKind.LOAD_LOAD, False)])
        check_model_ordering(rec, ConsistencyModel.RMO)

    def test_store_store_fence_orders_rmw_to_write(self):
        # c0: RMW X (reads 4); SS fence; W Y=2
        # c1: RMW Y (reads 2); W X=4 (co-first on X)
        # Cycle: RMW(c0) ->fence-> W Y ->rf-> RMW(c1) ->atomic-> W X
        #        ->co-> RMW(c0): needs the RMW write-class before the
        #        SS fence.
        rec = rec_with([
            RMW_(0, 2, 0, X, read=4, written=1, po=0),
            W(1, 1, 0, Y, 2, po=2),
            RMW_(2, 2, 1, Y, read=2, written=3, po=0),
            W(3, 1, 1, X, 4, po=1),
        ], fences=[FenceRecord(0, 1, FenceKind.STORE_STORE, False)])
        with pytest.raises(ConsistencyViolation):
            check_model_ordering(rec, ConsistencyModel.RMO)

    def test_plain_read_before_store_store_fence_is_not_ordered(self):
        # Control: a plain load is not write-class, so the SS fence
        # orders nothing before it; the same outcome checks clean.
        rec = rec_with([
            R(0, 0, 0, X, 4, po=0),
            W(1, 1, 0, Y, 2, po=2),
            RMW_(2, 2, 1, Y, read=2, written=3, po=0),
            W(3, 1, 1, X, 4, po=1),
        ], fences=[FenceRecord(0, 1, FenceKind.STORE_STORE, False)])
        check_model_ordering(rec, ConsistencyModel.RMO)

    def test_rmw_sits_in_the_tso_read_chain(self):
        # SB built from RMWs instead of stores: forbidden under TSO
        # even with no fences at all, because an RMW is read-class and
        # the read chain preserves its program order (atomics drain the
        # store buffer on the real machine).
        rec = rec_with([
            RMW_(0, 1, 0, X, read=0, written=1, po=0),
            R(1, 0, 0, Y, 0, po=1),
            RMW_(2, 1, 1, Y, read=0, written=2, po=0),
            R(3, 0, 1, X, 0, po=1),
        ])
        with pytest.raises(ConsistencyViolation):
            check_model_ordering(rec, ConsistencyModel.TSO)

    def test_fence_pairs_cover_every_kind_exactly(self):
        from repro.verification.ordering import _fence_pairs
        assert _fence_pairs(FenceKind.LOAD_LOAD) == [(False, False)]
        assert _fence_pairs(FenceKind.LOAD_STORE) == [(False, True)]
        assert _fence_pairs(FenceKind.STORE_STORE) == [(True, True)]
        assert _fence_pairs(FenceKind.STORE_LOAD) == [(True, False)]
        assert sorted(_fence_pairs(FenceKind.FULL)) == [
            (False, False), (False, True), (True, False), (True, True)]

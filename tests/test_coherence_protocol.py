"""Directed MESI protocol scenarios, validated through whole-system runs.

Each test builds tiny per-core programs, runs the machine, and inspects
L1/directory state and message statistics afterwards.  The SWMR
invariant is checked on every run.
"""

import pytest

from repro.coherence.cache import CacheState
from repro.coherence.directory import DirState
from repro.isa import Assembler
from repro.system import System
from tests.conftest import small_config

X = 0x1000   # block-aligned word
Y = 0x2000


def prog(*build_steps):
    asm = Assembler("t")
    for step in build_steps:
        step(asm)
    return asm.build()


def load(addr, rd=3):
    return lambda asm: asm.li(1, addr).load(rd, base=1)


def store(addr, value, scratch=2):
    return lambda asm: asm.li(1, addr).li(scratch, value).store(scratch, base=1)


def idle(cycles):
    return lambda asm: asm.exec_(cycles)


def run(programs, n_cores=None, config=None, initial_memory=None):
    config = config or small_config(n_cores or len(programs))
    system = System(config, programs, initial_memory)
    result = system.run(check_invariants=True)
    return system, result


class TestBasicStates:
    def test_cold_load_grants_exclusive(self):
        system, _ = run([prog(load(X))])
        block = system.l1s[0].array.lookup(X, touch=False)
        assert block.state is CacheState.EXCLUSIVE
        assert system.directory.entry_state(X) is DirState.EXCLUSIVE
        assert system.directory.owner_of(X) == 0

    def test_store_upgrades_to_modified(self):
        system, _ = run([prog(store(X, 7))])
        block = system.l1s[0].array.lookup(X, touch=False)
        assert block.state is CacheState.MODIFIED
        assert block.dirty
        assert block.data[0] == 7

    def test_silent_e_to_m_upgrade_no_extra_request(self):
        system, _ = run([prog(load(X), store(X, 5))])
        # One GetS only: the E copy upgraded silently on the store.
        assert system.stats.value("dir.requests") == 1
        block = system.l1s[0].array.lookup(X, touch=False)
        assert block.state is CacheState.MODIFIED

    def test_two_readers_share(self):
        system, _ = run([prog(load(X)), prog(idle(40), load(X))])
        s0 = system.l1s[0].array.lookup(X, touch=False)
        s1 = system.l1s[1].array.lookup(X, touch=False)
        assert s0.state is CacheState.SHARED
        assert s1.state is CacheState.SHARED
        assert system.directory.sharers_of(X) == {0, 1}

    def test_initial_memory_visible(self):
        _, result = run([prog(load(X, rd=5))], initial_memory={X: 123})
        assert result.core_reg(0, 5) == 123


class TestInvalidations:
    def test_writer_invalidates_reader(self):
        system, result = run([
            prog(load(X, rd=5), idle(200), load(X, rd=6)),
            prog(idle(60), store(X, 42)),
        ])
        # Core 0 re-reads after the invalidation and must see 42.
        assert result.core_reg(0, 6) == 42
        assert system.stats.value("l1.0.invalidations_received") >= 1

    def test_writer_steals_from_writer(self):
        system, result = run([
            prog(store(X, 1)),
            prog(idle(80), store(X, 2)),
        ])
        assert result.read_word(X) == 2
        owner_block = system.l1s[1].array.lookup(X, touch=False)
        assert owner_block.state is CacheState.MODIFIED
        assert system.l1s[0].array.lookup(X, touch=False) is None

    def test_reader_downgrades_writer(self):
        system, result = run([
            prog(store(X, 9)),
            prog(idle(100), load(X, rd=5)),
        ])
        assert result.core_reg(1, 5) == 9
        b0 = system.l1s[0].array.lookup(X, touch=False)
        b1 = system.l1s[1].array.lookup(X, touch=False)
        assert b0.state is CacheState.SHARED
        assert b1.state is CacheState.SHARED
        assert not b0.dirty  # data written back to L2 on the downgrade
        assert system.directory.peek_word(X) == 9

    def test_many_sharers_all_invalidated(self):
        n = 4
        programs = [prog(load(X)) for _ in range(n - 1)]
        programs.append(prog(idle(150), store(X, 5)))
        system, result = run(programs)
        for i in range(n - 1):
            assert system.l1s[i].array.lookup(X, touch=False) is None
        assert result.read_word(X) == 5
        assert system.stats.value("dir.invalidations_sent") >= n - 1


class TestEvictions:
    def conflict_config(self):
        # 2 sets x 2 ways x 64B: tiny cache to force evictions.
        from repro.sim.config import CacheConfig
        from dataclasses import replace
        cfg = small_config(1)
        return replace(cfg, l1=CacheConfig(size_bytes=256, assoc=2,
                                           block_bytes=64, hit_latency=1))

    def test_clean_eviction_notifies_directory(self):
        # Three blocks mapping to one set of a 2-way cache.
        a, b, c = 0x0, 0x80, 0x100
        system, _ = run([prog(load(a), load(b), load(c))],
                        config=self.conflict_config())
        assert system.stats.value("l1.0.evictions") >= 1
        # Evicted block no longer resident; directory reflects it.
        resident = [blk.addr for blk in system.l1s[0].array]
        assert len(resident) <= 2

    def test_dirty_eviction_writes_back(self):
        a, b, c = 0x0, 0x80, 0x100
        system, result = run(
            [prog(store(a, 11), store(b, 12), store(c, 13))],
            config=self.conflict_config())
        assert system.stats.value("l1.0.writebacks") >= 1
        # All values remain architecturally visible.
        for addr, val in ((a, 11), (b, 12), (c, 13)):
            assert result.read_word(addr) == val

    def test_evicted_block_refetchable(self):
        a, b, c = 0x0, 0x80, 0x100
        _, result = run(
            [prog(store(a, 11), load(b), load(c), load(a, rd=9))],
            config=self.conflict_config())
        assert result.core_reg(0, 9) == 11


class TestDirectoryTiming:
    def test_cold_miss_pays_dram(self):
        config = small_config(1)
        system, result = run([prog(load(X))], config=config)
        assert system.stats.value("dir.dram_fetches") == 1
        # Runtime must include the DRAM latency.
        assert result.cycles >= config.memory.dram_latency

    def test_warm_refetch_pays_l2(self):
        system, _ = run([
            prog(load(X)),
            prog(idle(100), load(X)),
        ])
        assert system.stats.value("dir.l2_hits") >= 1

    def test_requests_serialised_per_block(self):
        # Two cores race GetM on one block; the blocking directory must
        # queue one of them.
        system, result = run([prog(store(X, 1)), prog(store(X, 2))])
        assert result.read_word(X) in (1, 2)
        assert system.stats.value("dir.requests") >= 2


class TestAtomicsCoherence:
    def test_concurrent_fetch_add_is_atomic(self):
        def fa():
            asm = Assembler("t")
            asm.li(1, X).li(2, 1)
            for _ in range(10):
                asm.fetch_add(3, base=1, addend=2)
            return asm.build()

        _, result = run([fa(), fa(), fa()])
        assert result.read_word(X) == 30

    def test_cas_loser_observes_winner(self):
        def cas_once():
            asm = Assembler("t")
            asm.li(1, X).li(2, 0).li(3, 1)
            asm.cas(4, base=1, expected=2, new=3)
            return asm.build()

        _, result = run([cas_once(), cas_once()])
        # Exactly one CAS succeeded (saw 0); the other saw 1.
        values = {result.core_reg(0, 4), result.core_reg(1, 4)}
        assert values == {0, 1}
        assert result.read_word(X) == 1

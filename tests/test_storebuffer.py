"""Tests for the FIFO store buffer."""

import pytest

from repro.cpu.storebuffer import StoreBuffer


def make(capacity=4, coalescing=False):
    return StoreBuffer(capacity, coalescing=coalescing)


class TestBasics:
    def test_empty_and_full(self):
        sb = make(2)
        assert sb.empty and not sb.full
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x108, 2, False, now=0)
        assert sb.full and not sb.empty

    def test_enqueue_rejected_when_full(self):
        sb = make(1)
        assert sb.enqueue(0x100, 1, False, now=0)
        assert not sb.enqueue(0x108, 2, False, now=0)
        assert sb.occupancy == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            StoreBuffer(0)

    def test_head_is_oldest(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x108, 2, False, now=1)
        assert sb.head().addr == 0x100

    def test_pop_head_in_order(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x108, 2, False, now=0)
        head = sb.head()
        popped = sb.pop_head(head)
        assert popped.addr == 0x100
        assert sb.head().addr == 0x108

    def test_pop_head_out_of_order_rejected(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x108, 2, False, now=0)
        wrong = list(sb)[1]
        with pytest.raises(RuntimeError):
            sb.pop_head(wrong)

    def test_contains_exact_word(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        assert sb.contains(0x100)
        assert not sb.contains(0x108)


class TestForwarding:
    def test_youngest_value_wins(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x100, 2, False, now=1)
        assert sb.forward_value(0x100) == 2

    def test_no_match_returns_none(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        assert sb.forward_value(0x108) is None


class TestCoalescing:
    def test_same_addr_merges(self):
        sb = make(capacity=2, coalescing=True)
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x100, 2, False, now=1)
        assert sb.occupancy == 1
        assert sb.forward_value(0x100) == 2

    def test_in_flight_entry_not_merged(self):
        sb = make(coalescing=True)
        sb.enqueue(0x100, 1, False, now=0)
        sb.head().in_flight = True
        sb.enqueue(0x100, 2, False, now=1)
        assert sb.occupancy == 2

    def test_speculation_boundary_not_merged(self):
        sb = make(coalescing=True)
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x100, 2, True, now=1)  # speculative: cannot merge
        assert sb.occupancy == 2

    def test_no_coalescing_by_default(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x100, 2, False, now=1)
        assert sb.occupancy == 2

    def test_merge_refreshes_timestamp_and_po(self):
        # The merged entry represents the *newer* store: stale
        # enqueued_at would corrupt drain-latency stats, stale po would
        # corrupt the recorder's program-order stream.
        sb = make(capacity=2, coalescing=True)
        sb.enqueue(0x100, 1, False, now=5, po=1)
        sb.enqueue(0x100, 2, False, now=9, po=3)
        entry = sb.head()
        assert entry.value == 2
        assert entry.enqueued_at == 9
        assert entry.po == 3


class TestSpeculation:
    def test_squash_removes_speculative_suffix(self):
        sb = make(8)
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x108, 2, True, now=1)
        sb.enqueue(0x110, 3, True, now=2)
        assert sb.squash_speculative() == 2
        assert sb.occupancy == 1
        assert sb.head().addr == 0x100

    def test_squash_all_speculative(self):
        sb = make()
        sb.enqueue(0x100, 1, True, now=0)
        sb.head().in_flight = True
        assert sb.squash_speculative() == 1
        assert sb.empty

    def test_squash_nothing(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        assert sb.squash_speculative() == 0
        assert sb.occupancy == 1

    def test_non_suffix_speculative_entries_rejected(self):
        sb = make()
        sb.enqueue(0x100, 1, True, now=0)
        sb.enqueue(0x108, 2, False, now=1)  # non-spec AFTER spec: invalid use
        with pytest.raises(RuntimeError):
            sb.squash_speculative()

    def test_commit_clears_flags(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x108, 2, True, now=1)
        assert sb.commit_speculative() == 1
        assert sb.speculative_count() == 0
        assert sb.occupancy == 2

    def test_speculative_count(self):
        sb = make()
        sb.enqueue(0x100, 1, False, now=0)
        sb.enqueue(0x108, 2, True, now=1)
        assert sb.speculative_count() == 1

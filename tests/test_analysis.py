"""Tests for breakdowns, tables, and baseline models."""

import pytest

from repro.analysis.breakdown import CycleBreakdown, system_breakdown
from repro.analysis.tables import ascii_table, format_ratio, to_csv
from repro.baselines.chunk import CommitArbiter
from repro.baselines.per_store import (
    PerStoreDesign,
    coverage_at_depth,
    depth_for_coverage,
    storage_scaling_table,
)
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram, StatsRegistry
from repro.system import run_system
from repro.workloads import locks
from tests.conftest import small_config


class TestBreakdown:
    def _run(self):
        wl = locks.lock_contention(2, increments=5, think_cycles=5)
        return run_system(small_config(2), wl.programs)

    def test_conservation(self):
        bd = system_breakdown(self._run())
        bd.check_conservation()

    def test_fractions_sum_to_one(self):
        bd = system_breakdown(self._run())
        total = bd.fraction("busy") + bd.fraction("idle") + sum(
            bd.fraction(name) for name in bd.categories)
        assert total == pytest.approx(1.0)

    def test_ordering_subset_of_categories(self):
        bd = system_breakdown(self._run())
        assert bd.ordering <= sum(bd.categories.values())
        assert 0.0 <= bd.ordering_fraction <= 1.0

    def test_conservation_violation_detected(self):
        bd = CycleBreakdown(total_cycles=100, n_cores=1, busy=10,
                            categories={"fence": 5}, idle=0)
        with pytest.raises(AssertionError):
            bd.check_conservation()

    def test_empty_breakdown(self):
        bd = CycleBreakdown(total_cycles=0, n_cores=0, busy=0)
        assert bd.fraction("busy") == 0.0
        assert bd.ordering_fraction == 0.0


class TestTables:
    def test_ascii_table_aligns(self):
        text = ascii_table(["a", "long_header"], [[1, 2], [333, 4]],
                           title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_floats_formatted(self):
        text = ascii_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_csv(self):
        text = to_csv(["a", "b"], [[1, 2.5], ["x", "y"]])
        assert text.splitlines() == ["a,b", "1,2.500", "x,y"]

    def test_format_ratio(self):
        assert format_ratio(50, 100) == "2.00x"
        assert format_ratio(0, 100) == "inf"


class TestPerStoreBaseline:
    def test_linear_scaling(self):
        assert (PerStoreDesign(64).storage_bits
                > 2 * PerStoreDesign(16).storage_bits)

    def test_coverage(self):
        hist = Histogram("d")
        for depth, count in ((2, 50), (10, 30), (100, 20)):
            hist.add(depth, weight=count)
        assert coverage_at_depth(hist, 1) == 0.0
        assert coverage_at_depth(hist, 2) == 0.5
        assert coverage_at_depth(hist, 10) == 0.8
        assert coverage_at_depth(hist, 100) == 1.0

    def test_coverage_empty_is_full(self):
        assert coverage_at_depth(Histogram("d"), 4) == 1.0

    def test_depth_for_coverage(self):
        hist = Histogram("d")
        for depth, count in ((2, 50), (10, 30), (100, 20)):
            hist.add(depth, weight=count)
        assert depth_for_coverage(hist, 0.5) == 2
        assert depth_for_coverage(hist, 0.8) == 10
        assert depth_for_coverage(hist, 1.0) == 100

    def test_depth_for_coverage_validation(self):
        with pytest.raises(ValueError):
            depth_for_coverage(Histogram("d"), 0.0)

    def test_scaling_table_invisifence_constant(self):
        table = storage_scaling_table([8, 64, 512])
        invisi_values = {v[1] for v in table.values()}
        assert len(invisi_values) == 1
        assert table[512][0] > table[8][0]


class TestCommitArbiter:
    def test_serialises_grants(self):
        sim = Simulator()
        arbiter = CommitArbiter(sim, latency=10, stats=StatsRegistry())
        grants = []
        arbiter.request(0, lambda: grants.append(sim.now))
        arbiter.request(1, lambda: grants.append(sim.now))
        arbiter.request(2, lambda: grants.append(sim.now))
        sim.run()
        assert grants == [10, 20, 30]

    def test_queue_delay_recorded(self):
        sim = Simulator()
        stats = StatsRegistry()
        arbiter = CommitArbiter(sim, latency=5, stats=stats)
        arbiter.request(0, lambda: None)
        arbiter.request(1, lambda: None)
        sim.run()
        assert stats.get("arbiter.grants").value == 2
        assert stats.get("arbiter.queue_cycles").total == 5  # second waited

    def test_latency_validated(self):
        with pytest.raises(ValueError):
            CommitArbiter(Simulator(), latency=0, stats=StatsRegistry())

    def test_idle_then_new_request(self):
        sim = Simulator()
        arbiter = CommitArbiter(sim, latency=3, stats=StatsRegistry())
        grants = []
        arbiter.request(0, lambda: grants.append(sim.now))
        sim.run()
        arbiter.request(1, lambda: grants.append(sim.now))
        sim.run()
        assert grants == [3, 6]

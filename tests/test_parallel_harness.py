"""The parallel sweep runner: determinism, dedup/caching, failure paths."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.harness.experiments import (
    e1_plan,
    e2_build,
    e2_plan,
    e2_transparency,
    e3_plan,
    e6_plan,
)
from repro.harness.parallel import (
    RunSpec,
    SweepError,
    SweepScheduler,
    execute_specs,
    point_fingerprint,
)
from repro.isa.program import Assembler
from repro.sim.config import SpeculationMode, SystemConfig
from repro.workloads.base import Workload
from repro.workloads.suite import standard_suite
from tests.conftest import small_config


def _trivial_workload(n_threads: int = 1, name: str = "trivial",
                      validate=None) -> Workload:
    programs = []
    for tid in range(n_threads):
        asm = Assembler(f"{name}.t{tid}")
        asm.li(1, 0x1_0000).li(2, tid + 1)
        asm.store(2, base=1, offset=8 * tid)
        asm.halt()
        programs.append(asm.build())
    return Workload(name, programs, {}, validate=validate)


def _broken_workload() -> Workload:
    """A workload whose system construction fails fast in the worker
    (misaligned initial memory), exercising the failure path."""
    asm = Assembler("broken.t0")
    asm.halt()
    return Workload("broken", [asm.build()], {3: 1})


# ------------------------------------------------------------ fingerprints

def test_fingerprint_stable_across_workload_rebuilds():
    # Factories use a process-global label counter, so two builds of the
    # same workload differ in label *names*; the fingerprint must cover
    # only the resolved instruction streams and match.
    config = small_config(2)
    a = standard_suite(2, 0.1)["locks-ticket"]
    b = standard_suite(2, 0.1)["locks-ticket"]
    assert a is not b
    assert point_fingerprint(config, a) == point_fingerprint(config, b)


def test_fingerprint_sensitive_to_config_and_workload():
    config = small_config(2)
    wl = _trivial_workload(2)
    spec_config = config.with_speculation(SpeculationMode.ON_DEMAND)
    assert point_fingerprint(config, wl) != point_fingerprint(spec_config, wl)
    other = _trivial_workload(2, name="other")
    assert point_fingerprint(config, wl) != point_fingerprint(config, other)


# -------------------------------------------------- serial == parallel

def test_parallel_rows_bit_identical_to_serial():
    kwargs = dict(n_cores=2, scale=0.1)
    serial = SweepScheduler(jobs=1)
    serial.add("E2", e2_plan(**kwargs))
    serial.run()
    table_serial = e2_build(serial.results_for("E2"), **kwargs)

    parallel = SweepScheduler(jobs=2)
    parallel.add("E2", e2_plan(**kwargs))
    parallel.run()
    table_parallel = e2_build(parallel.results_for("E2"), **kwargs)

    assert table_serial.rows == table_parallel.rows
    assert table_serial.render() == table_parallel.render()
    assert table_serial.data == table_parallel.data


def test_experiment_call_jobs_matches_serial():
    serial = e2_transparency(n_cores=2, scale=0.1, jobs=1)
    parallel = e2_transparency(n_cores=2, scale=0.1, jobs=2)
    assert serial.rows == parallel.rows


# ------------------------------------------------------- dedup / caching

def test_cross_experiment_dedup_counts():
    kwargs = dict(n_cores=2, scale=0.1)
    scheduler = SweepScheduler(jobs=1)
    scheduler.add("E1", e1_plan(**kwargs))           # 7 workloads x 3 models
    assert scheduler.unique_points == 21
    assert scheduler.duplicate_hits == 0
    # E2's three base-* points per workload are E1's points exactly.
    scheduler.add("E2", e2_plan(**kwargs))           # 7 x 6
    assert scheduler.unique_points == 21 + 21
    assert scheduler.duplicate_hits == 21
    # E6's continuous probes coincide with E3's continuous half.
    scheduler.add("E3", e3_plan(**kwargs))           # 7 x 2, on-demand == if-tso
    scheduler.add("E6", e6_plan(**kwargs))           # 7, all cached in E3
    assert scheduler.duplicate_hits == 21 + 7 + 7
    report = scheduler.run()
    assert report.unique_points == scheduler.unique_points
    assert len(report.point_seconds) == scheduler.unique_points


def test_rerun_uses_cache():
    scheduler = SweepScheduler(jobs=1)
    scheduler.add("first", [RunSpec("p0", small_config(1),
                                    _trivial_workload())])
    first = scheduler.run()
    assert first.unique_points == 1 and first.cached_hits == 0
    # Adding a second grid with the same point then re-running must not
    # simulate anything new.
    scheduler.add("second", [RunSpec("other-label", small_config(1),
                                     _trivial_workload())])
    second = scheduler.run()
    assert second.unique_points == 0
    assert second.cached_hits == 1
    assert scheduler.results_for("first")["p0"] is \
        scheduler.results_for("second")["other-label"]


def test_results_for_before_run_raises():
    scheduler = SweepScheduler(jobs=1)
    scheduler.add("g", [RunSpec("p", small_config(1), _trivial_workload())])
    with pytest.raises(SweepError, match="not simulated yet"):
        scheduler.results_for("g")


def test_duplicate_label_rejected():
    scheduler = SweepScheduler(jobs=1)
    with pytest.raises(ValueError, match="duplicate label"):
        scheduler.add("g", [
            RunSpec("p", small_config(1), _trivial_workload()),
            RunSpec("p", small_config(1), _trivial_workload(name="x")),
        ])


def test_thread_count_mismatch_rejected():
    scheduler = SweepScheduler(jobs=1)
    with pytest.raises(ValueError, match="2 threads"):
        scheduler.add("g", [RunSpec("p", small_config(1),
                                    _trivial_workload(2))])


# ------------------------------------------------------------ failure paths

def test_simulation_error_is_wrapped_with_point_label_serial():
    scheduler = SweepScheduler(jobs=1)
    scheduler.add("g", [RunSpec("broken-point", small_config(1),
                                _broken_workload())])
    with pytest.raises(SweepError, match="broken-point"):
        scheduler.run()


def test_simulation_error_is_wrapped_with_point_label_parallel():
    scheduler = SweepScheduler(jobs=2)
    scheduler.add("g", [
        RunSpec("ok-point", small_config(1), _trivial_workload()),
        RunSpec("broken-point", small_config(1), _broken_workload()),
    ])
    with pytest.raises(SweepError, match="broken-point"):
        scheduler.run()


def test_dead_worker_surfaces_clear_error_instead_of_hanging():
    scheduler = SweepScheduler(jobs=2, worker=_killing_worker)
    scheduler.add("g", [
        RunSpec("a", small_config(1), _trivial_workload()),
        RunSpec("b", small_config(1), _trivial_workload(name="b")),
    ])
    with pytest.raises(SweepError, match="worker process died"):
        scheduler.run()


def test_validation_failure_is_wrapped():
    def bad_validate(result):
        assert False, "wrong answer"

    scheduler = SweepScheduler(jobs=1)
    scheduler.add("g", [RunSpec("bad", small_config(1),
                                _trivial_workload(validate=bad_validate))])
    with pytest.raises(SweepError, match="wrong answer"):
        scheduler.run()


def test_check_false_skips_validation():
    def bad_validate(result):
        raise AssertionError("should not run")

    results = execute_specs(
        [RunSpec("bad", small_config(1),
                 _trivial_workload(validate=bad_validate), check=False)],
        jobs=1)
    assert results["bad"].cycles > 0


# --------------------------------------------------------------- pickling

def test_system_result_pickles_and_validates():
    wl = standard_suite(2, 0.1)["producer-consumer"]
    results = execute_specs([RunSpec("p", SystemConfig(n_cores=2), wl)],
                            jobs=1)
    result = results["p"]
    clone = pickle.loads(pickle.dumps(result))
    wl.check(clone)
    assert clone.cycles == result.cycles
    assert clone.stats.snapshot() == result.stats.snapshot()
    assert clone.total_instructions() == result.total_instructions()


def _killing_worker(config, programs, initial_memory, fault_plan=None, node_plan=None):
    """Simulates a hard worker crash (segfault-style death)."""
    os._exit(13)

"""The resident experiment service: admission control, dispatch, sockets.

The acceptance bar: a repeated grid submission must be served 100% from
the persistent store with byte-identical stats tables (proved by
``result_fingerprint`` equality); admission control must reject -- with
a usable ``retry_after`` -- rather than queue without bound; many
concurrent clients must stream their own jobs' events without
cross-talk; and a broken or hung point must fail its own job, never
the server.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.harness.parallel import RunSpec, result_fingerprint, simulate_point
from repro.isa.program import Assembler
from repro.service import (
    ExperimentClient,
    ExperimentServer,
    ExperimentService,
    JobQueue,
    RateLimited,
    RateLimitedError,
    ResultStore,
    ServiceError,
    ServicePoint,
    TokenBucket,
)
from repro.workloads.base import Workload
from tests.conftest import small_config


def _workload(name: str = "w", value: int = 1) -> Workload:
    asm = Assembler(f"{name}.t0")
    asm.li(1, 0x1_0000).li(2, value)
    asm.store(2, base=1)
    asm.halt()
    return Workload(name, [asm.build()], {})


def _grid(n: int = 2, prefix: str = "p"):
    return [RunSpec(f"{prefix}{i}", small_config(1),
                    _workload(f"{prefix}w{i}", i + 1), check=False)
            for i in range(n)]


def _broken_worker(config, programs, initial_memory, fault_plan=None, node_plan=None):
    raise ValueError("intentionally broken service point")


def _hanging_worker(config, programs, initial_memory, fault_plan=None, node_plan=None):
    time.sleep(60)


# ------------------------------------------------------------- token bucket

def test_token_bucket_burst_then_refill():
    bucket = TokenBucket(rate=1.0, burst=2.0)
    assert bucket.try_acquire(now=0.0) == 0.0
    assert bucket.try_acquire(now=0.0) == 0.0
    wait = bucket.try_acquire(now=0.0)
    assert wait == pytest.approx(1.0)           # one token at 1/s
    assert bucket.try_acquire(now=0.5) > 0.0    # still half a token short
    assert bucket.try_acquire(now=1.5) == 0.0   # refilled


def test_token_bucket_never_exceeds_burst():
    bucket = TokenBucket(rate=10.0, burst=2.0)
    assert bucket.try_acquire(now=100.0) == 0.0  # long idle: capped at 2
    assert bucket.try_acquire(now=100.0) == 0.0
    assert bucket.try_acquire(now=100.0) > 0.0


def test_token_bucket_validation():
    with pytest.raises(ValueError, match="rate"):
        TokenBucket(rate=0, burst=1)
    with pytest.raises(ValueError, match="burst"):
        TokenBucket(rate=1, burst=0)


# ---------------------------------------------------------------- job queue

def test_job_queue_depth_rejection_costs_no_token():
    clock = [0.0]
    queue = JobQueue(max_depth=1, rate=100.0, burst=1.0,
                     clock=lambda: clock[0])
    queue.submit("a", ["p"])
    with pytest.raises(RateLimited, match="queue full") as info:
        queue.submit("b", ["p"])
    assert info.value.retry_after > 0
    # client b's bucket was never debited: drain the queue and resubmit
    assert queue.next_job(timeout=0) is not None
    queue.submit("b", ["p"])
    assert queue.snapshot()["rejected_depth"] == 1


def test_job_queue_rate_limit_is_per_client():
    clock = [0.0]
    queue = JobQueue(max_depth=10, rate=0.1, burst=1.0,
                     clock=lambda: clock[0])
    queue.submit("chatty", ["p"])
    with pytest.raises(RateLimited, match="chatty") as info:
        queue.submit("chatty", ["p"])
    assert info.value.retry_after == pytest.approx(10.0)
    queue.submit("other", ["p"])                 # unaffected bucket
    assert queue.snapshot()["rejected_rate"] == 1
    clock[0] = 10.0                              # chatty's bucket refilled
    queue.submit("chatty", ["p"])


def test_job_queue_fifo_and_timeout():
    queue = JobQueue(max_depth=10, rate=100.0, burst=100.0)
    first = queue.submit("c", ["p1"])
    second = queue.submit("c", ["p2"])
    assert queue.next_job(timeout=0).job_id == first.job_id
    assert queue.next_job(timeout=0).job_id == second.job_id
    assert queue.next_job(timeout=0.01) is None


# ------------------------------------------------------- embedded dispatch

def _drain(job, timeout=60.0):
    events = []
    while True:
        event = job.events.get(timeout=timeout)
        events.append(event)
        if event["event"] in ("job-done", "job-failed"):
            return events


def test_embedded_service_simulates_then_serves_from_store(tmp_path):
    service = ExperimentService(ResultStore(str(tmp_path / "store")),
                                jobs=2, rate=100.0, burst=100.0)
    service.start()
    try:
        points = [ServicePoint.from_spec(s) for s in _grid(2)]
        first = _drain(service.submit("t", points))
        assert first[-1]["stats"] == {
            "points": 2, "from_store": 0, "simulated": 2,
            "deduplicated": 0, "excluded": 0, "errors": 0}
        second = _drain(service.submit("t", points))
        assert second[-1]["stats"]["from_store"] == 2
        assert second[-1]["stats"]["simulated"] == 0
        fps = {e["label"]: e["result_fingerprint"]
               for e in first if e["event"] == "point"}
        assert {e["label"]: e["result_fingerprint"]
                for e in second if e["event"] == "point"} == fps
    finally:
        service.stop()


def test_embedded_service_dedups_within_one_job(tmp_path):
    service = ExperimentService(ResultStore(str(tmp_path / "store")),
                                jobs=1, rate=100.0, burst=100.0)
    service.start()
    try:
        spec = _grid(1)[0]
        twin = RunSpec("twin", spec.config, spec.workload, check=False)
        points = [ServicePoint.from_spec(spec), ServicePoint.from_spec(twin)]
        events = _drain(service.submit("t", points))
        stats = events[-1]["stats"]
        assert stats["deduplicated"] == 1
        assert stats["simulated"] + stats["from_store"] == 2
        done = {e["label"] for e in events if e["event"] == "point"}
        assert done == {"p0", "twin"}
    finally:
        service.stop()


def test_embedded_service_broken_point_fails_job_not_server(tmp_path):
    service = ExperimentService(ResultStore(str(tmp_path / "store")),
                                worker=_broken_worker, jobs=1,
                                rate=100.0, burst=100.0)
    service.start()
    try:
        events = _drain(service.submit(
            "t", [ServicePoint.from_spec(s) for s in _grid(1)]))
        point_events = [e for e in events if e["event"] == "point"]
        assert point_events[0]["status"] == "error"
        assert "intentionally broken" in point_events[0]["error"]
        assert events[-1]["event"] == "job-done"    # server survived
        assert events[-1]["stats"]["errors"] == 1
    finally:
        service.stop()


def test_embedded_service_hung_point_is_excluded_not_fatal(tmp_path):
    service = ExperimentService(ResultStore(str(tmp_path / "store")),
                                worker=_hanging_worker, jobs=1,
                                point_timeout=0.2, retries=0,
                                term_grace=0.5, rate=100.0, burst=100.0)
    service.start()
    try:
        events = _drain(service.submit(
            "t", [ServicePoint.from_spec(s) for s in _grid(1)]))
        point_events = [e for e in events if e["event"] == "point"]
        assert point_events[0]["status"] == "excluded"
        assert "timed out" in point_events[0]["reason"]
        assert events[-1]["stats"]["excluded"] == 1
    finally:
        service.stop()


# --------------------------------------------------------- socket transport

@pytest.fixture
def server(tmp_path):
    service = ExperimentService(ResultStore(str(tmp_path / "store")),
                                jobs=2, rate=100.0, burst=100.0,
                                max_queue_depth=8)
    srv = ExperimentServer(str(tmp_path / "svc.sock"), service)
    srv.start()
    yield srv
    srv.stop()


def test_socket_roundtrip_and_store_replay(server):
    client = ExperimentClient(server.socket_path, client_id="c1")
    assert client.ping()
    grid = _grid(3)
    first = client.run_grid(grid)
    assert client.last_job_stats["simulated"] == 3
    assert first["p1"].read_word(0x1_0000) == 2

    second = client.run_grid(grid)
    assert client.last_job_stats["from_store"] == 3
    assert client.last_job_stats["simulated"] == 0
    for label in first:
        assert result_fingerprint(second[label]) == \
            result_fingerprint(first[label])

    stats = client.stats()
    assert stats["store"]["records"] == 3
    assert stats["queue"]["accepted"] == 2


def test_socket_results_match_direct_simulation(server):
    client = ExperimentClient(server.socket_path, client_id="c1")
    grid = _grid(2)
    served = client.run_grid(grid)
    for spec in grid:
        direct, _seconds = simulate_point(
            spec.config, spec.workload.programs,
            spec.workload.initial_memory, spec.fault_plan)
        assert result_fingerprint(served[spec.label]) == \
            result_fingerprint(direct)


def test_socket_client_side_validation_runs(server):
    wl = _workload("checked", 7)
    seen = []
    wl.validate = lambda result: seen.append(result.read_word(0x1_0000))
    client = ExperimentClient(server.socket_path, client_id="c1")
    client.run_grid([RunSpec("checked", small_config(1), wl)])
    assert seen == [7]


def test_concurrent_clients_stream_without_crosstalk(server):
    grids = {f"client-{i}": _grid(2, prefix=f"cc{i}-") for i in range(3)}
    results, errors = {}, []

    def one_client(client_id, grid):
        try:
            client = ExperimentClient(server.socket_path,
                                      client_id=client_id)
            results[client_id] = client.run_grid_with_retry(grid)
        except Exception as exc:  # noqa: BLE001 - surfaced via main thread
            errors.append((client_id, exc))

    threads = [threading.Thread(target=one_client, args=(cid, grid))
               for cid, grid in grids.items()]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    for client_id, grid in grids.items():
        assert set(results[client_id]) == {s.label for s in grid}
        for i, spec in enumerate(grid):
            assert results[client_id][spec.label].read_word(0x1_0000) == i + 1


def test_socket_rate_limit_rejects_with_retry_after(tmp_path):
    service = ExperimentService(ResultStore(str(tmp_path / "store")),
                                jobs=1, rate=0.1, burst=1.0)
    with ExperimentServer(str(tmp_path / "svc.sock"), service) as srv:
        client = ExperimentClient(srv.socket_path, client_id="limited")
        client.run_grid(_grid(1))
        with pytest.raises(RateLimitedError) as info:
            client.run_grid(_grid(1))
        assert info.value.retry_after > 0


def test_run_grid_with_retry_honours_backpressure(tmp_path):
    service = ExperimentService(ResultStore(str(tmp_path / "store")),
                                jobs=1, rate=5.0, burst=1.0)
    with ExperimentServer(str(tmp_path / "svc.sock"), service) as srv:
        client = ExperimentClient(srv.socket_path, client_id="retrier")
        client.run_grid(_grid(1))                 # burns the single token
        # immediate resubmit is rejected once, then succeeds after backoff
        results = client.run_grid_with_retry(_grid(1), attempts=5)
        assert results["p0"].read_word(0x1_0000) == 1


def test_socket_excluded_point_raises_service_error(tmp_path):
    service = ExperimentService(ResultStore(str(tmp_path / "store")),
                                worker=_hanging_worker, jobs=1,
                                point_timeout=0.2, retries=0,
                                term_grace=0.5, rate=100.0, burst=100.0)
    with ExperimentServer(str(tmp_path / "svc.sock"), service) as srv:
        client = ExperimentClient(srv.socket_path, client_id="c1")
        with pytest.raises(ServiceError, match="not served"):
            client.run_grid(_grid(1))


# --------------------------------------------------------- chaos streaming

def _chaos_spec(label: str = "chaos") -> RunSpec:
    from repro.faults import CRASH, FaultPlan, NodeFault, NodeFaultPlan
    from repro.sim.config import SystemConfig
    from repro.workloads.protocols import gossip

    return RunSpec(label, SystemConfig(n_cores=4), gossip(4), check=False,
                   fault_plan=FaultPlan(seed=2, drop_prob=0.05),
                   node_plan=NodeFaultPlan(
                       faults=(NodeFault(1, CRASH, 300),)))


def test_wire_point_round_trips_node_plan():
    from repro.service.server import decode_wire_point, encode_wire_point

    spec = _chaos_spec()
    point = ServicePoint.from_spec(spec)
    clone = decode_wire_point(encode_wire_point(point))
    assert clone.node_plan == spec.node_plan
    assert clone.fault_plan == spec.fault_plan
    assert clone.fingerprint() == point.fingerprint() == spec.fingerprint()


def test_wire_decode_tolerates_legacy_four_tuple():
    """Pre-chaos clients ship (config, programs, memory, fault_plan)."""
    import base64
    import pickle

    from repro.service.server import decode_wire_point

    spec = _grid(1)[0]
    blob = pickle.dumps((spec.config, spec.workload.programs,
                         spec.workload.initial_memory, spec.fault_plan))
    point = decode_wire_point({
        "label": spec.label, "name": spec.workload.name,
        "blob": base64.b64encode(blob).decode("ascii")})
    assert point.node_plan is None
    assert point.fingerprint() == spec.fingerprint()


def test_chaos_point_streams_fault_counters(server):
    """Satellite: a remote client can observe a chaos sweep's fault and
    recovery counters straight from the event stream, without
    unpickling result blobs."""
    client = ExperimentClient(server.socket_path, client_id="chaos")
    chaos, clean = _chaos_spec(), _grid(1)[0]
    events = []
    results = client.run_grid([chaos, clean], on_event=events.append)

    assert results["chaos"].crashed_core_ids() == [1]
    point_events = {e["label"]: e for e in events if e["event"] == "point"}
    faults = point_events["chaos"]["faults"]
    assert faults["nodefaults.crashes"] == 1
    assert faults["faults.dropped"] >= 1
    assert faults["retries"] >= 1            # dropped requests were retried
    assert "faults" not in point_events["p0"]    # clean event unchanged
    assert client.last_fault_summaries == {"chaos": faults}

    # Replay from the store carries the same summary (it is derived
    # from the stored result, not from the live run).
    events2 = []
    client.run_grid([chaos], on_event=events2.append)
    assert client.last_job_stats["from_store"] == 1
    replayed = [e for e in events2 if e["event"] == "point"][0]
    assert replayed["faults"] == faults

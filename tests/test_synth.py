"""Tests for fence synthesis: placement hooks, the two-layer oracle,
and recovery of the known-minimal fence sets."""

import pytest

from repro.isa.instructions import FenceKind
from repro.sim.config import ConsistencyModel, SpeculationMode
from repro.verification.synth import (
    OracleStats,
    dynamic_counterexample,
    enumerate_witness_logs,
    fence_cost,
    static_counterexample,
    synthesize_fences,
)
from repro.workloads.litmus import canonical_litmus_ir, lb_ops, mp_ops, sb_ops
from repro.workloads.randmix import (
    FencePlacement,
    MemOp,
    fence_gaps,
    insert_fences,
    litmus_addr,
)

SC = ConsistencyModel.SC
TSO = ConsistencyModel.TSO
RMO = ConsistencyModel.RMO

#: Trimmed dynamic grid for tier-1 speed; the deep benchmark runs the
#: full default axes.
FAST = dict(skew_retries=0, superblocks_axis=(True,),
            specs=(SpeculationMode.NONE, SpeculationMode.CONTINUOUS))


class TestPlacementHooks:
    def test_fence_gaps_need_memory_on_both_sides(self):
        threads = (
            (MemOp("delay", cycles=2), MemOp("store", addr=litmus_addr(0),
                                             value=1),
             MemOp("delay", cycles=1), MemOp("load", addr=litmus_addr(1))),
            (MemOp("load", addr=litmus_addr(0)),),
        )
        # Thread 0: memory ops at 1 and 3, so gaps 2 and 3 qualify (the
        # gap before the delay still separates the store from the load);
        # thread 1 has a single memory op, so no gap at all.
        assert fence_gaps(threads) == [(0, 2), (0, 3)]

    def test_insert_fences_is_pure_and_ordered(self):
        threads = sb_ops()
        placed = insert_fences(threads, [
            FencePlacement(0, 2, FenceKind.STORE_LOAD),
            FencePlacement(0, 1, FenceKind.FULL),
        ])
        assert threads == sb_ops()  # untouched
        kinds = [op.kind for op in placed[0]]
        assert kinds == ["store", "fence", "store", "fence", "load"]
        assert placed[0][1].fence is FenceKind.FULL
        assert placed[0][3].fence is FenceKind.STORE_LOAD
        assert placed[1] == threads[1]

    def test_out_of_range_gap_rejected(self):
        with pytest.raises(ValueError):
            insert_fences(sb_ops(), [FencePlacement(0, 9, FenceKind.FULL)])


class TestWitnessEnumeration:
    def test_sb_witness_count(self):
        # SB (padded): four single-write locations, two reads with two
        # rf choices each (the write or the initial value) -> 4 logs.
        assert sum(1 for _ in enumerate_witness_logs(sb_ops())) == 4

    def test_witnesses_include_the_relaxed_outcome(self):
        # One witness must be the forbidden SB outcome: both loads
        # reading 0 while being po-after their own thread's store.
        seen_both_zero = False
        for rec in enumerate_witness_logs(sb_ops()):
            reads = [r for r in rec.committed if not r.is_write]
            if all(r.value == 0 for r in reads):
                seen_both_zero = True
        assert seen_both_zero

    def test_duplicate_values_rejected(self):
        threads = ((MemOp("store", addr=litmus_addr(0), value=5),
                    MemOp("store", addr=litmus_addr(1), value=5)),)
        with pytest.raises(ValueError, match="unique"):
            list(enumerate_witness_logs(threads))

    def test_rmw_atomicity_filters_witnesses(self):
        # Two swaps on one location: co and rf are forced to agree (the
        # later RMW must read the earlier one), so witnesses where an
        # RMW reads the initial value while being co-second are
        # self-contradictory and must fail even the weakest model.
        threads = ((MemOp("swap", addr=litmus_addr(0), value=1),),
                   (MemOp("swap", addr=litmus_addr(0), value=2),))
        stats = OracleStats()
        # Source == target == RMO: consistent witnesses trivially pass,
        # so no counterexample -- but the filter must have discarded the
        # contradictory interleavings silently rather than crashing.
        assert static_counterexample(threads, RMO, RMO,
                                     stats=stats) is None
        assert stats.witnesses_checked > 0


class TestStaticOracle:
    def test_sb_unfenced_breaks_sc_but_not_tso(self):
        assert static_counterexample(sb_ops(), RMO, SC) is not None
        assert static_counterexample(sb_ops(), RMO, TSO) is None

    def test_sb_storeload_fences_restore_sc(self):
        fenced = insert_fences(sb_ops(), [
            FencePlacement(0, 2, FenceKind.STORE_LOAD),
            FencePlacement(1, 2, FenceKind.STORE_LOAD)])
        assert static_counterexample(fenced, RMO, SC) is None

    def test_sb_storestore_fences_do_not(self):
        fenced = insert_fences(sb_ops(), [
            FencePlacement(0, 2, FenceKind.STORE_STORE),
            FencePlacement(1, 2, FenceKind.STORE_STORE)])
        assert static_counterexample(fenced, RMO, SC) is not None

    def test_mp_needs_both_sides_fenced(self):
        assert static_counterexample(mp_ops(), RMO, SC) is not None
        writer_only = insert_fences(mp_ops(), [
            FencePlacement(0, 1, FenceKind.STORE_STORE)])
        assert static_counterexample(writer_only, RMO, SC) is not None
        both = insert_fences(mp_ops(), [
            FencePlacement(0, 1, FenceKind.STORE_STORE),
            FencePlacement(1, 1, FenceKind.LOAD_LOAD)])
        assert static_counterexample(both, RMO, SC) is None

    def test_lb_needs_loadstore_fences(self):
        assert static_counterexample(lb_ops(), RMO, SC) is not None
        wrong_kind = insert_fences(lb_ops(), [
            FencePlacement(0, 1, FenceKind.LOAD_LOAD),
            FencePlacement(1, 1, FenceKind.LOAD_LOAD)])
        assert static_counterexample(wrong_kind, RMO, SC) is not None
        right = insert_fences(lb_ops(), [
            FencePlacement(0, 1, FenceKind.LOAD_STORE),
            FencePlacement(1, 1, FenceKind.LOAD_STORE)])
        assert static_counterexample(right, RMO, SC) is None

    def test_witness_cap_marks_capped(self):
        stats = OracleStats()
        static_counterexample(sb_ops(), RMO, TSO, max_witnesses=2,
                              stats=stats)
        assert stats.capped


class TestDynamicOracle:
    def test_sb_relaxation_manifests_on_the_machine(self):
        # The padded SB shape actually exhibits store->load reordering
        # dynamically, so the machine sweep alone refutes the empty
        # fence set against SC.
        message = dynamic_counterexample(
            sb_ops(), RMO, SC, skew_sets=((0, 0), (3, 11)), **{
                k: v for k, v in FAST.items() if k != "skew_retries"})
        assert message is not None
        assert "SC ordering violated" in message

    def test_fenced_sb_runs_clean(self):
        fenced = insert_fences(sb_ops(), [
            FencePlacement(0, 2, FenceKind.STORE_LOAD),
            FencePlacement(1, 2, FenceKind.STORE_LOAD)])
        assert dynamic_counterexample(
            fenced, RMO, SC, skew_sets=((0, 0), (3, 11)), **{
                k: v for k, v in FAST.items() if k != "skew_retries"}
        ) is None


class TestSynthesis:
    """Acceptance criteria: known-minimal sets, deterministically."""

    def test_sb_to_sc_needs_two_storeload_fences(self):
        res = synthesize_fences(sb_ops(), SC, seed=0, **FAST)
        assert res.sufficient and not res.capped
        assert sorted((p.thread, p.kind) for p in res.placements) == [
            (0, FenceKind.STORE_LOAD), (1, FenceKind.STORE_LOAD)]

    def test_sb_to_tso_needs_nothing(self):
        res = synthesize_fences(sb_ops(), TSO, seed=0, **FAST)
        assert res.sufficient and res.placements == ()

    def test_mp_to_sc_needs_storestore_plus_loadload(self):
        res = synthesize_fences(mp_ops(), SC, seed=0, **FAST)
        assert res.sufficient
        assert sorted((p.thread, p.kind) for p in res.placements) == [
            (0, FenceKind.STORE_STORE), (1, FenceKind.LOAD_LOAD)]

    def test_lb_to_sc_needs_loadstore_pair(self):
        res = synthesize_fences(lb_ops(), SC, seed=0, **FAST)
        assert res.sufficient
        assert sorted((p.thread, p.kind) for p in res.placements) == [
            (0, FenceKind.LOAD_STORE), (1, FenceKind.LOAD_STORE)]

    def test_deterministic_for_fixed_seed(self):
        a = synthesize_fences(sb_ops(), SC, seed=42, **FAST)
        b = synthesize_fences(sb_ops(), SC, seed=42, **FAST)
        assert a.placements == b.placements
        assert a.oracle_queries == b.oracle_queries
        assert a.witnesses_checked == b.witnesses_checked

    def test_budget_exhaustion_stays_sound(self):
        # A one-query budget can only afford the empty-set check, which
        # fails static; the full set is then reported unconfirmed
        # rather than a guessed reduction being certified.
        res = synthesize_fences(sb_ops(), SC, seed=0, max_queries=1,
                                **FAST)
        assert not res.sufficient
        assert len(res.placements) == res.candidate_gaps

    def test_result_is_a_reproducible_artifact(self):
        res = synthesize_fences(mp_ops(), SC, seed=3, **FAST)
        text = res.describe()
        assert "store-store" in text and "load-load" in text
        assert res.seed == 3
        assert res.oracle_queries <= 200


class TestFenceCost:
    def test_storeload_fences_cost_and_speculation_recovers(self):
        fences = (FencePlacement(0, 2, FenceKind.STORE_LOAD),
                  FencePlacement(1, 2, FenceKind.STORE_LOAD))
        unfenced = fence_cost(sb_ops(), ())
        fenced = fence_cost(sb_ops(), fences)
        od = fence_cost(sb_ops(), fences, spec=SpeculationMode.ON_DEMAND)
        assert fenced > unfenced       # drains behind cold stores stall
        assert od < fenced             # InvisiFence hides the drain

    def test_directional_fences_are_free_on_this_machine(self):
        fences = (FencePlacement(0, 1, FenceKind.STORE_STORE),
                  FencePlacement(1, 1, FenceKind.LOAD_LOAD))
        unfenced = fence_cost(mp_ops(), ())
        fenced = fence_cost(mp_ops(), fences)
        # One decode slot each, no drain: at most a couple of cycles.
        assert fenced - unfenced <= 4


class TestHarnessE13:
    def test_e13_table_shape_and_known_sets(self):
        from repro.harness import e13_fence_synthesis
        result = e13_fence_synthesis(skew_retries=0)
        assert len(result.rows) == 6  # 3 workloads x 2 targets
        by_key = {(r[0], r[1]): r for r in result.rows}
        assert by_key[("sb", "SC")][3] == 2
        assert by_key[("sb", "TSO")][3] == 0
        assert by_key[("mp", "SC")][3] == 2
        assert by_key[("lb", "SC")][3] == 2
        assert "store-load" in by_key[("sb", "SC")][2]
        # The headline: SB's fences cost cycles without speculation,
        # and on-demand speculation claws them back.
        sb_row = by_key[("sb", "SC")]
        assert sb_row[5] > sb_row[4]   # fenced spec=none > unfenced
        assert sb_row[6] < sb_row[5]   # on-demand < spec=none
        assert result.data["sb-sc"]["synthesis"].sufficient

"""Tests for the functional reference interpreter and interleaving explorer."""

import pytest

from repro.isa import Assembler, FenceKind
from repro.isa.interpreter import (
    InterpreterError,
    ReferenceInterpreter,
    explore_interleavings,
)


def single(asm_builder):
    """Run a single-thread program to completion; return the interpreter."""
    interp = ReferenceInterpreter([asm_builder.build()])
    interp.run()
    return interp


class TestSingleThread:
    def test_li_and_add(self):
        asm = Assembler("t").li(1, 4).li(2, 5).add(3, 1, 2)
        interp = single(asm)
        assert interp.threads[0].read_reg(3) == 9

    def test_register_zero_hardwired(self):
        asm = Assembler("t").li(0, 99).mov(1, 0)
        interp = single(asm)
        assert interp.threads[0].read_reg(1) == 0

    def test_store_then_load(self):
        asm = Assembler("t")
        asm.li(1, 0x100).li(2, 77)
        asm.store(2, base=1)
        asm.load(3, base=1)
        interp = single(asm)
        assert interp.threads[0].read_reg(3) == 77
        assert interp.load_word(0x100) == 77

    def test_uninitialised_memory_reads_zero(self):
        asm = Assembler("t").li(1, 0x800).load(2, base=1)
        interp = single(asm)
        assert interp.threads[0].read_reg(2) == 0

    def test_loop_counts_down(self):
        asm = Assembler("t")
        asm.li(1, 5).li(2, 1).li(3, 0)
        asm.label("loop")
        asm.add(3, 3, 2)
        asm.sub(1, 1, 2)
        asm.bne(1, 0, "loop")
        interp = single(asm)
        assert interp.threads[0].read_reg(3) == 5

    def test_atomics_execute(self):
        asm = Assembler("t")
        asm.li(1, 0x100)
        asm.tas(2, base=1)          # r2=0, mem=1
        asm.li(3, 1).li(4, 9)
        asm.cas(5, base=1, expected=3, new=4)   # succeeds: r5=1, mem=9
        asm.li(6, 2)
        asm.fetch_add(7, base=1, addend=6)      # r7=9, mem=11
        interp = single(asm)
        t = interp.threads[0]
        assert t.read_reg(2) == 0
        assert t.read_reg(5) == 1
        assert t.read_reg(7) == 9
        assert interp.load_word(0x100) == 11

    def test_unaligned_access_raises(self):
        asm = Assembler("t").li(1, 0x101).load(2, base=1)
        with pytest.raises(InterpreterError, match="unaligned"):
            single(asm)

    def test_fences_are_noops_under_sc(self):
        asm = Assembler("t").fence(FenceKind.FULL).li(1, 1)
        interp = single(asm)
        assert interp.threads[0].read_reg(1) == 1

    def test_livelock_detection(self):
        asm = Assembler("t")
        asm.label("spin").jmp("spin")
        interp = ReferenceInterpreter([asm.build()])
        with pytest.raises(InterpreterError, match="livelock"):
            interp.run(max_steps=1000)

    def test_initial_memory(self):
        asm = Assembler("t").li(1, 0x100).load(2, base=1)
        interp = ReferenceInterpreter([asm.build()], initial_memory={0x100: 5})
        interp.run()
        assert interp.threads[0].read_reg(2) == 5


class TestMultiThread:
    def _counter_programs(self, n, increments):
        programs = []
        for _ in range(n):
            asm = Assembler("inc")
            asm.li(1, 0x100).li(2, 1).li(3, increments)
            asm.label("loop")
            asm.fetch_add(4, base=1, addend=2)
            asm.sub(3, 3, 2)
            asm.bne(3, 0, "loop")
            programs.append(asm.build())
        return programs

    @pytest.mark.parametrize("policy", ["round-robin", "random"])
    def test_atomic_counter_all_policies(self, policy):
        interp = ReferenceInterpreter(self._counter_programs(4, 10), policy=policy)
        interp.run()
        assert interp.load_word(0x100) == 40

    def test_random_policy_deterministic_by_seed(self):
        def run(seed):
            interp = ReferenceInterpreter(self._counter_programs(3, 5),
                                          policy="random", seed=seed)
            interp.run()
            return [t.steps for t in interp.threads]

        assert run(7) == run(7)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ReferenceInterpreter(self._counter_programs(1, 1), policy="bogus")

    def test_empty_program_list_rejected(self):
        with pytest.raises(ValueError):
            ReferenceInterpreter([])

    def test_step_returns_false_when_done(self):
        asm = Assembler("t").halt()
        interp = ReferenceInterpreter([asm.build()])
        interp.run()
        assert interp.step() is False


class TestExploreInterleavings:
    def test_sb_litmus_sc_outcomes(self):
        """Store buffering under SC: (0,0) must be unreachable."""
        def thread(store_addr, load_addr):
            asm = Assembler("t")
            asm.li(1, store_addr).li(2, load_addr).li(3, 1)
            asm.store(3, base=1)
            asm.load(4, base=2)
            return asm.build()

        programs = [thread(0x100, 0x200), thread(0x200, 0x100)]
        outcomes = explore_interleavings(
            programs,
            observe=lambda threads, mem: (threads[0].read_reg(4),
                                          threads[1].read_reg(4)),
        )
        assert outcomes == frozenset({(0, 1), (1, 0), (1, 1)})

    def test_atomicity_of_rmw(self):
        def thread():
            asm = Assembler("t")
            asm.li(1, 0x100).li(2, 1)
            asm.fetch_add(3, base=1, addend=2)
            return asm.build()

        outcomes = explore_interleavings(
            [thread(), thread()],
            observe=lambda threads, mem: (mem.get(0x100, 0),),
        )
        assert outcomes == frozenset({(2,)})

    def test_single_thread_single_outcome(self):
        asm = Assembler("t").li(1, 7)
        outcomes = explore_interleavings(
            [asm.build()],
            observe=lambda threads, mem: (threads[0].read_reg(1),),
        )
        assert outcomes == frozenset({(7,)})

    def test_pure_spin_has_no_terminal_states(self):
        # A state-preserving loop revisits a memoised state: exploration
        # terminates with no final outcomes rather than diverging.
        asm = Assembler("t")
        asm.label("spin").jmp("spin")
        outcomes = explore_interleavings(
            [asm.build()], observe=lambda threads, mem: ())
        assert outcomes == frozenset()

    def test_runaway_growing_state_detected(self):
        # A loop that keeps mutating state cannot be memoised away; the
        # per-thread step budget catches it.
        asm = Assembler("t")
        asm.li(1, 0).li(2, 1)
        asm.label("grow")
        asm.add(1, 1, 2)
        asm.jmp("grow")
        with pytest.raises(InterpreterError):
            explore_interleavings(
                [asm.build()],
                observe=lambda threads, mem: (),
                max_steps_per_thread=10,
            )

"""Tests for the shared delta-debugging engine (Budget + minimize)."""

import pytest

from repro.verification.minimize import Budget, minimize


class TestBudget:
    def test_spend_counts_and_exhausts(self):
        budget = Budget(3)
        assert not budget.exhausted
        assert budget.spend() and budget.spend() and budget.spend()
        assert budget.exhausted
        assert budget.runs == 3

    def test_refused_spend_does_not_count(self):
        budget = Budget(1)
        assert budget.spend()
        assert not budget.spend()
        assert not budget.spend()
        assert budget.runs == 1

    def test_multi_spend_refused_when_it_would_overrun(self):
        budget = Budget(3)
        assert budget.spend(2)
        assert not budget.spend(2)  # 2 + 2 > 3: refused, not partially spent
        assert budget.runs == 2
        assert budget.spend(1)

    def test_zero_budget_is_born_exhausted(self):
        budget = Budget(0)
        assert budget.exhausted
        assert not budget.spend()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Budget(-1)


def drop_each(state):
    """Canonical deletion pass: try removing every element, reverse
    order so adopted deletions keep pending indices valid."""
    for i in range(len(state) - 1, -1, -1):
        def edit(s, i=i):
            return s[:i] + s[i + 1:] if i < len(s) else None
        yield edit


class TestMinimize:
    def test_shrinks_to_interesting_core(self):
        # "Interesting" = still contains both 3 and 7.
        def keep(s):
            return s if 3 in s and 7 in s else None

        out = minimize((1, 2, 3, 4, 5, 6, 7, 8), [drop_each], keep,
                       Budget(100))
        assert sorted(out) == [3, 7]

    def test_fixpoint_without_budget_exhaustion(self):
        queries = []

        def keep(s):
            queries.append(s)
            return s if 3 in s else None

        out = minimize((3, 1), [drop_each], keep, Budget(1000))
        assert out == (3,)
        # Far fewer oracle calls than the budget: the loop stopped at a
        # fixpoint, not at the cap.
        assert len(queries) < 20

    def test_budget_bounds_oracle_calls_exactly(self):
        calls = []

        def keep(s):
            # An oracle that spends the budget itself, as shrink_case
            # and the synthesizer do.
            if not budget.spend():
                return None
            calls.append(s)
            return None  # never accept: worst case, every edit queried

        budget = Budget(5)
        minimize(tuple(range(50)), [drop_each], keep, budget)
        assert len(calls) == 5

    def test_multiple_passes_run_to_joint_fixpoint(self):
        # Pass 2 can only fire after pass 1 shrinks the state, and the
        # outer loop must then re-run pass 1 on pass 2's result.
        def replace_9_with_3(state):
            for i in range(len(state) - 1, -1, -1):
                def edit(s, i=i):
                    if i >= len(s) or s[i] != 9:
                        return None
                    return s[:i] + (3,) + s[i + 1:]
                yield edit

        def keep(s):
            return s if any(x in (3, 9) for x in s) else None

        out = minimize((1, 9, 2), [drop_each, replace_9_with_3], keep,
                       Budget(100))
        assert out == (3,)

    def test_inapplicable_edits_cost_no_budget(self):
        def no_op_pass(state):
            def edit(s):
                return None  # never applicable
            yield edit

        budget = Budget(10)
        out = minimize((1, 2), [no_op_pass], lambda s: s, budget)
        assert out == (1, 2)
        assert budget.runs == 0

    def test_keep_may_adjust_the_adopted_state(self):
        # The shrinker reskews candidates; the engine must adopt what
        # keep returns, not the raw candidate.
        def keep(s):
            return tuple(x * 10 for x in s) if 0 < len(s) <= 2 else None

        out = minimize((1, 2, 3), [drop_each], keep, Budget(100))
        assert out and all(x % 10 == 0 for x in out)

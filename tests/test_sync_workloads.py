"""Tests for the work-stealing and reader-writer workloads."""

import pytest

from repro.sim.config import ConsistencyModel, SpeculationMode
from repro.system import run_system
from repro.workloads.rwlock import reader_writer
from repro.workloads.tasks import work_stealing
from tests.conftest import small_config


def run_checked(wl, model=ConsistencyModel.TSO, spec=SpeculationMode.NONE):
    config = (small_config(wl.n_threads).with_consistency(model)
              .with_speculation(spec))
    result = run_system(config, wl.programs, wl.initial_memory,
                        check_invariants=True)
    wl.check(result)
    return result


class TestWorkStealing:
    @pytest.mark.parametrize("model", list(ConsistencyModel))
    def test_all_tasks_complete(self, model):
        run_checked(work_stealing(3, tasks_per_thread=5), model=model)

    @pytest.mark.parametrize("spec", list(SpeculationMode))
    def test_correct_under_speculation(self, spec):
        run_checked(work_stealing(3, tasks_per_thread=5),
                    model=ConsistencyModel.SC, spec=spec)

    def test_single_worker_degenerate(self):
        run_checked(work_stealing(1, tasks_per_thread=4))

    def test_stealing_actually_happens(self):
        """With skewed task placement, idle workers must steal."""
        wl = work_stealing(4, tasks_per_thread=6, task_cycles=20)
        # Move all tasks onto worker 0's queue.
        queues = sorted(a for a in wl.initial_memory)
        total = sum(wl.initial_memory.values())
        wl.initial_memory = {queues[0]: total}
        for q in queues[1:]:
            wl.initial_memory[q] = 0
        result = run_checked(wl)
        executed = [result.core_reg(tid, 10) for tid in range(4)]
        assert sum(executed) == total
        assert sum(1 for e in executed if e > 0) >= 2, \
            "no stealing occurred despite a fully skewed queue"

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            work_stealing(0)

    def test_initial_memory_sets_queues(self):
        wl = work_stealing(2, tasks_per_thread=7)
        assert sorted(wl.initial_memory.values()) == [7, 7]


class TestReaderWriter:
    @pytest.mark.parametrize("model", list(ConsistencyModel))
    def test_no_torn_reads(self, model):
        run_checked(reader_writer(2, 1, reader_iterations=6,
                                  writer_iterations=4), model=model)

    @pytest.mark.parametrize("spec", list(SpeculationMode))
    def test_no_torn_reads_speculative(self, spec):
        run_checked(reader_writer(2, 1, reader_iterations=6,
                                  writer_iterations=4),
                    model=ConsistencyModel.SC, spec=spec)

    def test_multiple_writers(self):
        run_checked(reader_writer(2, 2, reader_iterations=5,
                                  writer_iterations=3))

    def test_validation_requires_participants(self):
        with pytest.raises(ValueError):
            reader_writer(0, 1)
        with pytest.raises(ValueError):
            reader_writer(1, 0)

    def test_reader_mismatch_register_is_checked(self):
        """Sanity: the validator would fire on a nonzero mismatch."""
        wl = reader_writer(1, 1, reader_iterations=2, writer_iterations=2)
        result = run_checked(wl)

        class FakeResult:
            def read_word(self, addr):
                return result.read_word(addr)

            def core_reg(self, core, reg):
                if core == 1 and reg == 9:
                    return 3  # pretend the reader saw torn updates
                return result.core_reg(core, reg)

        with pytest.raises(AssertionError, match="torn"):
            wl.check(FakeResult())

"""Unit tests for counters, accumulators, histograms, and the registry."""

import pytest

from repro.sim.stats import Accumulator, Counter, Histogram, StatsRegistry


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_increment_default_and_amount(self):
        c = Counter("c")
        c.increment()
        c.increment(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_reset(self):
        c = Counter("c")
        c.increment(3)
        c.reset()
        assert c.value == 0


class TestAccumulator:
    def test_empty_stats(self):
        a = Accumulator("a")
        assert a.count == 0
        assert a.mean == 0.0
        assert a.minimum is None and a.maximum is None

    def test_tracks_min_max_mean(self):
        a = Accumulator("a")
        for x in (4, 1, 9):
            a.add(x)
        assert a.count == 3
        assert a.minimum == 1
        assert a.maximum == 9
        assert a.mean == pytest.approx(14 / 3)

    def test_reset(self):
        a = Accumulator("a")
        a.add(5)
        a.reset()
        assert a.count == 0 and a.minimum is None


class TestHistogram:
    def test_linear_buckets(self):
        h = Histogram("h", bucket_width=10)
        h.add(5)
        h.add(15)
        h.add(19)
        assert dict(h.items()) == {0: 1, 10: 2}

    def test_log2_buckets(self):
        h = Histogram("h", log2=True)
        for sample in (0, 1, 2, 3, 4, 8):
            h.add(sample)
        # buckets by bit_length: 0->0, 1->1, 2,3->2, 4->3, 8->4
        assert dict(h.items()) == {0: 1, 1: 1, 2: 2, 4: 1, 8: 1}

    def test_mean_is_exact(self):
        h = Histogram("h", bucket_width=100)
        h.add(1)
        h.add(3)
        assert h.mean == 2.0

    def test_weighted_add(self):
        h = Histogram("h")
        h.add(2, weight=5)
        assert h.count == 5
        assert h.total == 10

    def test_percentile(self):
        h = Histogram("h")
        for x in range(1, 101):
            h.add(x)
        assert h.percentile(0.5) == 50
        assert h.percentile(1.0) == 100
        assert h.percentile(0.01) == 1

    def test_percentile_empty(self):
        assert Histogram("h").percentile(0.99) == 0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").add(-1)

    def test_bad_bucket_width_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bucket_width=0)

    def test_percentile_log2_fallback_returns_bucket_edge(self):
        # The final fallback cannot be reached through add() alone (the
        # target rank never exceeds the running count), so simulate
        # drifted state to pin its contract: it must return the lower
        # edge of the last bucket, exactly like the main loop -- not
        # the raw bucket index.
        h = Histogram("h", log2=True)
        h.add(100)     # bucket index 7, lower edge 1 << 6 == 64
        h.count = 2    # drift: rank target now exceeds bucket totals
        assert h.percentile(1.0) == 64

    def test_percentile_log2_fallback_zero_bucket(self):
        h = Histogram("h", log2=True)
        h.add(0)
        h.count = 2
        assert h.percentile(1.0) == 0

    def test_percentile_linear_fallback_scales_by_width(self):
        h = Histogram("h", bucket_width=10)
        h.add(25)      # bucket index 2, lower edge 20
        h.count = 2
        assert h.percentile(1.0) == 20


class TestStatsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = StatsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_conflict_raises(self):
        reg = StatsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.accumulator("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_histogram_param_mismatch_raises(self):
        reg = StatsRegistry()
        first = reg.histogram("h", bucket_width=2)
        with pytest.raises(ValueError, match="bucket_width"):
            reg.histogram("h", bucket_width=4)
        with pytest.raises(ValueError, match="log2"):
            reg.histogram("h", bucket_width=2, log2=True)
        # Matching parameters still fetch the same instance.
        assert reg.histogram("h", bucket_width=2) is first

    def test_names_prefix_filter(self):
        reg = StatsRegistry()
        reg.counter("core.0.busy")
        reg.counter("core.1.busy")
        reg.counter("dir.requests")
        assert reg.names("core.0") == ["core.0.busy"]
        assert len(reg.names()) == 3

    def test_prefix_does_not_match_partial_component(self):
        reg = StatsRegistry()
        reg.counter("core.10.busy")
        reg.counter("core.1.busy")
        assert reg.names("core.1") == ["core.1.busy"]

    def test_value_scalar_views(self):
        reg = StatsRegistry()
        reg.counter("c").increment(3)
        reg.accumulator("a").add(2.5)
        reg.histogram("h").add(7)
        assert reg.value("c") == 3
        assert reg.value("a") == 2.5
        assert reg.value("h") == 1

    def test_sum_ignores_missing(self):
        reg = StatsRegistry()
        reg.counter("a").increment(1)
        reg.counter("b").increment(2)
        assert reg.sum(["a", "b", "missing"]) == 3

    def test_snapshot_and_reset(self):
        reg = StatsRegistry()
        reg.counter("a").increment(4)
        snap = reg.snapshot()
        assert snap == {"a": 4}
        reg.reset()
        assert reg.snapshot() == {"a": 0}

    def test_contains(self):
        reg = StatsRegistry()
        reg.counter("present")
        assert "present" in reg
        assert "absent" not in reg

    def test_report_renders_all_kinds(self):
        reg = StatsRegistry()
        reg.counter("c").increment(1)
        reg.accumulator("a").add(1)
        reg.histogram("h").add(1)
        report = reg.report()
        assert "c" in report and "a" in report and "h" in report

"""Tests for the set-associative cache array and block state."""

import pytest

from repro.coherence.cache import CacheArray, CacheState
from repro.sim.config import CacheConfig


def make_array(size=1024, assoc=2, block=64):
    return CacheArray(CacheConfig(size_bytes=size, assoc=assoc, block_bytes=block))


def block_data(array, fill=0):
    return [fill] * array.words_per_block


class TestLookupInsertRemove:
    def test_miss_returns_none(self):
        assert make_array().lookup(0x100) is None

    def test_insert_then_lookup(self):
        array = make_array()
        array.insert(0x100, CacheState.SHARED, block_data(array))
        block = array.lookup(0x100)
        assert block is not None and block.state is CacheState.SHARED

    def test_lookup_any_addr_in_block(self):
        array = make_array()
        array.insert(0x100, CacheState.SHARED, block_data(array))
        assert array.lookup(0x138) is not None  # same 64B block
        assert array.lookup(0x140) is None      # next block

    def test_double_insert_rejected(self):
        array = make_array()
        array.insert(0x100, CacheState.SHARED, block_data(array))
        with pytest.raises(ValueError):
            array.insert(0x100, CacheState.SHARED, block_data(array))

    def test_insert_wrong_data_length_rejected(self):
        array = make_array()
        with pytest.raises(ValueError):
            array.insert(0x100, CacheState.SHARED, [0] * 3)

    def test_insert_full_set_rejected(self):
        array = make_array(size=1024, assoc=2, block=64)  # 8 sets
        stride = 64 * 8
        array.insert(0x0, CacheState.SHARED, block_data(array))
        array.insert(stride, CacheState.SHARED, block_data(array))
        with pytest.raises(ValueError):
            array.insert(2 * stride, CacheState.SHARED, block_data(array))

    def test_remove(self):
        array = make_array()
        array.insert(0x100, CacheState.MODIFIED, block_data(array))
        removed = array.remove(0x100)
        assert removed.addr == 0x100
        assert array.lookup(0x100) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            make_array().remove(0x100)

    def test_resident_count(self):
        array = make_array()
        array.insert(0x0, CacheState.SHARED, block_data(array))
        array.insert(0x40, CacheState.SHARED, block_data(array))
        assert array.resident_count() == 2

    def test_set_occupancy(self):
        array = make_array(size=1024, assoc=2, block=64)
        stride = 64 * 8
        array.insert(0x0, CacheState.SHARED, block_data(array))
        array.insert(stride, CacheState.SHARED, block_data(array))
        array.insert(0x40, CacheState.SHARED, block_data(array))
        assert array.set_occupancy(0x0) == 2
        assert array.set_occupancy(0x40) == 1


class TestLRU:
    def test_victim_is_least_recently_used(self):
        array = make_array(size=1024, assoc=2, block=64)
        stride = 64 * 8  # same set
        array.insert(0 * stride, CacheState.SHARED, block_data(array))
        array.insert(1 * stride, CacheState.SHARED, block_data(array))
        victim = array.victim_for(2 * stride)
        assert victim.addr == 0

    def test_lookup_touch_updates_recency(self):
        array = make_array(size=1024, assoc=2, block=64)
        stride = 64 * 8
        array.insert(0 * stride, CacheState.SHARED, block_data(array))
        array.insert(1 * stride, CacheState.SHARED, block_data(array))
        array.lookup(0)  # touch: 0 becomes MRU
        assert array.victim_for(2 * stride).addr == stride

    def test_lookup_without_touch_preserves_recency(self):
        array = make_array(size=1024, assoc=2, block=64)
        stride = 64 * 8
        array.insert(0 * stride, CacheState.SHARED, block_data(array))
        array.insert(1 * stride, CacheState.SHARED, block_data(array))
        array.lookup(0, touch=False)
        assert array.victim_for(2 * stride).addr == 0

    def test_victim_none_when_set_has_room(self):
        array = make_array(size=1024, assoc=2, block=64)
        array.insert(0x0, CacheState.SHARED, block_data(array))
        assert array.victim_for(64 * 8) is None

    def test_victim_for_resident_raises(self):
        array = make_array()
        array.insert(0x100, CacheState.SHARED, block_data(array))
        with pytest.raises(ValueError):
            array.victim_for(0x100)

    def test_lru_block_answers_even_with_room(self):
        array = make_array(size=1024, assoc=2, block=64)
        array.insert(0x0, CacheState.SHARED, block_data(array))
        assert array.lru_block(64 * 8).addr == 0x0

    def test_lru_block_none_for_empty_set(self):
        assert make_array().lru_block(0x100) is None

    def test_touch_already_mru_is_noop(self):
        """The MRU fast-out must not disturb the rest of the order."""
        array = make_array(size=1024, assoc=4, block=64)
        stride = 64 * 4  # 4 sets -> same set
        for i in range(4):
            array.insert(i * stride, CacheState.SHARED, block_data(array))
        array.lookup(3 * stride)  # already MRU: fast-out path
        array.lookup(3 * stride)
        assert array.victim_for(4 * stride).addr == 0  # LRU unchanged

    def test_eviction_order_after_mixed_touch_and_insert(self):
        array = make_array(size=1024, assoc=4, block=64)
        stride = 64 * 4
        for i in range(3):
            array.insert(i * stride, CacheState.SHARED, block_data(array))
        array.lookup(0)                  # order now: s, 2s, 0
        array.insert(3 * stride, CacheState.SHARED, block_data(array))
        # Evict in LRU order and verify each step.
        for expected in (stride, 2 * stride, 0, 3 * stride):
            victim = array.lru_block(0)
            assert victim.addr == expected
            array.remove(victim.addr)

    def test_remove_mru_then_recency_still_correct(self):
        array = make_array(size=1024, assoc=4, block=64)
        stride = 64 * 4
        for i in range(3):
            array.insert(i * stride, CacheState.SHARED, block_data(array))
        array.remove(2 * stride)         # remove the MRU block
        array.lookup(stride)             # the new MRU really is stride
        array.lookup(stride)             # fast-out must see it as MRU
        assert array.victim_for(2 * stride) is None  # room again
        array.insert(3 * stride, CacheState.SHARED, block_data(array))
        array.insert(4 * stride, CacheState.SHARED, block_data(array))
        assert array.victim_for(5 * stride).addr == 0

    def test_assoc_one_every_insert_is_both_lru_and_mru(self):
        array = make_array(size=256, assoc=1, block=64)  # 4 sets
        stride = 64 * 4
        array.insert(0, CacheState.SHARED, block_data(array))
        array.lookup(0)  # touch the sole resident block
        assert array.victim_for(stride).addr == 0
        array.remove(0)
        assert array.lru_block(0) is None
        array.insert(stride, CacheState.SHARED, block_data(array))
        assert array.victim_for(2 * stride).addr == stride


class TestBlockState:
    def test_state_permissions(self):
        assert not CacheState.INVALID.readable
        assert CacheState.SHARED.readable and not CacheState.SHARED.writable
        assert CacheState.EXCLUSIVE.writable
        assert CacheState.MODIFIED.writable and CacheState.MODIFIED.readable

    def test_speculation_bits(self):
        array = make_array()
        block = array.insert(0x100, CacheState.MODIFIED, block_data(array))
        assert not block.speculative
        block.spec_read = True
        assert block.speculative
        block.spec_written = True
        block.spec_written_words.add(2)
        block.clear_speculation()
        assert not block.speculative
        assert not block.spec_written_words

    def test_speculative_blocks_listing(self):
        array = make_array()
        a = array.insert(0x100, CacheState.MODIFIED, block_data(array))
        array.insert(0x140, CacheState.SHARED, block_data(array))
        a.spec_read = True
        assert [b.addr for b in array.speculative_blocks()] == [0x100]

    def test_word_index(self):
        array = make_array()
        assert array.word_index(0x100) == 0
        assert array.word_index(0x108) == 1
        assert array.word_index(0x138) == 7

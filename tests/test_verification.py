"""Tests for the execution recorder and consistency checker."""

import pytest

from repro.isa import Assembler
from repro.sim.config import ConsistencyModel, SpeculationMode
from repro.system import System
from repro.verification import (
    AccessRecord,
    ConsistencyViolation,
    ExecutionRecorder,
    check_execution,
    check_forwarding,
    check_per_location_coherence,
    check_read_provenance,
    check_rmw_atomicity,
)
from repro.verification.recorder import AccessKind
from repro.workloads import locks, randmix
from repro.workloads.tasks import work_stealing
from tests.conftest import small_config

X = 0x1000


def record_run(programs, config=None, initial_memory=None):
    system = System(config or small_config(len(programs)), programs,
                    initial_memory)
    recorder = ExecutionRecorder.attach(system)
    result = system.run(check_invariants=True)
    return system, recorder, result


class TestRecorder:
    def test_records_reads_and_writes(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 7)
        asm.store(2, base=1)
        asm.exec_(100)
        asm.load(3, base=1)
        _, recorder, _ = record_run([asm.build()])
        kinds = [r.kind for r in recorder.sorted_log() if r.addr == X]
        assert AccessKind.WRITE in kinds
        assert AccessKind.READ in kinds

    def test_records_rmw_with_loaded_and_written(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 5)
        asm.fetch_add(3, base=1, addend=2)
        _, recorder, _ = record_run([asm.build()])
        rmw = [r for r in recorder.sorted_log()
               if r.kind is AccessKind.RMW][0]
        assert rmw.value == 0
        assert rmw.written == 5

    def test_failed_cas_records_no_write(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 99).li(3, 1)
        asm.cas(4, base=1, expected=2, new=3)  # expected 99, actual 0: fail
        _, recorder, _ = record_run([asm.build()])
        rmw = [r for r in recorder.sorted_log()
               if r.kind is AccessKind.RMW][0]
        assert rmw.written is None
        assert not rmw.is_write

    def test_forwarded_loads_recorded_and_tagged(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 7)
        asm.store(2, base=1)
        asm.load(3, base=1)  # forwarded under TSO: bypasses the L1
        _, recorder, result = record_run([asm.build()])
        assert result.core_reg(0, 3) == 7
        reads = [r for r in recorder.sorted_log()
                 if r.kind is AccessKind.READ and r.addr == X]
        assert len(reads) == 1
        assert reads[0].forwarded
        assert reads[0].value == 7
        assert reads[0].po >= 0
        # Non-forwarded records stay untagged.
        write = [r for r in recorder.sorted_log()
                 if r.kind is AccessKind.WRITE and r.addr == X][0]
        assert not write.forwarded
        assert write.po >= 0

    def test_rolled_back_accesses_discarded(self):
        """Speculative accesses of an aborted episode never enter the
        committed log."""
        from repro.isa import FenceKind
        COLD = 0x20000
        victim = Assembler("victim")
        victim.li(1, X)
        victim.load(3, base=1)
        victim.exec_(300)
        victim.li(1, COLD).li(2, 1)
        victim.store(2, base=1)
        victim.fence(FenceKind.FULL)
        victim.li(1, X)
        victim.load(4, base=1)     # speculative, will be rolled back
        victim.exec_(200)
        attacker = Assembler("attacker")
        attacker.exec_(380)
        attacker.li(1, X).li(2, 55)
        attacker.store(2, base=1)
        config = small_config(2).with_speculation(SpeculationMode.ON_DEMAND)
        _, recorder, result = record_run([victim.build(), attacker.build()],
                                         config=config)
        if result.violations():
            assert recorder.discarded > 0
        check_execution(recorder)

    def test_log_sorted_by_cycle(self):
        wl = locks.lock_contention(2, increments=4, think_cycles=3)
        _, recorder, _ = record_run(wl.programs)
        cycles = [r.cycle for r in recorder.sorted_log()]
        assert cycles == sorted(cycles)


class TestCheckerPositive:
    """Real executions must pass every axiom."""

    @pytest.mark.parametrize("model", list(ConsistencyModel))
    @pytest.mark.parametrize("spec", list(SpeculationMode))
    def test_lock_workload_clean(self, model, spec):
        wl = locks.lock_contention(3, increments=5, think_cycles=3)
        config = (small_config(3).with_consistency(model)
                  .with_speculation(spec))
        _, recorder, result = record_run(wl.programs, config=config)
        wl.check(result)
        report = check_execution(recorder)
        assert report["rmws_checked"] > 0
        assert report["accesses_recorded"] > 0

    def test_work_stealing_clean(self):
        wl = work_stealing(3, tasks_per_thread=5)
        config = small_config(3).with_speculation(SpeculationMode.CONTINUOUS)
        _, recorder, result = record_run(wl.programs, config=config,
                                         initial_memory=wl.initial_memory)
        wl.check(result)
        check_execution(recorder, initial=wl.initial_memory)

    def test_racy_random_mix_clean(self):
        wl = randmix.random_mix(3, n_instructions=80, seed=5, shared_words=4,
                                pct_atomic=0.1)
        config = small_config(3).with_speculation(SpeculationMode.ON_DEMAND)
        _, recorder, _ = record_run(wl.programs, config=config)
        check_execution(recorder)


class TestCheckerNegative:
    """Hand-built corrupt logs must be rejected."""

    def _recorder_with(self, records):
        recorder = ExecutionRecorder()
        recorder.committed = list(records)
        return recorder

    def test_out_of_thin_air_read_detected(self):
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 1, None, False),
            AccessRecord(1, 20, 1, AccessKind.READ, X, 42, None, False),
        ])
        with pytest.raises(ConsistencyViolation, match="no write"):
            check_read_provenance(recorder)

    def test_backwards_read_detected(self):
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 1, None, False),
            AccessRecord(1, 20, 0, AccessKind.WRITE, X, 2, None, False),
            AccessRecord(2, 30, 1, AccessKind.READ, X, 2, None, False),
            AccessRecord(3, 40, 1, AccessKind.READ, X, 1, None, False),
        ])
        with pytest.raises(ConsistencyViolation, match="backwards"):
            check_per_location_coherence(recorder)

    def test_torn_rmw_detected(self):
        # The RMW loaded 0 but a write of 5 precedes it in coherence order.
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 5, None, False),
            AccessRecord(1, 20, 1, AccessKind.RMW, X, 0, 1, False),
        ])
        with pytest.raises(ConsistencyViolation, match="atomicity"):
            check_rmw_atomicity(recorder)

    def test_initial_values_respected(self):
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.READ, X, 9, None, False),
        ])
        check_read_provenance(recorder, initial={X: 9})
        with pytest.raises(ConsistencyViolation):
            check_read_provenance(recorder, initial={X: 1})

    def test_duplicate_values_skip_coherence_check(self):
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 1, None, False),
            AccessRecord(1, 20, 0, AccessKind.WRITE, X, 1, None, False),
        ])
        assert check_per_location_coherence(recorder) == (0, 1)

    def test_skipped_locations_surface_in_report(self):
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 1, None, False),
            AccessRecord(1, 20, 0, AccessKind.WRITE, X, 1, None, False),
            AccessRecord(2, 30, 0, AccessKind.WRITE, X + 8, 2, None, False),
        ])
        report = check_execution(recorder)
        assert report["locations_skipped"] == 1
        assert report["locations_coherence_checked"] == 1

    def test_successful_rmw_advances_observer_horizon(self):
        # Regression: the observer's horizon must advance to the RMW's
        # *own* write, so a later read of the value the RMW consumed is
        # flagged as going backwards.
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 1, None, False),
            AccessRecord(1, 20, 1, AccessKind.RMW, X, 1, 2, False),
            AccessRecord(2, 30, 1, AccessKind.READ, X, 1, None, False),
        ])
        with pytest.raises(ConsistencyViolation, match="backwards"):
            check_per_location_coherence(recorder)

    def test_failed_rmw_does_not_advance_horizon(self):
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 1, None, False),
            AccessRecord(1, 20, 1, AccessKind.RMW, X, 1, None, False),
            AccessRecord(2, 30, 1, AccessKind.READ, X, 1, None, False),
        ])
        check_per_location_coherence(recorder)


class TestForwardingChecks:
    def _recorder_with(self, records):
        recorder = ExecutionRecorder()
        recorder.committed = list(records)
        return recorder

    def test_stale_forward_detected(self):
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 1, None, False, po=1),
            AccessRecord(1, 11, 0, AccessKind.WRITE, X, 2, None, False, po=2),
            AccessRecord(2, 5, 0, AccessKind.READ, X, 1, None, False,
                         po=3, forwarded=True),
        ])
        with pytest.raises(ConsistencyViolation, match="stale"):
            check_forwarding(recorder)

    def test_forward_without_earlier_store_detected(self):
        recorder = self._recorder_with([
            AccessRecord(0, 5, 0, AccessKind.READ, X, 1, None, False,
                         po=1, forwarded=True),
            AccessRecord(1, 10, 0, AccessKind.WRITE, X, 1, None, False, po=2),
        ])
        with pytest.raises(ConsistencyViolation, match="no earlier"):
            check_forwarding(recorder)

    def test_correct_forward_passes(self):
        recorder = self._recorder_with([
            AccessRecord(0, 10, 0, AccessKind.WRITE, X, 1, None, False, po=1),
            AccessRecord(1, 5, 0, AccessKind.READ, X, 1, None, False,
                         po=2, forwarded=True),
        ])
        assert check_forwarding(recorder) == 1

    def test_forwarded_record_without_po_rejected(self):
        recorder = self._recorder_with([
            AccessRecord(0, 5, 0, AccessKind.READ, X, 1, None, False,
                         forwarded=True),
        ])
        with pytest.raises(ValueError, match="program-order"):
            check_forwarding(recorder)


class TestRecorderBookkeeping:
    def test_pending_at_end_raises(self):
        recorder = ExecutionRecorder()
        recorder.on_access(10, 0, AccessKind.WRITE, X, 1, None,
                           speculative=False, po=1)
        recorder.on_access(20, 0, AccessKind.READ, X, 1, None,
                           speculative=True, po=2)
        assert recorder.pending_count == 1
        with pytest.raises(ConsistencyViolation, match="pending"):
            check_execution(recorder)

    def test_pending_fences_counted(self):
        from repro.isa import FenceKind
        recorder = ExecutionRecorder()
        recorder.on_fence(0, 1, FenceKind.FULL, speculative=True)
        assert recorder.pending_count == 1
        recorder.on_commit(0)
        assert recorder.pending_count == 0
        assert len(recorder.fences) == 1

    def test_rollback_discards_pending_fences_silently(self):
        from repro.isa import FenceKind
        recorder = ExecutionRecorder()
        recorder.on_access(10, 0, AccessKind.READ, X, 0, None,
                           speculative=True, po=1)
        recorder.on_fence(0, 2, FenceKind.FULL, speculative=True)
        recorder.on_rollback(0)
        assert recorder.pending_count == 0
        assert recorder.discarded == 1  # fences are not accesses
        assert recorder.fences == []

    def test_single_sort_per_full_check(self):
        # Regression: sorted_log() used to re-sort on every call and
        # writes_to() called it per address; the cache makes a whole
        # check_execution pass cost exactly one sort.
        asm = Assembler("t")
        asm.li(1, X).li(2, 7)
        asm.store(2, base=1)
        asm.exec_(100)
        asm.load(3, base=1)
        _, recorder, _ = record_run([asm.build()])
        assert recorder.sorts_performed == 0
        check_execution(recorder)
        assert recorder.sorts_performed == 1

    def test_sorted_cache_invalidated_on_append(self):
        recorder = ExecutionRecorder()
        recorder.on_access(10, 0, AccessKind.WRITE, X, 1, None,
                           speculative=False, po=1)
        first = recorder.sorted_log()
        assert len(first) == 1
        recorder.on_access(5, 0, AccessKind.WRITE, X, 2, None,
                           speculative=False, po=2)
        second = recorder.sorted_log()
        assert [r.cycle for r in second] == [5, 10]
        assert recorder.sorts_performed == 2

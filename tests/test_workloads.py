"""Workload generators: structure, correctness under every configuration."""

import pytest

from repro.sim.config import ConsistencyModel, SpeculationMode
from repro.system import run_system
from repro.workloads import barriers, locks, producer_consumer, randmix, streaming
from repro.workloads.base import Layout, Workload, fresh_label
from repro.workloads.suite import WORKLOAD_CLASS, standard_suite
from tests.conftest import small_config

MODELS = list(ConsistencyModel)
SPEC_MODES = list(SpeculationMode)


def run_checked(workload, model=ConsistencyModel.TSO,
                spec=SpeculationMode.NONE, n_cores=None):
    config = (small_config(n_cores or workload.n_threads)
              .with_consistency(model).with_speculation(spec))
    result = run_system(config, workload.programs, workload.initial_memory,
                        check_invariants=True)
    workload.check(result)
    return result


class TestLayout:
    def test_words_in_distinct_blocks(self):
        layout = Layout()
        a, b = layout.word(), layout.word()
        assert b - a >= 64

    def test_array_contiguous_and_aligned(self):
        layout = Layout()
        base = layout.array(10)
        assert base % 64 == 0
        nxt = layout.word()
        assert nxt >= base + 80

    def test_padded_array_block_strided(self):
        layout = Layout()
        addrs = layout.padded_array(4)
        assert all(addrs[i + 1] - addrs[i] >= 64 for i in range(3))

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            Layout(base=0x10001)

    def test_fresh_labels_unique(self):
        assert fresh_label("x") != fresh_label("x")


class TestLockWorkloads:
    @pytest.mark.parametrize("lock_kind", ["tas", "ttas", "ticket"])
    @pytest.mark.parametrize("model", MODELS)
    def test_mutual_exclusion(self, lock_kind, model):
        wl = locks.lock_contention(3, increments=6, lock_kind=lock_kind,
                                   think_cycles=5, payload_words=2,
                                   think_loads=2)
        run_checked(wl, model=model)

    @pytest.mark.parametrize("spec", SPEC_MODES)
    def test_mutual_exclusion_with_speculation(self, spec):
        wl = locks.lock_contention(3, increments=6, lock_kind="tas",
                                   think_cycles=5)
        run_checked(wl, model=ConsistencyModel.SC, spec=spec)

    def test_unknown_lock_kind_rejected(self):
        with pytest.raises(ValueError):
            locks.lock_contention(2, lock_kind="mystery")

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            locks.lock_contention(0)

    @pytest.mark.parametrize("spec", SPEC_MODES)
    def test_partitioned(self, spec):
        wl = locks.partitioned_locks(3, increments=8, share_every=4,
                                     think_cycles=5)
        run_checked(wl, spec=spec)

    def test_partitioned_share_every_validated(self):
        with pytest.raises(ValueError):
            locks.partitioned_locks(2, share_every=0)

    def test_programs_have_expected_atomics(self):
        wl = locks.lock_contention(2, increments=3, lock_kind="tas")
        counts = wl.programs[0].static_counts()
        assert counts["atomic"] >= 1
        assert counts["fence"] >= 1


class TestBarrierWorkloads:
    @pytest.mark.parametrize("model", MODELS)
    def test_stencil(self, model):
        wl = barriers.stencil(3, phases=2, cells_per_thread=4,
                              compute_cycles=1)
        run_checked(wl, model=model)

    @pytest.mark.parametrize("spec", SPEC_MODES)
    def test_stencil_speculative(self, spec):
        wl = barriers.stencil(3, phases=2, cells_per_thread=4,
                              compute_cycles=1)
        run_checked(wl, model=ConsistencyModel.SC, spec=spec)

    @pytest.mark.parametrize("spec", SPEC_MODES)
    def test_reduction(self, spec):
        wl = barriers.reduction(3, rounds=2, local_work=3)
        run_checked(wl, spec=spec)


class TestProducerConsumer:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("spec", SPEC_MODES)
    def test_handoffs_correct(self, model, spec):
        wl = producer_consumer.pingpong(n_pairs=1, rounds=4, payload_words=4)
        run_checked(wl, model=model, spec=spec)

    def test_multiple_pairs(self):
        wl = producer_consumer.pingpong(n_pairs=2, rounds=3, payload_words=2)
        run_checked(wl)


class TestStreaming:
    @pytest.mark.parametrize("model", MODELS)
    def test_streaming_writer(self, model):
        wl = streaming.streaming_writer(2, iterations=6, hot_loads=3)
        run_checked(wl, model=model)

    def test_sc_slower_than_tso(self):
        wl = streaming.streaming_writer(2, iterations=10, hot_loads=4)
        sc = run_checked(wl, model=ConsistencyModel.SC)
        tso = run_checked(wl, model=ConsistencyModel.TSO)
        assert sc.cycles > tso.cycles

    def test_speculation_recovers_sc(self):
        wl = streaming.streaming_writer(2, iterations=10, hot_loads=4)
        sc_if = run_checked(wl, model=ConsistencyModel.SC,
                            spec=SpeculationMode.ON_DEMAND)
        tso = run_checked(wl, model=ConsistencyModel.TSO)
        assert sc_if.cycles <= tso.cycles * 1.05


class TestRandmix:
    @pytest.mark.parametrize("spec", SPEC_MODES)
    def test_false_sharing_counts(self, spec):
        wl = randmix.false_sharing(3, iterations=10, fence_every=2)
        run_checked(wl, spec=spec)

    def test_false_sharing_capacity_limit(self):
        with pytest.raises(ValueError):
            randmix.false_sharing(9)

    def test_random_mix_deterministic_by_seed(self):
        a = randmix.random_mix(2, n_instructions=40, seed=3)
        b = randmix.random_mix(2, n_instructions=40, seed=3)
        for pa, pb in zip(a.programs, b.programs):
            assert list(pa) == list(pb)

    def test_random_mix_differs_across_seeds(self):
        a = randmix.random_mix(2, n_instructions=40, seed=3)
        b = randmix.random_mix(2, n_instructions=40, seed=4)
        assert any(list(pa) != list(pb)
                   for pa, pb in zip(a.programs, b.programs))

    def test_random_mix_probability_validation(self):
        with pytest.raises(ValueError):
            randmix.random_mix(1, pct_load=0.9, pct_store=0.9)

    def test_random_mix_runs_under_all_specs(self):
        wl = randmix.random_mix(3, n_instructions=60, seed=11,
                                shared_words=4)
        for spec in SPEC_MODES:
            run_checked(wl, spec=spec)

    @pytest.mark.parametrize("spec", SPEC_MODES)
    def test_read_side_false_sharing(self, spec):
        wl = randmix.read_side_false_sharing(n_readers=2, iterations=10)
        run_checked(wl, spec=spec)

    def test_fence_density_program(self):
        wl = randmix.fence_density_sweep_program(2, work_units=10,
                                                 ops_per_fence=2)
        run_checked(wl)
        counts = wl.programs[0].static_counts()
        assert counts["fence"] == 5


class TestSuite:
    def test_suite_builds_and_classifies(self):
        suite = standard_suite(4, scale=0.2)
        assert set(suite) == set(WORKLOAD_CLASS)
        for name, wl in suite.items():
            assert wl.n_threads == 4

    def test_suite_needs_even_cores(self):
        with pytest.raises(ValueError):
            standard_suite(3)
        with pytest.raises(ValueError):
            standard_suite(1)

    def test_small_scale_suite_runs_correctly(self):
        suite = standard_suite(2, scale=0.1)
        for wl in suite.values():
            run_checked(wl)

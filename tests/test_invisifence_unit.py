"""Unit tests for the InvisiFence controller, checkpoints, and storage model."""

import pytest

from repro.coherence.l1 import ViolationReason
from repro.core.checkpoint import Checkpoint
from repro.core.invisifence import InvisiFenceController, SpecState, SpecTrigger
from repro.core.storage import (
    CHECKPOINT_BITS,
    StorageModel,
    invisifence_storage_bits,
    per_store_storage_bits,
)
from repro.sim.config import CacheConfig, SpeculationConfig, SpeculationMode
from repro.sim.stats import StatsRegistry


def make_controller(**kwargs):
    defaults = dict(mode=SpeculationMode.ON_DEMAND, conservative_window=8,
                    max_rollbacks_before_stall=2)
    defaults.update(kwargs)
    config = SpeculationConfig(**defaults)
    return InvisiFenceController(config, StatsRegistry(), core_id=0)


def ckpt(pc=5, cycle=0, instr=0):
    return Checkpoint([0] * 32, pc, cycle, instr)


class TestLifecycle:
    def test_initial_state(self):
        ctrl = make_controller()
        assert ctrl.state is SpecState.IDLE
        assert not ctrl.active
        assert ctrl.can_speculate()

    def test_enter_activates(self):
        ctrl = make_controller()
        ctrl.enter(ckpt(), SpecTrigger.FENCE)
        assert ctrl.active
        assert not ctrl.can_speculate()
        assert ctrl.trigger is SpecTrigger.FENCE
        assert ctrl.stat_episodes.value == 1

    def test_double_enter_rejected(self):
        ctrl = make_controller()
        ctrl.enter(ckpt(), SpecTrigger.FENCE)
        with pytest.raises(RuntimeError):
            ctrl.enter(ckpt(), SpecTrigger.ATOMIC)

    def test_commit_returns_to_idle(self):
        ctrl = make_controller()
        ctrl.enter(ckpt(cycle=100), SpecTrigger.FENCE)
        ctrl.commit(now=150, footprint_blocks=3)
        assert not ctrl.active
        assert ctrl.stat_commits.value == 1
        assert ctrl.checkpoint is None
        assert ctrl.can_speculate()

    def test_commit_without_active_rejected(self):
        with pytest.raises(RuntimeError):
            make_controller().commit(now=1, footprint_blocks=0)

    def test_violation_returns_checkpoint(self):
        ctrl = make_controller()
        taken = ckpt(pc=9)
        ctrl.enter(taken, SpecTrigger.ATOMIC)
        restored = ctrl.on_violation(ViolationReason.EXTERNAL_INVALIDATION, now=120)
        assert restored is taken
        assert not ctrl.active
        assert ctrl.stat_violations.value == 1

    def test_violation_without_active_rejected(self):
        with pytest.raises(RuntimeError):
            make_controller().on_violation(
                ViolationReason.EXTERNAL_INVALIDATION, now=1)

    def test_violation_reason_stats(self):
        ctrl = make_controller()
        ctrl.enter(ckpt(), SpecTrigger.FENCE)
        ctrl.on_violation(ViolationReason.CAPACITY_EVICTION, now=10)
        assert ctrl.stat_violations_by_reason[
            ViolationReason.CAPACITY_EVICTION].value == 1


class TestConservativeWindow:
    def test_violation_opens_window(self):
        ctrl = make_controller(conservative_window=8)
        ctrl.enter(ckpt(), SpecTrigger.FENCE)
        ctrl.on_violation(ViolationReason.EXTERNAL_INVALIDATION, now=10)
        assert ctrl.conservative
        assert not ctrl.can_speculate()

    def test_window_counts_down_by_instructions(self):
        ctrl = make_controller(conservative_window=3)
        ctrl.enter(ckpt(), SpecTrigger.FENCE)
        ctrl.on_violation(ViolationReason.EXTERNAL_INVALIDATION, now=10)
        for _ in range(3):
            assert ctrl.conservative
            ctrl.note_instruction()
        assert not ctrl.conservative
        assert ctrl.can_speculate()

    def test_repeated_violations_escalate(self):
        ctrl = make_controller(conservative_window=4, max_rollbacks_before_stall=2)
        # First violation at pc=5: base window.
        ctrl.enter(ckpt(pc=5), SpecTrigger.FENCE)
        ctrl.on_violation(ViolationReason.EXTERNAL_INVALIDATION, now=10)
        assert ctrl._conservative_remaining == 4
        for _ in range(4):
            ctrl.note_instruction()
        # Second violation at the same pc: escalated window (scale 2).
        ctrl.enter(ckpt(pc=5), SpecTrigger.FENCE)
        ctrl.on_violation(ViolationReason.EXTERNAL_INVALIDATION, now=20)
        assert ctrl._conservative_remaining == 8

    def test_commit_clears_violation_history(self):
        ctrl = make_controller(conservative_window=4)
        ctrl.enter(ckpt(pc=5), SpecTrigger.FENCE)
        ctrl.on_violation(ViolationReason.EXTERNAL_INVALIDATION, now=10)
        for _ in range(8):
            ctrl.note_instruction()
        ctrl.enter(ckpt(pc=5), SpecTrigger.FENCE)
        ctrl.commit(now=30, footprint_blocks=1)
        # History for pc=5 cleared: next violation gets the base window.
        ctrl.enter(ckpt(pc=5), SpecTrigger.FENCE)
        ctrl.on_violation(ViolationReason.EXTERNAL_INVALIDATION, now=40)
        assert ctrl._conservative_remaining == 4

    def test_enter_during_window_rejected(self):
        ctrl = make_controller(conservative_window=8)
        ctrl.enter(ckpt(), SpecTrigger.FENCE)
        ctrl.on_violation(ViolationReason.EXTERNAL_INVALIDATION, now=10)
        with pytest.raises(RuntimeError):
            ctrl.enter(ckpt(), SpecTrigger.FENCE)


class TestCommitPolicy:
    def test_on_demand_commits_at_drain_when_empty(self):
        ctrl = make_controller()
        ctrl.enter(ckpt(), SpecTrigger.FENCE)
        assert ctrl.should_commit(sb_empty=True, at_drain=True)
        assert not ctrl.should_commit(sb_empty=False, at_drain=True)

    def test_inactive_never_commits(self):
        ctrl = make_controller()
        assert not ctrl.should_commit(sb_empty=True, at_drain=True)

    def test_continuous_commit_interval(self):
        ctrl = make_controller(mode=SpeculationMode.CONTINUOUS,
                               continuous_commit_interval=4)
        ctrl.enter(ckpt(), SpecTrigger.CONTINUOUS)
        assert not ctrl.should_commit(sb_empty=True, at_drain=False)
        for _ in range(4):
            ctrl.note_instruction()
        assert ctrl.should_commit(sb_empty=True, at_drain=False)

    def test_continuous_wants_reentry(self):
        ctrl = make_controller(mode=SpeculationMode.CONTINUOUS)
        assert ctrl.wants_continuous_entry()
        ctrl.enter(ckpt(), SpecTrigger.CONTINUOUS)
        assert not ctrl.wants_continuous_entry()

    def test_on_demand_does_not_want_reentry(self):
        assert not make_controller().wants_continuous_entry()


class TestCheckpoint:
    def test_checkpoint_copies_registers(self):
        regs = [0] * 32
        cp = Checkpoint(regs, pc=3, taken_at_cycle=9, taken_at_instruction=2)
        regs[5] = 99
        assert cp.regs[5] == 0

    def test_storage_bits(self):
        cp = Checkpoint([0] * 32, 0, 0, 0)
        assert cp.storage_bits() == 33 * 64


class TestStorageModel:
    def test_headline_one_kilobyte(self):
        """The paper's claim: ~1 KB for a 64 KB L1."""
        model = StorageModel(CacheConfig(size_bytes=64 * 1024))
        assert 512 <= model.total_bytes <= 1536

    def test_independent_of_depth(self):
        bits = invisifence_storage_bits(CacheConfig())
        # No depth parameter exists; re-evaluate and compare per-store.
        assert bits == invisifence_storage_bits(CacheConfig())

    def test_per_store_scales_linearly(self):
        b8 = per_store_storage_bits(8)
        b16 = per_store_storage_bits(16)
        b32 = per_store_storage_bits(32)
        assert (b16 - b8) == (b32 - b16) / 2
        assert b8 > CHECKPOINT_BITS

    def test_per_store_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            per_store_storage_bits(-1)

    def test_breakdown_sums_to_total(self):
        model = StorageModel(CacheConfig())
        assert sum(model.breakdown_bits().values()) == model.total_bits

    def test_report_renders(self):
        text = StorageModel(CacheConfig()).report()
        assert "total" in text

    def test_sr_sw_scale_with_l1_blocks(self):
        small = invisifence_storage_bits(CacheConfig(size_bytes=16 * 1024))
        large = invisifence_storage_bits(CacheConfig(size_bytes=64 * 1024))
        assert large - small == 2 * (1024 - 256)

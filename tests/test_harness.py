"""Smoke tests for the experiment harness at reduced scale.

The full-scale shape assertions live in ``benchmarks/``; here we check
that every experiment runs, produces rows, renders, and carries the raw
data the benchmarks rely on.
"""

import pytest

from repro.harness import (
    all_experiments,
    e1_ordering_breakdown,
    e2_transparency,
    e3_modes,
    e4_violations,
    e6_storage,
    e7_commit_arbitration,
    e8_store_buffer,
    e9_scaling,
    e10_system_parameters,
)


def test_registry_complete():
    registry = all_experiments()
    assert list(registry) == [f"E{i}" for i in range(1, 16)]


def test_e1_small():
    result = e1_ordering_breakdown(n_cores=2, scale=0.1)
    assert len(result.rows) == 7 * 3  # workloads x models
    assert "ordering" in result.render()
    for bd in result.data.values():
        bd.check_conservation()


def test_e2_small():
    result = e2_transparency(n_cores=2, scale=0.1)
    assert len(result.rows) == 7
    for name, cycles in result.data.items():
        assert set(cycles) == {"base-sc", "base-tso", "base-rmo",
                               "if-sc", "if-tso", "if-rmo"}
        assert all(c > 0 for c in cycles.values())


def test_e3_small():
    result = e3_modes(n_cores=2, scale=0.1)
    assert len(result.rows) == 7 * 2


def test_e4_small():
    result = e4_violations(n_cores=2)
    assert ("granularity", "block") in result.data
    assert ("l1_kb", 64) in result.data


def test_e6_small():
    result = e6_storage(n_cores=2, scale=0.1)
    assert result.data["invisifence_bytes"] > 0
    ratios = [row[3] for row in result.rows]
    assert ratios == sorted(ratios)  # monotone in depth


def test_e7_small():
    result = e7_commit_arbitration(scale=0.1, core_counts=(2,))
    assert len(result.rows) == 2


def test_e8_small():
    result = e8_store_buffer(n_cores=2, scale=0.1)
    assert len(result.rows) == 6


def test_e9_small():
    result = e9_scaling(core_counts=(2,), scale=0.1)
    assert len(result.rows) == 2


def test_e10_static():
    result = e10_system_parameters()
    text = result.render()
    assert "MESI" in text and "DRAM" in text
    assert result.data["config"].n_cores == 8


def test_csv_export(tmp_path):
    result = e10_system_parameters()
    csv_text = result.to_csv()
    assert csv_text.splitlines()[0] == "parameter,value"
    path = result.write_csv(str(tmp_path))
    assert path.endswith("e10.csv")
    with open(path) as handle:
        assert handle.read() == csv_text


def test_ablation_registry():
    from repro.harness import all_ablations
    assert list(all_ablations()) == ["A1", "A2", "A3", "A4", "A5", "A6"]


def test_a6_small():
    from repro.harness.ablations import a6_energy
    result = a6_energy(n_cores=2, scale=0.1)
    assert len(result.rows) == 6
    for (name, label), (run, report) in result.data.items():
        assert report.total > 0


def test_a2_small():
    from repro.harness import a2_coalescing
    result = a2_coalescing(n_cores=2, scale=0.1)
    assert len(result.rows) == 4


def test_a3_small():
    from repro.harness import a3_rollback_strategy
    result = a3_rollback_strategy(n_cores=2)
    assert len(result.rows) == 4


def test_a4_small():
    from repro.harness import a4_store_prefetch
    result = a4_store_prefetch(n_cores=2, depths=(0, 4))
    assert len(result.rows) == 2


def test_a5_small():
    from repro.harness import a5_sync_rich_workloads
    result = a5_sync_rich_workloads(n_cores=2)
    assert len(result.rows) == 2


def test_compare_configs_forwards_check():
    from repro.harness import compare_configs
    from repro.isa.program import Assembler
    from repro.workloads.base import Workload
    from tests.conftest import small_config

    def always_fails(result):
        raise AssertionError("validation ran")

    asm = Assembler("t0")
    asm.li(1, 0x1_0000).store(1, base=1, offset=0)
    asm.halt()
    workload = Workload("check-probe", [asm.build()], {},
                        validate=always_fails)
    configs = {"only": small_config(1)}

    with pytest.raises(AssertionError, match="validation ran"):
        compare_configs(workload, configs)  # check defaults to True
    results = compare_configs(workload, configs, check=False)
    assert results["only"].cycles > 0

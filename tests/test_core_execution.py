"""Single-core execution tests: semantics, timing, stall accounting."""

import pytest

from dataclasses import replace

from repro.cpu.core import StallCause
from repro.isa import Assembler, FenceKind
from repro.sim.config import ConsistencyModel
from repro.system import System
from tests.conftest import small_config

X, Y = 0x1000, 0x2000


def run_one(asm, model=ConsistencyModel.TSO, config=None, initial_memory=None):
    config = (config or small_config(1)).with_consistency(model)
    system = System(config, [asm.build()], initial_memory)
    result = system.run(check_invariants=True)
    return system, result


class TestSemantics:
    def test_alu_program(self):
        asm = Assembler("t")
        asm.li(1, 6).li(2, 7).mul(3, 1, 2).addi(4, 3, 8)
        _, result = run_one(asm)
        assert result.core_reg(0, 3) == 42
        assert result.core_reg(0, 4) == 50

    def test_store_load_roundtrip(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 99)
        asm.store(2, base=1)
        asm.load(3, base=1)
        _, result = run_one(asm)
        assert result.core_reg(0, 3) == 99
        assert result.read_word(X) == 99

    def test_loop_execution(self):
        asm = Assembler("t")
        asm.li(1, 10).li(2, 1).li(3, 0)
        asm.label("loop")
        asm.add(3, 3, 2)
        asm.sub(1, 1, 2)
        asm.bne(1, 0, "loop")
        _, result = run_one(asm)
        assert result.core_reg(0, 3) == 10

    def test_matches_reference_interpreter(self):
        """The timing core and the golden model agree on final state."""
        from repro.isa.interpreter import ReferenceInterpreter

        asm = Assembler("t")
        asm.li(1, X).li(2, 5)
        asm.store(2, base=1)
        asm.fetch_add(3, base=1, addend=2)
        asm.load(4, base=1)
        asm.slt(5, 2, 4)
        program = asm.build()

        interp = ReferenceInterpreter([program])
        interp.run()
        _, result = run_one_program(program)
        for reg in range(1, 6):
            assert result.core_reg(0, reg) == interp.threads[0].read_reg(reg)
        assert result.read_word(X) == interp.load_word(X)


def run_one_program(program, model=ConsistencyModel.TSO):
    config = small_config(1).with_consistency(model)
    system = System(config, [program])
    return system, system.run(check_invariants=True)


class TestTiming:
    def test_exec_consumes_cycles(self):
        asm = Assembler("t").exec_(100)
        _, result = run_one(asm)
        assert result.cycles >= 100

    def test_alu_is_single_cycle(self):
        asm = Assembler("t")
        for _ in range(10):
            asm.addi(1, 1, 1)
        _, result = run_one(asm)
        assert result.cycles < 20

    def test_load_hit_fast_after_warmup(self):
        asm = Assembler("t")
        asm.li(1, X)
        asm.load(2, base=1)   # cold: DRAM
        asm.load(3, base=1)   # hit
        system, result = run_one(asm)
        hit_counter = system.stats.value("l1.0.hits")
        assert hit_counter >= 1

    def test_store_buffer_hides_store_latency_tso(self):
        """A store miss followed by ALU work should not stall TSO."""
        asm = Assembler("t")
        asm.li(1, X).li(2, 3)
        asm.store(2, base=1)
        for _ in range(5):
            asm.addi(3, 3, 1)
        _, result = run_one(asm, ConsistencyModel.TSO)
        cfg = small_config(1)
        # ALU work proceeds during the drain; runtime ~ DRAM latency,
        # not DRAM + ALU serialised... just assert no sc-order stall.
        assert result.stall_cycles(StallCause.SC_ORDER) == 0

    def test_sc_load_waits_for_store(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, Y).li(3, 5)
        asm.store(3, base=1)
        asm.load(4, base=2)
        _, result = run_one(asm, ConsistencyModel.SC)
        assert result.stall_cycles(StallCause.SC_ORDER) > 0

    def test_tso_load_does_not_wait_for_store(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, Y).li(3, 5)
        asm.store(3, base=1)
        asm.load(4, base=2)
        _, result = run_one(asm, ConsistencyModel.TSO)
        assert result.stall_cycles(StallCause.SC_ORDER) == 0

    def test_full_fence_drains_under_tso(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 5)
        asm.store(2, base=1)
        asm.fence(FenceKind.FULL)
        asm.load(3, base=1)
        _, result = run_one(asm, ConsistencyModel.TSO)
        assert result.stall_cycles(StallCause.FENCE) > 0

    def test_store_store_fence_free_under_rmo(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 5)
        asm.store(2, base=1)
        asm.fence(FenceKind.STORE_STORE)
        asm.load(3, base=1)
        _, result = run_one(asm, ConsistencyModel.RMO)
        assert result.stall_cycles(StallCause.FENCE) == 0

    def test_atomic_drains_buffer(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, Y).li(3, 5)
        asm.store(3, base=1)
        asm.fetch_add(4, base=2, addend=3)
        _, result = run_one(asm, ConsistencyModel.RMO)
        assert result.stall_cycles(StallCause.ATOMIC) > 0

    def test_atomic_same_address_dependence_not_ordering(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 5)
        asm.store(2, base=1)
        asm.tas(3, base=1)  # same address: true dependence
        _, result = run_one(asm, ConsistencyModel.RMO)
        assert result.stall_cycles(StallCause.ATOMIC_DEP) > 0
        assert result.ordering_stall_cycles() == 0

    def test_sb_full_stalls(self):
        config = small_config(1)
        config = replace(config, core=replace(config.core, store_buffer_entries=1))
        asm = Assembler("t")
        asm.li(1, X)
        for i in range(4):
            asm.li(2, i)
            asm.store(2, base=1, offset=0)
            asm.li(1, X + 0x100 * (i + 1))
        _, result = run_one(asm, ConsistencyModel.TSO, config=config)
        assert result.stall_cycles(StallCause.SB_FULL) > 0

    def test_halt_waits_for_drain(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 5)
        asm.store(2, base=1)
        _, result = run_one(asm)
        # The store must be globally performed at halt.
        assert result.read_word(X) == 5
        assert result.stall_cycles(StallCause.HALT_DRAIN) > 0


class TestForwarding:
    def test_tso_forwards_from_buffer(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 7)
        asm.store(2, base=1)
        asm.load(3, base=1)   # forwarded, no fence needed
        system, result = run_one(asm, ConsistencyModel.TSO)
        assert result.core_reg(0, 3) == 7
        assert system.stats.value("core.0.store_forwards") == 1

    def test_sc_never_forwards(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 7)
        asm.store(2, base=1)
        asm.load(3, base=1)
        system, result = run_one(asm, ConsistencyModel.SC)
        assert result.core_reg(0, 3) == 7
        assert system.stats.value("core.0.store_forwards") == 0

    def test_forwarded_value_is_youngest(self):
        asm = Assembler("t")
        asm.li(1, X)
        asm.li(2, 1).store(2, base=1)
        asm.li(2, 2).store(2, base=1)
        asm.load(3, base=1)
        _, result = run_one(asm, ConsistencyModel.TSO)
        assert result.core_reg(0, 3) == 2


class TestAccounting:
    def test_cycle_conservation(self):
        """Every core-cycle is attributed to exactly one category."""
        from repro.analysis.breakdown import system_breakdown

        asm = Assembler("t")
        asm.li(1, X).li(2, 5)
        asm.store(2, base=1)
        asm.fence(FenceKind.FULL)
        asm.load(3, base=1)
        asm.exec_(20)
        _, result = run_one(asm)
        breakdown = system_breakdown(result)
        breakdown.check_conservation()

    def test_instruction_count(self):
        asm = Assembler("t").li(1, 1).li(2, 2).add(3, 1, 2)
        _, result = run_one(asm)
        # HALT is a pseudo-instruction and is not counted.
        assert result.total_instructions() == 3

"""Property-based tests (hypothesis) on core data structures & invariants."""

from hypothesis import given, settings, strategies as st

from repro.coherence.cache import CacheArray, CacheState
from repro.cpu.storebuffer import StoreBuffer
from repro.isa import Assembler
from repro.isa.interpreter import ReferenceInterpreter
from repro.isa import semantics
from repro.sim.config import CacheConfig, ConsistencyModel, SpeculationMode
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram
from repro.system import run_system
from repro.workloads import randmix
from tests.conftest import small_config

# ------------------------------------------------------------------ engine

@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=50))
def test_engine_dispatches_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


# ----------------------------------------------------------------- numbers

@given(st.integers(min_value=-2**70, max_value=2**70))
def test_word_signed_roundtrip(value):
    word = semantics.to_word(value)
    assert 0 <= word < 2 ** 64
    assert semantics.to_word(semantics.to_signed(word)) == word


# --------------------------------------------------------------- histogram

@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=200),
       st.integers(min_value=1, max_value=64))
def test_histogram_count_sum_mean(samples, width):
    hist = Histogram("h", bucket_width=width)
    for s in samples:
        hist.add(s)
    assert hist.count == len(samples)
    assert hist.total == sum(samples)
    assert hist.mean == sum(samples) / len(samples)
    assert sum(c for _, c in hist.items()) == len(samples)


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=100))
def test_histogram_percentile_monotone(samples):
    hist = Histogram("h", log2=True)
    for s in samples:
        hist.add(s)
    p50, p90, p100 = (hist.percentile(f) for f in (0.5, 0.9, 1.0))
    assert p50 <= p90 <= p100


# ------------------------------------------------------------- store buffer

_sb_ops = st.lists(
    st.tuples(st.sampled_from(["enq", "pop", "squash", "commit"]),
              st.integers(min_value=0, max_value=7),   # addr index
              st.booleans()),                          # speculative
    max_size=60,
)


@given(_sb_ops)
def test_store_buffer_fifo_and_spec_suffix(ops):
    """Under any op sequence keeping spec entries a suffix, the buffer
    preserves FIFO order and never exceeds capacity."""
    sb = StoreBuffer(4)
    shadow = []
    seq = 0
    for op, idx, spec in ops:
        if op == "enq":
            # Keep the spec-suffix discipline the core guarantees.
            if shadow and shadow[-1][2] and not spec:
                continue
            ok = sb.enqueue(0x100 + 8 * idx, seq, spec, now=seq)
            if ok:
                shadow.append((0x100 + 8 * idx, seq, spec))
            assert ok == (len(shadow) <= 4 and shadow and shadow[-1][1] == seq)
            seq += 1
        elif op == "pop" and not sb.empty:
            head = sb.head()
            sb.pop_head(head)
            expect = shadow.pop(0)
            assert (head.addr, head.value) == expect[:2]
        elif op == "squash":
            squashed = sb.squash_speculative()
            expected = 0
            while shadow and shadow[-1][2]:
                shadow.pop()
                expected += 1
            assert squashed == expected
        elif op == "commit":
            sb.commit_speculative()
            shadow = [(a, v, False) for a, v, _ in shadow]
        assert len(sb) == len(shadow) <= 4
    # forwarding returns the youngest matching value
    for addr in {a for a, _, _ in shadow}:
        youngest = [v for a, v, _ in shadow if a == addr][-1]
        assert sb.forward_value(addr) == youngest


# -------------------------------------------------------------------- LRU

@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                max_size=100))
def test_cache_lru_never_overflows_and_evicts_lru(accesses):
    config = CacheConfig(size_bytes=512, assoc=2, block_bytes=64)  # 4 sets
    array = CacheArray(config)
    recency = {}
    clock = 0
    for idx in accesses:
        addr = idx * 64
        clock += 1
        if array.lookup(addr) is None:
            victim = array.victim_for(addr)
            if victim is not None:
                # Victim must be the least recently used in its set.
                same_set = [a for a in recency
                            if config.set_index(a) == config.set_index(addr)]
                assert victim.addr == min(same_set, key=recency.get)
                array.remove(victim.addr)
                del recency[victim.addr]
            array.insert(addr, CacheState.SHARED, [0] * 8)
        recency[addr] = clock
        occupancies = {}
        for block in array:
            s = config.set_index(block.addr)
            occupancies[s] = occupancies.get(s, 0) + 1
        assert all(v <= config.assoc for v in occupancies.values())


# --------------------------------------------------------------------- mesh

@given(st.integers(min_value=2, max_value=20),
       st.data())
def test_mesh_routes_are_minimal_and_deterministic(n_nodes, data):
    from repro.interconnect.mesh import Mesh
    mesh = Mesh(Simulator(), n_nodes, __import__("repro.sim.stats",
                fromlist=["StatsRegistry"]).StatsRegistry())
    src = data.draw(st.integers(0, n_nodes - 1))
    dst = data.draw(st.integers(0, n_nodes - 1))
    path = mesh.route(src, dst)
    (x0, y0), (x1, y1) = mesh.coordinates(src), mesh.coordinates(dst)
    manhattan = abs(x1 - x0) + abs(y1 - y0)
    assert len(path) == manhattan + 1        # minimal
    assert path == mesh.route(src, dst)      # deterministic
    assert path[0] == (x0, y0) and path[-1] == (x1, y1)
    for (ax, ay), (bx, by) in zip(path, path[1:]):
        assert abs(ax - bx) + abs(ay - by) == 1  # unit hops


# ------------------------------------------- timing sim vs reference model

@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=0, max_value=2**31), st.integers(2, 3),
       st.sampled_from(list(ConsistencyModel)),
       st.sampled_from(list(SpeculationMode)))
def test_private_random_mix_matches_reference(seed, n_threads, model, spec):
    """With zero shared data, the timing simulator's final memory and
    registers must equal the functional golden model's, under every
    consistency model and speculation mode."""
    workload = randmix.random_mix(
        n_threads, n_instructions=60, seed=seed,
        private_words=16, shared_words=0,
        pct_load=0.35, pct_store=0.35, pct_atomic=0.05, pct_fence=0.05,
    )
    config = (small_config(n_threads).with_consistency(model)
              .with_speculation(spec))
    result = run_system(config, workload.programs, check_invariants=True)

    ref = ReferenceInterpreter(workload.programs)
    ref.run()
    for tid in range(n_threads):
        for reg in (2, 3):  # value + checksum registers
            assert result.core_reg(tid, reg) == ref.threads[tid].read_reg(reg)
    for addr in ref.memory:
        assert result.read_word(addr) == ref.memory[addr]


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=0, max_value=2**31))
def test_shared_atomic_counters_always_sum(seed):
    """Atomic increments never get lost under contention + speculation."""
    import random
    rng = random.Random(seed)
    n_threads = rng.choice([2, 3, 4])
    increments = rng.randint(3, 12)
    asms = []
    for tid in range(n_threads):
        asm = Assembler(f"t{tid}")
        asm.li(1, 0x1000).li(2, 1)
        for _ in range(increments):
            asm.fetch_add(3, base=1, addend=2)
            asm.exec_(rng.randint(1, 6))
        asms.append(asm.build())
    spec = rng.choice(list(SpeculationMode))
    config = small_config(n_threads).with_speculation(spec)
    result = run_system(config, asms, check_invariants=True)
    assert result.read_word(0x1000) == n_threads * increments


@settings(deadline=None, max_examples=8)
@given(st.integers(min_value=0, max_value=2**31))
def test_shared_random_mix_runs_and_preserves_swmr(seed):
    """Racy mixes may be nondeterministic in values, but must always
    terminate, keep coherence invariants, and have atomic counters
    consistent across engines' possible outcomes."""
    workload = randmix.random_mix(
        3, n_instructions=80, seed=seed, private_words=8, shared_words=4,
        pct_load=0.3, pct_store=0.3, pct_atomic=0.1, pct_fence=0.1,
    )
    for spec in (SpeculationMode.NONE, SpeculationMode.ON_DEMAND):
        config = small_config(3).with_speculation(spec)
        run_system(config, workload.programs, check_invariants=True)


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=0, max_value=2**31),
       st.sampled_from(list(ConsistencyModel)),
       st.sampled_from(list(SpeculationMode)))
def test_recorded_executions_satisfy_consistency_axioms(seed, model, spec):
    """Every recorded racy execution -- any model, any speculation mode --
    satisfies read provenance, per-location coherence, and RMW
    atomicity (the repro.verification axioms)."""
    from repro.system import System
    from repro.verification import ExecutionRecorder, check_execution

    workload = randmix.random_mix(
        3, n_instructions=70, seed=seed, private_words=8, shared_words=4,
        pct_load=0.3, pct_store=0.3, pct_atomic=0.1, pct_fence=0.08,
    )
    config = small_config(3).with_consistency(model).with_speculation(spec)
    system = System(config, workload.programs)
    recorder = ExecutionRecorder.attach(system)
    system.run(check_invariants=True)
    report = check_execution(recorder)
    assert report["accesses_recorded"] > 0

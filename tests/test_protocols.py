"""Distributed-protocol workloads and their safety checkers.

Positive direction: election, gossip, and replicated-log runs validate
clean and under chaos (crash, pause-resume, crash composed with link
drops).  Negative direction: each checker catches a doctored violation
-- a checker that cannot fail would make the whole E14 matrix
vacuous.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    CRASH,
    PAUSE,
    FaultPlan,
    NodeFault,
    NodeFaultPlan,
    Watchdog,
)
from repro.sim.config import SystemConfig
from repro.system import System
from repro.verification.protocols import ProtocolViolation
from repro.workloads.protocols import (
    ELECTION_POLL_TRIES,
    gossip,
    leader_election,
    protocol_suite,
    replicated_log,
)


def _run(workload, node_plan=None, fault_plan=None):
    system = System(SystemConfig(n_cores=len(workload.programs)),
                    workload.programs, workload.initial_memory,
                    fault_plan=fault_plan, node_plan=node_plan)
    return system.run(watchdog=Watchdog(system))


CHAOS_PLANS = {
    "clean": (None, None),
    "crash": (NodeFaultPlan(faults=(NodeFault(2, CRASH, 400),)), None),
    "pause": (NodeFaultPlan(faults=(NodeFault(1, PAUSE, 300, 600),)), None),
    "crash+drops": (NodeFaultPlan(faults=(NodeFault(3, CRASH, 350),)),
                    FaultPlan(seed=5, drop_prob=0.05)),
}


class _Doctored:
    """A result proxy with selected memory words overridden -- the
    falsified execution the checkers must catch."""

    def __init__(self, result, overrides):
        self._result = result
        self._overrides = overrides
        self.cores = result.cores

    def read_word(self, addr):
        if addr in self._overrides:
            return self._overrides[addr]
        return self._result.read_word(addr)


# ------------------------------------------------------------- positive

@pytest.mark.parametrize("scenario", sorted(CHAOS_PLANS))
@pytest.mark.parametrize("factory",
                         [leader_election, gossip, replicated_log])
def test_protocols_validate_under_chaos(factory, scenario):
    workload = factory(4)
    node_plan, fault_plan = CHAOS_PLANS[scenario]
    result = _run(workload, node_plan, fault_plan)
    report = workload.checker(result, **workload.protocol_params)
    assert report.checked > 0
    workload.check(result)        # the validate hook agrees


def test_protocol_suite_shapes():
    suite = protocol_suite(4)
    assert [wl.name for wl in suite] == \
        ["leader-election-4x4", "gossip-4x6", "replicated-log-4x3"]
    for wl in suite:
        assert len(wl.programs) == 4
        assert callable(wl.checker)
    assert ELECTION_POLL_TRIES >= 1


# ------------------------------------------------------------- negative

def test_election_checker_catches_split_brain():
    workload = leader_election(4)
    result = _run(workload)
    params = workload.protocol_params
    # Doctor a second win record for term 0 on every core: whoever
    # genuinely won, someone else now also claims the crown.
    overrides = {params["wins"][tid] + 0: 1 for tid in range(4)}
    with pytest.raises(ProtocolViolation, match="split brain"):
        workload.checker(_Doctored(result, overrides), **params)


def test_election_checker_catches_conflicting_observation():
    workload = leader_election(4)
    result = _run(workload)
    params = workload.protocol_params
    claim = result.read_word(params["claims"][0])
    bogus = 1 if claim != 1 else 2
    overrides = {params["views"][0] + 0: bogus}
    with pytest.raises(ProtocolViolation, match="observed leader"):
        workload.checker(_Doctored(result, overrides), **params)


def test_gossip_checker_catches_lost_convergence():
    workload = gossip(4)
    result = _run(workload)
    params = workload.protocol_params
    overrides = {params["known"][1]: params["rumors"][1]}  # never learned
    with pytest.raises(ProtocolViolation, match="converged to"):
        workload.checker(_Doctored(result, overrides), **params)


def test_gossip_checker_catches_out_of_thin_air_rumor():
    workload = gossip(4)
    result = _run(workload)
    params = workload.protocol_params
    overrides = {params["known"][2]: 0xFF00}
    with pytest.raises(ProtocolViolation, match="out of thin air"):
        workload.checker(_Doctored(result, overrides), **params)


def test_log_checker_catches_conflicting_claims():
    workload = replicated_log(4)
    result = _run(workload)
    params = workload.protocol_params
    # Doctor core 0's first journal entry to claim the same index as
    # core 1's first entry (both cores commit all appends in a clean
    # run, so both journals are populated).
    j0, j1 = params["journals"][0], params["journals"][1]
    overrides = {j0: result.read_word(j1)}
    with pytest.raises(ProtocolViolation, match="agreement broken"):
        workload.checker(_Doctored(result, overrides), **params)


def test_log_checker_catches_value_mismatch():
    workload = replicated_log(4)
    result = _run(workload)
    params = workload.protocol_params
    index = result.read_word(params["journals"][0]) - 1
    assert index >= 0
    overrides = {params["log"] + 8 * index: 2001}   # someone else's value
    with pytest.raises(ProtocolViolation, match="but the log holds"):
        workload.checker(_Doctored(result, overrides), **params)


def test_log_checker_catches_orphan_live_write():
    workload = replicated_log(4)
    result = _run(workload)
    params = workload.protocol_params
    # Erase core 0's journal and commit count: its log writes are now
    # orphans from a *live* core, which is a lost-claim violation.
    overrides = {params["ncommits"][0]: 0}
    for k in range(2 * params["appends"]):
        overrides[params["journals"][0] + 8 * k] = 0
    with pytest.raises(ProtocolViolation, match="no matching journal"):
        workload.checker(_Doctored(result, overrides), **params)

"""Smoke tests for examples/run_experiments.py (CLI + shared scheduler).

These keep the quick-scale CLI path under tier-1 coverage: flag
parsing, the cross-experiment scheduler, table building, CSV export,
and the serial/parallel equivalence guarantee.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def cli():
    spec = importlib.util.spec_from_file_location(
        "run_experiments", _ROOT / "examples" / "run_experiments.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _tables_only(output: str) -> str:
    """CLI output with timing lines stripped (wall times vary)."""
    return "\n".join(
        line for line in output.splitlines()
        if not line.startswith("sweep:") and "s)" not in line)


def test_unknown_experiment_fails(cli, capsys):
    assert cli.main(["E99"]) == 1
    assert "unknown experiment" in capsys.readouterr().out


def test_bad_jobs_fails(cli, capsys):
    assert cli.main(["E10", "--jobs", "0"]) == 1
    assert "--jobs" in capsys.readouterr().out


def test_e10_static_table(cli, capsys):
    assert cli.main(["E10"]) == 0
    out = capsys.readouterr().out
    assert "Simulated system parameters" in out
    assert "MESI" in out


def test_quick_e2_serial_and_parallel_match(cli, capsys):
    assert cli.main(["E2", "--quick", "--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert cli.main(["E2", "--quick", "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert "[E2] Normalised runtime" in serial
    assert _tables_only(serial) == _tables_only(parallel)


def test_quick_sweep_dedups_across_experiments(cli, capsys):
    # E3's continuous half is exactly E6's probe grid: the shared
    # scheduler must report the deduplication.
    assert cli.main(["E3", "E6", "--quick", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "(7 deduplicated" in out
    assert "[E3]" in out and "[E6]" in out


def test_csv_export(cli, capsys, tmp_path):
    assert cli.main(["E10", "--csv", str(tmp_path)]) == 0
    assert (tmp_path / "e10.csv").exists()

"""Unit tests for the pluggable directory home map.

The home map is the one function both engines must agree on: the serial
oracle and every shard worker route each block address through it, so it
has to be process-stable (no salted hashing), well balanced (no home
becomes a hot spot by construction), and remap-stable (growing the ring
moves only the minimum share of addresses).
"""

import pickle

from repro.coherence.homemap import (
    ConsistentHashHomeMap,
    IdentityHomeMap,
    build_home_map,
)

BLOCK = 64


def _blocks(count, stride=BLOCK, base=0x1_0000):
    return [base + i * stride for i in range(count)]


def test_identity_map_homes_everything_to_first_node():
    hm = IdentityHomeMap(first_node=8)
    for addr in _blocks(100):
        assert hm.home_index(addr) == 0
        assert hm.node_id(addr) == 8
    assert hm.n_homes == 1


def test_build_home_map_dispatches_on_home_count():
    assert isinstance(build_home_map(1, 4), IdentityHomeMap)
    hm = build_home_map(4, 16)
    assert isinstance(hm, ConsistentHashHomeMap)
    assert hm.n_homes == 4
    assert hm.first_node == 16


def test_consistent_hash_node_ids_are_contiguous_after_cores():
    hm = ConsistentHashHomeMap(n_homes=4, first_node=64)
    seen = set()
    for addr in _blocks(4096):
        index = hm.home_index(addr)
        assert 0 <= index < 4
        assert hm.node_id(addr) == 64 + index
        seen.add(index)
    assert seen == {0, 1, 2, 3}


def test_consistent_hash_is_deterministic_across_instances():
    """Two independently built rings (as in oracle vs. shard worker
    processes) must place every block identically."""
    a = ConsistentHashHomeMap(n_homes=8, first_node=0)
    b = ConsistentHashHomeMap(n_homes=8, first_node=0)
    for addr in _blocks(2048, stride=BLOCK * 3):
        assert a.home_index(addr) == b.home_index(addr)


def test_consistent_hash_survives_pickling():
    hm = ConsistentHashHomeMap(n_homes=4, first_node=16)
    clone = pickle.loads(pickle.dumps(hm))
    for addr in _blocks(512):
        assert clone.home_index(addr) == hm.home_index(addr)


def test_distribution_balance():
    """Every home receives close to its fair share of the block space.

    With 64 vnodes per home the tests tolerate +/-40% of fair share --
    loose enough to be stable, tight enough to catch a broken ring
    (where one home would swallow nearly everything).
    """
    for n_homes in (2, 4, 8):
        hm = ConsistentHashHomeMap(n_homes=n_homes, first_node=0)
        counts = [0] * n_homes
        total = 8192
        for addr in _blocks(total):
            counts[hm.home_index(addr)] += 1
        fair = total / n_homes
        for home, count in enumerate(counts):
            assert 0.6 * fair <= count <= 1.4 * fair, (
                f"home {home} of {n_homes} got {count}/{total}")


def test_remap_stability():
    """Growing H -> H+1 moves only about 1/(H+1) of the addresses.

    A modulo map would move ~H/(H+1) of them; the consistent-hash ring
    must stay near the theoretical minimum.  We allow up to 2.5x the
    ideal fraction to keep the test robust to vnode placement noise.
    """
    addrs = _blocks(8192)
    for n_homes in (2, 4, 8):
        before = ConsistentHashHomeMap(n_homes=n_homes, first_node=0)
        after = ConsistentHashHomeMap(n_homes=n_homes + 1, first_node=0)
        moved = sum(1 for addr in addrs
                    if before.home_index(addr) != after.home_index(addr))
        ideal = len(addrs) / (n_homes + 1)
        assert moved <= 2.5 * ideal, (
            f"{moved} of {len(addrs)} moved going {n_homes}->{n_homes + 1}; "
            f"ideal ~{ideal:.0f}")
        # And it must actually move *something*: a ring that never
        # rebalances is just a broken hash.
        assert moved > 0


def test_remapped_addresses_only_move_to_the_new_home():
    """Consistent hashing's defining property: when a home joins, the
    only allowed transition is old-home -> new-home."""
    before = ConsistentHashHomeMap(n_homes=4, first_node=0)
    after = ConsistentHashHomeMap(n_homes=5, first_node=0)
    for addr in _blocks(4096):
        old, new = before.home_index(addr), after.home_index(addr)
        if old != new:
            assert new == 4, f"addr {addr:#x} moved {old}->{new}, not to 4"

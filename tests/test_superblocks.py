"""Superblock fusion boundary cases (trace-compiled execution, ISSUE 7).

The detector (:func:`repro.isa.interpreter.superblock_spans`) may fuse
only core-private straight-line code: every memory/fence/RMW opcode, a
branch *target*, and HALT must break a span, and fused dispatch must be
invisible across speculation checkpoint/rollback.  These tests pin the
structural rules directly and the timing-core behaviour end to end.
"""

import pytest

from repro.harness.experiments import e9_plan
from repro.harness.parallel import result_fingerprint
from repro.isa import Assembler
from repro.isa.instructions import Opcode
from repro.isa.interpreter import _dispatch_pairs, superblock_spans
from repro.sim.config import SystemConfig
from repro.system import System


def _spans(program):
    return [(s.start, s.stop, s.has_branch) for s in superblock_spans(program)]


def _run(config, programs, initial_memory=None):
    return System(config, programs, initial_memory).run()


# ------------------------------------------------------------- detection

class TestSpanDetection:
    def test_pure_alu_run_fuses(self):
        asm = Assembler("t").li(1, 1).li(2, 2).add(3, 1, 2).halt()
        assert _spans(asm.build()) == [(0, 3, False)]

    def test_branch_target_breaks_span_not_just_branch(self):
        # Slots 0-3 are straight-line ALU, but slot 2 is a branch target:
        # a jump may enter mid-run, so fusion must split there even
        # though no boundary *opcode* intervenes.
        asm = Assembler("t")
        asm.li(1, 1).li(2, 0)
        asm.label("loop")
        asm.add(2, 2, 1)
        asm.sub(3, 2, 1)
        asm.bne(2, 1, "loop")
        asm.halt()
        program = asm.build()
        assert program.labels["loop"] == 2
        assert _spans(program) == [(0, 2, False), (2, 5, True)]

    def test_span_head_may_be_a_branch_target(self):
        # The head is an entry point, not a mid-span entry: a span may
        # start at a target.
        asm = Assembler("t")
        asm.label("spin")
        asm.add(1, 1, 2)
        asm.sub(3, 1, 2)
        asm.jmp("spin")
        program = asm.build()
        assert _spans(program) == [(0, 3, True)]

    @pytest.mark.parametrize("emit,opcode", [
        (lambda a: a.load(3, base=9), Opcode.LOAD),
        (lambda a: a.store(3, base=9), Opcode.STORE),
        (lambda a: a.swap(3, base=9, value=4), Opcode.SWAP),
        (lambda a: a.cas(3, base=9, expected=4, new=5), Opcode.CAS),
        (lambda a: a.fetch_add(3, base=9, addend=4), Opcode.FETCH_ADD),
        (lambda a: a.tas(3, base=9), Opcode.TAS),
        (lambda a: a.fence(), Opcode.FENCE),
    ], ids=lambda p: p.name if isinstance(p, Opcode) else "")
    def test_every_memory_and_fence_opcode_breaks_fusion(self, emit, opcode):
        asm = Assembler("t").li(1, 1).li(2, 2)
        emit(asm)
        asm.add(4, 1, 2).add(5, 4, 1).halt()
        program = asm.build()
        assert program.instructions[2].op is opcode
        assert _spans(program) == [(0, 2, False), (3, 5, False)]

    def test_halt_breaks_fusion_and_trailing_run_needs_successor(self):
        # ALU straight into HALT: the run before HALT fuses, HALT does
        # not join it (it drains the store buffer / ends the thread).
        asm = Assembler("t").li(1, 1).li(2, 2).halt()
        assert _spans(asm.build()) == [(0, 2, False)]

    def test_single_instruction_program_has_no_spans(self):
        assert _spans(Assembler("t").halt().build()) == []

    def test_single_alu_instruction_is_not_fused(self):
        # Minimum span length is two: fusing one instruction buys
        # nothing and would only add dispatch indirection.
        asm = Assembler("t").li(1, 7).halt()
        assert _spans(asm.build()) == []

    def test_trailing_run_without_halt_is_still_detected(self):
        # End of text is a span boundary like any other; a well-formed
        # program ends in HALT/JMP, so the detector does not special-case
        # a missing successor.
        asm = Assembler("t").li(1, 1).add(2, 1, 1)
        assert _spans(asm.build()) == [(0, 2, False)]

    def test_detection_cache_restamps_on_mutated_program(self):
        asm = Assembler("t").li(1, 1).li(2, 2).add(3, 1, 2).halt()
        program = asm.build()
        first = superblock_spans(program)
        assert _spans(program) == [(0, 3, False)]
        # Mutate the (frozen) program the only way possible: replace the
        # instructions tuple.  The cache must re-detect, not serve spans
        # for the old text.
        trimmed = Assembler("t").li(1, 1).halt().build()
        object.__setattr__(program, "instructions", trimmed.instructions)
        assert superblock_spans(program) is not first
        assert _spans(program) == []


# ----------------------------------------------------- decode-cache stamp

def test_dispatch_pairs_cache_restamps_on_mutated_program():
    """Regression: ``_dispatch_pairs`` once cached on nothing -- a
    mutated/rebuilt ``Program`` could serve stale closures.  The cache
    is now stamped with the instructions tuple it decoded."""
    asm = Assembler("t").li(1, 4).halt()
    program = asm.build()
    stale = _dispatch_pairs(program)
    assert _dispatch_pairs(program) is stale  # cache hit on same text
    replacement = Assembler("t").store(1, base=2).halt().build()
    object.__setattr__(program, "instructions", replacement.instructions)
    fresh = _dispatch_pairs(program)
    assert fresh is not stale
    assert [instr.op for _, instr in fresh] == [Opcode.STORE, Opcode.HALT]


# ----------------------------------------------------- fused execution

def _alu_loop_program():
    """A branchy, ALU-heavy single-thread program with fusable spans."""
    asm = Assembler("t")
    asm.li(1, 20).li(2, 1).li(3, 0)
    asm.label("loop")
    asm.add(3, 3, 1)
    asm.mul(4, 3, 2)
    asm.sub(1, 1, 2)
    asm.bne(1, 0, "loop")
    asm.halt()
    return asm.build()


def test_fused_execution_matches_unfused_registers_and_cycles():
    program = _alu_loop_program()
    assert superblock_spans(program), "expected fusable spans"
    config = SystemConfig(n_cores=1)
    fused = _run(config, [program])
    plain = _run(config.with_superblocks(False), [program])
    assert fused.cores[0].registers == plain.cores[0].registers
    assert fused.cycles == plain.cycles
    assert fused.events == plain.events
    assert fused.fused_instructions() > 0
    assert plain.fused_instructions() == 0


def test_single_instruction_program_runs_with_superblocks_on():
    result = _run(SystemConfig(n_cores=1), [Assembler("t").halt().build()])
    # HALT retires no instruction; the run must simply terminate with
    # nothing fused and nothing left pending.
    assert result.events == 1
    assert result.cores[0].instructions == 0
    assert result.fused_instructions() == 0


def test_fusion_counters_reconcile_with_span_structure():
    program = _alu_loop_program()
    result = _run(SystemConfig(n_cores=1), [program])
    # Every fused dispatch retires at least two instructions, and fused
    # retirement can never exceed total retirement.
    assert result.mean_superblock_length() >= 2.0
    assert 0 < result.fused_instructions() <= result.cores[0].instructions


def test_superblocks_invisible_across_speculation_rollback():
    """Rollback safety: the 4-core barrier-stencil InvisiFence point
    takes at least one speculation violation (checkpoint + rollback),
    and fusion must leave its entire outcome byte-identical."""
    spec = next(s for s in e9_plan(core_counts=(4,), scale=0.2)
                if s.label == "4|barrier-stencil|if-sc")
    fused = _run(spec.config, spec.workload.programs,
                 spec.workload.initial_memory)
    plain = _run(spec.config.with_superblocks(False),
                 spec.workload.programs, spec.workload.initial_memory)
    violations = sum(v for k, v in fused.stats.snapshot().items()
                     if k.endswith(".violations"))
    assert violations > 0, "expected at least one rollback on this point"
    assert result_fingerprint(fused) == result_fingerprint(plain)
    assert fused.events == plain.events
    assert fused.cycles == plain.cycles

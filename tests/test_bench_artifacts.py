"""The committed benchmark artifact is valid and its speedups are honest.

``BENCH_<n>.json`` files at the repo root are the measured perf history
of the engine.  This tier-2 check keeps the *latest* one honest: it must
validate against the ``repro-bench/1`` schema, and every speedup it
claims must carry ``fingerprints_match: true`` -- i.e. the comparison
against its baseline was made with byte-identical stats tables, not
after a behaviour change.
"""

import glob
import os
import re

import pytest

from repro.harness.bench import BENCH_SCHEMA, load_bench

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _latest_bench_path():
    paths = {}
    for path in glob.glob(os.path.join(_REPO_ROOT, "BENCH_*.json")):
        match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if match:
            paths[int(match.group(1))] = path
    if not paths:
        pytest.skip("no BENCH_<n>.json committed at the repo root")
    return paths[max(paths)]


def test_latest_bench_artifact_validates():
    doc = load_bench(_latest_bench_path())  # load_bench validates
    assert doc["schema"] == BENCH_SCHEMA


def test_latest_bench_artifact_speedups_are_fingerprint_backed():
    doc = load_bench(_latest_bench_path())
    speedup = doc.get("speedup")
    assert speedup, "latest bench artifact claims no speedups " \
                    "(run run_bench.py with --baseline)"
    for grid_id, entry in speedup.items():
        assert entry.get("fingerprints_match") is True, (
            f"grid {grid_id!r}: speedup recorded without fingerprint "
            "equality against the baseline")
        assert entry["events_per_sec"] > 0
        assert entry["cycles_per_sec"] > 0


def test_latest_bench_artifact_records_fusion_coverage():
    """From BENCH_4.json on, every point carries its trace-compiled
    execution coverage, and the ALU-heavy E1/E9 grids must show fusion
    actually engaged -- a zero-coverage artifact means the superblock
    knob was silently off while the bench was recorded."""
    path = _latest_bench_path()
    match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
    if int(match.group(1)) < 4:
        pytest.skip("fusion stats first recorded in BENCH_4.json")
    doc = load_bench(path)
    for grid_id in ("E1", "E9"):
        points = doc["grids"][grid_id]["points"]
        for point in points:
            assert "fused_instructions" in point, (grid_id, point["label"])
            assert 0.0 <= point["fusion_coverage"] <= 1.0
        assert any(p["fused_instructions"] > 0 for p in points), (
            f"grid {grid_id!r}: no point retired any fused instructions")


def test_latest_bench_artifact_records_sharded_capacity():
    """From BENCH_5.json on, the artifact carries the sharded engine's
    serial-vs-parallel capacity section (large mesh configs through real
    forked shard workers), with both honest throughput views: the wall
    clock this host measured, and the critical path (max per-shard busy
    time) a host with enough idle CPUs realises.  The headline claim --
    sharded events/s beating the single-process engine on large configs
    -- must be recorded on the critical-path metric, and the oracle
    entry must prove fingerprint equality on an exact-match-grid config.
    (This validates the committed artifact; regenerate BENCH_<n>.json on
    a comparable host if these numbers are re-recorded.)"""
    path = _latest_bench_path()
    match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
    if int(match.group(1)) < 5:
        pytest.skip("sharded capacity first recorded in BENCH_5.json")
    doc = load_bench(path)  # load_bench validates the section's schema
    sharded = doc["sharded"]
    assert sharded["host_cpus"] >= 1
    assert sharded["oracle"]["fingerprints_match"] is True
    for point in sharded["points"]:
        assert point["shards"] >= 2, point["label"]
        assert point["mode"] == "fork", point["label"]
        assert point["events"] > 0
        assert point["serial_events_per_sec"] > 0
        assert point["critical_path_events_per_sec"] > 0
        # Busy time can never exceed the measured wall time.
        assert point["max_shard_busy_seconds"] \
            <= point["sharded_wall_seconds"] + 1e-6, point["label"]
    assert any(p["critical_path_speedup"] >= 1.5 for p in sharded["points"]), (
        "no sharded point records the >= 1.5x critical-path speedup over "
        "the single-process engine on a large config")

"""Perf-bench harness: document schema, baseline comparison, CLI smoke.

The heavy full-grid measurements live in ``benchmarks/perf`` (marked
``slow``); here we test the document plumbing with hand-built bench
documents and run the CLI's ``--check`` smoke mode once.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.harness.bench import (
    BENCH_SCHEMA,
    BenchError,
    attach_baseline,
    bench_grids,
    check_grids,
    load_bench,
    measure_point,
    next_bench_path,
    render_bench,
    validate_bench,
    write_bench,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _point(label="p0", fingerprint="f0", events_per_sec=100.0):
    return {
        "label": label, "cycles": 1000, "events": 5000, "instructions": 900,
        "wall_seconds": 0.05, "events_per_sec": events_per_sec,
        "cycles_per_sec": 20000.0, "fingerprint": fingerprint,
    }


def _doc(**point_kwargs):
    point = _point(**point_kwargs)
    return {
        "schema": BENCH_SCHEMA,
        "repeats": 1,
        "grids": {
            "G": {
                "points": [point],
                "totals": {
                    "points": 1, "events": point["events"],
                    "cycles": point["cycles"],
                    "wall_seconds": point["wall_seconds"],
                    "events_per_sec": point["events_per_sec"],
                    "cycles_per_sec": point["cycles_per_sec"],
                },
            }
        },
    }


def test_validate_accepts_wellformed_doc():
    validate_bench(_doc())


@pytest.mark.parametrize("mutate,match", [
    (lambda d: d.pop("schema"), "missing key"),
    (lambda d: d.update(schema="other/9"), "unknown bench schema"),
    (lambda d: d.update(grids={}), "no grids"),
    (lambda d: d["grids"]["G"].pop("totals"), "missing points/totals"),
    (lambda d: d["grids"]["G"].update(points=[]), "has no points"),
    (lambda d: d["grids"]["G"]["points"][0].pop("fingerprint"),
     "point missing key"),
    (lambda d: d["grids"]["G"]["totals"].pop("events_per_sec"),
     "totals missing"),
])
def test_validate_rejects_malformed_docs(mutate, match):
    doc = _doc()
    mutate(doc)
    with pytest.raises(BenchError, match=match):
        validate_bench(doc)


def test_attach_baseline_computes_speedup():
    doc = _doc(events_per_sec=200.0)
    baseline = _doc(events_per_sec=100.0)
    attach_baseline(doc, baseline)
    assert doc["speedup"]["G"]["events_per_sec"] == 2.0
    assert doc["speedup"]["G"]["fingerprints_match"] is True
    assert "totals" in doc["baseline"]["G"]


def test_attach_baseline_rejects_fingerprint_mismatch():
    """A speedup over *different results* is not a speedup."""
    doc = _doc(fingerprint="new")
    baseline = _doc(fingerprint="old")
    with pytest.raises(BenchError, match="fingerprint"):
        attach_baseline(doc, baseline)


def test_attach_baseline_rejects_label_mismatch():
    doc = _doc(label="a")
    baseline = _doc(label="b")
    with pytest.raises(BenchError, match="labels differ"):
        attach_baseline(doc, baseline)


def test_attach_baseline_requires_shared_grids():
    doc = _doc()
    baseline = _doc()
    baseline["grids"]["H"] = baseline["grids"].pop("G")
    with pytest.raises(BenchError, match="shares no grids"):
        attach_baseline(doc, baseline)


def test_write_load_roundtrip(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    write_bench(_doc(), path)
    assert load_bench(path) == _doc()


def test_next_bench_path_increments(tmp_path):
    assert next_bench_path(str(tmp_path)).endswith("BENCH_1.json")
    (tmp_path / "BENCH_3.json").write_text("{}")
    assert next_bench_path(str(tmp_path)).endswith("BENCH_4.json")


def test_render_mentions_speedup_only_with_baseline():
    doc = _doc(events_per_sec=150.0)
    assert "baseline" not in render_bench(doc)
    attach_baseline(doc, _doc(events_per_sec=100.0))
    assert "1.50x events/s vs baseline" in render_bench(doc)


def test_measure_point_repeats_validated():
    spec = check_grids()["E1-smoke"][0]
    with pytest.raises(ValueError):
        measure_point(spec, repeats=0)


def test_bench_grids_measures_smoke_grid():
    """One real (tiny) measurement pass through the whole pipeline."""
    doc = bench_grids(check_grids())
    validate_bench(doc)
    points = doc["grids"]["E1-smoke"]["points"]
    assert len(points) == 3
    for point in points:
        assert point["events"] > 0
        assert point["events_per_sec"] > 0
        assert len(point["fingerprint"]) == 64  # sha256 hex
        # The smoke points are ALU-heavy spin loops: superblock fusion
        # must engage on every one of them (ISSUE 7 tier-1 gate).
        assert point["fused_instructions"] > 0
        assert 0.0 < point["fusion_coverage"] <= 1.0


def test_cli_check_smoke_mode():
    """`run_bench.py --check` measures 3 points, validates, writes nothing."""
    env = dict(os.environ, PYTHONPATH=os.path.join(_REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, os.path.join(_REPO_ROOT, "examples", "run_bench.py"),
         "--check"],
        capture_output=True, text=True, env=env, cwd=_REPO_ROOT, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "schema ok" in proc.stdout
    assert "fusion coverage nonzero" in proc.stdout
    assert "E1-smoke" in proc.stdout


def test_cli_superblock_stats_prints_coverage_table():
    """`run_bench.py --check --superblock-stats` prints the fusion
    coverage table instead of timing a bench."""
    env = dict(os.environ, PYTHONPATH=os.path.join(_REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, os.path.join(_REPO_ROOT, "examples", "run_bench.py"),
         "--check", "--superblock-stats"],
        capture_output=True, text=True, env=env, cwd=_REPO_ROOT, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "coverage" in proc.stdout
    assert "mean-len" in proc.stdout
    assert "locks-tas|sc" in proc.stdout
    assert "events/s" not in proc.stdout


def test_cli_rejects_unknown_arguments():
    env = dict(os.environ, PYTHONPATH=os.path.join(_REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, os.path.join(_REPO_ROOT, "examples", "run_bench.py"),
         "--frobnicate"],
        capture_output=True, text=True, env=env, cwd=_REPO_ROOT, timeout=60,
    )
    assert proc.returncode == 1
    assert "unknown argument" in proc.stdout


def test_cli_profile_prints_hotspots():
    """`run_bench.py --profile N` profiles one point, top-N by tottime."""
    env = dict(os.environ, PYTHONPATH=os.path.join(_REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, os.path.join(_REPO_ROOT, "examples", "run_bench.py"),
         "--profile", "5"],
        capture_output=True, text=True, env=env, cwd=_REPO_ROOT, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "profiling" in proc.stdout
    assert "tottime" in proc.stdout


def test_cli_profile_rejects_bad_values():
    env = dict(os.environ, PYTHONPATH=os.path.join(_REPO_ROOT, "src"))
    for bad in ("zero", "0"):
        proc = subprocess.run(
            [sys.executable,
             os.path.join(_REPO_ROOT, "examples", "run_bench.py"),
             "--profile", bad],
            capture_output=True, text=True, env=env, cwd=_REPO_ROOT,
            timeout=60,
        )
        assert proc.returncode == 1
        assert "--profile" in proc.stdout

"""Resilient sweep execution: timeouts, retries, exclusion, checkpoints.

The acceptance bar: a sweep interrupted mid-run and resumed from its
checkpoint directory must reuse the already-completed points and still
produce tables bit-identical to an uninterrupted run; hung or crashing
points must be retried with backoff and then excluded instead of
sinking the grid; deterministic failures must raise immediately, naming
the offending (config, workload) point.
"""

from __future__ import annotations

import os
import pickle
import shutil
import signal
import time

import pytest

from repro.faults import FaultPlan
from repro.harness.parallel import (
    ResilientPointRunner,
    RunSpec,
    SweepError,
    SweepScheduler,
    point_fingerprint,
    result_fingerprint,
    simulate_point,
)
from repro.isa.program import Assembler
from repro.workloads.base import Workload
from tests.conftest import small_config

_CRASH_MARKER_ENV = "REPRO_TEST_CRASH_MARKER"


def _workload(name: str = "w", value: int = 1) -> Workload:
    asm = Assembler(f"{name}.t0")
    asm.li(1, 0x1_0000).li(2, value)
    asm.store(2, base=1)
    asm.halt()
    return Workload(name, [asm.build()], {})


def _grid(n: int = 3):
    return [RunSpec(f"p{i}", small_config(1), _workload(f"w{i}", i + 1))
            for i in range(n)]


def _hanging_worker(config, programs, initial_memory, fault_plan=None, node_plan=None):
    time.sleep(60)


def _crash_once_worker(config, programs, initial_memory, fault_plan=None, node_plan=None):
    """Dies hard on the first attempt, succeeds on the second (the marker
    file persists across the retry's fresh process)."""
    marker = os.environ[_CRASH_MARKER_ENV]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os._exit(1)
    return simulate_point(config, programs, initial_memory, fault_plan)


def _broken_worker(config, programs, initial_memory, fault_plan=None, node_plan=None):
    raise ValueError("intentionally broken point")


# ------------------------------------------------------------- fingerprints

def test_runspec_fingerprint_matches_legacy_without_plan():
    config, wl = small_config(1), _workload()
    assert RunSpec("p", config, wl).fingerprint() == \
        point_fingerprint(config, wl)


def test_fault_plan_is_part_of_point_identity():
    config, wl = small_config(1), _workload()
    plan = FaultPlan(drop_first_n=1)
    spec = RunSpec("p", config, wl, fault_plan=plan)
    assert spec.fingerprint() == point_fingerprint(config, wl, plan)
    assert spec.fingerprint() != point_fingerprint(config, wl)
    assert point_fingerprint(config, wl, FaultPlan(drop_first_n=2)) != \
        spec.fingerprint()


def test_fault_injected_point_runs_through_the_scheduler():
    scheduler = SweepScheduler(jobs=1)
    scheduler.add("g", [RunSpec("p", small_config(1), _workload(),
                                fault_plan=FaultPlan(seed=4, dup_prob=0.5))])
    scheduler.run()
    result = scheduler.results_for("g")["p"]
    assert result.stats.snapshot()["faults.duplicated"] >= 0
    assert result.read_word(0x1_0000) == 1


# ------------------------------------------------------ checkpoint / resume

def test_interrupted_sweep_resumes_from_checkpoints(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    grid = _grid(3)

    # Reference: one uninterrupted run, no checkpointing involved.
    reference = SweepScheduler(jobs=1)
    reference.add("g", _grid(3))
    reference.run()
    want = {label: result_fingerprint(result)
            for label, result in reference.results_for("g").items()}

    # "Killed" sweep: only part of the grid completed before the kill.
    first = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    first.add("g", grid[:2])
    first.run()
    assert len(os.listdir(ckpt)) == 2

    # Resume in a fresh scheduler (fresh process in real life): the two
    # completed points come from disk, only the third is simulated.
    resumed = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    resumed.add("g", _grid(3))
    report = resumed.run()
    assert report.checkpoint_hits == 2
    assert report.unique_points == 1            # only p2 actually simulated
    got = {label: result_fingerprint(result)
           for label, result in resumed.results_for("g").items()}
    assert got == want


def test_truncated_checkpoint_is_ignored_and_resimulated(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    first = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    first.add("g", _grid(2))
    first.run()
    victim = sorted(os.listdir(ckpt))[0]
    with open(os.path.join(ckpt, victim), "wb") as fh:
        fh.write(b"\x80truncated-by-a-kill")

    resumed = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    resumed.add("g", _grid(2))
    report = resumed.run()
    assert report.checkpoint_hits == 1          # the intact one
    resumed.results_for("g")                    # the other re-simulated fine

    reference = SweepScheduler(jobs=1)
    reference.add("g", _grid(2))
    reference.run()
    for label, result in reference.results_for("g").items():
        assert result_fingerprint(resumed.results_for("g")[label]) == \
            result_fingerprint(result)


# -------------------------------------------------- timeouts and exclusion

def test_hung_point_times_out_retries_then_lands_on_skip_list():
    scheduler = SweepScheduler(jobs=1, worker=_hanging_worker,
                               point_timeout=0.2, retries=1,
                               retry_backoff=0.05)
    scheduler.add("g", [RunSpec("stuck", small_config(1), _workload())])
    report = scheduler.run()                    # does not raise, does not hang
    assert report.retries == 1
    assert list(report.excluded) == ["stuck"]
    assert "timed out" in report.excluded["stuck"]
    assert "gave up after 2 attempt(s)" in report.excluded["stuck"]
    with pytest.raises(SweepError, match="excluded by the resilience policy"):
        scheduler.results_for("g")


def test_excluded_points_are_not_reattempted_on_rerun():
    scheduler = SweepScheduler(jobs=1, worker=_hanging_worker,
                               point_timeout=0.2, retries=0,
                               retry_backoff=0.05)
    scheduler.add("g", [RunSpec("stuck", small_config(1), _workload())])
    scheduler.run()
    assert len(scheduler.excluded) == 1
    started = time.monotonic()
    report = scheduler.run()                    # skip list, not another 0.2s
    assert time.monotonic() - started < 0.15
    assert report.retries == 0


def test_healthy_grid_excludes_nothing_under_resilience_policy():
    resilient = SweepScheduler(jobs=1, point_timeout=30.0, retries=2)
    resilient.add("g", _grid(3))
    report = resilient.run()
    assert not report.excluded and report.retries == 0

    plain = SweepScheduler(jobs=1)
    plain.add("g", _grid(3))
    plain.run()
    for label, result in plain.results_for("g").items():
        assert result_fingerprint(resilient.results_for("g")[label]) == \
            result_fingerprint(result)


# ------------------------------------------------------- crashes and errors

def test_crashed_point_is_retried_and_recovers(tmp_path, monkeypatch):
    marker = str(tmp_path / "crashed-once")
    monkeypatch.setenv(_CRASH_MARKER_ENV, marker)
    scheduler = SweepScheduler(jobs=1, worker=_crash_once_worker,
                               retries=2, retry_backoff=0.05)
    scheduler.add("g", [RunSpec("flaky", small_config(1), _workload())])
    report = scheduler.run()
    assert report.retries == 1
    assert not report.excluded
    assert scheduler.results_for("g")["flaky"].read_word(0x1_0000) == 1


def test_deterministic_error_raises_immediately_naming_the_point():
    scheduler = SweepScheduler(jobs=1, worker=_broken_worker,
                               point_timeout=30.0, retries=5)
    scheduler.add("g", [RunSpec("bad-point", small_config(1),
                                _workload("bad-workload"))])
    started = time.monotonic()
    with pytest.raises(SweepError) as info:
        scheduler.run()
    assert time.monotonic() - started < 5       # no 5-retry backoff dance
    message = str(info.value)
    assert "bad-point" in message
    assert "bad-workload" in message
    assert "intentionally broken point" in message
    assert scheduler._retries_this_run == 0


def test_resilience_option_validation():
    with pytest.raises(ValueError, match="point_timeout"):
        SweepScheduler(point_timeout=0)
    with pytest.raises(ValueError, match="retries"):
        SweepScheduler(retries=-1)
    with pytest.raises(ValueError, match="term_grace"):
        SweepScheduler(term_grace=0)


# --------------------------------------------------- regression: timeouts
#
# Each point's kill deadline must be budgeted from *its own* launch.  The
# pre-fix code computed it from a clock captured before the launch loop,
# so sibling ``proc.start()`` cost was charged against a point's
# point_timeout and late-launched points were killed early.

class _SlowLaunchRunner(ResilientPointRunner):
    """Runner whose every launch takes ~1s (expensive-fork stand-in)."""

    LAUNCH_DELAY = 1.0

    def _launch(self, spec):
        time.sleep(self.LAUNCH_DELAY)
        return super()._launch(spec)


def _slow_start_worker(config, programs, initial_memory, fault_plan=None, node_plan=None):
    time.sleep(0.35)
    return simulate_point(config, programs, initial_memory, fault_plan)


def test_point_timeout_excludes_sibling_launch_cost():
    # Both launches take ~1s; the worker itself needs ~0.35s against a
    # 1.2s budget.  A fresh per-launch clock gives every point its full
    # budget; the stale pre-loop clock would have killed both (their
    # deadlines expire during/just after their own slow launch).
    runner = _SlowLaunchRunner(worker=_slow_start_worker, jobs=2,
                               point_timeout=1.2, retries=0)
    done, excluded = {}, {}
    runner.run([(spec.fingerprint(), spec) for spec in _grid(2)],
               on_result=lambda fp, spec, result, s: done.__setitem__(
                   fp, result),
               on_error=lambda fp, spec, msg: pytest.fail(msg),
               on_exclude=lambda fp, spec, reason: excluded.__setitem__(
                   spec.label, reason))
    assert excluded == {}
    assert len(done) == 2


# ----------------------------------------- regression: SIGTERM-immune kill
#
# The pre-fix timeout path did proc.terminate() then an *unbounded*
# proc.join(): a worker wedged ignoring SIGTERM hung the sweep forever.
# The fix joins with term_grace, then escalates to SIGKILL.

def _sigterm_immune_worker(config, programs, initial_memory,
                           fault_plan=None, node_plan=None):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(60)


def test_sigterm_immune_worker_is_kill_escalated():
    scheduler = SweepScheduler(jobs=1, worker=_sigterm_immune_worker,
                               point_timeout=0.3, retries=0,
                               term_grace=0.4)
    scheduler.add("g", [RunSpec("wedged", small_config(1), _workload())])
    started = time.monotonic()
    report = scheduler.run()                    # pre-fix: hangs forever
    assert time.monotonic() - started < 30
    assert list(report.excluded) == ["wedged"]
    assert "timed out" in report.excluded["wedged"]


# ------------------------------------------- regression: report isolation
#
# SweepReport.excluded was built from the scheduler's *cumulative*
# exclusion list, so a second run's report re-reported prior runs'
# exclusions as its own.

def test_report_excluded_is_scoped_to_its_own_run():
    scheduler = SweepScheduler(jobs=1, worker=_hanging_worker,
                               point_timeout=0.2, retries=0)
    scheduler.add("g", [RunSpec("first-stuck", small_config(1),
                                _workload("w-first"))])
    first = scheduler.run()
    assert list(first.excluded) == ["first-stuck"]

    scheduler.add("g", [RunSpec("second-stuck", small_config(1),
                                _workload("w-second"))])
    second = scheduler.run()
    assert list(second.excluded) == ["second-stuck"]   # pre-fix: both
    assert len(scheduler.excluded) == 2                # cumulative skip list

    third = scheduler.run()                            # nothing new hangs
    assert third.excluded == {}


# --------------------------------------- regression: checkpoint validation
#
# _load_checkpoints used to unpickle anything in the directory with no
# integrity or version check.  Checkpoints now use the service store's
# versioned record format: a foreign, tampered, stale-version, or
# legacy raw-pickle file is rejected and the point re-simulated.

def test_foreign_checkpoint_is_rejected_and_resimulated(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    first = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    first.add("g", _grid(2))
    first.run()

    fp0, fp1 = (spec.fingerprint() for spec in _grid(2))
    # Pretend an operator synced p0's checkpoint onto p1's key.
    shutil.copyfile(os.path.join(ckpt, f"{fp0}.pkl"),
                    os.path.join(ckpt, f"{fp1}.pkl"))

    resumed = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    resumed.add("g", _grid(2))
    report = resumed.run()
    assert report.checkpoint_hits == 1          # only the genuine one
    # pre-fix: p1 silently resumed from p0's result (value 1, not 2)
    assert resumed.results_for("g")["p1"].read_word(0x1_0000) == 2


def test_stale_format_version_checkpoint_is_rejected(tmp_path):
    from repro.service.store import STORE_FORMAT_VERSION
    ckpt = str(tmp_path / "ckpt")
    first = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    first.add("g", _grid(1))
    first.run()

    path = os.path.join(ckpt, f"{_grid(1)[0].fingerprint()}.pkl")
    with open(path, "rb") as fh:
        header, payload = fh.read().split(b"\n", 1)
    parts = header.split(b"\x00")
    parts[1] = str(STORE_FORMAT_VERSION + 1).encode()
    with open(path, "wb") as fh:
        fh.write(b"\x00".join(parts) + b"\n" + payload)

    resumed = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    resumed.add("g", _grid(1))
    report = resumed.run()
    assert report.checkpoint_hits == 0
    assert report.unique_points == 1            # re-simulated
    resumed.results_for("g")


def test_legacy_raw_pickle_checkpoint_is_rejected(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    reference = SweepScheduler(jobs=1)
    reference.add("g", _grid(1))
    reference.run()
    result = reference.results_for("g")["p0"]

    # A checkpoint written by the pre-record-format code: bare pickle.
    os.makedirs(ckpt)
    fp = _grid(1)[0].fingerprint()
    with open(os.path.join(ckpt, f"{fp}.pkl"), "wb") as fh:
        pickle.dump(result, fh)

    resumed = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    resumed.add("g", _grid(1))
    report = resumed.run()
    assert report.checkpoint_hits == 0          # no blind unpickling
    assert result_fingerprint(resumed.results_for("g")["p0"]) == \
        result_fingerprint(result)


def test_tampered_checkpoint_fingerprint_fails_integrity(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    first = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    first.add("g", _grid(1))
    first.run()

    path = os.path.join(ckpt, f"{_grid(1)[0].fingerprint()}.pkl")
    with open(path, "rb") as fh:
        header, payload = fh.read().split(b"\n", 1)
    parts = header.split(b"\x00")
    parts[3] = b"0" * 64                        # lie about the result
    with open(path, "wb") as fh:
        fh.write(b"\x00".join(parts) + b"\n" + payload)

    resumed = SweepScheduler(jobs=1, checkpoint_dir=ckpt)
    resumed.add("g", _grid(1))
    assert resumed.run().checkpoint_hits == 0
    resumed.results_for("g")

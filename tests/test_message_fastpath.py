"""Regression tests for the slotted, allocation-lean Message fast path.

``Message`` used to be a dataclass whose construction paid for
``__init__`` field bookkeeping plus an eager uid draw per instance.
The overhaul made it a ``__slots__`` class with a lazily-assigned uid;
these tests pin the properties the hot path relies on so a refactor
back to a dataclass (or an eager uid) fails loudly instead of just
showing up as a bench regression.
"""

import gc
import types

import pytest

from repro.coherence.messages import DIRECTORY_REQUESTS, Message, MessageType


def test_message_is_slotted_not_a_dataclass():
    assert not hasattr(Message, "__dataclass_fields__")
    msg = Message(MessageType.GET_S, 0x40, 0)
    with pytest.raises(AttributeError):
        msg.bogus = 1  # __slots__: no per-instance __dict__


def test_construction_allocates_no_closures():
    """Building messages must not create per-instance function objects.

    (The PR-2 engine style leans on decode-time closures; messages are
    constructed far too often for that to be acceptable here.)
    """
    gc.collect()
    before = sum(1 for o in gc.get_objects()
                 if isinstance(o, types.FunctionType))
    messages = [Message(MessageType.GET_M, i * 64, i % 4, word_addr=i * 64)
                for i in range(200)]
    after = sum(1 for o in gc.get_objects()
                if isinstance(o, types.FunctionType))
    assert after == before
    assert len(messages) == 200


def test_uid_not_drawn_at_construction():
    msg = Message(MessageType.GET_S, 0x40, 0)
    assert msg._uid == -1
    repr(msg)  # repr must not force an assignment either
    assert msg._uid == -1


def test_uid_lazily_assigned_and_stable():
    a = Message(MessageType.GET_S, 0x40, 0)
    b = Message(MessageType.GET_M, 0x80, 1)
    ua = a.uid
    assert ua == a.uid == a._uid  # stable once drawn
    assert b.uid > ua             # counter is global and monotonic


def test_uid_survives_explicit_assignment():
    msg = Message(MessageType.NACK, 0x40, 0)
    msg.uid = 1234
    assert msg.uid == 1234


def test_mtype_codes_are_ints_with_names():
    # Table dispatch hashes mtypes as ints; traces still want .name.
    for mtype in MessageType:
        assert isinstance(mtype.value, int)
        assert mtype.name
    assert MessageType.GET_S in DIRECTORY_REQUESTS
    assert MessageType.INV not in DIRECTORY_REQUESTS

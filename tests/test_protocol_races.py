"""Directed protocol-race coverage.

The blocking directory + FIFO network eliminate most MESI races, but
two windows remain by design and have dedicated handling:

* **eviction race** -- an INV/FwdGetS arrives for a block whose PUT is
  still in flight (served from the writeback buffer; the later PUT is
  stale at the directory);
* **SM demotion** -- an INV kills the S copy under a pending GetM
  upgrade (the upgrade becomes a full miss).

Races are timing-dependent, so each test sweeps relative skews and
asserts (a) architectural correctness for *every* timing and (b) that
the race path actually fired for *some* timing (via its counter).
"""

from dataclasses import replace

import pytest

from repro.isa import Assembler
from repro.sim.config import CacheConfig
from repro.system import System
from tests.conftest import small_config

A = 0x0          # three blocks conflicting in a 2-set, 2-way cache
B = 0x80
C = 0x100


def tiny_cache_config(n_cores):
    cfg = small_config(n_cores)
    return replace(cfg, l1=CacheConfig(size_bytes=256, assoc=2,
                                       block_bytes=64, hit_latency=1))


class TestEvictionRace:
    def _programs(self, skew):
        # t0 dirties A then forces its eviction (PUT_M in flight).
        t0 = Assembler("evictor")
        t0.li(1, A).li(2, 7)
        t0.store(2, base=1)
        t0.exec_(60)                      # A resident M, dirty
        for addr in (B, C):               # conflict A out of its set
            t0.li(1, addr).li(2, 1)
            t0.store(2, base=1)
        t0.halt()
        # t1 requests A with variable timing.
        t1 = Assembler("prober")
        t1.exec_(max(skew, 1))
        t1.li(1, A)
        t1.load(5, base=1)
        t1.halt()
        return [t0.build(), t1.build()]

    def test_probe_during_eviction_always_correct(self):
        surrendered_somewhere = False
        for skew in range(40, 140, 4):
            system = System(tiny_cache_config(2), self._programs(skew))
            result = system.run(check_invariants=True)
            # The probe must read t0's 7 (written before eviction) --
            # wherever the data was when the request landed.
            assert result.core_reg(1, 5) == 7, f"skew={skew}"
            if system.stats.value("l1.0.wb_surrenders") > 0:
                surrendered_somewhere = True
                # The late PUT is then stale at the directory.
                assert system.stats.value("dir.stale_puts") >= 1
        assert surrendered_somewhere, (
            "no skew exercised the writeback-buffer surrender path; "
            "widen the sweep"
        )


class TestSMDemotionRace:
    def _programs(self, skew):
        # Both cores read A (shared), then both upgrade-write it.
        def prog(name, delay, value):
            asm = Assembler(name)
            asm.li(1, A)
            asm.load(3, base=1)           # S copy
            asm.exec_(max(delay, 1))
            asm.li(2, value)
            asm.store(2, base=1)          # GetM upgrade
            asm.load(4, base=1)           # own store forwarded/visible
            asm.halt()
            return asm.build()

        # w1's delay sweeps across w0's: their load latencies differ
        # (DATA_E vs recall), so the upgrade race needs a wide scan.
        return [prog("w0", 60, 111), prog("w1", skew, 222)]

    def test_competing_upgrades_always_coherent(self):
        demoted_somewhere = False
        for skew in range(20, 92, 2):
            system = System(small_config(2), self._programs(skew))
            result = system.run(check_invariants=True)
            final = result.read_word(A)
            assert final in (111, 222), f"skew={skew}: final={final}"
            # Each writer observed its own store.
            assert result.core_reg(0, 4) == 111
            assert result.core_reg(1, 4) == 222
            demotions = (system.stats.value("l1.0.sm_demotions")
                         + system.stats.value("l1.1.sm_demotions"))
            if demotions:
                demoted_somewhere = True
        assert demoted_somewhere, (
            "no skew exercised the SM-demotion path; widen the sweep"
        )


class TestBackToBackOwnership:
    def test_rapid_ownership_migration(self):
        """A block bouncing M->M->M across three cores every few cycles:
        stresses queued GetMs at the blocking directory."""
        def prog(tid, value):
            asm = Assembler(f"w{tid}")
            asm.li(1, A)
            for i in range(10):
                asm.li(2, value * 100 + i)
                asm.store(2, base=1)
                asm.exec_(3)
            asm.halt()
            return asm.build()

        system = System(small_config(3), [prog(t, t + 1) for t in range(3)])
        result = system.run(check_invariants=True)
        # The final value is some thread's last store.
        assert result.read_word(A) in {v * 100 + 9 for v in (1, 2, 3)}
        assert system.stats.value("dir.requests_queued") > 0

    def test_evict_and_refetch_same_block(self):
        """PUT followed immediately by GET for the same block from the
        same core: the FIFO guarantees the directory sees PUT first."""
        t0 = Assembler("t")
        t0.li(1, A).li(2, 5)
        t0.store(2, base=1)
        t0.exec_(60)
        for addr in (B, C):               # evict A (dirty PUT_M)
            t0.li(1, addr).li(3, 1)
            t0.store(3, base=1)
        t0.li(1, A)
        t0.load(6, base=1)                # immediate refetch
        t0.halt()
        system = System(tiny_cache_config(1), [t0.build()])
        result = system.run(check_invariants=True)
        assert result.core_reg(0, 6) == 5

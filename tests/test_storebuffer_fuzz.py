"""Fuzz the indexed store buffer against a linear-scan oracle.

The ``_by_addr`` index turned ``contains``/``forward_value`` from O(n)
scans into dict probes, with non-trivial maintenance invariants (the
FIFO head is the oldest entry for its address; a squashed suffix entry
is the youngest; coalescing may only merge into the youngest same-addr
entry).  The oracle below re-implements the buffer the dumb way --
one list, linear scans everywhere -- and a few hundred seeded random
load/store/drain/squash/commit sequences must agree with it exactly.
"""

import random

import pytest

from repro.cpu.storebuffer import StoreBuffer

#: Small address pool so same-address collisions are frequent.
_ADDRS = [0x100 + 8 * i for i in range(6)]


class _OracleEntry:
    def __init__(self, addr, value, speculative):
        self.addr = addr
        self.value = value
        self.speculative = speculative
        self.in_flight = False


class Oracle:
    """Reference store buffer: one list, linear scans, no index."""

    def __init__(self, capacity, coalescing):
        self.capacity = capacity
        self.coalescing = coalescing
        self.entries = []

    def contains(self, addr):
        return any(e.addr == addr for e in self.entries)

    def forward_value(self, addr):
        for entry in reversed(self.entries):
            if entry.addr == addr:
                return entry.value
        return None

    def enqueue(self, addr, value, speculative):
        if self.coalescing:
            for entry in reversed(self.entries):
                if entry.addr != addr:
                    continue
                if not entry.in_flight and entry.speculative == speculative:
                    entry.value = value
                    return True
                break  # younger same-addr entry blocks merging past it
        if len(self.entries) >= self.capacity:
            return False
        self.entries.append(_OracleEntry(addr, value, speculative))
        return True

    def pop_head(self):
        return self.entries.pop(0)

    def squash_speculative(self):
        squashed = 0
        while self.entries and self.entries[-1].speculative:
            self.entries.pop()
            squashed += 1
        return squashed

    def commit_speculative(self):
        count = 0
        for entry in self.entries:
            if entry.speculative:
                entry.speculative = False
                count += 1
        return count


def _check_agreement(sb, oracle):
    assert sb.occupancy == len(oracle.entries)
    assert sb.empty == (not oracle.entries)
    assert sb.speculative_count() == sum(
        1 for e in oracle.entries if e.speculative)
    head = sb.head()
    if oracle.entries:
        assert head is not None
        assert head.addr == oracle.entries[0].addr
        assert head.value == oracle.entries[0].value
    else:
        assert head is None
    for addr in _ADDRS:
        assert sb.contains(addr) == oracle.contains(addr)
        assert sb.forward_value(addr) == oracle.forward_value(addr)


def _fuzz_one(seed, coalescing):
    rng = random.Random(seed)
    capacity = rng.choice((1, 2, 4, 8))
    sb = StoreBuffer(capacity, coalescing=coalescing)
    oracle = Oracle(capacity, coalescing)
    speculating = False
    for step in range(40):
        op = rng.random()
        if op < 0.45:
            addr = rng.choice(_ADDRS)
            value = rng.randrange(1000)
            got = sb.enqueue(addr, value, speculating, now=step)
            want = oracle.enqueue(addr, value, speculating)
            assert got == want, f"seed={seed} step={step}: enqueue disagrees"
        elif op < 0.65:
            head = sb.head()
            if head is not None:
                if rng.random() < 0.3:
                    # Model the LSU marking the head as draining.
                    head.in_flight = True
                    oracle.entries[0].in_flight = True
                else:
                    popped = sb.pop_head(head)
                    want = oracle.pop_head()
                    assert (popped.addr, popped.value) == (want.addr, want.value)
        elif op < 0.75:
            speculating = True  # enter (or stay in) a speculative episode
        elif op < 0.85:
            assert sb.squash_speculative() == oracle.squash_speculative()
            speculating = False
        else:
            assert sb.commit_speculative() == oracle.commit_speculative()
            speculating = False
        _check_agreement(sb, oracle)


@pytest.mark.parametrize("coalescing", (False, True),
                         ids=("plain", "coalescing"))
def test_fuzz_against_linear_scan_oracle(coalescing):
    for seed in range(200):
        _fuzz_one(seed, coalescing)

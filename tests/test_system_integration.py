"""Whole-system integration tests: suite correctness across the full
configuration grid, deadlock detection, result plumbing, the arbiter
baseline, and the harness."""

import pytest

from repro.isa import Assembler
from repro.sim.config import ConsistencyModel, SpeculationMode
from repro.sim.engine import SimulationError
from repro.system import System, run_system
from repro.workloads import standard_suite
from repro.harness.runner import compare_configs, run_workload, six_point_configs
from tests.conftest import small_config


class TestSystemPlumbing:
    def test_program_count_must_match_cores(self):
        with pytest.raises(ValueError):
            System(small_config(2), [Assembler("t").build()])

    def test_unaligned_initial_memory_rejected(self):
        with pytest.raises(ValueError):
            System(small_config(1), [Assembler("t").build()],
                   initial_memory={0x101: 1})

    def test_result_accessors(self):
        asm = Assembler("t").li(5, 7)
        result = run_system(small_config(1), [asm.build()])
        assert result.core_reg(0, 5) == 7
        assert result.cycles > 0
        assert result.total_instructions() >= 1
        assert result.violations() == 0
        assert result.commits() == 0

    def test_read_word_prefers_dirty_l1_copy(self):
        asm = Assembler("t")
        asm.li(1, 0x1000).li(2, 9)
        asm.store(2, base=1)
        system = System(small_config(1), [asm.build()])
        system.run()
        # The block is dirty in L1; the L2 copy is stale (0).
        assert system.directory.peek_word(0x1000) == 0
        assert system.read_word(0x1000) == 9

    def test_watchdog_catches_runaway(self):
        asm = Assembler("t")
        asm.label("spin").jmp("spin")
        system = System(small_config(1), [asm.build()])
        with pytest.raises(SimulationError):
            system.run(max_events=10_000)


class TestFullGrid:
    @pytest.mark.parametrize("model", list(ConsistencyModel))
    @pytest.mark.parametrize("spec", list(SpeculationMode))
    def test_suite_correct_under_grid(self, model, spec):
        """Every suite workload validates under every (model, spec)."""
        suite = standard_suite(2, scale=0.1)
        for workload in suite.values():
            config = (small_config(2).with_consistency(model)
                      .with_speculation(spec))
            result = run_system(config, workload.programs,
                                workload.initial_memory,
                                check_invariants=True)
            workload.check(result)

    def test_determinism(self):
        """Identical configs produce identical cycle counts and stats."""
        suite = standard_suite(2, scale=0.1)
        workload = suite["locks-tas"]
        config = small_config(2).with_speculation(SpeculationMode.ON_DEMAND)

        def snapshot():
            result = run_system(config, workload.programs,
                                workload.initial_memory)
            return result.cycles, result.stats.snapshot()

        assert snapshot() == snapshot()

    def test_speculation_reduces_ordering_stalls(self):
        suite = standard_suite(2, scale=0.2)
        workload = suite["producer-consumer"]
        base = run_system(small_config(2), workload.programs)
        spec = run_system(small_config(2).with_speculation(
            SpeculationMode.ON_DEMAND), workload.programs)
        assert spec.ordering_stall_cycles() < base.ordering_stall_cycles()


class TestArbitratedCommit:
    def test_arbitration_config_builds_arbiter(self):
        config = small_config(2).with_speculation(
            SpeculationMode.ON_DEMAND, commit_arbitration=True)
        system = System(config, [Assembler("a").build(),
                                 Assembler("b").build()])
        assert system.commit_arbiter is not None

    def test_no_arbiter_without_flag(self):
        config = small_config(2).with_speculation(SpeculationMode.ON_DEMAND)
        system = System(config, [Assembler("a").build(),
                                 Assembler("b").build()])
        assert system.commit_arbiter is None

    def test_arbitration_with_violations_stays_correct(self):
        """Commit grants racing with violations: a grant arriving after
        its episode rolled back must be dropped (the epoch check in
        Core._commit_granted), and the workload must still validate."""
        from repro.workloads import randmix
        wl = randmix.false_sharing(4, iterations=30, fence_every=2)
        config = small_config(4).with_speculation(
            SpeculationMode.ON_DEMAND, commit_arbitration=True,
            arbitration_latency=25)
        result = run_system(config, wl.programs, check_invariants=True)
        wl.check(result)
        # The scenario only bites if violations actually occurred.
        assert result.violations() > 0

    def test_arbitration_under_continuous_mode(self):
        suite = standard_suite(2, scale=0.2)
        workload = suite["locks-ticket"]
        config = small_config(2).with_speculation(
            SpeculationMode.CONTINUOUS, commit_arbitration=True,
            arbitration_latency=15)
        result = run_system(config, workload.programs, check_invariants=True)
        workload.check(result)

    def test_arbitrated_run_correct_and_slower_or_equal(self):
        suite = standard_suite(2, scale=0.2)
        workload = suite["producer-consumer"]
        local_cfg = small_config(2).with_speculation(SpeculationMode.ON_DEMAND)
        arb_cfg = small_config(2).with_speculation(
            SpeculationMode.ON_DEMAND, commit_arbitration=True,
            arbitration_latency=30)
        local = run_system(local_cfg, workload.programs)
        arb = run_system(arb_cfg, workload.programs)
        workload.check(local)
        workload.check(arb)
        assert arb.cycles >= local.cycles


class TestHarnessRunner:
    def test_run_workload_validates_thread_count(self):
        suite = standard_suite(2, scale=0.1)
        with pytest.raises(ValueError):
            run_workload(small_config(4), suite["locks-tas"])

    def test_compare_configs(self):
        suite = standard_suite(2, scale=0.1)
        results = compare_configs(suite["locks-tas"], {
            "sc": small_config(2).with_consistency(ConsistencyModel.SC),
            "tso": small_config(2).with_consistency(ConsistencyModel.TSO),
        })
        assert set(results) == {"sc", "tso"}
        assert all(r.cycles > 0 for r in results.values())

    def test_six_point_grid(self):
        grid = six_point_configs(small_config(2))
        assert len(grid) == 6
        assert grid["if-sc"].speculation.enabled
        assert not grid["base-rmo"].speculation.enabled
        assert grid["base-sc"].core.consistency is ConsistencyModel.SC

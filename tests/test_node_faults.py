"""Node-fault chaos layer: plans, crash/pause semantics, determinism.

Covers the `repro.faults.nodeplan` / `repro.faults.nodes` axis end to
end: construction-time plan validation (both fault axes), fail-stop and
fail-recover semantics on the live machine, bit-for-bit replay across
engine modes, invisibility of inactive plans, composition with link
fault plans, and the watchdog's crash-aware diagnostics.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    CRASH,
    PAUSE,
    DeadlockError,
    FaultPlan,
    NodeFault,
    NodeFaultPlan,
    Watchdog,
    node_fault_scenarios,
)
from repro.faults.watchdog import diagnostic_dump
from repro.harness.parallel import (
    RunSpec,
    point_fingerprint,
    result_fingerprint,
    simulate_point,
)
from repro.isa.program import Assembler
from repro.sim.config import SystemConfig
from repro.system import System
from repro.workloads.base import Workload


def _counter_workload(n_cores: int = 2, iters: int = 50) -> Workload:
    """Private per-core counters: every core bumps its own word."""
    programs = []
    for tid in range(n_cores):
        asm = Assembler(f"nf.t{tid}")
        asm.li(1, 0x1_0000 + 64 * tid).li(2, 0).li(24, 1)
        loop = f"loop_{tid}"
        asm.label(loop)
        asm.add(2, 2, 24)
        asm.store(2, base=1)
        asm.slti(3, 2, iters)
        asm.bne(3, 0, loop)
        asm.halt()
        programs.append(asm.build())
    return Workload(f"nf-counter-{n_cores}", programs, {})


def _run(workload, node_plan=None, fault_plan=None, *, fastpath=True,
         superblocks=True, watchdog=True):
    config = SystemConfig(n_cores=len(workload.programs),
                          superblocks=superblocks)
    system = System(config, workload.programs, workload.initial_memory,
                    fastpath=fastpath, fault_plan=fault_plan,
                    node_plan=node_plan)
    return system.run(watchdog=Watchdog(system) if watchdog else None)


def _crash_plan(core=1, at=200):
    return NodeFaultPlan(seed=0, faults=(NodeFault(core, CRASH, at),))


def _pause_plan(core=1, at=200, duration=400):
    return NodeFaultPlan(seed=0, faults=(NodeFault(core, PAUSE, at,
                                                   duration),))


# ------------------------------------------------------------ validation

class TestPlanValidation:
    def test_rejects_negative_core(self):
        with pytest.raises(ValueError, match="core must be >= 0"):
            NodeFault(-1, CRASH, 10)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind must be"):
            NodeFault(0, "powercycle", 10)

    def test_rejects_negative_cycle(self):
        with pytest.raises(ValueError, match="at_cycle must be >= 0"):
            NodeFault(0, CRASH, -5)

    def test_crash_has_no_duration(self):
        with pytest.raises(ValueError, match="crash has no duration"):
            NodeFault(0, CRASH, 10, duration=5)

    def test_pause_needs_duration(self):
        with pytest.raises(ValueError, match="duration >= 1"):
            NodeFault(0, PAUSE, 10, duration=0)

    def test_rejects_duplicate_fault_cycle(self):
        with pytest.raises(ValueError, match="duplicate fault at cycle"):
            NodeFaultPlan(faults=(NodeFault(0, PAUSE, 10, 5),
                                  NodeFault(0, PAUSE, 10, 7)))

    def test_rejects_fault_after_crash(self):
        with pytest.raises(ValueError, match="never comes back"):
            NodeFaultPlan(faults=(NodeFault(0, CRASH, 10),
                                  NodeFault(0, PAUSE, 50, 5)))

    def test_rejects_overlapping_windows(self):
        with pytest.raises(ValueError, match="overlap or touch"):
            NodeFaultPlan(faults=(NodeFault(0, PAUSE, 10, 20),
                                  NodeFault(0, PAUSE, 25, 5)))

    def test_rejects_touching_windows(self):
        # A fault exactly at the resume cycle would race the resume
        # event inside one simulator bucket.
        with pytest.raises(ValueError, match="overlap or touch"):
            NodeFaultPlan(faults=(NodeFault(0, PAUSE, 10, 20),
                                  NodeFault(0, CRASH, 30)))

    def test_disjoint_windows_accepted_across_cores_and_time(self):
        plan = NodeFaultPlan(faults=(NodeFault(0, PAUSE, 10, 20),
                                     NodeFault(0, CRASH, 31),
                                     NodeFault(1, PAUSE, 10, 20)))
        assert plan.active
        assert plan.affected_cores() == frozenset({0, 1})

    def test_rejects_non_nodefault_entries(self):
        with pytest.raises(ValueError, match="NodeFault instances"):
            NodeFaultPlan(faults=("crash",))

    def test_repr_round_trips(self):
        plan = _pause_plan()
        clone = eval(repr(plan))  # noqa: S307 - dataclass repr round-trip
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()

    def test_link_plan_rejects_out_of_range_probabilities(self):
        # Satellite hardening check: both fault axes validate at
        # construction with clear errors.
        with pytest.raises(ValueError, match="drop_prob must be in"):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ValueError, match="jitter_prob must be in"):
            FaultPlan(jitter_prob=-0.1)
        with pytest.raises(ValueError, match="requires max_jitter"):
            FaultPlan(jitter_prob=0.5)

    def test_system_rejects_out_of_range_core(self):
        wl = _counter_workload(2)
        with pytest.raises(ValueError, match="only 2 cores"):
            System(SystemConfig(n_cores=2), wl.programs, wl.initial_memory,
                   node_plan=_crash_plan(core=5))

    def test_scenarios_are_seed_deterministic(self):
        a = node_fault_scenarios(seed=3)
        b = node_fault_scenarios(seed=3)
        assert a == b
        assert not a["none"].active
        assert a["crash"].faults[0].kind == CRASH
        assert a["pause"].faults[0].kind == PAUSE
        assert len(a["pause-crash"].faults) == 2
        # Single-victim scenarios spare core 0 (the protagonist).
        assert 0 not in a["crash"].affected_cores()


# ------------------------------------------------------------- semantics

class TestCrashSemantics:
    def test_crash_stops_the_victim_and_spares_the_rest(self):
        wl = _counter_workload(2, iters=50)
        result = _run(wl, _crash_plan(core=1, at=200))
        assert result.crashed_core_ids() == [1]
        assert result.live_core_ids() == [0]
        assert result.read_word(0x1_0000) == 50          # survivor finished
        assert 0 < result.read_word(0x1_0040) < 50       # victim cut short
        summary = result.cores[1]
        assert summary.crashed and summary.crashed_at == 200
        assert not result.cores[0].crashed
        assert result.stats.snapshot()["nodefaults.crashes"] == 1

    def test_crash_after_halt_is_a_noop(self):
        wl = _counter_workload(2, iters=3)            # finishes early
        result = _run(wl, _crash_plan(core=1, at=50_000))
        assert result.crashed_core_ids() == []
        assert result.stats.snapshot().get("nodefaults.crashes", 0) == 0

    def test_crash_composes_with_link_faults(self):
        wl = _counter_workload(2, iters=50)
        link = FaultPlan(seed=2, drop_prob=0.05)
        result = _run(wl, _crash_plan(core=1, at=200), link)
        assert result.crashed_core_ids() == [1]
        snapshot = result.stats.snapshot()
        assert snapshot["nodefaults.crashes"] == 1
        assert "faults.dropped" in snapshot


class TestPauseSemantics:
    def test_pause_delays_then_recovers(self):
        wl = _counter_workload(2, iters=50)
        clean = _run(wl)
        paused = _run(wl, _pause_plan(core=1, at=200, duration=400))
        assert paused.crashed_core_ids() == []
        assert paused.read_word(0x1_0040) == 50       # victim still finished
        assert paused.cores[1].finish_cycle > clean.cores[1].finish_cycle
        snapshot = paused.stats.snapshot()
        assert snapshot["nodefaults.pauses"] == 1
        assert snapshot["nodefaults.resumes"] == 1
        assert snapshot["nodefaults.deferred"] == 1

    def test_pause_after_halt_is_a_noop(self):
        wl = _counter_workload(2, iters=3)
        result = _run(wl, _pause_plan(core=1, at=50_000, duration=100))
        assert result.stats.snapshot().get("nodefaults.pauses", 0) == 0


# ----------------------------------------------------------- determinism

class TestDeterminism:
    @pytest.mark.parametrize("plan_factory", [_crash_plan, _pause_plan])
    def test_replay_is_bit_identical(self, plan_factory):
        wl = _counter_workload(2, iters=50)
        first = _run(wl, plan_factory())
        second = _run(wl, plan_factory())
        assert result_fingerprint(first) == result_fingerprint(second)

    @pytest.mark.parametrize("plan_factory", [_crash_plan, _pause_plan])
    def test_fastpath_matches_compat(self, plan_factory):
        wl = _counter_workload(2, iters=50)
        fast = _run(wl, plan_factory(), fastpath=True)
        compat = _run(wl, plan_factory(), fastpath=False)
        assert result_fingerprint(fast) == result_fingerprint(compat)

    @pytest.mark.parametrize("plan_factory", [_crash_plan, _pause_plan])
    def test_superblocks_on_off_identical(self, plan_factory):
        wl = _counter_workload(2, iters=50)
        fused = _run(wl, plan_factory(), superblocks=True)
        plain = _run(wl, plan_factory(), superblocks=False)
        assert result_fingerprint(fused) == result_fingerprint(plain)

    def test_inactive_plan_is_invisible(self):
        wl = _counter_workload(2, iters=20)
        clean = _run(wl)
        inactive = _run(wl, NodeFaultPlan(seed=7))
        assert result_fingerprint(clean) == result_fingerprint(inactive)
        assert not any(key.startswith("nodefaults.")
                       for key in clean.stats.snapshot())
        assert not any(key.startswith("nodefaults.")
                       for key in inactive.stats.snapshot())


# ------------------------------------------------------ point fingerprints

class TestPointIdentity:
    def test_node_plan_is_part_of_point_identity(self):
        wl = _counter_workload(1)
        config = SystemConfig(n_cores=1)
        plan = _crash_plan(core=0)
        spec = RunSpec("p", config, wl, node_plan=plan)
        assert spec.fingerprint() == point_fingerprint(config, wl, None, plan)
        assert spec.fingerprint() != point_fingerprint(config, wl)
        assert point_fingerprint(config, wl, None, _crash_plan(core=0, at=9)) \
            != spec.fingerprint()

    def test_no_plan_keeps_historical_fingerprint(self):
        wl = _counter_workload(1)
        config = SystemConfig(n_cores=1)
        assert RunSpec("p", config, wl).fingerprint() == \
            point_fingerprint(config, wl)

    def test_simulate_point_accepts_node_plan(self):
        wl = _counter_workload(2, iters=50)
        result, _seconds = simulate_point(
            SystemConfig(n_cores=2), wl.programs, wl.initial_memory,
            None, _crash_plan(core=1, at=200))
        assert result.crashed_core_ids() == [1]


# ---------------------------------------------------- watchdog diagnostics

def _failstop_deadlock_system():
    """The directed scenario: dropped request + a crashed third core."""
    programs = []
    for tid in range(3):
        asm = Assembler(f"nfdump.t{tid}")
        if tid == 2:
            asm.exec_(600)
        asm.li(1, 0x1_0000).li(2, tid + 1)
        asm.store(2, base=1, offset=8 * tid)
        asm.halt()
        programs.append(asm.build())
    link = FaultPlan(seed=0, drop_first_n=1, retries_enabled=False)
    node = NodeFaultPlan(seed=0, faults=(NodeFault(2, CRASH, 100),))
    return System(SystemConfig(n_cores=3), programs, fault_plan=link,
                  node_plan=node)


class TestWatchdogDiagnostics:
    def test_dump_names_the_crashed_core(self):
        # Regression for the chaos layer: before it, the dump had no
        # notion of a dead node -- a fail-stop hang looked like a core
        # that silently stopped. Now the crash is named with its cycle
        # and the stores lost in the frozen buffer.
        system = _failstop_deadlock_system()
        with pytest.raises(DeadlockError) as excinfo:
            system.run(watchdog=Watchdog(system, check_interval=500))
        text = str(excinfo.value)
        assert "core 2: CRASHED (fail-stop) at cycle 100" in text
        assert "crash-stopped by the node-fault plan" in text
        # The dead core is excluded from the "blocked" list: it is not
        # stuck, it is gone.
        assert "cores [0] blocked" in text

    def test_dump_without_node_faults_has_no_crash_lines(self):
        wl = _counter_workload(2, iters=5)
        system = System(SystemConfig(n_cores=2), wl.programs,
                        wl.initial_memory)
        assert "CRASHED" not in diagnostic_dump(system)

    def test_dump_names_a_paused_core(self):
        wl = _counter_workload(2, iters=50)
        plan = _pause_plan(core=1, at=200, duration=400)
        system = System(SystemConfig(n_cores=2), wl.programs,
                        wl.initial_memory, node_plan=plan)
        # Drive the machine into the open pause window by hand (the
        # same start sequence System.run uses), then dump.
        system.node_controller.start()
        for core in system.cores:
            core.start()
        system.sim.run(until=300)
        assert system.cores[1].nf_state == 1
        dump = diagnostic_dump(system)
        assert "core 1: PAUSED since cycle 200" in dump
        assert "resumes at cycle 600" in dump

    def test_all_settled_counts_crashed_cores(self):
        wl = _counter_workload(2, iters=50)
        config = SystemConfig(n_cores=2)
        system = System(config, wl.programs, wl.initial_memory,
                        node_plan=_crash_plan(core=1, at=200))
        assert not system.all_settled
        system.run()
        assert system.all_settled
        assert not system.all_halted          # the victim never halts
        assert system.crashed_cores == {1}

"""Tier-1 smoke test for examples/run_synth.py --selftest.

The selftest is the CI gate for the fence-synthesis subsystem: it
synthesizes fence sets for every canonical litmus shape against both
stronger targets, asserts each recovers the known-minimal set
deterministically, and checks the cycle-cost story (StoreLoad fences
stall with speculation off; on-demand speculation recovers the loss).
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def cli():
    spec = importlib.util.spec_from_file_location(
        "run_synth", _ROOT / "examples" / "run_synth.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_selftest_passes(cli, capsys):
    assert cli.main(["--selftest"]) == 0
    out = capsys.readouterr().out
    assert "SELFTEST PASSED" in out
    assert "all known-minimal fence sets recovered" in out
    assert "FAIL" not in out


def test_single_workload_run(cli, capsys):
    assert cli.main(["--workload", "sb", "--target", "tso"]) == 0
    out = capsys.readouterr().out
    assert "0 fence(s)" in out

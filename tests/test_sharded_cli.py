"""Tier-1 smoke test for examples/run_sharded.py --selftest.

The selftest is the CI gate for the sharded engine: it proves a
sharded run reproduces the serial oracle bit for bit on an exact-match
grid point (through real forked workers *and* the inline driver), runs
a 64-core mesh point end-to-end through forked shard workers with the
workload's own validator asserting the answer, and checks the engine
refuses unshardable configurations cleanly.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def cli():
    spec = importlib.util.spec_from_file_location(
        "run_sharded", _ROOT / "examples" / "run_sharded.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_selftest_passes(cli, capsys):
    assert cli.main(["--selftest"]) == 0
    out = capsys.readouterr().out
    assert "SELFTEST PASSED" in out
    assert "64-core mesh point completes via forked shards" in out
    assert "FAIL" not in out


def test_small_table_renders(cli, capsys):
    # A reduced E15 table: two core counts, two shard workers.
    assert cli.main(["--cores", "8", "16", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "[E15]" in out
    assert "barrier-stencil" in out
    assert "gossip" in out

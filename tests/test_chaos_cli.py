"""Tier-1 smoke test for examples/run_chaos.py --selftest.

The selftest is the CI gate for the chaos layer: it runs the E14 chaos
matrix (protocol workloads under node + link faults, every safety
property checked), proves replays are byte-identical with superblock
fusion on or off, shows the watchdog's deadlock dump naming a
crash-stopped node, and exercises a real pause-resume recovery.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def cli():
    spec = importlib.util.spec_from_file_location(
        "run_chaos", _ROOT / "examples" / "run_chaos.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_selftest_passes(cli, capsys):
    assert cli.main(["--selftest"]) == 0
    out = capsys.readouterr().out
    assert "SELFTEST PASSED" in out
    assert "chaos layer deterministic, safe, diagnosable" in out
    assert "FAIL" not in out


def test_demo_failstop_names_dead_node(cli, capsys):
    assert cli.main(["--demo-failstop"]) == 0
    out = capsys.readouterr().out
    assert "CRASHED" in out
    assert "core 2" in out

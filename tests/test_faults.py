"""The fault-injection subsystem: plans, injector invariants, watchdog.

Covers the load-bearing guarantees documented in docs/ROBUSTNESS.md:

* FIFO per (src, dst) survives duplication, stalls, and jitter on both
  interconnect topologies (the MESI protocol relies on it);
* identical seed + identical plan => bit-identical results;
* a dropped request with retries disabled becomes a diagnosable
  :class:`DeadlockError` naming the stuck address and cores, while the
  same drop with retries enabled recovers to the fault-free
  architectural state;
* the liveness watchdog and ``max_cycles`` caps turn hangs into
  exceptions and perturb nothing on healthy runs.
"""

from __future__ import annotations

import pytest

from repro.coherence.messages import Message, MessageType
from repro.faults import (
    DROPPABLE,
    DeadlockError,
    FaultInjector,
    FaultPlan,
    LivelockError,
    Watchdog,
    fault_scenarios,
)
from repro.harness.parallel import result_fingerprint
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.mesh import Mesh
from repro.isa.program import Assembler
from repro.sim.config import InterconnectConfig
from repro.sim.engine import SimulationError, Simulator
from repro.sim.stats import StatsRegistry
from repro.system import System
from tests.conftest import small_config

SHARED = 0x1_0000


def _false_sharing_programs(n_cores: int = 2, rounds: int = 4):
    """Every core hammers its own word of one shared block: plenty of
    coherence traffic, but a timing-independent architectural outcome."""
    programs = []
    for tid in range(n_cores):
        asm = Assembler(f"faults.t{tid}")
        asm.li(1, SHARED)
        for i in range(rounds):
            asm.li(2, (tid + 1) * 100 + i)
            asm.store(2, base=1, offset=8 * tid)
            asm.load(3, base=1, offset=8 * ((tid + 1) % n_cores))
        asm.halt()
        programs.append(asm.build())
    return programs


def _run(plan=None, n_cores: int = 2, watchdog_args=None, **run_kwargs):
    system = System(small_config(n_cores), _false_sharing_programs(n_cores),
                    fault_plan=plan)
    watchdog = Watchdog(system, **watchdog_args) if watchdog_args is not None \
        else None
    result = system.run(check_invariants=True, watchdog=watchdog,
                        **run_kwargs)
    return system, result


# ----------------------------------------------------------------- FaultPlan

def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(drop_prob=1.5)
    with pytest.raises(ValueError):
        FaultPlan(jitter_prob=0.5)          # needs max_jitter > 0
    with pytest.raises(ValueError):
        FaultPlan(stall_prob=0.5)           # needs stall_cycles > 0
    with pytest.raises(ValueError):
        FaultPlan(dup_lag=0)
    with pytest.raises(ValueError):
        FaultPlan(nack_latency=0)


def test_plan_active_and_describe():
    assert not FaultPlan().active
    assert FaultPlan().describe().endswith("clean")
    plan = FaultPlan(drop_prob=0.1, retries_enabled=False)
    assert plan.active
    assert "drop=0.1" in plan.describe()
    assert "retries=off" in plan.describe()


def test_plan_fingerprint_content_addressed():
    assert FaultPlan(seed=1).fingerprint() == FaultPlan(seed=1).fingerprint()
    assert FaultPlan(seed=1).fingerprint() != FaultPlan(seed=2).fingerprint()


def test_plan_repr_is_eval_able():
    plan = fault_scenarios(seed=9)["storm"]
    assert eval(repr(plan)) == plan  # reproducer scripts rely on this


def test_scenarios_contain_fault_free_control():
    scenarios = fault_scenarios()
    assert not scenarios["none"].active
    assert all(plan.active for name, plan in scenarios.items()
               if name != "none")


def test_inactive_plan_leaves_interconnect_unwrapped():
    system = System(small_config(2), _false_sharing_programs(2),
                    fault_plan=FaultPlan())
    assert not isinstance(system.net, FaultInjector)
    assert system.fault_plan is None
    system = System(small_config(2), _false_sharing_programs(2),
                    fault_plan=FaultPlan(dup_prob=0.5))
    assert isinstance(system.net, FaultInjector)


# ------------------------------------------------- FIFO-per-pair invariant

class _Recorder:
    def __init__(self):
        self.received = []

    def receive(self, msg):
        self.received.append(msg)


def _nets(sim, stats, n_nodes):
    yield Crossbar(sim, InterconnectConfig(link_latency=3), stats)
    yield Mesh(sim, n_nodes, stats)


@pytest.mark.parametrize("net_index", [0, 1], ids=["crossbar", "mesh"])
def test_fifo_per_pair_under_duplication_stalls_and_jitter(net_index):
    n_nodes, n_msgs = 4, 60
    plan = FaultPlan(seed=7, dup_prob=0.4, dup_lag=2,
                     stall_prob=0.3, stall_cycles=17,
                     jitter_prob=0.5, max_jitter=9)
    sim = Simulator()
    stats = StatsRegistry()
    inner = list(_nets(sim, stats, n_nodes))[net_index]
    injector = FaultInjector(sim, inner, plan, stats)
    recorders = {}
    for node in range(n_nodes):
        recorders[node] = _Recorder()
        injector.attach(node, recorders[node])

    pairs = [(0, 1), (1, 0), (0, 2), (3, 1)]
    sent = {pair: [] for pair in pairs}

    def burst():
        for i in range(n_msgs):
            pair = pairs[i % len(pairs)]
            msg = Message(MessageType.GET_S, addr=64 * i, src=pair[0])
            sent[pair].append(msg.uid)
            injector.send(*pair, msg)

    sim.schedule_fast(0, burst)
    sim.run()

    assert stats.snapshot()["faults.duplicated"] > 0
    assert stats.snapshot()["faults.stalls"] > 0
    for (src, dst), uids in sent.items():
        arrived = [m.uid for m in recorders[dst].received if m.src == src]
        first_seen, seen = [], set()
        for uid in arrived:
            if uid not in seen:
                seen.add(uid)
                first_seen.append(uid)
        # First deliveries in exact send order; duplicates never overtake
        # a later message's first delivery.
        assert first_seen == uids
        assert set(arrived) == set(uids)
        for i, uid in enumerate(arrived):
            if uid in arrived[:i]:  # this is a duplicate copy
                assert arrived.index(uid) < i


# -------------------------------------------------------------- determinism

def test_same_seed_same_plan_bit_identical():
    plan = fault_scenarios(seed=5)["storm"]
    _, first = _run(plan, watchdog_args={})
    _, second = _run(plan, watchdog_args={})
    assert result_fingerprint(first) == result_fingerprint(second)
    assert first.stats.snapshot() == second.stats.snapshot()
    assert first.cycles == second.cycles


def test_different_seed_different_fault_sequence():
    base = fault_scenarios(seed=0)["storm"]
    other = fault_scenarios(seed=1)["storm"]
    _, first = _run(base, watchdog_args={})
    _, second = _run(other, watchdog_args={})
    # Final memory still matches (each word has one writer; faults change
    # timing only) ...
    assert _final_memory(first) == _final_memory(second)
    # ... but the runs are genuinely different executions.
    assert first.stats.snapshot() != second.stats.snapshot()


def _final_memory(result, n_cores: int = 2):
    """The per-core words of the shared block: single-writer each, so
    their final values are timing-independent (unlike the cross-core
    *loads*, whose observed values legitimately vary with fault timing)."""
    return [result.read_word(SHARED + 8 * tid) for tid in range(n_cores)]


# --------------------------------------------- drop / NACK / retry recovery

def test_drop_with_retries_recovers_fault_free_state():
    _, clean = _run(None)
    system, faulty = _run(FaultPlan(drop_first_n=3), watchdog_args={})
    snap = faulty.stats.snapshot()
    assert snap["faults.dropped"] == 3
    assert snap["faults.nacks_sent"] == 3
    retries = sum(snap[f"l1.{i}.retries"] for i in range(2)) \
        + snap["dir.retries"]
    assert retries >= 3
    assert _final_memory(faulty) == _final_memory(clean)


def test_duplicates_are_suppressed_not_reprocessed():
    _, clean = _run(None)
    _, faulty = _run(FaultPlan(seed=3, dup_prob=0.6, dup_lag=2),
                     watchdog_args={})
    snap = faulty.stats.snapshot()
    assert snap["faults.duplicated"] > 0
    suppressed = sum(snap[f"l1.{i}.dups_suppressed"] for i in range(2)) \
        + snap["dir.dups_suppressed"]
    assert suppressed == snap["faults.duplicated"]
    assert _final_memory(faulty) == _final_memory(clean)


def test_storm_scenario_completes_clean():
    plan = fault_scenarios(seed=2)["storm"]
    system, result = _run(plan, watchdog_args={})
    assert result.stats.snapshot()["faults.dropped"] >= 0
    assert system.all_halted


# --------------------------------------------------- deadlock and livelock

def test_dropped_request_without_retries_deadlocks_via_watchdog():
    plan = FaultPlan(drop_first_n=1, retries_enabled=False)
    with pytest.raises(DeadlockError) as info:
        _run(plan, watchdog_args=dict(check_interval=500))
    message = str(info.value)
    assert "deadlock" in message
    assert "blocked" in message
    assert f"{SHARED:#x}" in message        # the stuck address, from the dump
    assert "outstanding misses" in message
    assert "core" in message


def test_dropped_request_without_retries_deadlocks_on_drained_queue():
    # Same scenario without a watchdog: the queue drains and System.run's
    # own check raises, with the same diagnostic dump attached.
    plan = FaultPlan(drop_first_n=1, retries_enabled=False)
    with pytest.raises(DeadlockError) as info:
        _run(plan)
    message = str(info.value)
    assert "event queue drained" in message
    assert f"{SHARED:#x}" in message


def test_total_loss_with_retries_is_a_livelock():
    # Every request dropped, every retry dropped again: events churn
    # (NACK -> backoff -> retry) but nothing ever commits a memory op.
    plan = FaultPlan(drop_prob=1.0, retry_backoff_base=8,
                     retry_backoff_cap=2)
    with pytest.raises(LivelockError) as info:
        _run(plan, watchdog_args=dict(check_interval=2_000,
                                      no_commit_window=4_000))
    message = str(info.value)
    assert "livelock" in message
    assert "no instruction committed" in message


def test_watchdog_is_invisible_on_healthy_runs():
    _, plain = _run(None)
    _, watched = _run(None, watchdog_args={})
    assert result_fingerprint(plain) == result_fingerprint(watched)


# ------------------------------------------------------------- max_cycles

def test_simulator_max_cycles_cap():
    sim = Simulator()

    def tick():
        sim.schedule_fast(10, tick)

    sim.schedule_fast(0, tick)
    with pytest.raises(SimulationError, match="max_cycles"):
        sim.run(max_cycles=500)
    assert sim.now <= 500


def test_system_max_cycles_includes_diagnostic_dump():
    plan = FaultPlan(drop_prob=1.0, retry_backoff_base=8,
                     retry_backoff_cap=2)
    with pytest.raises(SimulationError) as info:
        _run(plan, max_cycles=5_000)
    message = str(info.value)
    assert "max_cycles" in message
    assert "diagnostic dump" in message


def test_max_cycles_does_not_perturb_completing_runs():
    _, uncapped = _run(None)
    _, capped = _run(None, max_cycles=10_000_000)
    assert result_fingerprint(uncapped) == result_fingerprint(capped)


# ----------------------------------------------------------- NACK plumbing

def test_nack_names_the_unreached_node():
    sim = Simulator()
    stats = StatsRegistry()
    inner = Crossbar(sim, InterconnectConfig(link_latency=3), stats)
    plan = FaultPlan(drop_first_n=1)
    injector = FaultInjector(sim, inner, plan, stats)
    sender, receiver = _Recorder(), _Recorder()
    injector.attach(0, sender)
    injector.attach(1, receiver)
    original = Message(MessageType.GET_M, addr=0x40, src=0)
    sim.schedule_fast(0, injector.send, 0, 1, original)
    sim.run()
    assert receiver.received == []          # dropped before the inner net
    assert len(sender.received) == 1
    nack = sender.received[0]
    assert nack.mtype is MessageType.NACK
    assert nack.src == 1                    # the node it never reached
    assert nack.orig is original


def test_only_resendable_types_are_droppable():
    assert MessageType.GET_S in DROPPABLE
    assert MessageType.GET_M in DROPPABLE
    assert MessageType.DATA_M not in DROPPABLE
    assert MessageType.INV_ACK not in DROPPABLE
    assert MessageType.PUT_ACK not in DROPPABLE
    assert MessageType.NACK not in DROPPABLE


def test_fault_free_stats_namespace_untouched():
    # Lazy counter creation: a fault-free run must not grow new stats
    # keys, or golden fingerprints would shift.
    _, clean = _run(None)
    assert not any(name.startswith(("faults.", "dir.nacks", "dir.retries",
                                    "dir.dups"))
                   or ".nacks_received" in name or ".retries" in name
                   or ".dups_suppressed" in name
                   for name in clean.stats.snapshot())

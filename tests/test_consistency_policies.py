"""Tests for the SC/TSO/RMO ordering policies."""

import pytest

from repro.consistency import RMOPolicy, SCPolicy, TSOPolicy, policy_for
from repro.isa import FenceKind
from repro.sim.config import ConsistencyModel


class TestSC:
    policy = SCPolicy()

    def test_everything_drains(self):
        assert self.policy.load_requires_drain()
        assert self.policy.store_requires_drain()
        assert self.policy.atomic_requires_drain()
        for kind in FenceKind:
            assert self.policy.fence_requires_drain(kind)

    def test_no_forwarding(self):
        assert not self.policy.allows_store_forwarding


class TestTSO:
    policy = TSOPolicy()

    def test_loads_and_stores_bypass(self):
        assert not self.policy.load_requires_drain()
        assert not self.policy.store_requires_drain()

    def test_only_store_load_fences_drain(self):
        assert self.policy.fence_requires_drain(FenceKind.FULL)
        assert self.policy.fence_requires_drain(FenceKind.STORE_LOAD)
        assert not self.policy.fence_requires_drain(FenceKind.STORE_STORE)
        assert not self.policy.fence_requires_drain(FenceKind.LOAD_LOAD)
        assert not self.policy.fence_requires_drain(FenceKind.LOAD_STORE)

    def test_atomics_drain(self):
        assert self.policy.atomic_requires_drain()

    def test_forwarding_allowed(self):
        assert self.policy.allows_store_forwarding


class TestRMO:
    policy = RMOPolicy()

    def test_matches_tso_on_this_machine(self):
        """On an in-order core with a FIFO buffer, RMO's extra freedom
        beyond TSO is unobservable -- the policies must agree."""
        tso = TSOPolicy()
        assert self.policy.load_requires_drain() == tso.load_requires_drain()
        for kind in FenceKind:
            assert (self.policy.fence_requires_drain(kind)
                    == tso.fence_requires_drain(kind))


def test_policy_for_every_model():
    assert isinstance(policy_for(ConsistencyModel.SC), SCPolicy)
    assert isinstance(policy_for(ConsistencyModel.TSO), TSOPolicy)
    assert isinstance(policy_for(ConsistencyModel.RMO), RMOPolicy)


def test_policy_model_attributes():
    for model in ConsistencyModel:
        assert policy_for(model).model is model

"""Tier-1 smoke test for examples/run_service.py --selftest.

The selftest is the CI gate for the simulation-as-a-service tier: it
starts a real server on a temporary socket, submits a tiny grid twice,
and asserts the second submission is served entirely from the
persistent store with fingerprint-identical results -- then restarts
the server on the same store to prove durability, and checks that
rate-limit rejection carries a usable retry_after.  No long-lived
daemon is involved.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def cli():
    spec = importlib.util.spec_from_file_location(
        "run_service", _ROOT / "examples" / "run_service.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_selftest_passes(cli, capsys):
    assert cli.main(["--selftest"]) == 0
    out = capsys.readouterr().out
    assert "served 100% from the persistent store" in out
    assert "fingerprint-identical" in out
    assert "SELFTEST PASSED" in out
    assert "FAIL" not in out


def test_submit_without_server_fails_cleanly(cli, capsys, tmp_path):
    missing = str(tmp_path / "nobody-home.sock")
    assert cli.main(["--submit", "--socket", missing]) == 1
    assert "no server" in capsys.readouterr().out

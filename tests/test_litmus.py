"""Litmus battery: consistency semantics and speculation invisibility.

For every litmus test, consistency model, and speculation mode, the set
of observed outcomes over a grid of timing skews must be a subset of the
outcomes the *base* model allows.  This is the paper's correctness
claim: InvisiFence never changes the memory model, only its cost.
"""

import pytest

from repro.sim.config import ConsistencyModel, SpeculationMode, SystemConfig
from repro.system import System
from repro.workloads.litmus import (
    all_litmus_tests,
    atomicity,
    coherence_read_read,
    message_passing,
    store_buffering,
)

SKEWS = [(a, b) for a in (0, 5, 17, 60) for b in (0, 5, 17, 60)]


def observed_outcomes(test, model, spec_mode):
    outcomes = set()
    for skew in SKEWS:
        config = (SystemConfig(n_cores=test.n_threads)
                  .with_consistency(model)
                  .with_speculation(spec_mode))
        system = System(config, test.build(list(skew)))
        result = system.run(check_invariants=True)
        outcomes.add(test.observe(result))
    return outcomes


@pytest.mark.parametrize("model", list(ConsistencyModel))
@pytest.mark.parametrize("spec", list(SpeculationMode))
@pytest.mark.parametrize("test", all_litmus_tests(), ids=lambda t: t.name)
def test_outcomes_subset_of_allowed(test, model, spec):
    outcomes = observed_outcomes(test, model, spec)
    allowed = test.allowed[model]
    assert outcomes <= allowed, (
        f"{test.name} under {model.value}+{spec.value} produced forbidden "
        f"outcomes: {outcomes - allowed}"
    )


class TestSpecificShapes:
    def test_sb_relaxation_visible_under_tso(self):
        """The (0,0) outcome must actually occur on the padded SB test
        under TSO (the machine is not accidentally sequential).  The
        unpadded variant never shows it: drains start eagerly in program
        order, so the flag store's coherence transaction always precedes
        the load's -- see store_buffering's docstring."""
        outcomes = observed_outcomes(
            store_buffering(fenced=False, padded=True),
            ConsistencyModel.TSO, SpeculationMode.NONE)
        assert (0, 0) in outcomes

    def test_sb_fence_restores_order_under_tso(self):
        outcomes = observed_outcomes(
            store_buffering(fenced=True, padded=True),
            ConsistencyModel.TSO, SpeculationMode.NONE)
        assert (0, 0) not in outcomes

    def test_sc_never_shows_sb_relaxation(self):
        outcomes = observed_outcomes(store_buffering(fenced=False),
                                     ConsistencyModel.SC,
                                     SpeculationMode.NONE)
        assert (0, 0) not in outcomes

    @pytest.mark.parametrize("spec", [SpeculationMode.ON_DEMAND,
                                      SpeculationMode.CONTINUOUS])
    @pytest.mark.parametrize("padded", [False, True])
    def test_speculation_preserves_fenced_sb(self, spec, padded):
        """The headline invisibility check: even with the fence
        speculated past, (0,0) never commits."""
        for model in ConsistencyModel:
            outcomes = observed_outcomes(
                store_buffering(fenced=True, padded=padded), model, spec)
            assert (0, 0) not in outcomes, f"violated under {model.value}"

    @pytest.mark.parametrize("spec", list(SpeculationMode))
    def test_atomicity_never_lost(self, spec):
        outcomes = observed_outcomes(atomicity(), ConsistencyModel.RMO, spec)
        assert outcomes <= {(0, 1, 2), (1, 0, 2)}

    @pytest.mark.parametrize("spec", list(SpeculationMode))
    def test_coherence_never_reads_backwards(self, spec):
        outcomes = observed_outcomes(coherence_read_read(),
                                     ConsistencyModel.RMO, spec)
        assert (1, 0) not in outcomes

    def test_mp_handoff_value_correct(self):
        outcomes = observed_outcomes(message_passing(fenced=True),
                                     ConsistencyModel.TSO,
                                     SpeculationMode.ON_DEMAND)
        assert (1, 0) not in outcomes

"""Tests for the message-trace facility."""

import pytest

from repro.isa import Assembler
from repro.sim.trace import MessageTrace, TraceEntry
from repro.system import System
from tests.conftest import small_config

X = 0x1000


def traced_run():
    asm = Assembler("t")
    asm.li(1, X).li(2, 7)
    asm.store(2, base=1)
    asm.load(3, base=1)
    system = System(small_config(1), [asm.build()])
    trace = system.enable_tracing()
    system.run()
    return system, trace


class TestMessageTrace:
    def test_records_protocol_messages(self):
        _, trace = traced_run()
        types = {e.mtype for e in trace.entries()}
        assert "GET_M" in types
        assert "DATA_M" in types

    def test_entries_in_cycle_order(self):
        _, trace = traced_run()
        cycles = [e.cycle for e in trace.entries()]
        assert cycles == sorted(cycles)

    def test_filter_by_addr(self):
        _, trace = traced_run()
        for entry in trace.filter(addr=X):
            assert entry.addr == X
        assert trace.filter(addr=X)

    def test_filter_by_node_and_type(self):
        _, trace = traced_run()
        gets = trace.filter(mtype="GET_M")
        assert all(e.mtype == "GET_M" for e in gets)
        core0 = trace.filter(node=0)
        assert all(0 in (e.src, e.dst) for e in core0)

    def test_render_contains_header_and_rows(self):
        _, trace = traced_run()
        text = trace.render()
        assert "cycle" in text
        assert "GET_M" in text

    def test_render_last_n(self):
        _, trace = traced_run()
        assert len(trace.render(last=1).splitlines()) == 2

    def test_ring_buffer_drops_oldest(self):
        trace = MessageTrace(limit=2)

        class Msg:
            def __init__(self, addr):
                self.addr = addr
                self.mtype = type("T", (), {"name": "X"})

        for i in range(5):
            trace.record(i, 0, 1, Msg(i))
        assert len(trace) == 2
        assert trace.dropped == 3
        assert "dropped" in trace.render()

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            MessageTrace(limit=0)

    def test_entry_format(self):
        entry = TraceEntry(12, 0, 1, "GET_S", 0x1000)
        assert "GET_S" in entry.format()

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.sim.config import (
    CacheConfig,
    ConsistencyModel,
    CoreConfig,
    InterconnectConfig,
    MemoryConfig,
    SpeculationConfig,
    SpeculationMode,
    SystemConfig,
)


def small_config(n_cores: int = 2, **spec_kwargs) -> SystemConfig:
    """A small, fast system configuration for unit/integration tests."""
    spec = SpeculationConfig(**spec_kwargs) if spec_kwargs else SpeculationConfig()
    return SystemConfig(
        n_cores=n_cores,
        l1=CacheConfig(size_bytes=4 * 1024, assoc=4, block_bytes=64, hit_latency=2),
        memory=MemoryConfig(l2_hit_latency=8, dram_latency=40, directory_latency=2),
        interconnect=InterconnectConfig(link_latency=3),
        core=CoreConfig(store_buffer_entries=8),
        speculation=spec,
    )


@pytest.fixture
def config2():
    return small_config(2)


@pytest.fixture
def config4():
    return small_config(4)


ALL_MODELS = list(ConsistencyModel)
ALL_SPEC_MODES = list(SpeculationMode)
SPECULATIVE_MODES = [SpeculationMode.ON_DEMAND, SpeculationMode.CONTINUOUS]


# ----------------------------------------------------------- liveness guard
#
# A per-test wall-clock timeout so a simulator hang (the exact bug class
# the watchdog exists for) fails the suite instead of wedging it.
# Homegrown on SIGALRM because the environment has no pytest-timeout
# plugin; it only works on the main thread of a Unix platform, and is a
# no-op elsewhere.

TEST_TIMEOUT_SECONDS = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    use_alarm = (
        TEST_TIMEOUT_SECONDS > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return (yield)

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded {TEST_TIMEOUT_SECONDS}s "
            f"(REPRO_TEST_TIMEOUT): {item.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.alarm(TEST_TIMEOUT_SECONDS)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

"""Tests for the micro-ISA: instructions, assembler, semantics."""

import pytest

from repro.isa import Assembler, FenceKind, Opcode, Program
from repro.isa.instructions import Instruction, REG_COUNT, WORD_BYTES
from repro.isa.program import AssemblyError
from repro.isa import semantics


class TestInstruction:
    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=REG_COUNT)
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rs=-1)

    def test_fence_requires_kind(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.FENCE)
        Instruction(Opcode.FENCE, fence=FenceKind.FULL)

    def test_exec_latency_positive(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.EXEC, imm=0)

    def test_classification_load(self):
        load = Instruction(Opcode.LOAD, rd=1, rs=2)
        assert load.is_load and load.is_memory
        assert not load.writes_memory and not load.is_atomic

    def test_classification_store(self):
        store = Instruction(Opcode.STORE, rs=1, rt=2)
        assert store.is_store and store.writes_memory and store.is_memory

    def test_classification_atomics(self):
        for op in (Opcode.TAS, Opcode.SWAP, Opcode.CAS, Opcode.FETCH_ADD):
            instr = Instruction(op, rd=1, rs=2)
            assert instr.is_atomic and instr.is_memory and instr.writes_memory

    def test_classification_branches(self):
        for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP):
            assert Instruction(op).is_branch

    def test_classification_alu(self):
        assert Instruction(Opcode.ADD).is_alu
        assert Instruction(Opcode.EXEC, imm=3).is_alu
        assert not Instruction(Opcode.NOP).is_alu

    def test_str_renders(self):
        assert "FENCE" in str(Instruction(Opcode.FENCE, fence=FenceKind.FULL))
        assert "LOAD" in str(Instruction(Opcode.LOAD, rd=1, rs=2))


class TestFenceKind:
    def test_full_orders_everything(self):
        f = FenceKind.FULL
        assert f.orders_store_load and f.orders_store_store
        assert f.orders_load_load and f.orders_load_store

    def test_directional_fences_order_only_their_pair(self):
        assert FenceKind.STORE_LOAD.orders_store_load
        assert not FenceKind.STORE_LOAD.orders_store_store
        assert FenceKind.STORE_STORE.orders_store_store
        assert not FenceKind.STORE_STORE.orders_store_load
        assert FenceKind.LOAD_LOAD.orders_load_load
        assert FenceKind.LOAD_STORE.orders_load_store


class TestAssembler:
    def test_build_appends_halt(self):
        program = Assembler("t").li(1, 5).build()
        assert program[len(program) - 1].op is Opcode.HALT

    def test_halt_not_duplicated(self):
        program = Assembler("t").li(1, 5).halt().build()
        assert len(program) == 2

    def test_label_resolution(self):
        asm = Assembler("t")
        asm.li(1, 0)
        asm.label("target")
        asm.addi(1, 1, 1)
        asm.jmp("target")
        program = asm.build()
        jmp = program[2]
        assert jmp.op is Opcode.JMP and jmp.target == 1

    def test_forward_label_resolution(self):
        asm = Assembler("t")
        asm.jmp("end")
        asm.li(1, 99)
        asm.label("end")
        asm.halt()
        program = asm.build()
        assert program[0].target == 2

    def test_undefined_label_raises(self):
        asm = Assembler("t").jmp("nowhere")
        with pytest.raises(AssemblyError, match="nowhere"):
            asm.build()

    def test_duplicate_label_raises(self):
        asm = Assembler("t").label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_unaligned_offset_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler("t").load(1, base=2, offset=4)
        with pytest.raises(AssemblyError):
            Assembler("t").store(1, base=2, offset=3)

    def test_aligned_offsets_accepted(self):
        Assembler("t").load(1, base=2, offset=WORD_BYTES * 3)

    def test_fluent_chaining(self):
        program = (Assembler("t").li(1, 1).li(2, 2).add(3, 1, 2).build())
        assert len(program) == 4  # + HALT

    def test_listing_contains_labels(self):
        asm = Assembler("t")
        asm.label("start").nop().jmp("start")
        listing = asm.build().listing()
        assert "start:" in listing

    def test_static_counts(self):
        asm = Assembler("t")
        asm.li(1, 0x100)
        asm.load(2, base=1)
        asm.store(2, base=1)
        asm.tas(3, base=1)
        asm.fence(FenceKind.FULL)
        asm.beq(2, 3, "end")
        asm.label("end")
        counts = asm.build().static_counts()
        assert counts["load"] == 1
        assert counts["store"] == 1
        assert counts["atomic"] == 1
        assert counts["fence"] == 1
        assert counts["branch"] == 1
        assert counts["alu"] == 1


class TestSemantics:
    def test_word_wraparound(self):
        assert semantics.to_word(2 ** 64) == 0
        assert semantics.to_word(-1) == 2 ** 64 - 1

    def test_signed_conversion(self):
        assert semantics.to_signed(2 ** 64 - 1) == -1
        assert semantics.to_signed(5) == 5

    @pytest.mark.parametrize("op,rs,rt,expected", [
        (Opcode.ADD, 2, 3, 5),
        (Opcode.SUB, 2, 3, 2 ** 64 - 1),
        (Opcode.MUL, 4, 5, 20),
        (Opcode.AND, 0b110, 0b011, 0b010),
        (Opcode.OR, 0b110, 0b011, 0b111),
        (Opcode.XOR, 0b110, 0b011, 0b101),
        (Opcode.SLT, 1, 2, 1),
        (Opcode.SLT, 2, 1, 0),
        (Opcode.MOV, 7, 0, 7),
    ])
    def test_alu_ops(self, op, rs, rt, expected):
        instr = Instruction(op, rd=1, rs=2, rt=3)
        assert semantics.alu_result(instr, rs, rt) == expected

    def test_slt_is_signed(self):
        instr = Instruction(Opcode.SLT, rd=1, rs=2, rt=3)
        minus_one = semantics.to_word(-1)
        assert semantics.alu_result(instr, minus_one, 0) == 1

    def test_li_and_slti_use_imm(self):
        assert semantics.alu_result(Instruction(Opcode.LI, imm=42), 0, 0) == 42
        assert semantics.alu_result(Instruction(Opcode.SLTI, rs=1, imm=10), 5, 0) == 1

    def test_alu_result_rejects_non_alu(self):
        with pytest.raises(ValueError):
            semantics.alu_result(Instruction(Opcode.LOAD), 0, 0)

    @pytest.mark.parametrize("op,rs,rt,taken", [
        (Opcode.BEQ, 1, 1, True),
        (Opcode.BEQ, 1, 2, False),
        (Opcode.BNE, 1, 2, True),
        (Opcode.BLT, 1, 2, True),
        (Opcode.BGE, 2, 2, True),
        (Opcode.JMP, 0, 0, True),
    ])
    def test_branches(self, op, rs, rt, taken):
        assert semantics.branch_taken(Instruction(op), rs, rt) is taken

    def test_blt_signed(self):
        minus = semantics.to_word(-5)
        assert semantics.branch_taken(Instruction(Opcode.BLT), minus, 0)

    def test_effective_address(self):
        instr = Instruction(Opcode.LOAD, rd=1, rs=2, imm=16)
        assert semantics.effective_address(instr, 0x100) == 0x110

    def test_atomic_tas(self):
        loaded, new = semantics.atomic_result(Instruction(Opcode.TAS), 0, 0, 0)
        assert (loaded, new) == (0, 1)
        loaded, new = semantics.atomic_result(Instruction(Opcode.TAS), 1, 0, 0)
        assert (loaded, new) == (1, 1)

    def test_atomic_swap(self):
        loaded, new = semantics.atomic_result(Instruction(Opcode.SWAP), 5, 9, 0)
        assert (loaded, new) == (5, 9)

    def test_atomic_cas_success_and_failure(self):
        cas = Instruction(Opcode.CAS)
        assert semantics.atomic_result(cas, 7, 7, 42) == (7, 42)
        assert semantics.atomic_result(cas, 8, 7, 42) == (8, None)

    def test_atomic_fetch_add(self):
        fa = Instruction(Opcode.FETCH_ADD)
        assert semantics.atomic_result(fa, 10, 3, 0) == (10, 13)

    def test_atomic_result_rejects_non_atomic(self):
        with pytest.raises(ValueError):
            semantics.atomic_result(Instruction(Opcode.LOAD), 0, 0, 0)

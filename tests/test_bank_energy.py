"""Tests for the bank-transfer workload and the energy model."""

import pytest

from repro.analysis.energy import EnergyParams, EnergyReport, estimate_energy
from repro.sim.config import ConsistencyModel, SpeculationMode
from repro.system import run_system
from repro.workloads.bank import bank_transfer
from repro.workloads import streaming, randmix
from tests.conftest import small_config


class TestBankTransfer:
    @pytest.mark.parametrize("model", list(ConsistencyModel))
    def test_money_conserved(self, model):
        wl = bank_transfer(3, n_accounts=5, transfers_per_thread=6)
        config = small_config(3).with_consistency(model)
        result = run_system(config, wl.programs, wl.initial_memory,
                            check_invariants=True)
        wl.check(result)

    @pytest.mark.parametrize("spec", list(SpeculationMode))
    def test_money_conserved_speculative(self, spec):
        wl = bank_transfer(3, n_accounts=5, transfers_per_thread=6)
        config = (small_config(3).with_consistency(ConsistencyModel.SC)
                  .with_speculation(spec))
        result = run_system(config, wl.programs, wl.initial_memory,
                            check_invariants=True)
        wl.check(result)

    def test_deterministic_by_seed(self):
        a = bank_transfer(2, seed=9)
        b = bank_transfer(2, seed=9)
        assert [list(p) for p in a.programs] == [list(p) for p in b.programs]

    def test_needs_two_accounts(self):
        with pytest.raises(ValueError):
            bank_transfer(2, n_accounts=1)

    def test_lost_update_would_be_detected(self):
        wl = bank_transfer(2, n_accounts=4, transfers_per_thread=3)
        result = run_system(small_config(2), wl.programs, wl.initial_memory)

        class Corrupt:
            def read_word(self, addr):
                return result.read_word(addr) + (
                    7 if addr == min(wl.initial_memory) else 0)

        with pytest.raises(AssertionError, match="conserved"):
            wl.check(Corrupt())


class TestEnergyModel:
    def _run(self, spec=SpeculationMode.NONE, workload=None):
        wl = workload or streaming.streaming_writer(2, iterations=10)
        config = (small_config(wl.n_threads)
                  .with_consistency(ConsistencyModel.SC)
                  .with_speculation(spec))
        return run_system(config, wl.programs, wl.initial_memory)

    def test_components_positive_and_total_sums(self):
        report = estimate_energy(self._run())
        assert report.total == pytest.approx(sum(report.components.values()))
        assert report.components["dram_accesses"] > 0
        assert report.components["network_messages"] > 0
        assert report.wasted == 0  # no speculation

    def test_wasted_energy_appears_under_conflicts(self):
        wl = randmix.false_sharing(3, iterations=30, fence_every=2)
        report = estimate_energy(self._run(SpeculationMode.ON_DEMAND, wl))
        assert report.wasted > 0

    def test_params_scale_linearly(self):
        run = self._run()
        cheap = estimate_energy(run, EnergyParams(dram_access=1.0))
        costly = estimate_energy(run, EnergyParams(dram_access=200.0))
        assert (costly.components["dram_accesses"]
                == 200 * cheap.components["dram_accesses"])

    def test_energy_delay_product(self):
        run = self._run()
        report = estimate_energy(run)
        assert report.energy_delay_product(run.cycles) == report.total * run.cycles

    def test_render_sorted_with_total(self):
        text = estimate_energy(self._run()).render()
        assert "total" in text
        assert "dram_accesses" in text

    def test_speculation_cuts_edp_on_streaming(self):
        base = self._run(SpeculationMode.NONE)
        spec = self._run(SpeculationMode.ON_DEMAND)
        base_edp = estimate_energy(base).energy_delay_product(base.cycles)
        spec_edp = estimate_energy(spec).energy_delay_product(spec.cycles)
        assert spec_edp < base_edp

"""Sharded-vs-serial oracle equality: the exact-match grid.

The serial engine is the deterministic oracle.  On the configurations
below -- crossbar and mesh, both speculation modes, superblocks on and
off, multi-home directories, pair-scope link-fault plans, and node-fault
(chaos) plans -- a sharded run must reproduce the serial engine's result
*bit for bit*: same ``result_fingerprint`` (cycles, full stats snapshot,
registers, memory) and same event count, for every listed shard count.

Scope (the caveat docs/SHARDING.md spells out): the serial engine orders
same-cycle message arrivals at one endpoint by global send order, which
no shard can observe.  Points where two shards send to the same endpoint
on the same cycle -- pervasive on high-contention mesh links -- may
therefore settle those ties differently while still being correct and
internally deterministic.  This grid is curated to the tie-free region;
what holds *unconditionally* is covered by the other classes here:
``shards=1`` is the serial machine exactly, and the forked and inline
drivers are bit-identical to each other on every input.
"""

from dataclasses import replace

import pytest

from repro.faults import CRASH, PAUSE, FaultPlan, NodeFault, NodeFaultPlan
from repro.harness.parallel import (
    point_fingerprint,
    result_fingerprint,
    simulate_point,
)
from repro.sim.config import (
    InterconnectConfig,
    SpeculationMode,
    Topology,
)
from repro.sim.sharded import ShardingError, ShardLayout, run_sharded
from repro.system import System
from repro.workloads.locks import lock_contention
from repro.workloads.producer_consumer import pingpong
from repro.workloads.protocols import gossip, leader_election, replicated_log
from tests.conftest import small_config


def xbar5(n_cores, homes=1):
    """small_config with the crossbar link stretched to 5 cycles: a wider
    lookahead window, and the configuration most of the grid was
    curated on."""
    cfg = small_config(n_cores)
    cfg = replace(cfg, interconnect=replace(cfg.interconnect, link_latency=5))
    return replace(cfg, n_homes=homes) if homes != 1 else cfg


def mesh_cfg(n_cores, hop):
    return replace(small_config(n_cores),
                   interconnect=InterconnectConfig(
                       topology=Topology.MESH, mesh_hop_latency=hop))


#: pair-scope link-fault plan (the only scope sharding accepts active).
_PAIR_PLAN = FaultPlan(seed=5, jitter_prob=0.1, max_jitter=4, dup_prob=0.05,
                       rng_scope="pair")

#: (name, config, workload, fault_plan, node_plan, shard counts)
_GRID = [
    ("pingpong2-xbar", small_config(2), pingpong(1, rounds=6),
     None, None, (2,)),
    ("pingpong2-mesh", mesh_cfg(2, 2), pingpong(1, rounds=6),
     None, None, (2,)),
    ("pingpong4-xbar", small_config(4), pingpong(2, rounds=6),
     None, None, (2, 4)),
    ("pingpong8-xbar", small_config(8), pingpong(4, rounds=5),
     None, None, (2, 3, 4)),
    ("pingpong8-mesh", mesh_cfg(8, 2), pingpong(4, rounds=5),
     None, None, (2,)),
    ("gossip4-xbar-L5", xbar5(4), gossip(4),
     None, None, (2, 3, 4)),
    ("locks4-xbar-L5", xbar5(4),
     lock_contention(4, increments=6, think_cycles=5), None, None, (2, 4)),
    ("replog4-xbar-L5", xbar5(4), replicated_log(4),
     None, None, (2, 4)),
    ("gossip4-xbar-L5-spec",
     xbar5(4).with_speculation(SpeculationMode.CONTINUOUS), gossip(4),
     None, None, (2, 4)),
    ("election8-xbar-L3", small_config(8), leader_election(8),
     None, None, (2,)),
    ("election8-xbar-L5-homes4", xbar5(8, homes=4), leader_election(8),
     None, None, (2,)),
    ("gossip4-nosb-L5", replace(xbar5(4), superblocks=False), gossip(4),
     None, None, (2, 3, 4)),
    ("pingpong4-nosb-L5", replace(xbar5(4), superblocks=False),
     pingpong(2, rounds=6), None, None, (2, 3, 4)),
    ("gossip4-xbar-pairfault", small_config(4), gossip(4),
     _PAIR_PLAN, None, (2, 4)),
    ("pingpong4-xbar-pairfault", small_config(4), pingpong(2, rounds=6),
     _PAIR_PLAN, None, (2, 4)),
    ("gossip4-L5-crash", xbar5(4), gossip(4),
     None, NodeFaultPlan(faults=(NodeFault(2, CRASH, 400),)), (2, 4)),
    ("pingpong8-pause", small_config(8), pingpong(4, rounds=5),
     None, NodeFaultPlan(faults=(NodeFault(1, PAUSE, 300, 200),)), (2, 4)),
    ("pingpong4-chaos", small_config(4), pingpong(2, rounds=6),
     _PAIR_PLAN, NodeFaultPlan(faults=(NodeFault(1, PAUSE, 200, 150),)),
     (2, 4)),
]


def _serial(config, wl, fault_plan=None, node_plan=None, fastpath=True):
    system = System(config, wl.programs, wl.initial_memory,
                    fault_plan=fault_plan, node_plan=node_plan,
                    fastpath=fastpath)
    return system.run()


def _sharded(config, wl, shards, fault_plan=None, node_plan=None,
             fastpath=True, mode="inline"):
    return run_sharded(config, wl.programs, wl.initial_memory, shards=shards,
                       fault_plan=fault_plan, node_plan=node_plan,
                       fastpath=fastpath, mode=mode)


class TestOracleGrid:
    """Every curated point: sharded == serial, bit for bit."""

    @pytest.mark.parametrize(
        "name,config,wl,fault_plan,node_plan,shard_counts", _GRID,
        ids=[point[0] for point in _GRID])
    def test_sharded_matches_serial(self, name, config, wl, fault_plan,
                                    node_plan, shard_counts):
        serial = _serial(config, wl, fault_plan, node_plan)
        expected = result_fingerprint(serial)
        for shards in shard_counts:
            sharded = _sharded(config, wl, shards, fault_plan, node_plan)
            assert sharded.events == serial.events, (name, shards)
            assert result_fingerprint(sharded) == expected, (name, shards)

    def test_one_grid_point_via_fork(self):
        # The forked transport on a real grid point (the rest use the
        # bit-identical inline driver to keep the suite fast).
        config, wl = xbar5(4), gossip(4)
        serial = _serial(config, wl)
        forked = _sharded(config, wl, 2, mode="fork")
        assert result_fingerprint(forked) == result_fingerprint(serial)
        assert forked.sharding["mode"] == "fork"


class TestCompatEngine:
    """fastpath=False on both sides: the sharded engine composes with
    the Event-allocating compat scheduler too."""

    @pytest.mark.parametrize("name,config,wl,shards", [
        ("gossip4-L5", xbar5(4), gossip(4), 2),
        ("pingpong8", small_config(8), pingpong(4, rounds=5), 4),
        ("pingpong2-mesh", mesh_cfg(2, 2), pingpong(1, rounds=6), 2),
    ], ids=["gossip4-L5", "pingpong8", "pingpong2-mesh"])
    def test_compat_sharded_matches_compat_serial(self, name, config, wl,
                                                  shards):
        serial = _serial(config, wl, fastpath=False)
        sharded = _sharded(config, wl, shards, fastpath=False)
        assert result_fingerprint(sharded) == result_fingerprint(serial)
        assert sharded.events == serial.events


class TestUnconditionalInvariants:
    """Properties that hold on *every* input, on or off the grid."""

    def test_single_shard_is_the_serial_machine(self):
        # gossip8 on the default small_config is off the exact-match
        # grid (same-cycle ties); shards=1 must still be exact -- it is
        # literally the serial machine run through the sharded entry.
        config, wl = small_config(8), gossip(8)
        serial = _serial(config, wl)
        single = _sharded(config, wl, 1)
        assert result_fingerprint(single) == result_fingerprint(serial)
        assert single.sharding == {"mode": "single", "epochs": 0,
                                   "shards": 1}

    @pytest.mark.parametrize("config,wl,shards", [
        (small_config(8), gossip(8), 4),          # serial-divergent point
        (mesh_cfg(8, 2), gossip(8), 4),           # mesh, serial-divergent
        (xbar5(4), gossip(4), 2),                 # grid point
    ], ids=["gossip8-xbar", "gossip8-mesh", "gossip4-grid"])
    def test_fork_and_inline_are_bit_identical(self, config, wl, shards):
        # The process transport is invisible: the forked run equals the
        # inline run even where both diverge from the serial engine.
        inline = _sharded(config, wl, shards, mode="inline")
        forked = _sharded(config, wl, shards, mode="fork")
        assert result_fingerprint(forked) == result_fingerprint(inline)
        assert forked.events == inline.events

    def test_sharded_run_is_deterministic(self):
        config, wl = small_config(8), gossip(8)  # off-grid on purpose
        first = _sharded(config, wl, 4)
        second = _sharded(config, wl, 4)
        assert result_fingerprint(first) == result_fingerprint(second)


class TestRefusals:
    def test_commit_arbitration_refused(self):
        config = small_config(4).with_speculation(
            SpeculationMode.ON_DEMAND, commit_arbitration=True)
        wl = gossip(4)
        with pytest.raises(ShardingError, match="arbit"):
            _sharded(config, wl, 2)

    def test_global_scope_fault_plan_refused(self):
        plan = FaultPlan(seed=1, jitter_prob=0.2, max_jitter=3)  # global
        wl = gossip(4)
        with pytest.raises(ShardingError, match="rng_scope"):
            _sharded(small_config(4), wl, 2, fault_plan=plan)

    def test_inactive_global_plan_allowed(self):
        # A do-nothing plan perturbs nothing, so its scope is irrelevant.
        wl = gossip(4)
        result = _sharded(small_config(4), wl, 2,
                          fault_plan=FaultPlan(seed=1))
        wl.check(result)

    def test_zero_lookahead_refused(self):
        cfg = small_config(2)
        cfg = replace(cfg, interconnect=replace(cfg.interconnect,
                                                link_latency=0))
        with pytest.raises(ShardingError, match="lookahead"):
            _sharded(cfg, pingpong(1, rounds=2), 2)

    def test_more_shards_than_cores_refused(self):
        with pytest.raises(ShardingError):
            _sharded(small_config(2), pingpong(1, rounds=2), 3)

    def test_zero_shards_refused(self):
        with pytest.raises(ShardingError):
            _sharded(small_config(2), pingpong(1, rounds=2), 0)

    def test_node_fault_beyond_core_count_rejected(self):
        plan = NodeFaultPlan(faults=(NodeFault(7, CRASH, 100),))
        with pytest.raises(ValueError, match="core 7"):
            _sharded(small_config(4), gossip(4), 2, node_plan=plan)


class TestLayout:
    def test_slices_cover_everything_once(self):
        config = replace(small_config(8), n_homes=3)
        layout = ShardLayout(config, 3)
        cores = [c for slice_ in layout.core_slices for c in slice_]
        assert sorted(cores) == list(range(8))
        homes = sorted(h for slice_ in layout.home_slices for h in slice_)
        assert homes == list(range(3))
        assert len(layout.owner) == 8 + 3
        for shard, slice_ in enumerate(layout.core_slices):
            assert all(layout.owner[c] == shard for c in slice_)


class TestHarnessIntegration:
    def test_simulate_point_routes_to_sharded(self):
        config, wl = xbar5(4), gossip(4)
        serial, _ = simulate_point(config, wl.programs, wl.initial_memory)
        sharded, _ = simulate_point(config, wl.programs, wl.initial_memory,
                                    shards=2)
        assert sharded.sharding["shards"] == 2
        assert result_fingerprint(sharded) == result_fingerprint(serial)

    def test_point_fingerprint_stable_for_serial_shards(self):
        # shards 0 and 1 are both the serial engine and must hash
        # exactly as before sharding existed (historical fingerprints,
        # checkpoints and golden files stay valid).
        config, wl = small_config(4), gossip(4)
        base = point_fingerprint(config, wl)
        assert point_fingerprint(config, wl, shards=0) == base
        assert point_fingerprint(config, wl, shards=1) == base
        assert point_fingerprint(config, wl, shards=2) != base
        assert point_fingerprint(config, wl, shards=2) \
            != point_fingerprint(config, wl, shards=4)

"""Persistent result store: records, bloom filter, hit/miss/integrity.

The acceptance bar: a record served from the store must be provably the
record that was written (version + point binding + recomputed result
fingerprint); anything less -- truncation, tampering, a foreign record
renamed onto the key, a different format version -- must read as a
miss, never as silently wrong data.  The bloom filter may only ever
*save* work on misses; a false positive must fall through to the real
lookup.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.parallel import result_fingerprint, simulate_point
from repro.isa.program import Assembler
from repro.service.bloom import BloomFilter
from repro.service.store import (
    RecordError,
    ResultStore,
    STORE_FORMAT_VERSION,
    pack_record,
    unpack_record,
)
from repro.workloads.base import Workload
from tests.conftest import small_config


@pytest.fixture(scope="module")
def result():
    asm = Assembler("store.t0")
    asm.li(1, 0x1_0000).li(2, 42)
    asm.store(2, base=1)
    asm.halt()
    wl = Workload("store-w", [asm.build()], {})
    res, _seconds = simulate_point(small_config(1), wl.programs,
                                   wl.initial_memory)
    return res


FP = "ab" + "0" * 62  # a syntactically plausible point fingerprint


# ------------------------------------------------------------- bloom filter

def test_bloom_has_no_false_negatives():
    bloom = BloomFilter(capacity=1000, error_rate=0.01)
    keys = [f"key-{i}" for i in range(300)]
    for key in keys:
        bloom.add(key)
    assert all(key in bloom for key in keys)
    assert len(bloom) == 300


def test_bloom_false_positive_rate_is_bounded():
    bloom = BloomFilter(capacity=1000, error_rate=0.01)
    for i in range(1000):
        bloom.add(f"present-{i}")
    absent = [f"absent-{i}" for i in range(2000)]
    fpr = sum(1 for key in absent if key in bloom) / len(absent)
    assert fpr < 0.05, f"false-positive rate {fpr} way over the 1% target"


def test_bloom_sizing_and_validation():
    bloom = BloomFilter(capacity=100, error_rate=0.001)
    assert bloom.num_hashes >= 1 and bloom.num_bits >= 64
    assert 0.0 <= bloom.saturation < 1.0
    with pytest.raises(ValueError, match="capacity"):
        BloomFilter(0)
    with pytest.raises(ValueError, match="error_rate"):
        BloomFilter(10, error_rate=1.5)


# ------------------------------------------------------------ record format

def test_record_roundtrip_verifies(result):
    data = pack_record(result, point_fp=FP)
    restored, rfp = unpack_record(data, expected_point=FP)
    assert rfp == result_fingerprint(result)
    assert result_fingerprint(restored) == rfp


def test_record_rejects_raw_pickle(result):
    import pickle
    with pytest.raises(RecordError, match="magic"):
        unpack_record(pickle.dumps(result))


def test_record_rejects_wrong_version(result):
    data = pack_record(result, point_fp=FP)
    header, payload = data.split(b"\n", 1)
    parts = header.split(b"\x00")
    parts[1] = str(STORE_FORMAT_VERSION + 1).encode()
    with pytest.raises(RecordError, match="format version"):
        unpack_record(b"\x00".join(parts) + b"\n" + payload)


def test_record_rejects_foreign_point_binding(result):
    data = pack_record(result, point_fp=FP)
    with pytest.raises(RecordError, match="belongs to point"):
        unpack_record(data, expected_point="cd" + "1" * 62)


def test_record_rejects_lying_result_fingerprint(result):
    data = pack_record(result, point_fp=FP, result_fp="0" * 64)
    with pytest.raises(RecordError, match="integrity"):
        unpack_record(data)


def test_record_rejects_truncation(result):
    data = pack_record(result, point_fp=FP)
    with pytest.raises(RecordError):
        unpack_record(data[: len(data) // 2])
    with pytest.raises(RecordError, match="header"):
        unpack_record(data.split(b"\n", 1)[0])  # header, no terminator


# -------------------------------------------------------------------- store

def test_store_put_get_roundtrip(tmp_path, result):
    store = ResultStore(str(tmp_path / "store"))
    rfp = store.put(FP, result)
    hit = store.get(FP)
    assert hit is not None
    restored, got_rfp = hit
    assert got_rfp == rfp == result_fingerprint(restored)
    assert store.hits == 1 and len(store) == 1
    # content-addressed sharded layout: <root>/<fp[:2]>/<fp>.res
    assert os.path.exists(os.path.join(str(tmp_path / "store"),
                                       FP[:2], FP + ".res"))


def test_store_cold_miss_is_answered_by_the_bloom_filter(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert store.get("ff" + "2" * 62) is None
    assert store.bloom_skips == 1 and store.misses == 1
    assert "ff" + "2" * 62 not in store


def test_store_bloom_false_positive_falls_through(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    fp = "ee" + "3" * 62
    store._bloom.add(fp)  # simulate a false positive: bit set, no file
    assert store.get(fp) is None
    assert store.misses == 1 and store.bloom_skips == 0


def test_store_corrupt_record_is_counted_and_evicted(tmp_path, result):
    store = ResultStore(str(tmp_path / "store"))
    store.put(FP, result)
    path = store._path(FP)
    with open(path, "wb") as fh:
        fh.write(b"\x80garbage-from-a-crash")
    assert store.get(FP) is None
    assert store.integrity_failures == 1
    assert not os.path.exists(path), "bad record must be evicted"
    # the key can be re-populated cleanly afterwards
    store.put(FP, result)
    assert store.get(FP) is not None


def test_store_persists_across_reopen(tmp_path, result):
    root = str(tmp_path / "store")
    first = ResultStore(root)
    rfp = first.put(FP, result)

    reopened = ResultStore(root)
    assert len(reopened) == 1
    hit = reopened.get(FP)
    assert hit is not None and hit[1] == rfp
    assert reopened.bloom_skips == 0  # warm bloom: no skip on a real record


def test_store_snapshot_counters(tmp_path, result):
    store = ResultStore(str(tmp_path / "store"))
    store.put(FP, result)
    store.get(FP)
    store.get("aa" + "4" * 62)
    snap = store.snapshot()
    assert snap["records"] == 1 and snap["hits"] == 1
    assert snap["misses"] == 1 and snap["bloom_skips"] == 1
    assert 0.0 < snap["bloom_saturation"] < 1.0

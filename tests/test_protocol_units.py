"""Direct unit tests of the L1 controller and directory.

These bypass the full system: a scripted fake network records every
message and lets the test deliver responses by hand, pinning down the
exact message sequences of individual transactions.
"""

import pytest

from repro.coherence.cache import CacheState
from repro.coherence.directory import Directory, DirState
from repro.coherence.l1 import L1Cache
from repro.coherence.messages import Message, MessageType
from repro.sim.config import CacheConfig, MemoryConfig, SpeculationConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

DIR_ID = 1
CORE_ID = 0
X = 0x1000


class FakeNet:
    """Records sends; the test routes them manually."""

    def __init__(self):
        self.sent = []

    def send(self, src, dst, msg):
        self.sent.append((src, dst, msg))

    def pop(self):
        return self.sent.pop(0)

    def outbox(self, mtype=None):
        msgs = [m for _, _, m in self.sent]
        if mtype is not None:
            msgs = [m for m in msgs if m.mtype is mtype]
        return msgs


def make_l1(spec=None):
    sim = Simulator()
    net = FakeNet()
    l1 = L1Cache(sim, CORE_ID, CacheConfig(size_bytes=4096, assoc=4,
                                           block_bytes=64, hit_latency=1),
                 spec or SpeculationConfig(), net, DIR_ID, StatsRegistry())
    return sim, net, l1


def make_directory():
    sim = Simulator()
    net = FakeNet()
    directory = Directory(sim, DIR_ID, CacheConfig(),
                          MemoryConfig(l2_hit_latency=2, dram_latency=4,
                                       directory_latency=1),
                          net, StatsRegistry())
    return sim, net, directory


def block_data(value=0):
    return [value] * 8


class TestL1Transactions:
    def test_load_miss_sends_get_s(self):
        sim, net, l1 = make_l1()
        got = []
        l1.read(X, got.append)
        sim.run()
        (src, dst, msg) = net.pop()
        assert (src, dst) == (CORE_ID, DIR_ID)
        assert msg.mtype is MessageType.GET_S
        assert msg.addr == X
        assert got == []  # still waiting for data

    def test_fill_completes_load(self):
        sim, net, l1 = make_l1()
        got = []
        l1.read(X + 8, got.append)
        sim.run()
        l1.receive(Message(MessageType.DATA_E, X, DIR_ID,
                           data=block_data(5)))
        sim.run()
        assert got == [5]
        assert l1.array.lookup(X).state is CacheState.EXCLUSIVE

    def test_store_miss_sends_get_m_with_word(self):
        sim, net, l1 = make_l1()
        l1.write(X + 16, 9, lambda: None)
        sim.run()
        msg = net.pop()[2]
        assert msg.mtype is MessageType.GET_M
        assert msg.word_addr == X + 16

    def test_upgrade_from_shared(self):
        sim, net, l1 = make_l1()
        l1.array.insert(X, CacheState.SHARED, block_data())
        done = []
        l1.write(X, 3, lambda: done.append(True))
        sim.run()
        assert net.pop()[2].mtype is MessageType.GET_M
        assert not done  # waiting for the grant
        l1.receive(Message(MessageType.DATA_M, X, DIR_ID, data=block_data()))
        sim.run()
        assert done == [True]
        block = l1.array.lookup(X)
        assert block.state is CacheState.MODIFIED and block.data[0] == 3

    def test_inv_on_shared_acks_without_data(self):
        sim, net, l1 = make_l1()
        l1.array.insert(X, CacheState.SHARED, block_data(7))
        l1.receive(Message(MessageType.INV, X, DIR_ID))
        sim.run()
        msg = net.pop()[2]
        assert msg.mtype is MessageType.INV_ACK
        assert msg.data is None
        assert l1.array.lookup(X) is None

    def test_inv_on_dirty_returns_data(self):
        sim, net, l1 = make_l1()
        block = l1.array.insert(X, CacheState.MODIFIED, block_data(7))
        block.dirty = True
        l1.receive(Message(MessageType.INV, X, DIR_ID))
        sim.run()
        msg = net.pop()[2]
        assert msg.mtype is MessageType.INV_ACK
        assert msg.data == block_data(7)

    def test_fwd_get_s_downgrades_and_cleans(self):
        sim, net, l1 = make_l1()
        block = l1.array.insert(X, CacheState.MODIFIED, block_data(9))
        block.dirty = True
        l1.receive(Message(MessageType.FWD_GET_S, X, DIR_ID))
        sim.run()
        msg = net.pop()[2]
        assert msg.mtype is MessageType.DOWNGRADE_ACK
        assert msg.data == block_data(9)
        assert block.state is CacheState.SHARED
        assert not block.dirty

    def test_unexpected_message_raises(self):
        from repro.sim.engine import SimulationError
        sim, net, l1 = make_l1()
        with pytest.raises(SimulationError):
            l1.receive(Message(MessageType.GET_S, X, DIR_ID))

    def test_inv_for_absent_block_raises(self):
        from repro.sim.engine import SimulationError
        sim, net, l1 = make_l1()
        with pytest.raises(SimulationError):
            l1.receive(Message(MessageType.INV, X, DIR_ID))

    def test_prefetch_noop_when_writable(self):
        sim, net, l1 = make_l1()
        l1.array.insert(X, CacheState.MODIFIED, block_data())
        l1.prefetch_write(X)
        sim.run()
        assert net.sent == []

    def test_prefetch_requests_permission(self):
        sim, net, l1 = make_l1()
        l1.prefetch_write(X)
        sim.run()
        assert net.pop()[2].mtype is MessageType.GET_M

    def test_prefetch_deduplicates_against_mshr(self):
        sim, net, l1 = make_l1()
        l1.write(X, 1, lambda: None)
        sim.run()
        net.pop()
        l1.prefetch_write(X)
        sim.run()
        assert net.sent == []


class TestDirectoryTransactions:
    def test_get_s_cold_grants_exclusive(self):
        sim, net, directory = make_directory()
        directory.receive(Message(MessageType.GET_S, X, src=0))
        sim.run()
        msg = net.pop()[2]
        assert msg.mtype is MessageType.DATA_E
        assert directory.entry_state(X) is DirState.EXCLUSIVE
        assert directory.owner_of(X) == 0

    def test_get_s_from_second_core_recalls_owner(self):
        sim, net, directory = make_directory()
        directory.receive(Message(MessageType.GET_S, X, src=0))
        sim.run()
        net.pop()
        directory.receive(Message(MessageType.GET_S, X, src=2))
        sim.run()
        fwd = net.pop()
        assert fwd[1] == 0  # probe goes to the owner
        assert fwd[2].mtype is MessageType.FWD_GET_S
        # Owner responds with data: both become sharers.
        directory.receive(Message(MessageType.DOWNGRADE_ACK, X, src=0,
                                  data=block_data(3)))
        sim.run()
        grant = net.pop()[2]
        assert grant.mtype is MessageType.DATA_S
        assert grant.data == block_data(3)
        assert directory.sharers_of(X) == {0, 2}

    def test_owner_drop_during_recall_grants_exclusive(self):
        sim, net, directory = make_directory()
        directory.receive(Message(MessageType.GET_S, X, src=0))
        sim.run()
        net.pop()
        directory.receive(Message(MessageType.GET_S, X, src=2))
        sim.run()
        net.pop()
        # Owner dropped to I (eviction race / speculative rollback).
        directory.receive(Message(MessageType.INV_ACK, X, src=0, data=None))
        sim.run()
        grant = net.pop()[2]
        assert grant.mtype is MessageType.DATA_E
        assert directory.owner_of(X) == 2

    def test_get_m_invalidates_all_sharers(self):
        sim, net, directory = make_directory()
        for core in (0, 2, 3):
            directory.receive(Message(MessageType.GET_S, X, src=core))
            sim.run()
            reply = net.pop()[2]
            if reply.mtype is MessageType.FWD_GET_S:
                directory.receive(Message(MessageType.DOWNGRADE_ACK, X,
                                          src=reply.addr and 0, data=block_data()))
                sim.run()
                net.pop()
        # Now core 3 upgrades.
        directory.receive(Message(MessageType.GET_M, X, src=3))
        sim.run()
        invs = [(dst, m) for _, dst, m in net.sent
                if m.mtype is MessageType.INV]
        assert {dst for dst, _ in invs} == {0, 2}
        net.sent.clear()
        for core in (0, 2):
            directory.receive(Message(MessageType.INV_ACK, X, src=core))
        sim.run()
        grant = net.pop()[2]
        assert grant.mtype is MessageType.DATA_M
        assert directory.owner_of(X) == 3

    def test_requests_queue_behind_active_transaction(self):
        sim, net, directory = make_directory()
        directory.receive(Message(MessageType.GET_S, X, src=0))
        sim.run()
        net.pop()
        directory.receive(Message(MessageType.GET_S, X, src=2))
        # Another request for the same block while the recall is open:
        directory.receive(Message(MessageType.GET_M, X, src=3))
        sim.run()
        # Only the recall probe is out; the GET_M is queued.
        assert len(net.sent) == 1
        directory.receive(Message(MessageType.DOWNGRADE_ACK, X, src=0,
                                  data=block_data()))
        sim.run()
        types = [m.mtype for _, _, m in net.sent]
        assert MessageType.DATA_S in types       # the recall completed
        assert MessageType.INV in types          # queued GET_M started

    def test_stale_put_acked_without_state_change(self):
        sim, net, directory = make_directory()
        directory.receive(Message(MessageType.PUT_M, X, src=4,
                                  data=block_data(1)))
        sim.run()
        assert net.pop()[2].mtype is MessageType.PUT_ACK
        assert directory.entry_state(X) is DirState.INVALID
        assert directory.stat_stale_puts.value == 1

    def test_put_m_writes_back_owner_data(self):
        sim, net, directory = make_directory()
        directory.receive(Message(MessageType.GET_M, X, src=0))
        sim.run()
        net.pop()
        directory.receive(Message(MessageType.PUT_M, X, src=0,
                                  data=block_data(42)))
        sim.run()
        assert directory.peek_word(X) == 42
        assert directory.entry_state(X) is DirState.INVALID

    def test_wb_clean_updates_backing_without_transaction(self):
        sim, net, directory = make_directory()
        directory.receive(Message(MessageType.WB_CLEAN, X, src=0,
                                  data=block_data(11)))
        assert directory.peek_word(X) == 11
        assert net.sent == []  # no ack, no state change

    def test_wb_word_patches_single_word(self):
        sim, net, directory = make_directory()
        directory.receive(Message(MessageType.WB_CLEAN, X, src=0,
                                  data=block_data(11)))
        directory.receive(Message(MessageType.WB_WORD, X, src=0,
                                  data=[99], word_addr=X + 16))
        assert directory.peek_word(X + 16) == 99
        assert directory.peek_word(X + 8) == 11

    def test_cold_then_warm_fetch_latencies(self):
        sim, net, directory = make_directory()
        directory.receive(Message(MessageType.GET_S, X, src=0))
        sim.run()
        assert directory.stat_dram_fetches.value == 1
        directory.receive(Message(MessageType.PUT_E, X, src=0))
        sim.run()
        directory.receive(Message(MessageType.GET_S, X, src=0))
        sim.run()
        assert directory.stat_l2_hits.value == 1

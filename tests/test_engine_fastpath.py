"""Calendar-queue engine: fast-path scheduling and auto-housekeeping.

The bucketed engine has two scheduling paths (Event-allocating and the
bare ``(fn, args)`` fast path) that must share one dispatch order, plus
automatic draining of cancelled events.  These tests pin both contracts;
docs/PERF.md spells out the ordering invariant they encode.
"""

import pytest

from repro.sim.engine import Event, SimulationError, Simulator


def test_fast_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule_fast(30, order.append, 3)
    sim.schedule_fast(10, order.append, 1)
    sim.schedule_fast(20, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]
    assert sim.events_dispatched == 3


def test_same_cycle_fifo_across_both_paths():
    """Slow and fast entries in one cycle fire in insertion order."""
    sim = Simulator()
    order = []
    sim.schedule(5, order.append, "slow-0")
    sim.schedule_fast(5, order.append, "fast-1")
    sim.schedule(5, order.append, "slow-2")
    sim.schedule_fast(5, order.append, "fast-3")
    sim.run()
    assert order == ["slow-0", "fast-1", "slow-2", "fast-3"]


def test_fast_zero_delay_runs_within_current_cycle():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule_fast(0, order.append, "inner")

    sim.schedule_fast(5, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 5


def test_fast_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_fast(-1, lambda: None)


def test_fast_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule_fast(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_fast_at(5, lambda: None)


def test_fast_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_fast_at(7, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 7


def test_pending_events_counts_fast_entries():
    sim = Simulator()
    sim.schedule_fast(1, lambda: None)
    sim.schedule(2, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_step_dispatches_fast_entries():
    sim = Simulator()
    fired = []
    sim.schedule_fast(3, fired.append, 1)
    sim.schedule(5, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_watchdog_counts_fast_events():
    sim = Simulator()

    def reschedule():
        sim.schedule_fast(1, reschedule)

    sim.schedule_fast(0, reschedule)
    with pytest.raises(SimulationError, match="watchdog"):
        sim.run(max_events=100)


def test_fastpath_false_routes_through_slow_path():
    """``fastpath=False`` allocates real Events but keeps dispatch order."""
    sim = Simulator(fastpath=False)
    order = []
    sim.schedule(5, order.append, 0)
    sim.schedule_fast(5, order.append, 1)
    sim.schedule_fast_at(5, order.append, 2)
    # Every pending entry is a cancellable Event on this path.
    assert all(entry.__class__ is Event
               for bucket in sim._buckets.values() for entry in bucket)
    sim.run()
    assert order == [0, 1, 2]


# ------------------------------------------------------- auto-housekeeping


def test_auto_drain_when_cancelled_exceed_half_pending():
    """Regression: cancelling more than half the queue compacts it
    without anyone calling drain_cancelled()."""
    sim = Simulator()
    events = [sim.schedule(100 + i, lambda: None) for i in range(20)]
    for event in events[:12]:  # 12 cancelled > 8 floor, > half of 20
        event.cancel()
    # The 11th cancellation tips cancelled*2 > pending (22 > 20) and the
    # idle simulator compacts immediately; only the 12th survives it.
    assert sim.cancelled_events == 1
    assert sim.pending_events == 9
    sim.run()
    assert sim.events_dispatched == 8


def test_no_auto_drain_below_floor():
    """A handful of cancellations is cheaper to skip than to drain."""
    sim = Simulator()
    events = [sim.schedule(10 + i, lambda: None) for i in range(6)]
    for event in events[:4]:  # > half, but below the 8-cancellation floor
        event.cancel()
    assert sim.cancelled_events == 4
    assert sim.pending_events == 6
    sim.run()
    assert sim.events_dispatched == 2


def test_auto_drain_deferred_while_running():
    """Cancellations inside a callback drain at the next bucket boundary,
    never mid-bucket (the dispatch loop is walking the current FIFO)."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(50 + i, fired.append, f"doomed-{i}")
              for i in range(16)]

    def cancel_most():
        for event in doomed:
            event.cancel()
        # Deferred: the queue still holds the cancelled entries.
        assert sim.cancelled_events == 16

    sim.schedule(10, cancel_most)
    sim.schedule(20, fired.append, "kept")
    sim.run()
    assert fired == ["kept"]
    assert sim.cancelled_events == 0
    assert sim.pending_events == 0


def test_manual_drain_still_available():
    sim = Simulator()
    events = [sim.schedule(10 + i, lambda: None) for i in range(10)]
    for event in events[:3]:
        event.cancel()
    assert sim.cancelled_events == 3
    sim.drain_cancelled()
    assert sim.cancelled_events == 0
    assert sim.pending_events == 7
    sim.run()
    assert sim.events_dispatched == 7


def test_cancelled_fast_sibling_order_preserved_after_drain():
    """Draining must not reorder the surviving entries."""
    sim = Simulator()
    order = []
    sim.schedule(5, order.append, "a")
    doomed = [sim.schedule(5, order.append, f"x{i}") for i in range(10)]
    sim.schedule_fast(5, order.append, "b")
    sim.schedule(5, order.append, "c")
    for event in doomed:
        event.cancel()
    sim.run()
    assert order == ["a", "b", "c"]

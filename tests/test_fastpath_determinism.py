"""The fast path is semantically invisible, and the engine matches seed.

Two independent proofs that the hot-path overhaul changed nothing
observable:

* **fastpath determinism** -- every grid point run with
  ``System(fastpath=False)`` (all events routed through the
  Event-allocating slow path) produces the same result fingerprint as
  the default fast path;
* **golden fingerprints** -- the quick E1/E9 grids reproduce, bit for
  bit, the fingerprints measured on the pre-overhaul engine (committed
  in ``tests/golden_fingerprints.json``).

A fingerprint (see :func:`repro.harness.parallel.result_fingerprint`)
hashes the cycle count, the full stats snapshot, every core's registers
and the architectural memory image -- equality means byte-identical
experiment tables.
"""

import json
import os

import pytest

from repro.harness.bench import default_grids
from repro.harness.experiments import e1_plan, e9_plan
from repro.harness.parallel import result_fingerprint
from repro.system import System

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                            "golden_fingerprints.json")

# A cross-section of both grids, kept small enough for the default test
# pass: spin-heavy E1 points under every consistency model, plus E9
# scaling points at two core counts.
_DETERMINISM_SPECS = e1_plan(n_cores=2, scale=0.2) + \
    e9_plan(core_counts=(2, 4), scale=0.2)


def _chaos_specs():
    """One election + one gossip point under a composed chaos plan.

    Node-fault points disable fusion only on the *targeted* cores, so
    the fastpath/superblock proofs below also cover the mixed case --
    fused survivors running alongside an unfused, faulted victim.
    """
    from repro.faults import CRASH, PAUSE, FaultPlan, NodeFault, NodeFaultPlan
    from repro.harness.parallel import RunSpec
    from repro.sim.config import SystemConfig
    from repro.workloads.protocols import gossip, leader_election

    config = SystemConfig(n_cores=4)
    link = FaultPlan(seed=3, drop_prob=0.05, jitter_prob=0.1, max_jitter=5)
    return [
        RunSpec("chaos-election-crash", config, leader_election(4),
                fault_plan=link,
                node_plan=NodeFaultPlan(faults=(NodeFault(2, CRASH, 400),))),
        RunSpec("chaos-gossip-pause", config, gossip(4),
                fault_plan=link,
                node_plan=NodeFaultPlan(
                    faults=(NodeFault(1, PAUSE, 300, 400),))),
    ]


_CHAOS_SPECS = _chaos_specs()


def _run(spec, fastpath):
    system = System(spec.config, spec.workload.programs,
                    spec.workload.initial_memory, fastpath=fastpath,
                    fault_plan=spec.fault_plan, node_plan=spec.node_plan)
    return system.run()


@pytest.mark.parametrize("spec", _DETERMINISM_SPECS,
                         ids=[s.label for s in _DETERMINISM_SPECS])
def test_fastpath_and_slowpath_fingerprints_match(spec):
    fast = _run(spec, fastpath=True)
    slow = _run(spec, fastpath=False)
    assert result_fingerprint(fast) == result_fingerprint(slow)
    # The event *count* must agree too: the fast path skips Event
    # allocation, never events.
    assert fast.events == slow.events
    assert fast.cycles == slow.cycles


@pytest.mark.parametrize("spec", _DETERMINISM_SPECS,
                         ids=[s.label for s in _DETERMINISM_SPECS])
def test_superblocks_on_off_fingerprints_match(spec):
    """Trace-compiled execution is semantically invisible.

    Superblock fusion batches a span's register work into its head
    event but preserves the event *cadence* via relay entries, so
    cycles, event counts and the full stats fingerprint must be
    byte-identical with fusion disabled.
    """
    fused = _run(spec, fastpath=True)
    plain = System(spec.config.with_superblocks(False),
                   spec.workload.programs,
                   spec.workload.initial_memory).run()
    assert result_fingerprint(fused) == result_fingerprint(plain)
    assert fused.events == plain.events
    assert fused.cycles == plain.cycles


@pytest.mark.parametrize("spec", _CHAOS_SPECS,
                         ids=[s.label for s in _CHAOS_SPECS])
def test_chaos_points_fastpath_matches_compat(spec):
    """Node faults are engine-mode invariant: the pause/crash guards
    hook the shared decoded-handler lists, which both dispatch paths
    fetch at dispatch time, so perturbed runs replay identically."""
    fast = _run(spec, fastpath=True)
    slow = _run(spec, fastpath=False)
    assert result_fingerprint(fast) == result_fingerprint(slow)
    assert fast.cycles == slow.cycles


@pytest.mark.parametrize("spec", _CHAOS_SPECS,
                         ids=[s.label for s in _CHAOS_SPECS])
def test_chaos_points_superblocks_on_off_match(spec):
    """Fusion stays byte-invisible under chaos: plan-targeted cores are
    built unfused either way (a mid-superblock fault would otherwise
    settle at a different instruction boundary), and the untargeted
    survivors' fused execution changes nothing observable."""
    fused = _run(spec, fastpath=True)
    plain = System(spec.config.with_superblocks(False),
                   spec.workload.programs, spec.workload.initial_memory,
                   fault_plan=spec.fault_plan,
                   node_plan=spec.node_plan).run()
    assert result_fingerprint(fused) == result_fingerprint(plain)
    assert fused.cycles == plain.cycles


def test_superblock_fusion_engages_on_spin_workloads():
    """The on/off proof above is vacuous if fusion never fires: at
    least the spin-heavy E1 points must retire a meaningful fraction
    of their dynamic instructions inside fused superblocks."""
    spin = [s for s in _DETERMINISM_SPECS if "locks-ticket" in s.label]
    assert spin, "expected locks-ticket points in the determinism grid"
    for spec in spin:
        result = _run(spec, fastpath=True)
        assert result.fusion_coverage() > 0.25, spec.label
        assert result.mean_superblock_length() >= 2.0, spec.label


def _golden():
    with open(_GOLDEN_PATH) as handle:
        return json.load(handle)


def _golden_params():
    golden = _golden()
    grids = default_grids(quick=True)
    params = []
    for grid_id, specs in grids.items():
        expected = golden["grids"].get(grid_id)
        if expected is None:
            # Bench-only grid (MEM): events/sec tracking, not pinned to
            # seed fingerprints -- covered by the determinism proof.
            continue
        for spec in specs:
            params.append(pytest.param(spec, expected[spec.label],
                                       id=f"{grid_id}|{spec.label}"))
    return params


def test_golden_file_covers_current_grids():
    """Renaming points in a pinned grid must regenerate the golden file.

    Grids absent from the golden file (the MEM bench grid) are
    deliberately unpinned; every pinned grid must still exist and cover
    exactly the committed labels.
    """
    golden = _golden()
    grids = default_grids(quick=True)
    assert set(golden["grids"]) <= set(grids)
    for grid_id, expected in golden["grids"].items():
        assert set(expected) == {s.label for s in grids[grid_id]}


@pytest.mark.parametrize("spec,expected", _golden_params())
def test_engine_reproduces_seed_fingerprints(spec, expected):
    # The default configuration has superblocks enabled, so this run
    # also proves the goldens are byte-unchanged under trace-compiled
    # execution (ISSUE 7 acceptance).
    assert spec.config.superblocks
    result = _run(spec, fastpath=True)
    assert result_fingerprint(result) == expected, (
        f"{spec.label}: stats diverge from the pre-overhaul engine; "
        "if the simulated architecture intentionally changed, regenerate "
        "tests/golden_fingerprints.json (see docs/PERF.md)"
    )

"""System-level tests of the InvisiFence mechanism.

These drive the whole machine (cores + L1s + directory) with directed
programs and verify the speculation machinery end to end: SR/SW
tracking, clean-before-write, violations, rollback exactness,
speculative-data invisibility, relinquish traffic, the victim-buffer
ablation, and forward progress.
"""

import pytest

from dataclasses import replace

from repro.cpu.core import StallCause
from repro.isa import Assembler, FenceKind
from repro.sim.config import (
    CacheConfig,
    ConsistencyModel,
    RollbackStrategy,
    SpeculationMode,
)
from repro.system import System
from tests.conftest import small_config

X, Y, Z = 0x1000, 0x2000, 0x3000
COLD = 0x10000  # fresh region for slow (DRAM) stores


def spec_config(n_cores=2, mode=SpeculationMode.ON_DEMAND, **kwargs):
    cfg = small_config(n_cores)
    return cfg.with_speculation(mode, **kwargs)


def fence_window_program(read_addrs=(), write_addrs=(), cold_addr=COLD,
                         tail_exec=60, warm_addrs=(), n_slow_stores=1,
                         spec_slow_store=False):
    """[warm phase] -> cold store(s) -> FULL fence -> speculative accesses.

    Each cold store's DRAM drain (40 cycles in small_config) keeps the
    speculation window open; accesses after the fence run speculatively.
    ``warm_addrs`` are loaded and allowed to settle first, so in-window
    loads of them are L1 hits whose SR bits appear immediately.
    """
    asm = Assembler("window")
    if warm_addrs:
        for addr in warm_addrs:
            asm.li(1, addr)
            asm.load(3, base=1)
        asm.exec_(200)                   # let everything settle
    asm.li(2, 1)
    for i in range(n_slow_stores):
        asm.li(1, cold_addr + 0x1000 * i)
        asm.store(2, base=1)             # cold: slow drain
    asm.fence(FenceKind.FULL)            # speculation trigger
    reg = 3
    for addr in read_addrs:
        asm.li(1, addr)
        asm.load(reg, base=1)
        reg += 1
    for addr in write_addrs:
        asm.li(1, addr).li(2, 77)
        asm.store(2, base=1)
    if spec_slow_store:
        # A speculative cold store queued BEHIND the write_addrs stores:
        # keeps the buffer non-empty after they apply, so their SW bits
        # stay observable (and conflictable) until this one drains.
        asm.li(1, cold_addr + 0x8000).li(2, 1)
        asm.store(2, base=1)
    if tail_exec:
        asm.exec_(tail_exec)
    return asm.build()


def idle_then(cycles, build):
    asm = Assembler("remote")
    asm.exec_(cycles)
    build(asm)
    return asm.build()


class TestTracking:
    def _observe_bits(self, program):
        """Run stepwise, recording the SR/SW bits X ever carries."""
        system = System(spec_config(1), [program])
        system.cores[0].start()
        seen_sr = seen_sw = False
        steps = 0
        while system.sim.step():
            steps += 1
            assert steps < 100_000, "test program did not terminate"
            block = system.l1s[0].array.lookup(X, touch=False)
            if block is not None:
                seen_sr = seen_sr or block.spec_read
                seen_sw = seen_sw or block.spec_written
        return system, seen_sr, seen_sw

    def test_speculative_load_sets_sr(self):
        # X is warm: the in-window load hits and SR appears immediately,
        # persisting until the cold store drains and the episode commits.
        _, seen_sr, seen_sw = self._observe_bits(
            fence_window_program(read_addrs=(X,), warm_addrs=(X,),
                                 tail_exec=0))
        assert seen_sr and not seen_sw

    def test_speculative_store_sets_sw(self):
        # A speculative slow store queued behind the write of X keeps
        # the buffer non-empty after X applies, so SW is observable.
        _, __, seen_sw = self._observe_bits(
            fence_window_program(write_addrs=(X,), warm_addrs=(X,),
                                 spec_slow_store=True, tail_exec=0))
        assert seen_sw

    def test_last_entry_store_has_no_sw_exposure(self):
        """A speculative store that is the final buffer entry commits
        the moment it applies: SW is never observable between events.
        (This zero-exposure property is by construction: commit fires in
        the same event as the last drain.)"""
        _, __, seen_sw = self._observe_bits(
            fence_window_program(write_addrs=(X,), warm_addrs=(X,),
                                 n_slow_stores=1, tail_exec=0))
        assert not seen_sw

    def test_commit_clears_bits(self):
        config = spec_config(1)
        system = System(config, [fence_window_program(read_addrs=(X,),
                                                      write_addrs=(Y,))])
        result = system.run(check_invariants=True)
        for l1 in system.l1s:
            assert l1.speculative_footprint() == (0, 0)
        assert result.commits() >= 1
        assert result.violations() == 0
        assert result.read_word(Y) == 77


class TestCleanBeforeWrite:
    def test_dirty_block_cleaned_before_first_spec_write(self):
        # Make X dirty non-speculatively, then write it speculatively.
        asm = Assembler("t")
        asm.li(1, X).li(2, 5)
        asm.store(2, base=1)      # X dirty (M)
        asm.exec_(100)            # let it drain fully
        asm.li(3, COLD).li(4, 1)
        asm.store(4, base=3)      # slow store opens the window
        asm.fence(FenceKind.FULL)
        asm.li(2, 9)
        asm.store(2, base=1)      # speculative write to dirty X
        asm.exec_(60)
        system = System(spec_config(1), [asm.build()])
        result = system.run(check_invariants=True)
        assert system.stats.value("l1.0.clean_before_write") >= 1
        assert result.read_word(X) == 9  # committed value

    def test_clean_block_needs_no_writeback(self):
        system = System(spec_config(1),
                        [fence_window_program(write_addrs=(X,))])
        system.run(check_invariants=True)
        # X was not dirty before the speculative write: no WB_CLEAN.
        assert system.stats.value("l1.0.clean_before_write") == 0


class TestViolationAndRollback:
    #: Cycle by which the victim's window is open (warm phase ~250 + a
    #: few); the attacker strikes shortly after.
    ATTACK_DELAY = 265

    def _conflict_system(self, **spec_kwargs):
        """Core 0 speculatively READS warm X; core 1 writes X mid-window."""
        victim = fence_window_program(read_addrs=(X,), warm_addrs=(X,),
                                      tail_exec=120)
        attacker = idle_then(self.ATTACK_DELAY, lambda asm: (
            asm.li(1, X), asm.li(2, 55), asm.store(2, base=1)))
        config = spec_config(2, **spec_kwargs)
        return System(config, [victim, attacker])

    def test_external_invalidation_aborts(self):
        system = self._conflict_system()
        result = system.run(check_invariants=True)
        assert result.violations() >= 1
        reason = system.stats.value("spec.0.violations.external-invalidation")
        assert reason >= 1

    def test_speculative_data_never_escapes(self):
        """A remote reader probing a speculatively written block must see
        the pre-speculation value, never the in-flight 77.  The second
        slow store keeps the victim's window open with SW set on X when
        the reader's GetS arrives.
        """
        victim = fence_window_program(write_addrs=(X,), warm_addrs=(X,),
                                      spec_slow_store=True, tail_exec=120)
        saw_mid_window_violation = False
        for delay in range(240, 360, 10):
            reader = idle_then(delay, lambda asm: (
                asm.li(1, X), asm.load(9, base=1)))
            system = System(spec_config(2), [victim, reader])
            result = system.run(check_invariants=True)
            observed = result.core_reg(1, 9)
            # Only pre-speculation (0) or committed (77) values are ever
            # observable -- never a value that later rolls back.
            assert observed in (0, 77)
            assert result.read_word(X) == 77
            if result.violations() and observed == 0:
                saw_mid_window_violation = True
        # At least one delay landed inside the window: the probe aborted
        # the speculation and was served the pre-speculation value.
        assert saw_mid_window_violation

    def test_rollback_restores_registers_exactly(self):
        """A register overwritten inside the window is restored and the
        window's instructions re-execute."""
        victim = Assembler("victim")
        victim.li(1, X)
        victim.load(3, base=1)         # warm X
        victim.exec_(200)
        victim.li(5, 111)              # pre-checkpoint value
        victim.li(1, COLD).li(2, 1)
        victim.store(2, base=1)
        victim.fence(FenceKind.FULL)   # checkpoint here
        victim.li(1, X)
        victim.load(6, base=1)         # speculative SR on warm X
        victim.li(5, 222)              # speculative register change
        victim.exec_(120)
        attacker = idle_then(self.ATTACK_DELAY, lambda asm: (
            asm.li(1, X), asm.li(2, 55), asm.store(2, base=1)))
        system = System(spec_config(2), [victim.build(), attacker])
        result = system.run(check_invariants=True)
        assert result.violations() >= 1
        # Re-execution after rollback re-runs `li 5, 222`; the run is
        # architecturally correct end to end.
        assert result.core_reg(0, 5) == 222
        assert result.core_reg(0, 6) in (0, 55)
        assert result.read_word(X) == 55
        assert result.stall_cycles(StallCause.ROLLBACK) > 0

    def test_sw_blocks_relinquished_on_rollback(self):
        """A violation on one block must relinquish the *other* SW blocks
        to the directory (their ownership is stale after rollback)."""
        victim = fence_window_program(read_addrs=(X,), write_addrs=(Y, Z),
                                      warm_addrs=(X, Y, Z),
                                      spec_slow_store=True, tail_exec=200)
        attacker = idle_then(self.ATTACK_DELAY + 20, lambda asm: (
            asm.li(1, X), asm.li(2, 55), asm.store(2, base=1)))
        system = System(spec_config(2), [victim, attacker])
        result = system.run(check_invariants=True)
        if result.violations():
            assert system.stats.value("l1.0.spec_relinquish") >= 1
        # After re-execution both blocks hold committed data.
        assert result.read_word(Y) == 77
        assert result.read_word(Z) == 77

    def test_workload_correct_despite_violations(self):
        system = self._conflict_system()
        result = system.run(check_invariants=True)
        assert result.violations() >= 1
        assert result.read_word(X) == 55
        assert result.read_word(COLD) == 1


class TestVictimBufferStrategy:
    def test_victim_buffer_restores_dirty_data(self):
        asm = Assembler("t")
        asm.li(1, X).li(2, 5)
        asm.store(2, base=1)          # X dirty = 5
        asm.exec_(100)
        asm.li(3, COLD).li(4, 1)
        asm.store(4, base=3)
        asm.fence(FenceKind.FULL)
        asm.li(2, 9)
        asm.store(2, base=1)          # speculative overwrite of X
        asm.exec_(120)
        attacker = idle_then(130, lambda a: (
            a.li(1, Y), a.li(2, 1), a.store(2, base=1)))  # unrelated

        config = spec_config(2, rollback_strategy=RollbackStrategy.VICTIM_BUFFER)
        system = System(config, [asm.build(), attacker])
        result = system.run(check_invariants=True)
        # No conflict on X: episode commits and X ends at 9.
        assert result.read_word(X) == 9
        # No WB_CLEAN traffic under the victim-buffer strategy.
        assert system.stats.value("l1.0.clean_before_write") == 0

    def test_victim_buffer_overflow_aborts(self):
        # Buffer of 1 entry, two speculative writes to distinct dirty blocks.
        asm = Assembler("t")
        for i, addr in enumerate((X, Y)):
            asm.li(1, addr).li(2, 5 + i)
            asm.store(2, base=1)
        asm.exec_(150)                # both dirty, drained
        asm.li(3, COLD).li(4, 1)
        asm.store(4, base=3)
        asm.fence(FenceKind.FULL)
        for addr in (X, Y):           # two spec writes: second overflows
            asm.li(1, addr).li(2, 90)
            asm.store(2, base=1)
        asm.exec_(120)
        config = spec_config(1, rollback_strategy=RollbackStrategy.VICTIM_BUFFER,
                             victim_buffer_entries=1)
        system = System(config, [asm.build()])
        result = system.run(check_invariants=True)
        assert system.stats.value(
            "spec.0.violations.victim-buffer-overflow") >= 1
        # Forward progress: both stores eventually land.
        assert result.read_word(X) == 90
        assert result.read_word(Y) == 90


class TestCapacityViolations:
    def test_eviction_of_speculative_block_aborts(self):
        # 2-set x 2-way L1: reading 3+ same-set blocks inside a window
        # forces a speculatively read block out.  The blocks are warmed
        # into the L2 first so in-window refetches are fast relative to
        # the (two slow stores') window.
        tiny_l1 = CacheConfig(size_bytes=256, assoc=2, block_bytes=64,
                              hit_latency=1)
        base = spec_config(1)
        config = replace(base, l1=tiny_l1)
        stride = 64 * 2  # same set in a 2-set cache
        reads = tuple(0x4000 + i * stride for i in range(4))
        program = fence_window_program(read_addrs=reads, warm_addrs=reads,
                                       n_slow_stores=2)
        system = System(config, [program])
        result = system.run(check_invariants=True)
        assert system.stats.value("spec.0.violations.capacity-eviction") >= 1
        # Still terminates correctly.
        assert result.read_word(COLD) == 1


class TestForwardProgress:
    def test_adversarial_ping_pong_terminates(self):
        """Two cores repeatedly conflict on one block inside their
        windows; escalating conservative windows must guarantee
        completion."""
        def pinger(delay):
            asm = Assembler("ping")
            asm.li(5, delay)
            asm.exec_(max(delay, 1))
            asm.li(1, COLD + delay * 8 * 64).li(2, 1)
            asm.li(3, X).li(4, 1)
            for i in range(10):
                asm.store(2, base=1)         # slow-ish store
                asm.fence(FenceKind.FULL)
                asm.load(6, base=3)          # speculative read of X
                asm.store(4, base=3)         # speculative write of X
                asm.addi(1, 1, 64)
            return asm.build()

        config = spec_config(2, conservative_window=16)
        system = System(config, [pinger(0), pinger(3)])
        result = system.run(check_invariants=True)  # must not deadlock
        assert result.read_word(X) == 1

    def test_halt_commits_pending_speculation(self):
        # Window still open at HALT: the commit must happen before halting.
        program = fence_window_program(read_addrs=(X,), tail_exec=0)
        system = System(spec_config(1), [program])
        result = system.run(check_invariants=True)
        assert result.commits() >= 1
        for l1 in system.l1s:
            assert l1.speculative_footprint() == (0, 0)


class TestCommittedStoreIntoSpeculativeBlock:
    """Regression: a speculative RMW bypasses the store buffer, marking
    its block SW; older *committed* stores then drain into that block.
    A rollback must not destroy them -- the committed word is written
    through to the rollback image (found by repro.verification)."""

    def _build(self):
        from repro.isa import FenceKind
        # Core 0: slow committed store to word 0 of block B queued FIRST;
        # then a fence opens speculation; a speculative RMW on word 1 of
        # B executes immediately (bypassing the buffer), marking B SW
        # *before* the committed store drains into it.
        B = 0x4000
        victim = Assembler("victim")
        victim.li(1, B)
        victim.load(3, base=1)                # warm B (E)
        victim.exec_(200)
        victim.li(4, COLD).li(5, 1)
        victim.store(5, base=4)               # slow store: opens a window
        victim.li(6, 777)
        victim.store(6, base=1, offset=0)     # committed store to B.w0
        victim.fence(FenceKind.FULL)          # speculate (SB non-empty)
        victim.fetch_add(7, base=1, addend=5, offset=8)  # spec RMW: B.w1
        victim.exec_(200)
        # Core 1: invalidate B mid-window, forcing the rollback.
        attacker = Assembler("attacker")
        attacker.exec_(300)
        attacker.li(1, B).li(2, 55)
        attacker.store(2, base=1, offset=16)  # writes B.w2
        return B, [victim.build(), attacker.build()]

    def test_committed_word_survives_rollback(self):
        B, programs = self._build()
        system = System(spec_config(2), programs)
        result = system.run(check_invariants=True)
        # The committed 777 must be architecturally present no matter
        # what happened to the speculation.
        assert result.read_word(B + 0) == 777
        assert result.read_word(B + 8) in (1, 5)  # fetch_add applied once

    def test_writethrough_counter_fires(self):
        B, programs = self._build()
        system = System(spec_config(2), programs)
        system.run(check_invariants=True)
        assert system.stats.value("l1.0.committed_writethroughs") >= 1

    def test_committed_word_survives_under_victim_buffer(self):
        """The victim-buffer strategy has the same hazard: the committed
        word must be patched into the saved pre-speculation copy."""
        B, programs = self._build()
        config = spec_config(2,
                             rollback_strategy=RollbackStrategy.VICTIM_BUFFER)
        system = System(config, programs)
        result = system.run(check_invariants=True)
        assert result.read_word(B + 0) == 777
        assert result.read_word(B + 8) in (1, 5)
        # No write-through traffic under the victim-buffer strategy: the
        # saved copy is patched in place instead.
        assert system.stats.value("l1.0.committed_writethroughs") == 0


class TestContinuousMode:
    def test_continuous_reenters_after_commit(self):
        asm = Assembler("t")
        asm.li(1, X)
        for i in range(20):
            asm.li(2, i)
            asm.store(2, base=1)
            asm.exec_(3)
        system = System(spec_config(1, mode=SpeculationMode.CONTINUOUS,
                                    continuous_commit_interval=8),
                        [asm.build()])
        result = system.run(check_invariants=True)
        episodes = system.stats.value("spec.0.episodes")
        assert episodes >= 2
        assert result.read_word(X) == 19

    def test_continuous_correct_under_conflicts(self):
        def worker(tid):
            asm = Assembler(f"w{tid}")
            asm.li(1, X).li(2, 1)
            for _ in range(15):
                asm.fetch_add(3, base=1, addend=2)
                asm.exec_(2)
            return asm.build()

        system = System(spec_config(2, mode=SpeculationMode.CONTINUOUS),
                        [worker(0), worker(1)])
        result = system.run(check_invariants=True)
        assert result.read_word(X) == 30

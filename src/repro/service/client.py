"""Client for the resident experiment server.

Connects over the server's Unix socket, submits a grid of
:class:`~repro.harness.parallel.RunSpec` points, and streams per-point
completion events.  Every received result record is verified end-to-end
(:func:`~repro.service.store.unpack_record` recomputes the result
fingerprint), so a client cannot silently consume a corrupted transfer.

Workload validation runs *client-side* on the returned results --
mirror of the in-process scheduler, where ``validate`` closures never
cross the process boundary.
"""

from __future__ import annotations

import base64
import json
import socket
import time
from typing import Callable, Dict, Iterator, List, Optional

from repro.harness.parallel import RunSpec
from repro.service.server import ServicePoint, encode_wire_point
from repro.service.store import unpack_record
from repro.system import SystemResult

__all__ = ["ExperimentClient", "RateLimitedError", "ServiceError"]

#: reply kinds that end a request's event stream
_TERMINAL_EVENTS = frozenset(
    {"job-done", "job-failed", "rejected", "pong", "stats", "error"})


class ServiceError(RuntimeError):
    """The service reported a failure for this submission."""


class RateLimitedError(ServiceError):
    """Submission rejected by admission control; retry after a delay."""

    def __init__(self, reason: str, retry_after: float):
        super().__init__(f"{reason}; retry after {retry_after:.3f}s")
        self.reason = reason
        self.retry_after = retry_after


class ExperimentClient:
    """Submit grids to a running :class:`ExperimentServer` and collect
    verified results."""

    def __init__(self, socket_path: str, client_id: str = "client"):
        self.socket_path = socket_path
        self.client_id = client_id
        #: stats dict from the last completed job's ``job-done`` event
        self.last_job_stats: Optional[dict] = None
        #: label -> fault-counter summary from the last job's point
        #: events (chaos/fault points only; clean points carry none)
        self.last_fault_summaries: Dict[str, dict] = {}

    # ------------------------------------------------------------- plumbing

    def _request(self, msg: dict) -> Iterator[dict]:
        """One connection, one request, a stream of reply events."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(self.socket_path)
        fh = sock.makefile("rwb")
        try:
            fh.write(json.dumps(msg, separators=(",", ":")).encode() + b"\n")
            fh.flush()
            for line in fh:
                event = json.loads(line)
                yield event
                if event["event"] in _TERMINAL_EVENTS:
                    return
        finally:
            fh.close()
            sock.close()

    def ping(self) -> bool:
        """True iff a server answers on the socket (no exception leaks)."""
        try:
            for event in self._request({"op": "ping"}):
                return event["event"] == "pong"
        except OSError:
            return False
        return False

    def stats(self) -> dict:
        for event in self._request({"op": "stats"}):
            if event["event"] == "error":
                raise ServiceError(event["error"])
            return event
        raise ServiceError("no stats reply")

    # ------------------------------------------------------------- requests

    def iter_grid(self, specs: List[RunSpec]) -> Iterator[dict]:
        """Submit a grid and yield raw protocol events as they stream."""
        points = [encode_wire_point(ServicePoint.from_spec(spec))
                  for spec in specs]
        yield from self._request({"op": "submit", "client": self.client_id,
                                  "points": points})

    def run_grid(self, specs: List[RunSpec],
                 on_event: Optional[Callable[[dict], None]] = None,
                 check: bool = True) -> Dict[str, SystemResult]:
        """Submit a grid, stream it to completion, return label -> result.

        Raises :class:`RateLimitedError` on admission rejection and
        :class:`ServiceError` if any point errored or was excluded by
        the worker tier's resilience policy.  With ``check`` (default),
        each spec's workload validation runs on its returned result.
        """
        results: Dict[str, SystemResult] = {}
        failed: Dict[str, str] = {}
        self.last_job_stats = None
        self.last_fault_summaries = {}
        for event in self.iter_grid(specs):
            if on_event is not None:
                on_event(event)
            kind = event["event"]
            if kind == "rejected":
                raise RateLimitedError(event["reason"],
                                       event["retry_after"])
            if kind == "error" or kind == "job-failed":
                raise ServiceError(event["error"])
            if kind == "point":
                if event["status"] == "done":
                    record = base64.b64decode(event["result"])
                    result, rfp = unpack_record(
                        record,
                        expected_point=event.get("point_fingerprint"))
                    assert rfp == event["result_fingerprint"]
                    results[event["label"]] = result
                    if "faults" in event:
                        self.last_fault_summaries[event["label"]] = \
                            event["faults"]
                else:
                    failed[event["label"]] = event.get(
                        "reason", event.get("error", event["status"]))
            elif kind == "job-done":
                self.last_job_stats = event["stats"]
        if failed:
            details = "; ".join(f"{label!r}: {reason}"
                                for label, reason in failed.items())
            raise ServiceError(
                f"{len(failed)} point(s) not served: {details}")
        if check:
            for spec in specs:
                if spec.check and spec.label in results:
                    spec.workload.check(results[spec.label])
        return results

    def run_grid_with_retry(self, specs: List[RunSpec], attempts: int = 5,
                            max_wait: float = 5.0,
                            **kwargs) -> Dict[str, SystemResult]:
        """:meth:`run_grid`, honouring ``retry_after`` backpressure."""
        for attempt in range(attempts):
            try:
                return self.run_grid(specs, **kwargs)
            except RateLimitedError as exc:
                if attempt == attempts - 1:
                    raise
                time.sleep(min(exc.retry_after, max_wait))
        raise AssertionError("unreachable")  # pragma: no cover

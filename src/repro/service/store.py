"""Persistent, content-addressed result store for simulation points.

This is the disk tier behind the resident experiment service (and the
record format behind ``SweepScheduler`` checkpoints): every completed
``(config, workload, fault_plan)`` point is stored under its
``point_fingerprint`` and can be served back to any later client --
same process, fresh process, or a different machine sharing the
directory -- without burning simulator cycles.

Guarantees:

* **Atomic writes.** Records land via write-to-temp + ``os.replace``,
  so a reader never sees a partial record and a kill mid-write leaves
  only a stale ``.tmp`` file, never a corrupt visible one.
* **Versioned, self-verifying records.**  Each record carries a format
  version, the owning point fingerprint, and the payload's
  ``result_fingerprint``; :func:`unpack_record` recomputes the latter
  over the unpickled payload, so a truncated, tampered, foreign, or
  cross-version record raises :class:`RecordError` instead of silently
  serving wrong data.  Callers re-simulate on any failure.
* **Bloom-filtered misses.**  A :class:`~repro.service.bloom.BloomFilter`
  warmed from the directory at open sits in front of every lookup, so a
  cold miss costs a few in-memory bit tests instead of a failing
  ``stat`` -- the common case for a service fielding novel points.

Layout: ``<root>/<fp[:2]>/<fp>.res`` -- two-hex-digit sharding keeps
directory fan-out bounded at 256 even with millions of records.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
from typing import Dict, Optional, Tuple

from repro.harness.parallel import result_fingerprint
from repro.service.bloom import BloomFilter
from repro.system import SystemResult

__all__ = ["RecordError", "ResultStore", "STORE_FORMAT_VERSION",
           "pack_record", "unpack_record"]

STORE_MAGIC = b"repro-result"
STORE_FORMAT_VERSION = 1
RECORD_SUFFIX = ".res"


class RecordError(ValueError):
    """A persisted record failed its format, version or integrity check."""


def pack_record(result: SystemResult, point_fp: str = "",
                result_fp: Optional[str] = None) -> bytes:
    """Serialize one result as a self-verifying versioned record.

    Header line: ``magic \\x00 version \\x00 point_fp \\x00 result_fp``,
    newline, then the pickled :class:`SystemResult` payload.  The point
    fingerprint may be empty when the record is not bound to a specific
    point (e.g. ad-hoc transfers); bound records let the reader reject a
    record that was copied or renamed onto the wrong key.
    """
    rfp = result_fp if result_fp is not None else result_fingerprint(result)
    header = b"\x00".join((STORE_MAGIC, str(STORE_FORMAT_VERSION).encode(),
                           point_fp.encode(), rfp.encode()))
    return header + b"\n" + pickle.dumps(result,
                                         protocol=pickle.HIGHEST_PROTOCOL)


def unpack_record(data: bytes, expected_point: Optional[str] = None
                  ) -> Tuple[SystemResult, str]:
    """Parse and fully verify a record; returns ``(result, result_fp)``.

    Raises :class:`RecordError` on bad magic (including pre-versioned
    raw pickles), a format-version mismatch, a record bound to a point
    other than ``expected_point``, an unreadable payload, or a payload
    whose recomputed ``result_fingerprint`` differs from the stored one.
    """
    header, sep, payload = data.partition(b"\n")
    if not sep:
        raise RecordError("truncated record: missing header terminator")
    parts = header.split(b"\x00")
    if len(parts) != 4 or parts[0] != STORE_MAGIC:
        raise RecordError("not a repro result record (bad magic)")
    try:
        version = int(parts[1])
    except ValueError:
        raise RecordError("unreadable format version") from None
    if version != STORE_FORMAT_VERSION:
        raise RecordError(f"record format version {version}, "
                          f"this code reads {STORE_FORMAT_VERSION}")
    point_fp = parts[2].decode()
    stored_rfp = parts[3].decode()
    if expected_point is not None and point_fp and point_fp != expected_point:
        raise RecordError(
            f"record belongs to point {point_fp[:12]}..., "
            f"expected {expected_point[:12]}...")
    try:
        result = pickle.loads(payload)
    except Exception as exc:
        raise RecordError(f"unreadable record payload: {exc}") from exc
    actual_rfp = result_fingerprint(result)
    if actual_rfp != stored_rfp:
        raise RecordError("integrity check failed: stored result "
                          "fingerprint does not match the payload")
    return result, actual_rfp


class ResultStore:
    """On-disk result cache keyed by point fingerprint.

    Thread-safe for the service's usage pattern (one writer tier, many
    reader connections): counter updates take a lock, filesystem
    operations rely on the atomic-replace protocol.
    """

    def __init__(self, root: str, bloom_capacity: int = 1 << 17,
                 bloom_error_rate: float = 0.001):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._bloom = BloomFilter(bloom_capacity, bloom_error_rate)
        self._lock = threading.Lock()
        self._tmp_ids = itertools.count()
        self._count = 0
        self.hits = 0
        self.misses = 0
        #: misses answered by the bloom filter alone (no stat/read)
        self.bloom_skips = 0
        self.integrity_failures = 0
        for shard in sorted(os.listdir(root)):
            shard_dir = os.path.join(root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(RECORD_SUFFIX):
                    self._bloom.add(name[:-len(RECORD_SUFFIX)])
                    self._count += 1

    def _path(self, point_fp: str) -> str:
        return os.path.join(self.root, point_fp[:2],
                            point_fp + RECORD_SUFFIX)

    def __len__(self) -> int:
        return self._count

    def __contains__(self, point_fp: str) -> bool:
        return point_fp in self._bloom and os.path.exists(self._path(point_fp))

    def get(self, point_fp: str) -> Optional[Tuple[SystemResult, str]]:
        """``(result, result_fp)`` on a verified hit, else ``None``.

        Never raises on a bad record: integrity failures are counted,
        the offending file is evicted, and the caller re-simulates.
        """
        if point_fp not in self._bloom:
            with self._lock:
                self.bloom_skips += 1
                self.misses += 1
            return None
        try:
            with open(self._path(point_fp), "rb") as fh:
                data = fh.read()
        except OSError:  # bloom false positive (or a concurrent eviction)
            with self._lock:
                self.misses += 1
            return None
        try:
            result, rfp = unpack_record(data, expected_point=point_fp)
        except RecordError:
            with self._lock:
                self.integrity_failures += 1
                self.misses += 1
            self._evict(point_fp)
            return None
        with self._lock:
            self.hits += 1
        return result, rfp

    def put(self, point_fp: str, result: SystemResult) -> str:
        """Persist one result atomically; returns its result fingerprint."""
        rfp = result_fingerprint(result)
        data = pack_record(result, point_fp=point_fp, result_fp=rfp)
        path = self._path(point_fp)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fresh = not os.path.exists(path)
        tmp = f"{path}.tmp.{os.getpid()}.{next(self._tmp_ids)}"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        with self._lock:
            self._bloom.add(point_fp)
            if fresh:
                self._count += 1
        return rfp

    def _evict(self, point_fp: str) -> None:
        try:
            os.unlink(self._path(point_fp))
        except OSError:
            return
        with self._lock:
            self._count = max(0, self._count - 1)

    def snapshot(self) -> Dict[str, float]:
        """Counters for the service's ``stats`` op and the selftest."""
        with self._lock:
            return {
                "records": self._count,
                "hits": self.hits,
                "misses": self.misses,
                "bloom_skips": self.bloom_skips,
                "integrity_failures": self.integrity_failures,
                "bloom_saturation": round(self._bloom.saturation, 6),
            }

"""Admission control for the experiment service.

Two mechanisms, both enforced at submit time so the queue can never
grow without bound:

* **Per-client token buckets** -- each client id refills at ``rate``
  jobs/second up to a ``burst`` ceiling.  A client over its budget is
  rejected with a computed ``retry_after`` (the time until its bucket
  holds a full token again); other clients' buckets are untouched, so
  one chatty client cannot starve the rest.
* **Bounded queue depth** -- at most ``max_depth`` jobs may be waiting
  for the dispatcher.  Overflow is rejected with a backpressure
  ``retry_after`` scaled by the current depth rather than queued, so
  memory stays bounded no matter how many clients pile on.

Rejection is a :class:`RateLimited` exception carrying ``retry_after``
seconds; the socket layer turns it into a ``rejected`` event and
well-behaved clients (see :meth:`ExperimentClient.run_grid_with_retry`)
back off and resubmit.
"""

from __future__ import annotations

import itertools
import queue as stdlib_queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

__all__ = ["Job", "JobQueue", "RateLimited", "TokenBucket"]


class RateLimited(Exception):
    """Submission rejected; the client should retry after ``retry_after``."""

    def __init__(self, reason: str, retry_after: float):
        super().__init__(f"{reason}; retry after {retry_after:.3f}s")
        self.reason = reason
        self.retry_after = retry_after


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill up to ``burst``.

    The clock is passed into :meth:`try_acquire` rather than read
    internally, which keeps the bucket deterministic under test.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last: Optional[float] = None

    def try_acquire(self, now: float, tokens: float = 1.0) -> float:
        """Debit and return ``0.0`` on success; otherwise return the
        seconds until ``tokens`` will be available (nothing debited)."""
        if self._last is not None and now > self._last:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate)
        self._last = now
        if tokens <= self._tokens + 1e-12:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate


@dataclass
class Job:
    """One accepted grid submission plus its streaming event channel."""

    job_id: int
    client_id: str
    points: List
    #: per-point and terminal events, drained by the submitting connection
    events: "stdlib_queue.Queue" = field(default_factory=stdlib_queue.Queue,
                                         repr=False)


class JobQueue:
    """Bounded FIFO of accepted jobs with per-client rate limiting."""

    def __init__(self, max_depth: int = 16, rate: float = 20.0,
                 burst: float = 20.0,
                 depth_retry_after: float = 0.25,
                 clock: Callable[[], float] = time.monotonic):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.rate = rate
        self.burst = burst
        self.depth_retry_after = depth_retry_after
        self._clock = clock
        self._cond = threading.Condition()
        self._jobs: Deque[Job] = deque()
        self._buckets: Dict[str, TokenBucket] = {}
        self._ids = itertools.count(1)
        self.accepted = 0
        self.rejected_rate = 0
        self.rejected_depth = 0

    def submit(self, client_id: str, points: List) -> Job:
        """Admit one job or raise :class:`RateLimited`.

        Depth is checked before the bucket so a backpressure rejection
        never costs the client a token.
        """
        with self._cond:
            if len(self._jobs) >= self.max_depth:
                self.rejected_depth += 1
                raise RateLimited(
                    f"job queue full ({self.max_depth} deep)",
                    self.depth_retry_after * len(self._jobs))
            bucket = self._buckets.setdefault(
                client_id, TokenBucket(self.rate, self.burst))
            wait = bucket.try_acquire(self._clock())
            if wait > 0.0:
                self.rejected_rate += 1
                raise RateLimited(
                    f"client {client_id!r} over its rate limit", wait)
            job = Job(next(self._ids), client_id, list(points))
            self._jobs.append(job)
            self.accepted += 1
            self._cond.notify()
            return job

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the oldest job, waiting up to ``timeout`` seconds."""
        with self._cond:
            if not self._jobs:
                self._cond.wait(timeout)
            return self._jobs.popleft() if self._jobs else None

    def depth(self) -> int:
        with self._cond:
            return len(self._jobs)

    def snapshot(self) -> Dict[str, int]:
        with self._cond:
            return {
                "depth": len(self._jobs),
                "accepted": self.accepted,
                "rejected_rate": self.rejected_rate,
                "rejected_depth": self.rejected_depth,
                "clients": len(self._buckets),
            }

"""Simulation-as-a-service: resident experiment server + result store.

The sweep harness fingerprints and dedups points *in-process*; this
package promotes that into a long-running tier (ROADMAP item 2):

* :mod:`repro.service.store` -- persistent on-disk result cache keyed
  by ``point_fingerprint``, with atomic writes, versioned
  integrity-checked records, and a bloom filter in front of cold misses;
* :mod:`repro.service.jobqueue` -- per-client token-bucket rate
  limiting plus a bounded job queue (reject-with-retry-after, never
  unbounded growth);
* :mod:`repro.service.server` -- the resident server: a JSON-lines
  Unix-socket protocol streaming per-point completion events, with the
  fault-tolerant :class:`~repro.harness.parallel.ResilientPointRunner`
  as the worker tier;
* :mod:`repro.service.client` -- submit grids, stream events, collect
  end-to-end-verified results.

``examples/run_service.py`` drives all of it (including the
``--selftest`` CI gate); docs/SERVICE.md documents the protocol, the
store layout, and the rate-limit/backpressure knobs.
"""

from repro.service.bloom import BloomFilter
from repro.service.client import ExperimentClient, RateLimitedError, ServiceError
from repro.service.jobqueue import Job, JobQueue, RateLimited, TokenBucket
from repro.service.server import (
    ExperimentServer,
    ExperimentService,
    ServicePoint,
)
from repro.service.store import (
    RecordError,
    ResultStore,
    STORE_FORMAT_VERSION,
    pack_record,
    unpack_record,
)

__all__ = [
    "BloomFilter",
    "ExperimentClient",
    "ExperimentServer",
    "ExperimentService",
    "Job",
    "JobQueue",
    "RateLimited",
    "RateLimitedError",
    "RecordError",
    "ResultStore",
    "STORE_FORMAT_VERSION",
    "ServiceError",
    "ServicePoint",
    "TokenBucket",
    "pack_record",
    "unpack_record",
]

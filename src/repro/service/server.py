"""Resident experiment server: store-backed, rate-limited, streaming.

Architecture (see docs/SERVICE.md)::

    client --- unix socket, JSON lines ---> ExperimentServer
                                                |  submit
                                                v
                                            JobQueue  (token buckets,
                                                |       bounded depth)
                                                v  dispatcher thread
                                         ExperimentService._process
                                           /                \\
                                  ResultStore hit?    ResilientPointRunner
                                  (bloom -> disk,     (per-point processes,
                                   verified record)    timeouts/retries/kill)

``ExperimentService`` is the embeddable core -- no sockets -- so tests
and the ``--selftest`` CI gate can drive it in-process.
``ExperimentServer`` adds the local-socket JSON-lines protocol: clients
submit a grid of points and stream per-point completion events as they
happen, each carrying the result (as a verified store record) and its
``result_fingerprint``.

Wire format: one JSON object per line.  Point payloads and results
travel as base64-wrapped binary blobs *inside* the JSON -- simulation
configs and results are Python object graphs, and the socket is a
local, same-user trust domain (a Unix socket with filesystem
permissions), so pickle is acceptable transport; do not expose this
protocol on a network boundary.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.faults.nodeplan import NodeFaultPlan
from repro.faults.plan import FaultPlan
from repro.harness.parallel import (
    ResilientPointRunner,
    RunSpec,
    point_fingerprint,
    simulate_point,
)
from repro.service.jobqueue import Job, JobQueue, RateLimited
from repro.service.store import ResultStore, pack_record
from repro.sim.config import SystemConfig
from repro.workloads.base import Workload

__all__ = ["ExperimentServer", "ExperimentService", "ServicePoint",
           "decode_wire_point", "encode_wire_point", "fault_summary"]


@dataclass
class ServicePoint:
    """One submitted simulation point, workload-validation-free.

    Clients ship exactly what the worker tier needs -- config, assembled
    programs, initial memory, optional fault plan and node-fault (chaos)
    plan -- plus the workload *name*, which is part of the point
    fingerprint.  ``validate`` closures never cross the wire (they are
    not picklable); answer checking stays client-side, same as the
    in-process scheduler's parent-side validation.
    """

    label: str
    workload_name: str
    config: SystemConfig
    programs: List
    initial_memory: Dict[int, int]
    fault_plan: Optional[FaultPlan] = None
    node_plan: Optional[NodeFaultPlan] = None

    def to_workload(self) -> Workload:
        return Workload(self.workload_name, self.programs,
                        self.initial_memory)

    def to_spec(self) -> RunSpec:
        return RunSpec(self.label, self.config, self.to_workload(),
                       check=False, fault_plan=self.fault_plan,
                       node_plan=self.node_plan)

    def fingerprint(self) -> str:
        return point_fingerprint(self.config, self.to_workload(),
                                 self.fault_plan, self.node_plan)

    @classmethod
    def from_spec(cls, spec: RunSpec) -> "ServicePoint":
        return cls(spec.label, spec.workload.name, spec.config,
                   spec.workload.programs, spec.workload.initial_memory,
                   spec.fault_plan, spec.node_plan)


def encode_wire_point(point: ServicePoint) -> dict:
    blob = pickle.dumps(
        (point.config, point.programs, point.initial_memory,
         point.fault_plan, point.node_plan),
        protocol=pickle.HIGHEST_PROTOCOL)
    return {"label": point.label, "name": point.workload_name,
            "blob": base64.b64encode(blob).decode("ascii")}


def decode_wire_point(obj: dict) -> ServicePoint:
    data = pickle.loads(base64.b64decode(obj["blob"]))
    config, programs, initial_memory, fault_plan = data[:4]
    # Pre-chaos clients ship 4-tuples; tolerate them (no node plan).
    node_plan = data[4] if len(data) > 4 else None
    return ServicePoint(obj["label"], obj["name"], config, programs,
                        initial_memory, fault_plan, node_plan)


#: Fault counters surfaced verbatim in each point event (when present).
_FAULT_COUNTERS = ("faults.dropped", "faults.duplicated", "faults.stalls",
                   "faults.delayed", "faults.nacks_sent",
                   "nodefaults.crashes", "nodefaults.pauses",
                   "nodefaults.resumes", "nodefaults.deferred")
#: Recovery counters summed across components (l1.N.retries, dir.retries...).
_RECOVERY_SUFFIXES = (".retries", ".nacks_received", ".dups_suppressed")


def fault_summary(result) -> Optional[dict]:
    """Chaos observability digest of one result's stats snapshot.

    ``None`` for an unperturbed run (no ``faults.*``/``nodefaults.*``
    keys in the snapshot -- fault-free runs stay byte-identical, so the
    clean event shape is unchanged too).  Otherwise a flat dict of the
    injector and node-fault counters plus the per-component recovery
    totals, so a remote :class:`~repro.service.client.ExperimentClient`
    can watch a chaos sweep's perturbation/recovery behaviour without
    unpickling result blobs.
    """
    snapshot = result.stats.snapshot()
    if not any(name.startswith(("faults.", "nodefaults."))
               for name in snapshot):
        return None
    summary = {name: snapshot[name] for name in _FAULT_COUNTERS
               if name in snapshot}
    for suffix in _RECOVERY_SUFFIXES:
        summary[suffix[1:]] = sum(
            value for name, value in snapshot.items()
            if name.endswith(suffix))
    return summary


class ExperimentService:
    """Embeddable service core: job queue -> store -> resilient runner.

    A single dispatcher thread drains the queue in FIFO order.  For
    each job, every point is first looked up in the persistent store
    (bloom filter, then a verified record read); hits stream back
    immediately with ``source: "store"``.  Misses are deduplicated
    within the job and fanned over the :class:`ResilientPointRunner` --
    the same timeout/retry/kill-escalation tier the resilient sweeps
    use -- and each completed result is persisted before its event is
    emitted, so a result is never observable without being durable.
    """

    def __init__(self, store: ResultStore,
                 worker: Callable = simulate_point,
                 jobs: Optional[int] = None,
                 point_timeout: Optional[float] = None,
                 retries: int = 0,
                 retry_backoff: float = 0.25,
                 term_grace: float = 5.0,
                 max_queue_depth: int = 16,
                 rate: float = 20.0,
                 burst: float = 20.0):
        self.store = store
        self.queue = JobQueue(max_depth=max_queue_depth, rate=rate,
                              burst=burst)
        self._runner = ResilientPointRunner(
            worker=worker, jobs=jobs if jobs and jobs > 0
            else (os.cpu_count() or 1),
            point_timeout=point_timeout, retries=retries,
            retry_backoff=retry_backoff, term_grace=term_grace)
        self._running = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.jobs_done = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._thread is not None:
            return
        self._running.set()
        self._thread = threading.Thread(target=self._dispatch_loop,
                                        name="experiment-dispatcher",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._running.clear()
        self._thread.join()
        self._thread = None

    # ----------------------------------------------------------- submission

    def submit(self, client_id: str, points: List[ServicePoint]) -> Job:
        """Admit a grid; raises :class:`RateLimited` on backpressure."""
        return self.queue.submit(client_id, points)

    # ----------------------------------------------------------- dispatcher

    def _dispatch_loop(self) -> None:
        while self._running.is_set():
            job = self.queue.next_job(timeout=0.1)
            if job is None:
                continue
            try:
                self._process(job)
            except Exception as exc:  # noqa: BLE001 - job-scoped firewall
                job.events.put({"event": "job-failed", "job": job.job_id,
                                "error": f"{type(exc).__name__}: {exc}"})
            self.jobs_done += 1

    def _point_event(self, point: ServicePoint, source: str,
                     result, result_fp: str, point_fp: str) -> dict:
        record = pack_record(result, point_fp=point_fp, result_fp=result_fp)
        event = {"event": "point", "label": point.label, "status": "done",
                 "source": source, "point_fingerprint": point_fp,
                 "result_fingerprint": result_fp,
                 "result": base64.b64encode(record).decode("ascii")}
        faults = fault_summary(result)
        if faults is not None:
            event["faults"] = faults
        return event

    def _process(self, job: Job) -> None:
        stats = {"points": len(job.points), "from_store": 0,
                 "simulated": 0, "deduplicated": 0, "excluded": 0,
                 "errors": 0}
        #: fingerprint -> all points in this job sharing it (intra-job dedup)
        waiting: Dict[str, List[ServicePoint]] = {}
        pending = []
        for point in job.points:
            fp = point.fingerprint()
            cached = self.store.get(fp)
            if cached is not None:
                result, rfp = cached
                stats["from_store"] += 1
                job.events.put(self._point_event(point, "store", result,
                                                 rfp, fp))
                continue
            if fp in waiting:
                stats["deduplicated"] += 1
                waiting[fp].append(point)
                continue
            waiting[fp] = [point]
            pending.append((fp, point.to_spec()))

        def on_result(fp, spec, result, seconds):
            rfp = self.store.put(fp, result)
            for i, point in enumerate(waiting[fp]):
                stats["simulated" if i == 0 else "from_store"] += 1
                job.events.put(self._point_event(point, "simulated", result,
                                                 rfp, fp))

        def on_error(fp, spec, message):
            # Do not raise: one broken point must not sink the job's
            # remaining points (the server stays up either way).
            for point in waiting[fp]:
                stats["errors"] += 1
                job.events.put({"event": "point", "label": point.label,
                                "status": "error", "error": message})

        def on_exclude(fp, spec, reason):
            for point in waiting[fp]:
                stats["excluded"] += 1
                job.events.put({"event": "point", "label": point.label,
                                "status": "excluded", "reason": reason})

        if pending:
            self._runner.run(pending, on_result=on_result,
                             on_error=on_error, on_exclude=on_exclude)
        job.events.put({"event": "job-done", "job": job.job_id,
                        "stats": stats})

    def snapshot(self) -> dict:
        return {"store": self.store.snapshot(),
                "queue": self.queue.snapshot(),
                "jobs_done": self.jobs_done}


class ExperimentServer:
    """JSON-lines Unix-socket front end over an :class:`ExperimentService`.

    Ops: ``{"op": "ping"}`` -> ``pong``; ``{"op": "stats"}`` -> counter
    snapshot; ``{"op": "submit", "client": id, "points": [...]}`` ->
    ``accepted`` (then a stream of ``point`` events and a terminal
    ``job-done``) or ``rejected`` with ``retry_after`` seconds.
    """

    #: ceiling on one job's event stream gap before the connection is
    #: declared wedged (dispatcher death is job-failed, not silence).
    STREAM_TIMEOUT = 600.0

    def __init__(self, socket_path: str, service: ExperimentService):
        self.socket_path = socket_path
        self.service = service
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = threading.Event()

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        sock.bind(self.socket_path)
        sock.listen(16)
        sock.settimeout(0.2)
        self._sock = sock
        self._running.set()
        self.service.start()
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               name="experiment-server",
                                               daemon=True)
        self._accept_thread.start()

    def stop(self) -> None:
        if self._sock is None:
            return
        self._running.clear()
        self._accept_thread.join()
        self._accept_thread = None
        self.service.stop()
        self._sock.close()
        self._sock = None
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    def __enter__(self) -> "ExperimentServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------- connections

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=self._handle, args=(conn,),
                             daemon=True).start()

    @staticmethod
    def _send(fh, obj: dict) -> None:
        fh.write(json.dumps(obj, separators=(",", ":")).encode() + b"\n")
        fh.flush()

    def _handle(self, conn: socket.socket) -> None:
        fh = conn.makefile("rwb")
        try:
            for line in fh:
                if not line.strip():
                    continue
                try:
                    msg = json.loads(line)
                except ValueError:
                    self._send(fh, {"event": "error",
                                    "error": "unparseable request line"})
                    continue
                op = msg.get("op")
                if op == "ping":
                    self._send(fh, {"event": "pong"})
                elif op == "stats":
                    self._send(fh, {"event": "stats",
                                    **self.service.snapshot()})
                elif op == "submit":
                    self._handle_submit(fh, msg)
                else:
                    self._send(fh, {"event": "error",
                                    "error": f"unknown op {op!r}"})
        except (BrokenPipeError, ConnectionResetError, ValueError):
            pass  # client went away mid-stream; drop the connection
        finally:
            try:
                fh.close()
            except OSError:
                pass
            conn.close()

    def _handle_submit(self, fh, msg: dict) -> None:
        client_id = msg.get("client", "anonymous")
        try:
            points = [decode_wire_point(obj) for obj in msg["points"]]
        except Exception as exc:  # noqa: BLE001 - report, keep serving
            self._send(fh, {"event": "error",
                            "error": f"undecodable points: {exc}"})
            return
        try:
            job = self.service.submit(client_id, points)
        except RateLimited as exc:
            self._send(fh, {"event": "rejected", "reason": exc.reason,
                            "retry_after": exc.retry_after})
            return
        self._send(fh, {"event": "accepted", "job": job.job_id,
                        "points": len(points)})
        while True:
            event = job.events.get(timeout=self.STREAM_TIMEOUT)
            self._send(fh, event)
            if event["event"] in ("job-done", "job-failed"):
                return

"""Bloom-filter membership check fronting the persistent result store.

A classic ``m``-bit / ``k``-hash bloom filter sized from a target
capacity and false-positive rate.  The store consults it before every
lookup so a *cold miss* -- a point never simulated anywhere -- costs a
couple of bit tests instead of a ``stat(2)`` call; a (rare) false
positive just falls through to the real filesystem check, so
correctness never depends on the filter.  No false negatives are
possible: every stored fingerprint is added before the store's write is
visible.

The two hash indexes come from one SHA-256 of the key, combined with
the standard Kirsch-Mitzenmacher double-hashing scheme
(``h1 + i*h2 mod m``); forcing ``h2`` odd keeps the stride
full-period for power-of-two-free ``m`` as well.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterator

__all__ = ["BloomFilter"]


class BloomFilter:
    """Fixed-size bloom filter over string keys (hex fingerprints)."""

    __slots__ = ("capacity", "error_rate", "num_bits", "num_hashes",
                 "_bits", "_approx_items")

    def __init__(self, capacity: int, error_rate: float = 0.001):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < error_rate < 1.0:
            raise ValueError("error_rate must be in (0, 1)")
        self.capacity = capacity
        self.error_rate = error_rate
        ln2 = math.log(2)
        self.num_bits = max(
            64, math.ceil(-capacity * math.log(error_rate) / (ln2 * ln2)))
        self.num_hashes = max(1, round((self.num_bits / capacity) * ln2))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._approx_items = 0

    def _indexes(self, key: str) -> Iterator[int]:
        digest = hashlib.sha256(key.encode()).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        m = self.num_bits
        return ((h1 + i * h2) % m for i in range(self.num_hashes))

    def add(self, key: str) -> None:
        bits = self._bits
        for index in self._indexes(key):
            bits[index >> 3] |= 1 << (index & 7)
        self._approx_items += 1

    def __contains__(self, key: str) -> bool:
        bits = self._bits
        return all(bits[index >> 3] & (1 << (index & 7))
                   for index in self._indexes(key))

    def __len__(self) -> int:
        """Number of ``add`` calls (duplicates counted -- approximate)."""
        return self._approx_items

    @property
    def saturation(self) -> float:
        """Fraction of bits set; past ~0.5 the false-positive rate grows
        beyond the configured target."""
        set_bits = sum(byte.bit_count() for byte in self._bits)
        return set_bits / self.num_bits

"""Deterministic fault plans.

A :class:`FaultPlan` describes *how* the interconnect delivery layer is
perturbed -- extra delay jitter, message duplication, transient per-link
stalls, and drop-with-NACK -- plus the retry policy the endpoints use to
recover from drops.  Plans are frozen, validated, and content-fingerprinted
exactly like sweep points: the same seed + the same plan replays the same
fault sequence bit for bit, because the injector consumes one seeded RNG in
simulation (send) order and the simulation itself is deterministic.

The plan deliberately lives *outside* :class:`repro.sim.config.SystemConfig`
so that fault-free runs keep their existing config reprs, point
fingerprints, and golden stats tables unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict

from repro.sim.config import _require


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault-injection scenario.

    Probabilities are per *message send*; delays are in cycles.  Drops
    apply only to re-sendable requests/probes (GET/PUT/INV/FWD_GET_S) --
    data responses and acks travel on a reliable channel, mirroring how
    real NoCs protect reply virtual networks (see docs/ROBUSTNESS.md).
    A dropped message is replaced by a NACK to its sender; with
    ``retries_enabled`` the sender re-issues it after an exponential
    backoff, otherwise the loss is permanent (useful for proving the
    watchdog catches the resulting deadlock).
    """

    seed: int = 0
    #: probability of adding uniform extra delay in [1, max_jitter]
    jitter_prob: float = 0.0
    max_jitter: int = 0
    #: probability of delivering a second copy of the message
    dup_prob: float = 0.0
    #: cycles between the original and its duplicate
    dup_lag: int = 3
    #: probability of a transient stall on the (src, dst) pair
    stall_prob: float = 0.0
    stall_cycles: int = 0
    #: probability of dropping a droppable message (NACK returned)
    drop_prob: float = 0.0
    #: deterministically drop the first N droppable messages (on top of
    #: drop_prob; used by directed tests and the acceptance scenario)
    drop_first_n: int = 0
    #: cycles for the NACK to reach the original sender
    nack_latency: int = 5
    retries_enabled: bool = True
    #: retry backoff: base << min(attempt, cap) cycles
    retry_backoff_base: int = 8
    retry_backoff_cap: int = 6
    #: RNG stream layout.  "global": one seeded stream consumed in
    #: simulation send order (the historical behaviour).  "pair": an
    #: independent stream per (src, dst) pair, seeded from (seed, src,
    #: dst) with explicit arithmetic (never the salted builtin hash) and
    #: consumed in that pair's send order.  Pair scope makes the fault
    #: sequence independent of the interleaving of *other* pairs' sends,
    #: which is what lets a plan land identically under the sharded
    #: engine -- each pair's send order is shard-local.  drop_first_n
    #: counts globally, so it is only meaningful in global scope.
    rng_scope: str = "global"

    def __post_init__(self) -> None:
        _require(self.seed >= 0, "seed must be >= 0")
        for name in ("jitter_prob", "dup_prob", "stall_prob", "drop_prob"):
            value = getattr(self, name)
            _require(0.0 <= value <= 1.0, f"{name} must be in [0, 1]")
        _require(self.max_jitter >= 0, "max_jitter must be >= 0")
        _require(self.jitter_prob == 0.0 or self.max_jitter > 0,
                 "jitter_prob > 0 requires max_jitter > 0")
        _require(self.dup_lag >= 1, "dup_lag must be >= 1")
        _require(self.stall_cycles >= 0, "stall_cycles must be >= 0")
        _require(self.stall_prob == 0.0 or self.stall_cycles > 0,
                 "stall_prob > 0 requires stall_cycles > 0")
        _require(self.drop_first_n >= 0, "drop_first_n must be >= 0")
        _require(self.nack_latency >= 1, "nack_latency must be >= 1")
        _require(self.retry_backoff_base >= 1, "retry_backoff_base must be >= 1")
        _require(self.retry_backoff_cap >= 0, "retry_backoff_cap must be >= 0")
        _require(self.rng_scope in ("global", "pair"),
                 f"rng_scope must be 'global' or 'pair', got {self.rng_scope!r}")
        _require(self.rng_scope == "global" or self.drop_first_n == 0,
                 "drop_first_n counts sends globally and is incompatible "
                 "with rng_scope='pair'")

    @property
    def active(self) -> bool:
        """True if this plan can perturb anything at all."""
        return bool(self.jitter_prob or self.dup_prob or self.stall_prob
                    or self.drop_prob or self.drop_first_n)

    def fingerprint(self) -> str:
        """Content hash, stable across processes (like point fingerprints)."""
        return hashlib.sha256(repr(self).encode()).hexdigest()

    def describe(self) -> str:
        """Compact human-readable summary for labels and reports."""
        parts = [f"seed={self.seed}"]
        if self.jitter_prob:
            parts.append(f"jitter={self.jitter_prob:g}/{self.max_jitter}")
        if self.dup_prob:
            parts.append(f"dup={self.dup_prob:g}")
        if self.stall_prob:
            parts.append(f"stall={self.stall_prob:g}/{self.stall_cycles}")
        if self.drop_prob or self.drop_first_n:
            drops = f"drop={self.drop_prob:g}"
            if self.drop_first_n:
                drops += f"+first{self.drop_first_n}"
            parts.append(drops)
            parts.append("retries=on" if self.retries_enabled else "retries=off")
        if self.rng_scope != "global":
            parts.append(f"rng={self.rng_scope}")
        if len(parts) == 1:
            parts.append("clean")
        return " ".join(parts)


def fault_scenarios(seed: int = 0) -> Dict[str, FaultPlan]:
    """The named scenarios E12 and ``examples/run_faults.py`` sweep.

    Ordered from benign to hostile; "none" is the fault-free control.
    """
    return {
        "none": FaultPlan(seed=seed),
        "jitter": FaultPlan(seed=seed, jitter_prob=0.3, max_jitter=9),
        "duplication": FaultPlan(seed=seed, dup_prob=0.25, dup_lag=4),
        "stalls": FaultPlan(seed=seed, stall_prob=0.08, stall_cycles=40),
        "drop-retry": FaultPlan(seed=seed, drop_prob=0.12),
        "storm": FaultPlan(seed=seed, jitter_prob=0.2, max_jitter=7,
                           dup_prob=0.15, dup_lag=3,
                           stall_prob=0.05, stall_cycles=25,
                           drop_prob=0.08),
    }

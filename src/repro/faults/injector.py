"""Fault-injecting interconnect wrapper.

:class:`FaultInjector` wraps a real interconnect (crossbar or mesh) and
perturbs its delivery layer according to a :class:`~repro.faults.plan.
FaultPlan`: bounded extra delay jitter, message duplication, transient
per-(src, dst) stalls, and drop-with-NACK.  The wrapper sits *between*
the endpoints and the inner network, so the inner network's own timing
model (port serialisation, link contention) still applies to whatever
the injector lets through.

Two invariants are load-bearing:

* **FIFO per (src, dst) is preserved.**  The MESI protocol assumes
  messages between a fixed pair never reorder.  Every perturbed send is
  therefore *scheduled* into the inner network (never called
  synchronously) at a release time clamped to a monotone per-pair
  floor; the engine's same-cycle FIFO bucket order then keeps equal
  release times in send order, and the inner network serialises from
  there.  Duplicates advance the floor too, so a dup cannot be
  overtaken by a later message.

* **Determinism.**  One ``random.Random(plan.seed)`` is consumed in
  send order.  The simulation itself is deterministic, so the sequence
  of sends -- and hence of fault decisions -- is identical across runs
  with the same seed and plan.

Drops apply only to re-sendable requests/probes (``DROPPABLE``); data
responses and acks are reliable, mirroring protected reply networks.
A drop synthesises a NACK carrying the original message and delivers it
straight to the *sender's* endpoint after ``nack_latency`` cycles (the
fault layer owns the NACK channel; it does not transit the inner
network, so NACKs themselves are never dropped).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Tuple

from repro.coherence.messages import Message, MessageType
from repro.faults.plan import FaultPlan
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

#: Message types the injector may drop: requests and probes, all of
#: which the sender can safely re-issue.  DATA_*, acks, and writeback
#: notifications ride the reliable channel (dropping a data response
#: would require a directory-side timeout protocol the paper's machine
#: does not have).
DROPPABLE = frozenset({
    MessageType.GET_S,
    MessageType.GET_M,
    MessageType.PUT_S,
    MessageType.PUT_E,
    MessageType.PUT_M,
    MessageType.INV,
    MessageType.FWD_GET_S,
})


class FaultInjector:
    """Wraps an interconnect; perturbs delivery per a :class:`FaultPlan`."""

    def __init__(self, sim: Simulator, inner: Any, plan: FaultPlan,
                 stats: StatsRegistry):
        self.sim = sim
        self.inner = inner
        self.plan = plan
        # Global scope: one stream in simulation send order.  Pair
        # scope: an independent stream per (src, dst), created lazily in
        # _pair_rng -- the fault sequence each pair sees then depends
        # only on that pair's own send order, which is what the sharded
        # engine needs (see plan.rng_scope).
        self._rng = random.Random(plan.seed) if plan.rng_scope == "global" \
            else None
        self._pair_rngs: Dict[Tuple[int, int], random.Random] = {}
        self._endpoints: Dict[int, Any] = {}
        #: per-(src, dst) monotone release floor (FIFO preservation)
        self._pair_floor: Dict[Tuple[int, int], int] = {}
        self._forced_drops = plan.drop_first_n
        self.stat_dropped = stats.counter("faults.dropped")
        self.stat_nacks_sent = stats.counter("faults.nacks_sent")
        self.stat_duplicated = stats.counter("faults.duplicated")
        self.stat_stalled = stats.counter("faults.stalls")
        self.stat_delayed = stats.counter("faults.delayed")
        self.stat_extra_delay = stats.accumulator("faults.extra_delay_cycles")

    @property
    def name(self) -> str:
        return getattr(self.inner, "name", "net")

    def attach(self, node_id: int, endpoint: Any) -> None:
        """Register with both layers: the injector needs the endpoint map
        to deliver NACKs directly to senders."""
        self._endpoints[node_id] = endpoint
        self.inner.attach(node_id, endpoint)

    def _pair_rng(self, src: int, dst: int) -> random.Random:
        pair = (src, dst)
        rng = self._pair_rngs.get(pair)
        if rng is None:
            # Explicit arithmetic seed derivation -- the builtin hash()
            # is salted per process and would break cross-process
            # determinism.  The multipliers just spread (seed, src, dst)
            # triples apart; Random's init scrambles from there.
            derived = (self.plan.seed * 1_000_003 + src * 1_009 + dst) \
                & 0xFFFF_FFFF_FFFF_FFFF
            rng = self._pair_rngs[pair] = random.Random(derived)
        return rng

    def send(self, src: int, dst: int, msg: Any) -> None:
        plan = self.plan
        rng = self._rng
        if rng is None:
            rng = self._pair_rng(src, dst)

        if msg.mtype in DROPPABLE:
            forced = self._forced_drops > 0
            if forced or (plan.drop_prob and rng.random() < plan.drop_prob):
                if forced:
                    self._forced_drops -= 1
                self._drop(src, dst, msg)
                return

        now = self.sim._now
        pair = (src, dst)
        floor = self._pair_floor.get(pair, 0)
        release = now if now > floor else floor
        if plan.stall_prob and rng.random() < plan.stall_prob:
            self.stat_stalled.value += 1
            release += plan.stall_cycles
        if plan.jitter_prob and rng.random() < plan.jitter_prob:
            release += rng.randrange(1, plan.max_jitter + 1)
        if release > now:
            self.stat_delayed.value += 1
            self.stat_extra_delay.add(release - now)
        self._pair_floor[pair] = release
        # Always *schedule* entry into the inner network: an earlier
        # message of this pair may still be waiting in the calendar, and
        # a synchronous inner.send here would overtake it.
        self.sim.schedule_fast_at(release, self.inner.send, src, dst, msg)

        if plan.dup_prob and rng.random() < plan.dup_prob:
            # The duplicate shares the original's uid, so endpoint
            # duplicate-suppression drops exactly the injected copies.
            self.stat_duplicated.value += 1
            dup_at = release + plan.dup_lag
            self._pair_floor[pair] = dup_at
            self.sim.schedule_fast_at(dup_at, self.inner.send, src, dst, msg)

    def _drop(self, src: int, dst: int, msg: Any) -> None:
        """Drop ``msg`` and NACK its sender.

        The NACK's ``src`` field is the node the message never reached,
        so the sender knows where a retry must go; ``orig`` carries the
        dropped message itself for re-issue.
        """
        self.stat_dropped.value += 1
        self.stat_nacks_sent.value += 1
        nack = Message(MessageType.NACK, msg.addr, src=dst,
                       word_addr=msg.word_addr, orig=msg)
        self.sim.schedule_fast(self.plan.nack_latency,
                               self._endpoints[src].receive, nack)

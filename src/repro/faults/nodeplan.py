"""Deterministic node-fault plans: crash-stop and pause-resume cores.

A :class:`NodeFaultPlan` extends the fault axis from *links*
(:class:`repro.faults.plan.FaultPlan`) to *nodes*: it schedules
fail-stop crashes and fail-recover pauses of simulated cores at planned
cycles.  Plans are frozen, validated, and content-fingerprinted exactly
like link plans, and the two axes compose -- a chaos point is
``(config, workload, fault_plan, node_fault_plan)`` and replays bit for
bit.

Fault semantics (enforced by :mod:`repro.faults.nodes`):

* **crash** (fail-stop): the core stops dispatching instructions at the
  next instruction boundary, permanently.  Its store buffer freezes --
  buffered-but-undrained stores are *lost*, which is exactly the lost-
  update window distributed protocols must tolerate.  The core's L1
  keeps answering the coherence protocol (the cache controller outlives
  the core, like a wedged-but-powered node), so the rest of the machine
  stays live and can still read whatever the dead node published.
* **pause** (fail-recover): instruction dispatch suspends at the next
  boundary and resumes ``duration`` cycles after ``at_cycle``.  In-
  flight memory operations and store-buffer drain continue -- the node
  is stalled (GC pause, preemption), not dead.

Like ``FaultPlan``, node plans live outside ``SystemConfig`` so fault-
free runs keep their reprs, point fingerprints, and golden stats tables
byte-identical.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.sim.config import _require

#: The two node-fault kinds a plan may schedule.
CRASH = "crash"
PAUSE = "pause"


@dataclass(frozen=True)
class NodeFault:
    """One planned fault on one core.

    ``kind`` is :data:`CRASH` (fail-stop at ``at_cycle``; ``duration``
    must be 0) or :data:`PAUSE` (dispatch suspended for ``duration``
    cycles starting at ``at_cycle``).
    """

    core: int
    kind: str
    at_cycle: int
    duration: int = 0

    def __post_init__(self) -> None:
        _require(self.core >= 0, "core must be >= 0")
        _require(self.kind in (CRASH, PAUSE),
                 f"kind must be {CRASH!r} or {PAUSE!r}, got {self.kind!r}")
        _require(self.at_cycle >= 0, "at_cycle must be >= 0")
        if self.kind is CRASH or self.kind == CRASH:
            _require(self.duration == 0, "a crash has no duration")
        else:
            _require(self.duration >= 1, "a pause needs duration >= 1")

    @property
    def end_cycle(self) -> float:
        """Exclusive end of the fault's window (inf for a crash)."""
        if self.kind == CRASH:
            return float("inf")
        return self.at_cycle + self.duration


@dataclass(frozen=True)
class NodeFaultPlan:
    """One deterministic node-fault scenario (a set of planned faults).

    Validation rejects malformed faults and *overlapping or duplicate
    per-core windows*: each core's faults must be disjoint in time, and
    a crash -- whose window never ends -- must be that core's last
    fault.  Overlap would make the plan's meaning order-dependent,
    which a replayable axis cannot be.
    """

    seed: int = 0
    faults: Tuple[NodeFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        _require(self.seed >= 0, "seed must be >= 0")
        if not isinstance(self.faults, tuple):
            _require(isinstance(self.faults, (list, tuple)),
                     "faults must be a tuple of NodeFault")
            object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            _require(isinstance(fault, NodeFault),
                     f"faults must be NodeFault instances, got {fault!r}")
        per_core: Dict[int, list] = {}
        for fault in self.faults:
            per_core.setdefault(fault.core, []).append(fault)
        for core, faults in per_core.items():
            faults.sort(key=lambda f: f.at_cycle)
            for prev, nxt in zip(faults, faults[1:]):
                _require(prev.at_cycle != nxt.at_cycle,
                         f"core {core}: duplicate fault at cycle "
                         f"{prev.at_cycle}")
                _require(prev.kind != CRASH,
                         f"core {core}: fault at cycle {nxt.at_cycle} "
                         f"follows a crash at cycle {prev.at_cycle} "
                         "(a crashed core never comes back)")
                # Strictly after the previous window ends: a fault
                # landing exactly at the resume cycle would race the
                # resume event inside one bucket.
                _require(prev.end_cycle < nxt.at_cycle,
                         f"core {core}: fault windows overlap or touch "
                         f"([{prev.at_cycle}, {prev.end_cycle:g}) and "
                         f"[{nxt.at_cycle}, {nxt.end_cycle:g}))")

    @property
    def active(self) -> bool:
        """True if this plan can perturb anything at all."""
        return bool(self.faults)

    def affected_cores(self) -> FrozenSet[int]:
        return frozenset(fault.core for fault in self.faults)

    def fingerprint(self) -> str:
        """Content hash, stable across processes (like point fingerprints)."""
        return hashlib.sha256(repr(self).encode()).hexdigest()

    def describe(self) -> str:
        """Compact human-readable summary for labels and reports."""
        parts = [f"seed={self.seed}"]
        for fault in self.faults:
            if fault.kind == CRASH:
                parts.append(f"crash(c{fault.core}@{fault.at_cycle})")
            else:
                parts.append(f"pause(c{fault.core}@{fault.at_cycle}"
                             f"+{fault.duration})")
        if len(parts) == 1:
            parts.append("clean")
        return " ".join(parts)


def node_fault_scenarios(seed: int = 0, n_cores: int = 4,
                         window: Tuple[int, int] = (400, 2_400),
                         pause_cycles: Tuple[int, int] = (300, 1_200),
                         ) -> Dict[str, NodeFaultPlan]:
    """The named node-fault scenarios E14 and ``run_chaos.py`` sweep.

    Victim cores and fault cycles are drawn from a ``seed``-keyed RNG at
    *plan construction* time; the plan itself is a fixed schedule, so
    replaying it never consults randomness again.  Core 0 is spared as
    the victim of single-fault scenarios so every workload keeps at
    least its first protagonist (crashing core 0 is still legal -- pass
    an explicit plan).  ``window`` bounds the fault cycles; keep it
    inside the target workload's runtime or the faults land after HALT
    and become no-ops.
    """
    _require(n_cores >= 2, "node fault scenarios need >= 2 cores")
    rng = random.Random((seed * 2_654_435_761 + 0x5EED) & 0xFFFFFFFF)
    lo, hi = window
    victim = rng.randrange(1, n_cores)
    other = 1 + (victim % (n_cores - 1))
    crash_at = rng.randrange(lo, hi)
    pause_at = rng.randrange(lo, hi)
    pause_for = rng.randrange(pause_cycles[0], pause_cycles[1])
    return {
        "none": NodeFaultPlan(seed=seed),
        "crash": NodeFaultPlan(seed=seed, faults=(
            NodeFault(victim, CRASH, crash_at),)),
        "pause": NodeFaultPlan(seed=seed, faults=(
            NodeFault(victim, PAUSE, pause_at, pause_for),)),
        "pause-crash": NodeFaultPlan(seed=seed, faults=(
            NodeFault(victim, PAUSE, pause_at, pause_for),
            NodeFault(other, CRASH, crash_at),)),
    }

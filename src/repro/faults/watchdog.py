"""Liveness watchdog: turn hangs into diagnosable exceptions.

A protocol bug -- or an injected fault with retries disabled -- shows up
in one of two ways:

* **Deadlock**: the event queue goes quiescent (nothing but the
  watchdog's own tick fires) while cores are still blocked.  The engine
  already catches the fully-drained variant; the watchdog also catches
  the variant where a periodic event keeps the queue technically
  non-empty.
* **Livelock**: events keep churning but no core commits an instruction
  for a whole ``no_commit_window``.  InvisiFence's own abort/retry loop
  cannot genuinely livelock (the conservative-window policy guarantees
  forward progress), so the watchdog is a backstop against *bugs* in
  that machinery and against hostile fault plans, not a crutch the
  design needs.

Both conditions raise with a :func:`diagnostic_dump`: per-core stall
reason, store-buffer depth, in-flight message count, L1 transient state
(MSHRs / writeback buffer), and directory transient transactions -- the
state needed to name the stuck address and cores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


class DeadlockError(SimulationError):
    """The system went quiescent with cores still blocked."""


class LivelockError(SimulationError):
    """Events keep firing but no instruction has committed for too long."""


def diagnostic_dump(system: "System") -> str:
    """Render the liveness-relevant machine state as indented text."""
    sim = system.sim
    lines: List[str] = [
        f"diagnostic dump at cycle {sim.now} "
        f"({sim.events_dispatched} events dispatched, "
        f"{sim.pending_events} pending):"
    ]
    net = system.net
    inner = getattr(net, "inner", net)  # unwrap a FaultInjector
    inflight = getattr(inner, "inflight", None)
    if inflight is not None:
        lines.append(f"  interconnect: {inflight} message(s) in flight")
    for core in system.cores:
        if core.halted:
            lines.append(f"  core {core.core_id}: halted at cycle "
                         f"{core.finish_cycle}")
            continue
        # Node-fault (chaos) states first: a fail-stop report must name
        # which node died, not just the addresses the survivors are
        # stuck on.
        nf_state = getattr(core, "nf_state", 0)
        if nf_state == 2:
            lines.append(
                f"  core {core.core_id}: CRASHED (fail-stop) at cycle "
                f"{core.nf_crashed_at}, pc={core.pc}, "
                f"{core.instructions} committed, "
                f"{core.sb.occupancy} store(s) lost in the frozen buffer"
            )
            continue
        if nf_state == 1:
            lines.append(
                f"  core {core.core_id}: PAUSED since cycle "
                f"{core.nf_paused_at} (resumes at cycle "
                f"{core.nf_resume_at}), pc={core.pc}, "
                f"{core.instructions} committed, "
                f"store buffer depth {core.sb.occupancy}"
            )
            continue
        wait = core._pending_wait
        if wait is not None:
            _, cause, started_at, _ = wait
            state = f"stalled on {cause.value} since cycle {started_at}"
        else:
            # No explicit drain-wait: the core is either mid-step or
            # blocked inside a cache access (check the L1 lines below).
            state = "awaiting a step/cache callback"
        spec = " speculating" if core.speculating else ""
        lines.append(
            f"  core {core.core_id}: {state}, pc={core.pc}, "
            f"{core.instructions} committed, "
            f"store buffer depth {core.sb.occupancy}{spec}"
        )
    for l1 in system.l1s:
        parked = getattr(l1, "_wb_blocked", None) or {}
        if not l1._mshrs and not l1._wb and not parked:
            continue
        mshrs = ", ".join(f"{addr:#x}" for addr in sorted(l1._mshrs))
        wbs = ", ".join(f"{addr:#x}" for addr in sorted(l1._wb))
        line = (f"  l1[{l1.node_id}]: outstanding misses [{mshrs or '-'}], "
                f"writebacks in flight [{wbs or '-'}]")
        if parked:
            blocked = ", ".join(f"{addr:#x}" for addr in sorted(parked))
            line += f", misses parked behind writebacks [{blocked}]"
        lines.append(line)
    directory = system.directory
    for addr, txn in sorted(directory._active.items()):
        queued = len(directory._pending.get(addr, ()))
        lines.append(
            f"  directory: block {addr:#x} transaction {txn.kind!r} "
            f"for node {txn.msg.src} ({txn.acks_needed} ack(s) outstanding, "
            f"{queued} request(s) queued behind it)"
        )
    if len(lines) == 1:
        lines.append("  (no transient state anywhere: nothing left to wait for)")
    return "\n".join(lines)


class Watchdog:
    """Periodic progress monitor scheduled into a system's simulator.

    Every ``check_interval`` cycles it compares total committed
    instructions and total dispatched events against the previous tick:

    * no new events beyond the watchdog's own tick => the queue is
      quiescent; with unhalted cores that is a deadlock;
    * events but no committed instruction for ``no_commit_window``
      cycles => livelock.

    The tick stops rescheduling itself once every core has halted, so a
    healthy run still drains its queue (and its stats/results are
    untouched -- the watchdog reads state, never writes it).
    """

    def __init__(self, system: "System", check_interval: int = 2_000,
                 no_commit_window: int = 200_000):
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        if no_commit_window < check_interval:
            raise ValueError("no_commit_window must be >= check_interval")
        self.system = system
        self.check_interval = check_interval
        self.no_commit_window = no_commit_window
        self._last_progress = -1
        self._last_dispatched = -1
        self._stalled_cycles = 0

    def start(self) -> None:
        """Arm the watchdog; call before ``sim.run()``."""
        self._last_progress = self._progress()
        self._last_dispatched = self.system.sim.events_dispatched
        self.system.sim.schedule_fast(self.check_interval, self._tick)

    def _progress(self) -> int:
        # Committed instructions + halts: monotone, and advanced by any
        # genuine forward progress.  Rollbacks reset pc but never undo
        # the committed count.
        system = self.system
        return sum(core.instructions for core in system.cores) \
            + system._halted_count

    def _tick(self) -> None:
        system = self.system
        if getattr(system, "all_settled", system.all_halted):
            return  # disarm: let the queue drain normally
        sim = system.sim
        dispatched = sim.events_dispatched
        if dispatched - self._last_dispatched <= 1:
            # Only our own previous tick fired in a whole interval: the
            # machine is quiescent but cores are still blocked.  A
            # paused core makes quiescence expected -- its resume event
            # is pending, so hold fire and re-check next interval.
            if not any(getattr(c, "nf_state", 0) == 1
                       for c in system.cores):
                crashed = getattr(system, "crashed_cores", set())
                stuck = [c.core_id for c in system.cores
                         if not c.halted and c.core_id not in crashed]
                note = ""
                if crashed:
                    note = (f" (cores {sorted(crashed)} crash-stopped "
                            "by the node-fault plan)")
                raise DeadlockError(
                    f"deadlock: no events besides the watchdog fired for "
                    f"{self.check_interval} cycles; cores {stuck} "
                    f"blocked{note}\n" + diagnostic_dump(system)
                )
        progress = self._progress()
        if progress > self._last_progress:
            self._stalled_cycles = 0
        else:
            self._stalled_cycles += self.check_interval
            if self._stalled_cycles >= self.no_commit_window:
                raise LivelockError(
                    f"livelock: no instruction committed for "
                    f"{self._stalled_cycles} cycles while events keep firing\n"
                    + diagnostic_dump(system)
                )
        self._last_progress = progress
        self._last_dispatched = dispatched
        sim.schedule_fast(self.check_interval, self._tick)

"""Node-fault execution: drives a :class:`NodeFaultPlan` against live cores.

The controller is the chaos layer's runtime half: at ``System.run`` it
schedules one simulator event per planned fault (plus one per resume),
so a plan replays bit-for-bit -- fault delivery rides the same
deterministic calendar queue as everything else, and scheduling happens
*before* the cores start, so a cycle's fault events always precede that
cycle's instruction dispatches (FIFO within a bucket).

The mechanism half lives in :meth:`repro.cpu.core.Core.enable_node_faults`:
targeted cores get every decoded dispatch slot wrapped with a crash/pause
guard, in place, so all dispatch paths (trampoline, direct appends, load
retirement, superblock relays) gate at instruction boundaries.  Cores a
plan targets are built *without* superblock fusion (see ``System``): a
fused block executes atomically at its head dispatch, so a fault landing
mid-block would settle at different instruction boundaries fused vs.
unfused, breaking the superblocks-on/off determinism proof.  Untargeted
cores keep fusion and the original closures.

Stats counters (created lazily, only when a plan is active, so the
fault-free stats namespace -- and therefore result fingerprints -- stay
untouched):

* ``nodefaults.crashes``  -- crash faults that actually landed
* ``nodefaults.pauses``   -- pause faults that actually landed
* ``nodefaults.resumes``  -- pauses that ended with the core still live
* ``nodefaults.deferred`` -- dispatches stashed at a pause boundary

A fault scheduled after its core halted is a no-op (the plan outlived
the workload); it lands in no counter.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.faults.nodeplan import CRASH, NodeFaultPlan
from repro.sim.stats import StatsRegistry


class NodeFaultController:
    """Schedules the planned crash/pause/resume events for one run."""

    def __init__(self, sim, cores: List, plan: NodeFaultPlan,
                 stats: StatsRegistry,
                 on_crash: Optional[Callable] = None):
        self.sim = sim
        self.cores = cores
        self.plan = plan
        self.on_crash = on_crash
        self.stat_crashes = stats.counter("nodefaults.crashes")
        self.stat_pauses = stats.counter("nodefaults.pauses")
        self.stat_resumes = stats.counter("nodefaults.resumes")

    def start(self) -> None:
        """Schedule every planned fault.  Call before the cores start."""
        for fault in self.plan.faults:
            core = self.cores[fault.core]
            if fault.kind == CRASH:
                self.sim.schedule_fast(fault.at_cycle, self._crash, core)
            else:
                self.sim.schedule_fast(fault.at_cycle, self._pause, core,
                                       fault.at_cycle + fault.duration)

    def _crash(self, core) -> None:
        if core.nf_crash():
            self.stat_crashes.increment()
            if self.on_crash is not None:
                self.on_crash(core)

    def _pause(self, core, resume_at: int) -> None:
        if core.nf_pause(resume_at):
            self.stat_pauses.increment()
            # The resume is scheduled only when the pause engages, so a
            # pause that missed (core already halted) leaves no event.
            self.sim.schedule_fast(resume_at - self.sim.now,
                                   self._resume, core)

    def _resume(self, core) -> None:
        if core.nf_resume():
            self.stat_resumes.increment()

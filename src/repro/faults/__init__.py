"""Deterministic fault injection and liveness monitoring.

``repro.faults`` proves the ROADMAP's "adversarial timing" claim: a
seeded :class:`FaultPlan` perturbs interconnect delivery (jitter,
duplication, stalls, drop-with-NACK) while the protocol's retry layer
and the consistency checker show the faults stay architecturally
invisible; a seeded :class:`NodeFaultPlan` crash-stops or pause-resumes
whole cores at planned cycles (the chaos layer the distributed-protocol
workloads are checked under); the :class:`Watchdog` turns any liveness
failure into a :class:`DeadlockError`/:class:`LivelockError` with a
diagnostic dump instead of a hang.  See docs/ROBUSTNESS.md.
"""

from repro.faults.injector import DROPPABLE, FaultInjector
from repro.faults.nodeplan import (CRASH, PAUSE, NodeFault, NodeFaultPlan,
                                   node_fault_scenarios)
from repro.faults.nodes import NodeFaultController
from repro.faults.plan import FaultPlan, fault_scenarios
from repro.faults.watchdog import (DeadlockError, LivelockError, Watchdog,
                                   diagnostic_dump)

__all__ = [
    "CRASH",
    "DROPPABLE",
    "DeadlockError",
    "FaultInjector",
    "FaultPlan",
    "LivelockError",
    "NodeFault",
    "NodeFaultController",
    "NodeFaultPlan",
    "PAUSE",
    "Watchdog",
    "diagnostic_dump",
    "fault_scenarios",
    "node_fault_scenarios",
]

"""Result analysis: cycle breakdowns, energy estimates, speedups, tables."""

from repro.analysis.breakdown import CycleBreakdown, system_breakdown
from repro.analysis.energy import EnergyParams, EnergyReport, estimate_energy
from repro.analysis.tables import ascii_table, format_ratio, to_csv

__all__ = [
    "CycleBreakdown",
    "system_breakdown",
    "EnergyParams",
    "EnergyReport",
    "estimate_energy",
    "ascii_table",
    "format_ratio",
    "to_csv",
]

"""ASCII tables and CSV export for the experiment harness."""

from __future__ import annotations

import io
from typing import Iterable, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                title: str = "") -> str:
    """A monospaced table matching the style of the paper's tables."""
    rendered = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """CSV text (simple quoting; fields here never contain commas)."""
    buf = io.StringIO()
    buf.write(",".join(headers) + "\n")
    for row in rows:
        buf.write(",".join(_render(c) for c in row) + "\n")
    return buf.getvalue()


def format_ratio(value: float, baseline: float) -> str:
    """'1.42x' style speedup formatting (baseline / value for cycles)."""
    if value <= 0:
        return "inf"
    return f"{baseline / value:.2f}x"

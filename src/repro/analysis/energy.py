"""First-order energy model (an extension beyond the paper's evaluation).

The paper's surrounding context (and the 2009 venue's keynote) is that
data movement, not computation, dominates energy.  This model turns a
run's event counts into an energy estimate using per-event costs in
arbitrary energy units (defaults follow the classic relative costs:
an off-chip access ~100x an L1 access, a network hop ~5x):

* core busy cycles (pipeline activity),
* L1 hits, DRAM fetches and L2 hits at the directory,
* interconnect messages,
* writebacks and clean-before-write traffic,
* plus InvisiFence's *speculative waste*: instructions executed and
  then rolled back are pure energy loss.

This enables the energy-delay view of the tradeoff: speculation removes
stall *time* but adds wasted *work* under conflicts -- the net effect
is workload-dependent and measurable here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.system import SystemResult


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy costs (arbitrary units, relative magnitudes)."""

    core_cycle: float = 0.2
    instruction: float = 1.0
    l1_access: float = 1.0
    l2_access: float = 8.0
    dram_access: float = 100.0
    network_message: float = 5.0
    writeback: float = 8.0
    rollback: float = 2.0          #: checkpoint-restore machinery per rollback
    wasted_instruction: float = 1.0


@dataclass
class EnergyReport:
    """Energy attribution for one run."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    @property
    def wasted(self) -> float:
        return (self.components.get("wasted_instructions", 0.0)
                + self.components.get("rollbacks", 0.0))

    def energy_delay_product(self, cycles: int) -> float:
        return self.total * cycles

    def render(self) -> str:
        lines = ["energy component                     units      share"]
        for name, value in sorted(self.components.items(),
                                  key=lambda kv: -kv[1]):
            share = value / self.total if self.total else 0.0
            lines.append(f"{name:<34s} {value:>10.0f}   {100 * share:5.1f}%")
        lines.append(f"{'total':<34s} {self.total:>10.0f}")
        return "\n".join(lines)


def estimate_energy(result: SystemResult,
                    params: EnergyParams = EnergyParams()) -> EnergyReport:
    """Estimate a run's energy from its statistics."""
    stats = result.stats
    n_cores = len(result.cores)

    def total(pattern: str) -> float:
        return stats.sum(pattern.format(i) for i in range(n_cores))

    busy = total("core.{}.busy_cycles")
    instructions = total("core.{}.instructions")
    l1_accesses = total("l1.{}.hits") + total("l1.{}.misses")
    writebacks = (total("l1.{}.writebacks")
                  + total("l1.{}.clean_before_write")
                  + total("l1.{}.committed_writethroughs"))
    l2 = stats.value("dir.l2_hits") if "dir.l2_hits" in stats else 0
    dram = stats.value("dir.dram_fetches") if "dir.dram_fetches" in stats else 0
    messages = 0.0
    for name in ("xbar.messages", "mesh.messages"):
        if name in stats:
            messages += stats.value(name)
    wasted = total("spec.{}.wasted_instructions")
    rollbacks = total("spec.{}.violations")

    report = EnergyReport()
    report.components = {
        "core_cycles": busy * params.core_cycle,
        "instructions": instructions * params.instruction,
        "l1_accesses": l1_accesses * params.l1_access,
        "l2_accesses": l2 * params.l2_access,
        "dram_accesses": dram * params.dram_access,
        "network_messages": messages * params.network_message,
        "writebacks": writebacks * params.writeback,
        "wasted_instructions": wasted * params.wasted_instruction,
        "rollbacks": rollbacks * params.rollback,
    }
    return report

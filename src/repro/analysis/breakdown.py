"""Execution-time breakdowns (the E1 figure's data model).

Each core's runtime decomposes into busy cycles, memory stalls, the
ordering-stall categories (fence / atomic / SC), structural stalls,
rollback penalty, and end-of-run idle (after the core halted but before
the slowest core finished).  ``system_breakdown`` aggregates across
cores; categories always sum to ``n_cores * total_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.core import StallCause
from repro.system import SystemResult


@dataclass
class CycleBreakdown:
    """Aggregated cycle attribution for one run."""

    total_cycles: int
    n_cores: int
    busy: int
    categories: Dict[str, int] = field(default_factory=dict)
    idle: int = 0

    @property
    def core_cycles(self) -> int:
        """Total core-cycles in the run (n_cores x wall cycles)."""
        return self.total_cycles * self.n_cores

    @property
    def ordering(self) -> int:
        """Ordering-induced stall cycles (what InvisiFence removes)."""
        return sum(self.categories.get(c.value, 0)
                   for c in StallCause if c.is_ordering)

    def fraction(self, name: str) -> float:
        """Share of total core-cycles spent in one category.

        ``name`` is a StallCause value, ``"busy"``, or ``"idle"``.
        """
        if self.core_cycles == 0:
            return 0.0
        if name == "busy":
            return self.busy / self.core_cycles
        if name == "idle":
            return self.idle / self.core_cycles
        return self.categories.get(name, 0) / self.core_cycles

    @property
    def ordering_fraction(self) -> float:
        return self.ordering / self.core_cycles if self.core_cycles else 0.0

    def check_conservation(self, tolerance: float = 0.0) -> None:
        """Assert every core-cycle was attributed exactly once."""
        attributed = self.busy + self.idle + sum(self.categories.values())
        drift = abs(attributed - self.core_cycles)
        if drift > tolerance * max(self.core_cycles, 1):
            raise AssertionError(
                f"cycle conservation broken: attributed {attributed}, "
                f"have {self.core_cycles} (drift {drift})"
            )


def system_breakdown(result: SystemResult) -> CycleBreakdown:
    """Build the aggregated breakdown from a run's statistics.

    Per core, cycles not attributed to busy or any stall category are
    either end-of-run idle (after its HALT) or scheduling slack between
    instructions; both are folded into ``idle`` -- the slack is zero by
    construction of the core's accounting.
    """
    total = result.cycles
    n_cores = len(result.cores)
    busy = 0
    categories: Dict[str, int] = {c.value: 0 for c in StallCause}
    idle = 0
    for core in result.cores:
        busy += core.busy_cycles
        attributed = core.busy_cycles
        for cause in StallCause:
            cycles = core.stall_cycles[cause]
            categories[cause.value] += cycles
            attributed += cycles
        idle += max(total - attributed, 0)
    return CycleBreakdown(total_cycles=total, n_cores=n_cores,
                          busy=busy, categories=categories, idle=idle)

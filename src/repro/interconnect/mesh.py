"""2D mesh interconnect with XY dimension-ordered routing.

An alternative to the crossbar for the scaling studies: cores occupy a
``width x height`` grid (the directory sits at an extra, configurable
tile), messages hop link by link (X first, then Y), and every directed
link serialises one message per ``link_issue_interval`` cycles, so
congestion around the directory tile is modelled.

Delivery between any (src, dst) pair remains FIFO -- XY routing is
deterministic, every message of a pair follows the same path, and each
link is a FIFO queue -- which is the property the coherence protocol
requires.
"""

from __future__ import annotations

import math
from heapq import heappush as _heappush
from typing import Any, Dict, Tuple

from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


class Mesh:
    """Dimension-ordered 2D mesh.

    Node ids 0..n_nodes-1 map row-major onto the grid; the node with the
    highest id (the directory, by System convention) is placed at the
    grid's centre tile to match common home-node placement.
    """

    def __init__(self, sim: Simulator, n_nodes: int, stats: StatsRegistry,
                 hop_latency: int = 2, link_issue_interval: int = 1,
                 name: str = "mesh"):
        if n_nodes < 1:
            raise ValueError("mesh needs at least one node")
        if hop_latency < 1:
            raise ValueError("hop_latency must be >= 1")
        if link_issue_interval < 1:
            raise ValueError("link_issue_interval must be >= 1")
        self.sim = sim
        self.name = name
        self.hop_latency = hop_latency
        self.link_issue_interval = link_issue_interval
        self.width = max(1, math.ceil(math.sqrt(n_nodes)))
        self.height = math.ceil(n_nodes / self.width)
        self._endpoints: Dict[int, Any] = {}
        #: accepted but not yet delivered (read by liveness diagnostics)
        self.inflight = 0
        self._coords: Dict[int, Tuple[int, int]] = {}
        self._tiles: Dict[Tuple[int, int], int] = {}
        self._link_free_at: Dict[Tuple[Tuple[int, int], Tuple[int, int]], int] = {}
        self._place(n_nodes)

        self.stat_messages = stats.counter(f"{name}.messages")
        self.stat_hops = stats.accumulator(f"{name}.hops")
        self.stat_link_wait = stats.accumulator(f"{name}.link_wait_cycles")

        # Hot-path wiring, mirroring the crossbar: a message pays one
        # scheduling round-trip *per hop*, so ``send``/``_traverse``
        # inline the calendar-bucket append on the fast engine.  The
        # compat engine (fastpath=False) swaps in the variants that
        # route through the (shadowed, Event-allocating)
        # schedule_fast/schedule_fast_at -- the determinism suite proves
        # both paths byte-identical.  ``_traverse_h`` is the bound
        # method each hop reschedules: late-bound through ``self`` so a
        # subclass (the shard-boundary mesh) slots in transparently.
        if sim.fastpath:
            self._traverse_h = self._traverse
        else:
            self.send = self._send_compat  # type: ignore[method-assign]
            self._traverse_h = self._traverse_compat

    def _place(self, n_nodes: int) -> None:
        """Row-major placement, with the last node (the directory) swapped
        into the central tile."""
        tiles = [(x, y) for y in range(self.height) for x in range(self.width)]
        tiles = tiles[:n_nodes]
        centre = (self.width // 2, min(self.height // 2, self.height - 1))
        last = n_nodes - 1
        order = list(range(n_nodes))
        if centre in tiles:
            centre_index = tiles.index(centre)
            order[centre_index], order[last] = order[last], order[centre_index]
        for tile, node in zip(tiles, order):
            self._coords[node] = tile
            self._tiles[tile] = node

    # ------------------------------------------------------------- wiring

    def attach(self, node_id: int, endpoint: Any) -> None:
        if node_id not in self._coords:
            raise KeyError(f"node {node_id} has no tile on this mesh")
        if node_id in self._endpoints:
            raise ValueError(f"node id {node_id} already attached")
        self._endpoints[node_id] = endpoint

    def coordinates(self, node_id: int) -> Tuple[int, int]:
        return self._coords[node_id]

    def route(self, src: int, dst: int) -> list:
        """The XY path (list of tiles, inclusive of both ends)."""
        (x, y), (dx, dy) = self._coords[src], self._coords[dst]
        path = [(x, y)]
        while x != dx:
            x += 1 if dx > x else -1
            path.append((x, y))
        while y != dy:
            y += 1 if dy > y else -1
            path.append((x, y))
        return path

    # ------------------------------------------------------------- sending

    def send(self, src: int, dst: int, msg: Any) -> None:
        if src not in self._endpoints:
            raise KeyError(f"unknown source node {src}")
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination node {dst}")
        path = self.route(src, dst)
        self.stat_messages.value += 1
        self.stat_hops.add(len(path) - 1)
        self.inflight += 1
        if len(path) == 1:
            # Same-tile delivery (src == dst tile): one hop_latency, no
            # link to claim.  Inlined schedule_fast(hop_latency, ...):
            sim = self.sim
            time = sim._now + self.hop_latency
            buckets = sim._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = [(self._deliver, (dst, msg))]
                _heappush(sim._times, time)
            else:
                bucket.append((self._deliver, (dst, msg)))
            sim._pending += 1
            return
        self._traverse(path, 0, dst, msg, self.sim._now)

    def _traverse(self, path, index: int, dst: int, msg: Any,
                  arrived_at: int) -> None:
        """Claim the next link (FIFO per link) and hop across it."""
        if index == len(path) - 1:
            self._deliver(dst, msg)
            return
        link = (path[index], path[index + 1])
        free_at = self._link_free_at.get(link, 0)
        depart = arrived_at if arrived_at > free_at else free_at
        self._link_free_at[link] = depart + self.link_issue_interval
        self.stat_link_wait.add(depart - arrived_at)
        arrive = depart + self.hop_latency
        # Inlined schedule_fast_at(arrive, self._traverse_h, ...):
        sim = self.sim
        buckets = sim._buckets
        bucket = buckets.get(arrive)
        entry = (self._traverse_h, (path, index + 1, dst, msg, arrive))
        if bucket is None:
            buckets[arrive] = [entry]
            _heappush(sim._times, arrive)
        else:
            bucket.append(entry)
        sim._pending += 1

    def _send_compat(self, src: int, dst: int, msg: Any) -> None:
        """``send`` for the compat engine: every hop goes through the
        Event-allocating slow path."""
        if src not in self._endpoints:
            raise KeyError(f"unknown source node {src}")
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination node {dst}")
        path = self.route(src, dst)
        self.stat_messages.increment()
        self.stat_hops.add(len(path) - 1)
        self.inflight += 1
        if len(path) == 1:
            self.sim.schedule_fast(self.hop_latency, self._deliver, dst, msg)
            return
        self._traverse_compat(path, 0, dst, msg, self.sim.now)

    def _traverse_compat(self, path, index: int, dst: int, msg: Any,
                         arrived_at: int) -> None:
        if index == len(path) - 1:
            self._deliver(dst, msg)
            return
        link = (path[index], path[index + 1])
        free_at = self._link_free_at.get(link, 0)
        depart = max(arrived_at, free_at)
        self._link_free_at[link] = depart + self.link_issue_interval
        self.stat_link_wait.add(depart - arrived_at)
        arrive = depart + self.hop_latency
        self.sim.schedule_fast_at(arrive, self._traverse_compat, path,
                                  index + 1, dst, msg, arrive)

    def _deliver(self, dst: int, msg: Any) -> None:
        self.inflight -= 1
        self._endpoints[dst].receive(msg)

"""Crossbar interconnect with per-source-port serialisation.

Model: every endpoint owns an injection port that can accept one
message every ``port_issue_interval`` cycles; once injected, a message
is delivered ``link_latency`` cycles later.  Because the injection port
serialises in send order and the flight latency is constant, delivery
between any (source, destination) pair is FIFO -- a property the
coherence protocol relies on (responses from the directory to a core
cannot overtake one another).

Contention therefore appears only at injection (a bursty source queues
behind itself), which matches a reasonably provisioned crossbar and
keeps the model analysable.  Per-message occupancy statistics feed the
interconnect-utilisation numbers in the harness.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Any, Dict, Protocol

from repro.sim.config import InterconnectConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


class Endpoint(Protocol):
    """Anything attachable to the crossbar."""

    def receive(self, msg: Any) -> None:
        """Called when a message is delivered to this endpoint."""
        ...  # pragma: no cover - protocol definition


class Crossbar:
    """All-to-all switch connecting L1 controllers and the directory."""

    def __init__(self, sim: Simulator, config: InterconnectConfig, stats: StatsRegistry,
                 name: str = "xbar"):
        self.sim = sim
        self.config = config
        self.name = name
        self._endpoints: Dict[int, Endpoint] = {}
        self._port_free_at: Dict[int, int] = {}
        #: accepted but not yet delivered (read by liveness diagnostics)
        self.inflight = 0
        self._sent = stats.counter(f"{name}.messages")
        self._queue_cycles = stats.accumulator(f"{name}.injection_queue_cycles")
        # Hot-path caches: one send per coherence message, so every
        # attribute walk here is paid millions of times per experiment.
        # (sim.schedule_fast_at is bound in Simulator.__init__ -- before
        # any Crossbar exists -- so caching the bound method is safe
        # even for the fastpath=False compat engine.)
        self._issue_interval = config.port_issue_interval
        self._link_latency = config.link_latency
        self._schedule_at = sim.schedule_fast_at
        self._queue_add = self._queue_cycles.add
        self._deliver_h = self._deliver
        # ``send`` inlines the schedule_fast_at body (calendar-bucket
        # append); the compat engine falls back to the variant that
        # calls the Event-allocating shadow.
        if not sim.fastpath:
            self.send = self._send_compat  # type: ignore[method-assign]

    def attach(self, node_id: int, endpoint: Endpoint) -> None:
        """Register ``endpoint`` under ``node_id``; ids must be unique."""
        if node_id in self._endpoints:
            raise ValueError(f"node id {node_id} already attached")
        self._endpoints[node_id] = endpoint
        self._port_free_at[node_id] = 0

    def send(self, src: int, dst: int, msg: Any) -> None:
        """Inject ``msg`` from ``src``; deliver to ``dst`` after transit.

        Injection waits for the source port to be free (serialising
        bursts); transit then takes ``link_latency`` cycles.
        """
        ports = self._port_free_at
        if src not in ports:
            raise KeyError(f"unknown source node {src}")
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination node {dst}")
        sim = self.sim
        now = sim._now
        free = ports[src]
        inject_at = free if free > now else now
        ports[src] = inject_at + self._issue_interval
        # Inlined Accumulator.add(inject_at - now):
        delta = inject_at - now
        q = self._queue_cycles
        q.total += delta
        q.count += 1
        if q.minimum is None or delta < q.minimum:
            q.minimum = delta
        if q.maximum is None or delta > q.maximum:
            q.maximum = delta
        self._sent.value += 1
        self.inflight += 1
        # Inlined schedule_fast_at(inject_at + link_latency, _deliver, ...):
        time = inject_at + self._link_latency
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(self._deliver_h, (dst, msg))]
            _heappush(sim._times, time)
        else:
            bucket.append((self._deliver_h, (dst, msg)))
        sim._pending += 1

    def _send_compat(self, src: int, dst: int, msg: Any) -> None:
        """``send`` for the compat engine: schedules delivery through the
        (shadowed, Event-allocating) schedule_fast_at."""
        ports = self._port_free_at
        if src not in ports:
            raise KeyError(f"unknown source node {src}")
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination node {dst}")
        now = self.sim._now
        free = ports[src]
        inject_at = free if free > now else now
        ports[src] = inject_at + self._issue_interval
        self._queue_add(inject_at - now)
        self._sent.value += 1
        self.inflight += 1
        self._schedule_at(inject_at + self._link_latency,
                          self._deliver, dst, msg)

    def _deliver(self, dst: int, msg: Any) -> None:
        self.inflight -= 1
        self._endpoints[dst].receive(msg)

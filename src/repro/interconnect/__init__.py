"""On-chip interconnect models: crossbar and 2D mesh."""

from repro.interconnect.crossbar import Crossbar, Endpoint
from repro.interconnect.mesh import Mesh

__all__ = ["Crossbar", "Endpoint", "Mesh"]

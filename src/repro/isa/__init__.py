"""Micro-ISA for simulated workloads.

Workloads are expressed as small register-machine programs (32 GPRs,
8-byte word memory accesses, atomics, directional fences, branches) built
with :class:`repro.isa.program.Assembler`.  The same programs run on two
engines:

* the functional reference interpreter (:mod:`repro.isa.interpreter`) --
  a golden model used by the test suite; and
* the timing simulator (:mod:`repro.cpu` + :mod:`repro.system`) -- the
  machine whose performance the experiments measure.
"""

from repro.isa.instructions import (
    FenceKind,
    Instruction,
    Opcode,
    REG_COUNT,
)
from repro.isa.program import Assembler, Program
from repro.isa.interpreter import (
    InterpreterError,
    ReferenceInterpreter,
    ThreadState,
    explore_interleavings,
)

__all__ = [
    "FenceKind",
    "Instruction",
    "Opcode",
    "REG_COUNT",
    "Assembler",
    "Program",
    "InterpreterError",
    "ReferenceInterpreter",
    "ThreadState",
    "explore_interleavings",
]

"""Single-source-of-truth instruction semantics.

Both the functional reference interpreter and the timing core execute
instructions through these helpers, so the two engines can never drift
apart on what an instruction *means* -- they differ only in *when*
effects become visible.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instructions import Instruction, Opcode

#: Values are stored as 64-bit two's-complement words.
WORD_MASK = (1 << 64) - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit word as a signed integer."""
    value &= WORD_MASK
    return value - (1 << 64) if value & SIGN_BIT else value


def to_word(value: int) -> int:
    """Truncate a Python int to a 64-bit word."""
    return value & WORD_MASK


def alu_result(instr: Instruction, rs_val: int, rt_val: int) -> int:
    """Result of an ALU instruction given its source operand values."""
    op = instr.op
    if op is Opcode.LI:
        return to_word(instr.imm)
    if op is Opcode.MOV:
        return rs_val
    if op is Opcode.ADD:
        return to_word(rs_val + rt_val)
    if op is Opcode.ADDI:
        return to_word(rs_val + instr.imm)
    if op is Opcode.SUB:
        return to_word(rs_val - rt_val)
    if op is Opcode.MUL:
        return to_word(rs_val * rt_val)
    if op is Opcode.AND:
        return rs_val & rt_val
    if op is Opcode.OR:
        return rs_val | rt_val
    if op is Opcode.XOR:
        return rs_val ^ rt_val
    if op is Opcode.SLT:
        return 1 if to_signed(rs_val) < to_signed(rt_val) else 0
    if op is Opcode.SLTI:
        return 1 if to_signed(rs_val) < instr.imm else 0
    if op is Opcode.EXEC:
        return 0
    raise ValueError(f"{op.name} is not an ALU instruction")


def branch_taken(instr: Instruction, rs_val: int, rt_val: int) -> bool:
    """Whether a branch instruction is taken."""
    op = instr.op
    if op is Opcode.JMP:
        return True
    if op is Opcode.BEQ:
        return rs_val == rt_val
    if op is Opcode.BNE:
        return rs_val != rt_val
    if op is Opcode.BLT:
        return to_signed(rs_val) < to_signed(rt_val)
    if op is Opcode.BGE:
        return to_signed(rs_val) >= to_signed(rt_val)
    raise ValueError(f"{op.name} is not a branch instruction")


def effective_address(instr: Instruction, base_val: int) -> int:
    """The word address accessed by a memory instruction."""
    return to_word(base_val + instr.imm)


def atomic_result(
    instr: Instruction, old_value: int, rt_val: int, ru_val: int
) -> Tuple[int, Optional[int]]:
    """Semantics of an atomic read-modify-write.

    Returns ``(loaded_value, new_memory_value)``; ``new_memory_value`` is
    None when the atomic does not write (a failing CAS).
    """
    op = instr.op
    if op is Opcode.TAS:
        return old_value, 1
    if op is Opcode.SWAP:
        return old_value, rt_val
    if op is Opcode.CAS:
        if old_value == rt_val:
            return old_value, ru_val
        return old_value, None
    if op is Opcode.FETCH_ADD:
        return old_value, to_word(old_value + rt_val)
    raise ValueError(f"{op.name} is not an atomic instruction")

"""Single-source-of-truth instruction semantics.

Both the functional reference interpreter and the timing core execute
instructions through these helpers, so the two engines can never drift
apart on what an instruction *means* -- they differ only in *when*
effects become visible.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instructions import Instruction, Opcode

#: Values are stored as 64-bit two's-complement words.
WORD_MASK = (1 << 64) - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit word as a signed integer."""
    value &= WORD_MASK
    return value - (1 << 64) if value & SIGN_BIT else value


def to_word(value: int) -> int:
    """Truncate a Python int to a 64-bit word."""
    return value & WORD_MASK


#: Per-opcode ALU evaluators, signature (instr, rs_val, rt_val) -> word.
#: A dict lookup replaces the former elif chain: both the timing core
#: and the reference interpreter evaluate one of these per instruction.
_ALU_EVAL = {
    Opcode.LI: lambda instr, rs_val, rt_val: instr.imm & WORD_MASK,
    Opcode.MOV: lambda instr, rs_val, rt_val: rs_val,
    Opcode.ADD: lambda instr, rs_val, rt_val: (rs_val + rt_val) & WORD_MASK,
    Opcode.ADDI: lambda instr, rs_val, rt_val: (rs_val + instr.imm) & WORD_MASK,
    Opcode.SUB: lambda instr, rs_val, rt_val: (rs_val - rt_val) & WORD_MASK,
    Opcode.MUL: lambda instr, rs_val, rt_val: (rs_val * rt_val) & WORD_MASK,
    Opcode.AND: lambda instr, rs_val, rt_val: rs_val & rt_val,
    Opcode.OR: lambda instr, rs_val, rt_val: rs_val | rt_val,
    Opcode.XOR: lambda instr, rs_val, rt_val: rs_val ^ rt_val,
    Opcode.SLT: lambda instr, rs_val, rt_val: (
        1 if to_signed(rs_val) < to_signed(rt_val) else 0),
    Opcode.SLTI: lambda instr, rs_val, rt_val: (
        1 if to_signed(rs_val) < instr.imm else 0),
    Opcode.EXEC: lambda instr, rs_val, rt_val: 0,
}


def alu_result(instr: Instruction, rs_val: int, rt_val: int) -> int:
    """Result of an ALU instruction given its source operand values."""
    evaluate = _ALU_EVAL.get(instr.op)
    if evaluate is None:
        raise ValueError(f"{instr.op.name} is not an ALU instruction")
    return evaluate(instr, rs_val, rt_val)


#: Per-opcode branch predicates, signature (instr, rs_val, rt_val) -> bool.
_BRANCH_EVAL = {
    Opcode.JMP: lambda instr, rs_val, rt_val: True,
    Opcode.BEQ: lambda instr, rs_val, rt_val: rs_val == rt_val,
    Opcode.BNE: lambda instr, rs_val, rt_val: rs_val != rt_val,
    Opcode.BLT: lambda instr, rs_val, rt_val: to_signed(rs_val) < to_signed(rt_val),
    Opcode.BGE: lambda instr, rs_val, rt_val: to_signed(rs_val) >= to_signed(rt_val),
}


def branch_taken(instr: Instruction, rs_val: int, rt_val: int) -> bool:
    """Whether a branch instruction is taken."""
    evaluate = _BRANCH_EVAL.get(instr.op)
    if evaluate is None:
        raise ValueError(f"{instr.op.name} is not a branch instruction")
    return evaluate(instr, rs_val, rt_val)


def effective_address(instr: Instruction, base_val: int) -> int:
    """The word address accessed by a memory instruction."""
    return to_word(base_val + instr.imm)


def atomic_result(
    instr: Instruction, old_value: int, rt_val: int, ru_val: int
) -> Tuple[int, Optional[int]]:
    """Semantics of an atomic read-modify-write.

    Returns ``(loaded_value, new_memory_value)``; ``new_memory_value`` is
    None when the atomic does not write (a failing CAS).
    """
    op = instr.op
    if op is Opcode.TAS:
        return old_value, 1
    if op is Opcode.SWAP:
        return old_value, rt_val
    if op is Opcode.CAS:
        if old_value == rt_val:
            return old_value, ru_val
        return old_value, None
    if op is Opcode.FETCH_ADD:
        return old_value, to_word(old_value + rt_val)
    raise ValueError(f"{op.name} is not an atomic instruction")

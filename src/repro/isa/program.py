"""Programs and the label-resolving assembler.

A :class:`Program` is an immutable sequence of instructions for one
thread.  Programs are written through :class:`Assembler`, which offers
one method per opcode plus symbolic labels::

    asm = Assembler("spin")
    asm.li(1, LOCK_ADDR)
    asm.label("retry")
    asm.tas(2, base=1)
    asm.bne(2, 0, "retry")      # spin until TAS returned 0
    ...
    program = asm.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.isa.instructions import FenceKind, Instruction, Opcode, WORD_BYTES


class AssemblyError(ValueError):
    """Raised for malformed programs (unknown label, bad alignment...)."""


@dataclass(frozen=True)
class Program:
    """An assembled, label-resolved instruction sequence for one thread."""

    name: str
    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def __iter__(self):
        return iter(self.instructions)

    def listing(self) -> str:
        """Human-readable disassembly with labels."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for i, instr in enumerate(self.instructions):
            for label in by_index.get(i, []):
                lines.append(f"{label}:")
            lines.append(f"  {i:4d}  {instr}")
        return "\n".join(lines)

    def static_counts(self) -> Dict[str, int]:
        """Static instruction-mix counts (used by workload sanity tests)."""
        counts = {"load": 0, "store": 0, "atomic": 0, "fence": 0, "branch": 0, "alu": 0, "other": 0}
        for instr in self.instructions:
            if instr.is_load:
                counts["load"] += 1
            elif instr.is_store:
                counts["store"] += 1
            elif instr.is_atomic:
                counts["atomic"] += 1
            elif instr.is_fence:
                counts["fence"] += 1
            elif instr.is_branch:
                counts["branch"] += 1
            elif instr.is_alu:
                counts["alu"] += 1
            else:
                counts["other"] += 1
        return counts


class Assembler:
    """Builds a :class:`Program`, resolving labels at :meth:`build` time.

    Register operands are plain integers 0..31; register 0 always reads
    as zero.  Branch targets are label strings.
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[Tuple[int, str]] = []

    # ------------------------------------------------------------- labels

    def label(self, name: str) -> "Assembler":
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def _emit(self, instr: Instruction) -> "Assembler":
        self._instructions.append(instr)
        return self

    def _emit_branch(self, op: Opcode, rs: int, rt: int, label: str) -> "Assembler":
        self._fixups.append((len(self._instructions), label))
        return self._emit(Instruction(op, rs=rs, rt=rt))

    # ---------------------------------------------------------------- ALU

    def li(self, rd: int, imm: int) -> "Assembler":
        return self._emit(Instruction(Opcode.LI, rd=rd, imm=imm))

    def mov(self, rd: int, rs: int) -> "Assembler":
        return self._emit(Instruction(Opcode.MOV, rd=rd, rs=rs))

    def add(self, rd: int, rs: int, rt: int) -> "Assembler":
        return self._emit(Instruction(Opcode.ADD, rd=rd, rs=rs, rt=rt))

    def addi(self, rd: int, rs: int, imm: int) -> "Assembler":
        return self._emit(Instruction(Opcode.ADDI, rd=rd, rs=rs, imm=imm))

    def sub(self, rd: int, rs: int, rt: int) -> "Assembler":
        return self._emit(Instruction(Opcode.SUB, rd=rd, rs=rs, rt=rt))

    def mul(self, rd: int, rs: int, rt: int) -> "Assembler":
        return self._emit(Instruction(Opcode.MUL, rd=rd, rs=rs, rt=rt))

    def and_(self, rd: int, rs: int, rt: int) -> "Assembler":
        return self._emit(Instruction(Opcode.AND, rd=rd, rs=rs, rt=rt))

    def or_(self, rd: int, rs: int, rt: int) -> "Assembler":
        return self._emit(Instruction(Opcode.OR, rd=rd, rs=rs, rt=rt))

    def xor(self, rd: int, rs: int, rt: int) -> "Assembler":
        return self._emit(Instruction(Opcode.XOR, rd=rd, rs=rs, rt=rt))

    def slt(self, rd: int, rs: int, rt: int) -> "Assembler":
        return self._emit(Instruction(Opcode.SLT, rd=rd, rs=rs, rt=rt))

    def slti(self, rd: int, rs: int, imm: int) -> "Assembler":
        return self._emit(Instruction(Opcode.SLTI, rd=rd, rs=rs, imm=imm))

    def exec_(self, cycles: int) -> "Assembler":
        """A block of pure computation taking ``cycles`` cycles."""
        return self._emit(Instruction(Opcode.EXEC, imm=cycles))

    # ------------------------------------------------------------- memory

    @staticmethod
    def _check_offset(offset: int) -> None:
        if offset % WORD_BYTES != 0:
            raise AssemblyError(f"memory offset {offset} is not {WORD_BYTES}-byte aligned")

    def load(self, rd: int, base: int, offset: int = 0) -> "Assembler":
        self._check_offset(offset)
        return self._emit(Instruction(Opcode.LOAD, rd=rd, rs=base, imm=offset))

    def store(self, value: int, base: int, offset: int = 0) -> "Assembler":
        """Store register ``value`` to ``[base + offset]``."""
        self._check_offset(offset)
        return self._emit(Instruction(Opcode.STORE, rs=base, rt=value, imm=offset))

    def tas(self, rd: int, base: int, offset: int = 0) -> "Assembler":
        self._check_offset(offset)
        return self._emit(Instruction(Opcode.TAS, rd=rd, rs=base, imm=offset))

    def swap(self, rd: int, base: int, value: int, offset: int = 0) -> "Assembler":
        self._check_offset(offset)
        return self._emit(Instruction(Opcode.SWAP, rd=rd, rs=base, rt=value, imm=offset))

    def cas(self, rd: int, base: int, expected: int, new: int, offset: int = 0) -> "Assembler":
        self._check_offset(offset)
        return self._emit(
            Instruction(Opcode.CAS, rd=rd, rs=base, rt=expected, ru=new, imm=offset)
        )

    def fetch_add(self, rd: int, base: int, addend: int, offset: int = 0) -> "Assembler":
        self._check_offset(offset)
        return self._emit(Instruction(Opcode.FETCH_ADD, rd=rd, rs=base, rt=addend, imm=offset))

    # ----------------------------------------------------------- ordering

    def fence(self, kind: FenceKind = FenceKind.FULL) -> "Assembler":
        return self._emit(Instruction(Opcode.FENCE, fence=kind))

    # ------------------------------------------------------------ control

    def beq(self, rs: int, rt: int, label: str) -> "Assembler":
        return self._emit_branch(Opcode.BEQ, rs, rt, label)

    def bne(self, rs: int, rt: int, label: str) -> "Assembler":
        return self._emit_branch(Opcode.BNE, rs, rt, label)

    def blt(self, rs: int, rt: int, label: str) -> "Assembler":
        return self._emit_branch(Opcode.BLT, rs, rt, label)

    def bge(self, rs: int, rt: int, label: str) -> "Assembler":
        return self._emit_branch(Opcode.BGE, rs, rt, label)

    def jmp(self, label: str) -> "Assembler":
        self._fixups.append((len(self._instructions), label))
        return self._emit(Instruction(Opcode.JMP))

    def nop(self) -> "Assembler":
        return self._emit(Instruction(Opcode.NOP))

    def halt(self) -> "Assembler":
        return self._emit(Instruction(Opcode.HALT))

    # -------------------------------------------------------------- build

    def build(self) -> Program:
        """Resolve labels and freeze the program.

        Appends a trailing HALT if the program does not already end with
        one, so every thread terminates explicitly.
        """
        instructions = list(self._instructions)
        if not instructions or instructions[-1].op is not Opcode.HALT:
            instructions.append(Instruction(Opcode.HALT))
        for index, label in self._fixups:
            if label not in self._labels:
                raise AssemblyError(f"undefined label {label!r}")
            instructions[index] = replace(instructions[index], target=self._labels[label])
        return Program(self.name, tuple(instructions), dict(self._labels))

"""Instruction definitions for the workload micro-ISA.

The ISA is deliberately small but complete enough to express real
synchronisation idioms: spinlocks need an atomic (TAS/SWAP/CAS) plus a
conditional branch; message passing needs ordinary loads/stores plus
fences; barriers need fetch-and-add.  All memory operations move one
8-byte word and must be 8-byte aligned.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: Number of general-purpose registers; register 0 is hardwired to zero.
REG_COUNT = 32

#: Bytes moved by every load/store/atomic.
WORD_BYTES = 8


class Opcode(enum.Enum):
    """All operations in the micro-ISA."""

    # ALU / immediates
    LI = enum.auto()        # rd <- imm
    MOV = enum.auto()       # rd <- rs
    ADD = enum.auto()       # rd <- rs + rt
    ADDI = enum.auto()      # rd <- rs + imm
    SUB = enum.auto()       # rd <- rs - rt
    MUL = enum.auto()       # rd <- rs * rt
    AND = enum.auto()       # rd <- rs & rt
    OR = enum.auto()        # rd <- rs | rt
    XOR = enum.auto()       # rd <- rs ^ rt
    SLT = enum.auto()       # rd <- 1 if rs < rt else 0
    SLTI = enum.auto()      # rd <- 1 if rs < imm else 0
    EXEC = enum.auto()      # pure computation taking `imm` cycles

    # Memory
    LOAD = enum.auto()      # rd <- mem[rs + imm]
    STORE = enum.auto()     # mem[rs + imm] <- rt

    # Atomic read-modify-write (each is a single memory transaction)
    TAS = enum.auto()       # rd <- mem[a]; mem[a] <- 1            (a = rs+imm)
    SWAP = enum.auto()      # rd <- mem[a]; mem[a] <- rt
    CAS = enum.auto()       # rd <- mem[a]; if rd == rt: mem[a] <- ru
    FETCH_ADD = enum.auto() # rd <- mem[a]; mem[a] <- rd + rt

    # Ordering
    FENCE = enum.auto()     # memory fence of the given FenceKind

    # Control flow
    BEQ = enum.auto()       # if rs == rt: goto label
    BNE = enum.auto()       # if rs != rt: goto label
    BLT = enum.auto()       # if rs <  rt: goto label
    BGE = enum.auto()       # if rs >= rt: goto label
    JMP = enum.auto()       # goto label
    NOP = enum.auto()
    HALT = enum.auto()      # thread finished


class FenceKind(enum.Enum):
    """Directional memory fences (RMO `membar` style).

    ``FULL`` orders everything before against everything after; the
    directional kinds order only the named pair.  Under SC and TSO most
    fences are no-ops because the model already provides the ordering;
    the one that matters under TSO is ``STORE_LOAD`` (and ``FULL``).
    """

    FULL = "full"
    STORE_LOAD = "store-load"
    STORE_STORE = "store-store"
    LOAD_LOAD = "load-load"
    LOAD_STORE = "load-store"

    @property
    def orders_store_load(self) -> bool:
        return self in (FenceKind.FULL, FenceKind.STORE_LOAD)

    @property
    def orders_store_store(self) -> bool:
        return self in (FenceKind.FULL, FenceKind.STORE_STORE)

    @property
    def orders_load_load(self) -> bool:
        return self in (FenceKind.FULL, FenceKind.LOAD_LOAD)

    @property
    def orders_load_store(self) -> bool:
        return self in (FenceKind.FULL, FenceKind.LOAD_STORE)


_ATOMICS = frozenset({Opcode.TAS, Opcode.SWAP, Opcode.CAS, Opcode.FETCH_ADD})
_BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP})
_ALU = frozenset({
    Opcode.LI, Opcode.MOV, Opcode.ADD, Opcode.ADDI, Opcode.SUB, Opcode.MUL,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLT, Opcode.SLTI, Opcode.EXEC,
})


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Field usage varies by opcode (see :class:`Opcode` comments).  ``ru``
    exists only for CAS (the swap value).  ``target`` holds the resolved
    branch destination (instruction index) after assembly.
    """

    op: Opcode
    rd: int = 0
    rs: int = 0
    rt: int = 0
    ru: int = 0
    imm: int = 0
    fence: Optional[FenceKind] = None
    target: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("rd", "rs", "rt", "ru"):
            reg = getattr(self, name)
            if not 0 <= reg < REG_COUNT:
                raise ValueError(f"{self.op.name}: register {name}={reg} out of range")
        if self.op is Opcode.FENCE and self.fence is None:
            raise ValueError("FENCE requires a FenceKind")
        if self.op is Opcode.EXEC and self.imm < 1:
            raise ValueError("EXEC latency must be >= 1")

    # -- classification helpers used by the core, LSU and speculation logic --

    @property
    def is_load(self) -> bool:
        return self.op is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is Opcode.STORE

    @property
    def is_atomic(self) -> bool:
        return self.op in _ATOMICS

    @property
    def is_memory(self) -> bool:
        return self.op is Opcode.LOAD or self.op is Opcode.STORE or self.op in _ATOMICS

    @property
    def is_fence(self) -> bool:
        return self.op is Opcode.FENCE

    @property
    def is_branch(self) -> bool:
        return self.op in _BRANCHES

    @property
    def is_alu(self) -> bool:
        return self.op in _ALU

    @property
    def writes_memory(self) -> bool:
        """True for stores and all atomics (CAS may or may not write, but
        it always needs write permission)."""
        return self.op is Opcode.STORE or self.op in _ATOMICS

    def __str__(self) -> str:
        if self.op is Opcode.FENCE:
            return f"FENCE {self.fence.value}"
        if self.op in _BRANCHES:
            return f"{self.op.name} r{self.rs}, r{self.rt} -> @{self.target}"
        if self.is_memory:
            return f"{self.op.name} rd=r{self.rd} [r{self.rs}+{self.imm}] rt=r{self.rt}"
        return f"{self.op.name} rd=r{self.rd} rs=r{self.rs} rt=r{self.rt} imm={self.imm}"

"""Functional reference interpreter (the golden model).

Executes a set of thread programs against a flat shared memory under
sequential consistency: each step runs one whole instruction of one
thread atomically.  The interleaving is chosen by a policy (round-robin
or seeded-random).  The test suite compares the timing simulator's
architectural results against this model, and uses
:func:`explore_interleavings` to enumerate *all* SC outcomes of small
litmus programs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.isa.instructions import (
    _ALU,
    _ATOMICS,
    _BRANCHES,
    Instruction,
    Opcode,
    REG_COUNT,
    WORD_BYTES,
)
from repro.isa.program import Program
from repro.isa import semantics

#: Opcodes a superblock may contain (see :func:`superblock_spans`):
#: pure register-to-register work plus NOP -- nothing that touches
#: memory, ordering, or the speculation machinery.
_FUSABLE = frozenset(_ALU | {Opcode.NOP})


class InterpreterError(RuntimeError):
    """Raised on illegal execution (misalignment, runaway programs...)."""


class ThreadState:
    """Architectural state of one interpreted thread."""

    __slots__ = ("tid", "program", "pc", "regs", "halted", "steps")

    def __init__(self, tid: int, program: Program):
        self.tid = tid
        self.program = program
        self.pc = 0
        self.regs = [0] * REG_COUNT
        self.halted = False
        self.steps = 0

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = semantics.to_word(value)

    def clone(self) -> "ThreadState":
        other = ThreadState(self.tid, self.program)
        other.pc = self.pc
        other.regs = list(self.regs)
        other.halted = self.halted
        other.steps = self.steps
        return other


def check_alignment(addr: int) -> None:
    if addr % WORD_BYTES != 0:
        raise InterpreterError(f"unaligned word access at address {addr:#x}")


# --------------------------------------------------------------- handlers
#
# One handler per opcode class, signature (instr, thread, memory) -> next_pc.
# The table below replaces the old per-instruction elif chain over
# Instruction's classification properties; programs additionally cache a
# pre-resolved (handler, instr) pair per slot (see _dispatch_pairs), so
# the per-step cost is a tuple index plus one call.


def _interp_alu(instr: Instruction, thread: ThreadState, memory: Dict[int, int]) -> int:
    result = semantics.alu_result(
        instr, thread.read_reg(instr.rs), thread.read_reg(instr.rt)
    )
    thread.write_reg(instr.rd, result)
    return thread.pc + 1


def _interp_load(instr: Instruction, thread: ThreadState, memory: Dict[int, int]) -> int:
    addr = semantics.effective_address(instr, thread.read_reg(instr.rs))
    check_alignment(addr)
    thread.write_reg(instr.rd, memory.get(addr, 0))
    return thread.pc + 1


def _interp_store(instr: Instruction, thread: ThreadState, memory: Dict[int, int]) -> int:
    addr = semantics.effective_address(instr, thread.read_reg(instr.rs))
    check_alignment(addr)
    memory[addr] = thread.read_reg(instr.rt)
    return thread.pc + 1


def _interp_atomic(instr: Instruction, thread: ThreadState, memory: Dict[int, int]) -> int:
    addr = semantics.effective_address(instr, thread.read_reg(instr.rs))
    check_alignment(addr)
    old = memory.get(addr, 0)
    loaded, new_value = semantics.atomic_result(
        instr, old, thread.read_reg(instr.rt), thread.read_reg(instr.ru)
    )
    thread.write_reg(instr.rd, loaded)
    if new_value is not None:
        memory[addr] = new_value
    return thread.pc + 1


def _interp_ordering(instr: Instruction, thread: ThreadState, memory: Dict[int, int]) -> int:
    return thread.pc + 1  # FENCE/NOP: ordering is trivially satisfied under SC


def _interp_branch(instr: Instruction, thread: ThreadState, memory: Dict[int, int]) -> int:
    if semantics.branch_taken(instr, thread.read_reg(instr.rs), thread.read_reg(instr.rt)):
        assert instr.target is not None, "unresolved branch target"
        return instr.target
    return thread.pc + 1


def _interp_halt(instr: Instruction, thread: ThreadState, memory: Dict[int, int]) -> int:
    thread.halted = True
    return thread.pc + 1


def _build_handlers() -> Dict[Opcode, Callable]:
    table: Dict[Opcode, Callable] = {}
    for op in Opcode:
        if op in _ALU:
            table[op] = _interp_alu
        elif op is Opcode.LOAD:
            table[op] = _interp_load
        elif op is Opcode.STORE:
            table[op] = _interp_store
        elif op in _ATOMICS:
            table[op] = _interp_atomic
        elif op is Opcode.FENCE or op is Opcode.NOP:
            table[op] = _interp_ordering
        elif op in _BRANCHES:
            table[op] = _interp_branch
        elif op is Opcode.HALT:
            table[op] = _interp_halt
        else:  # pragma: no cover - new opcodes must be classified here
            raise InterpreterError(f"unhandled opcode {op}")
    return table


#: Opcode -> handler, resolved once at import time.
_HANDLERS: Dict[Opcode, Callable] = _build_handlers()


def _dispatch_pairs(program: Program) -> Tuple[Tuple[Callable, Instruction], ...]:
    """Per-program decoded (handler, instr) pairs, cached on the program.

    ``Program`` is a frozen dataclass (without ``__slots__``), so the
    cache rides in its instance dict via ``object.__setattr__`` --
    invisible to equality/repr, computed once per program object.

    The cache entry is stamped with the ``instructions`` tuple it was
    decoded from: replacing the tuple (the only way to mutate a frozen
    ``Program``, via ``object.__setattr__``) invalidates the entry, so a
    rebuilt program can never serve stale closures.  The stamp holds a
    live reference to the old tuple, so an identity check cannot be
    fooled by ``id()`` reuse.
    """
    cached = program.__dict__.get("_decoded_pairs")
    instructions = program.instructions
    if cached is not None and cached[0] is instructions:
        return cached[1]
    pairs = tuple((_HANDLERS[instr.op], instr) for instr in instructions)
    object.__setattr__(program, "_decoded_pairs", (instructions, pairs))
    return pairs


# ----------------------------------------------------------- superblocks
#
# Trace-compilation support: a *superblock* is a maximal straight-line
# run of pure ALU/NOP instructions (optionally closed by one terminal
# branch) that a timing core may execute atomically in a single event.
# The correctness framing is the "instantaneous instruction execution"
# argument: register-to-register work never interacts with the memory
# model, so batching it is invisible as long as loads, stores, RMWs,
# fences, and HALT remain scheduling boundaries.  Detection is purely
# structural and lives here, next to the dispatch-pair decode it walks;
# the timing core compiles spans into fused closures (repro.cpu.core).


class SuperblockSpan:
    """One fusable program region: slots ``[start, stop)``.

    A span holds only *core-private* instructions -- ALU, NOP, and
    branches; loads, stores, atomics, fences, and HALT always break it.
    ``has_branch`` marks a span containing at least one branch.  A
    conditional branch inside a span is an early exit: execution leaves
    the span at its target, having run only the prefix up to and
    including the branch.  An unconditional JMP ends the span (its
    fall-through is unreachable).  No slot after ``start`` is a branch
    target -- a jump can enter a span only at its head, so executing a
    span's register work atomically at the head preserves every possible
    control-flow path.
    """

    __slots__ = ("start", "stop", "has_branch")

    def __init__(self, start: int, stop: int, has_branch: bool):
        self.start = start
        self.stop = stop
        self.has_branch = has_branch

    @property
    def length(self) -> int:
        return self.stop - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tail = "+branch" if self.has_branch else ""
        return f"<SuperblockSpan [{self.start},{self.stop}){tail}>"


def branch_targets(program: Program) -> FrozenSet[int]:
    """Every instruction index some branch in ``program`` may jump to."""
    return frozenset(
        instr.target for instr in program.instructions
        if instr.target is not None
    )


def superblock_spans(program: Program) -> Tuple[SuperblockSpan, ...]:
    """Detect every superblock in ``program`` (cached on the program).

    Fusion rules:

    * a span contains only core-private instructions: ALU, NOP, and
      branches -- loads, stores, atomics, fences, and HALT always break
      it (they interact with the memory system, whose event order is
      part of the simulated semantics);
    * a conditional branch may sit anywhere in the span (an early exit:
      execution leaves at its target having run only that prefix); an
      unconditional JMP ends the span, since its fall-through path is
      unreachable;
    * no slot strictly after the head may be a branch target (the head
      itself may be one: that is just an entry point);
    * spans are at least two instructions long (fusing one instruction
      buys nothing);
    * a span that can fall through never reaches the end of the program
      text, so the fall-through successor slot always exists.

    The cache is stamped with the ``instructions`` tuple exactly like
    :func:`_dispatch_pairs`, so mutated/rebuilt programs re-detect.
    """
    cached = program.__dict__.get("_superblock_spans")
    instructions = program.instructions
    if cached is not None and cached[0] is instructions:
        return cached[1]
    targets = branch_targets(program)
    spans = []
    n = len(instructions)
    i = 0
    while i < n:
        op = instructions[i].op
        if op not in _FUSABLE and op not in _BRANCHES:
            i += 1
            continue
        j = i
        has_branch = False
        falls_through = True
        while j < n:
            op = instructions[j].op
            if j > i and j in targets:
                break  # entry point: a jump may land here mid-span
            if op in _BRANCHES:
                has_branch = True
                j += 1
                if op is Opcode.JMP:
                    falls_through = False
                    break  # fall-through unreachable after a JMP
                continue
            if op not in _FUSABLE:
                break  # memory / fence / atomic / HALT boundary
            j += 1
        stop = j
        if stop - i >= 2 and (stop < n or not falls_through):
            spans.append(SuperblockSpan(i, stop, has_branch))
        i = max(stop, i + 1)
    result = tuple(spans)
    object.__setattr__(program, "_superblock_spans", (instructions, result))
    return result


def execute_instruction(
    thread: ThreadState, memory: Dict[int, int]
) -> None:
    """Execute one instruction of ``thread`` atomically against ``memory``.

    Advances the PC (following branches) and sets ``halted`` on HALT.
    """
    if thread.halted:
        raise InterpreterError(f"thread {thread.tid} already halted")
    handler, instr = _dispatch_pairs(thread.program)[thread.pc]
    thread.pc = handler(instr, thread, memory)
    thread.steps += 1


class ReferenceInterpreter:
    """Runs thread programs to completion under SC.

    Parameters
    ----------
    programs:
        One program per thread.
    initial_memory:
        Optional initial word values (addr -> value).
    policy:
        ``"round-robin"`` (default) or ``"random"``.
    seed:
        RNG seed for the random policy (determinism).
    """

    def __init__(
        self,
        programs: Sequence[Program],
        initial_memory: Optional[Dict[int, int]] = None,
        policy: str = "round-robin",
        seed: int = 1,
    ):
        if not programs:
            raise ValueError("need at least one program")
        if policy not in ("round-robin", "random"):
            raise ValueError(f"unknown policy {policy!r}")
        self.threads = [ThreadState(tid, prog) for tid, prog in enumerate(programs)]
        self.memory: Dict[int, int] = dict(initial_memory or {})
        self.policy = policy
        self._rng = random.Random(seed)
        self._rr_next = 0

    @property
    def all_halted(self) -> bool:
        return all(t.halted for t in self.threads)

    def _pick_thread(self) -> ThreadState:
        runnable = [t for t in self.threads if not t.halted]
        if self.policy == "random":
            return self._rng.choice(runnable)
        n = len(self.threads)
        for offset in range(n):
            candidate = self.threads[(self._rr_next + offset) % n]
            if not candidate.halted:
                self._rr_next = (candidate.tid + 1) % n
                return candidate
        raise InterpreterError("no runnable thread")  # pragma: no cover

    def step(self) -> bool:
        """Execute one instruction of some runnable thread.

        Returns False when every thread has halted.
        """
        if self.all_halted:
            return False
        execute_instruction(self._pick_thread(), self.memory)
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until all threads halt; returns total steps executed.

        Raises :class:`InterpreterError` if the step budget is exhausted,
        which usually indicates a livelocked synchronisation idiom (e.g.
        a spinlock whose release was forgotten).
        """
        steps = 0
        while not self.all_halted:
            self.step()
            steps += 1
            if steps > max_steps:
                raise InterpreterError(f"exceeded {max_steps} steps; livelock?")
        return steps

    def load_word(self, addr: int) -> int:
        return self.memory.get(addr, 0)


Outcome = Tuple[int, ...]


def explore_interleavings(
    programs: Sequence[Program],
    observe: Callable[[List[ThreadState], Dict[int, int]], Outcome],
    initial_memory: Optional[Dict[int, int]] = None,
    max_steps_per_thread: int = 64,
    max_states: int = 200_000,
) -> FrozenSet[Outcome]:
    """Enumerate every SC outcome of a small multi-threaded program.

    Performs a depth-first search over all interleavings, memoising
    visited states.  ``observe`` maps a final (threads, memory) state to
    a hashable outcome tuple; the function returns the set of reachable
    outcomes.  Intended for litmus tests (a handful of instructions per
    thread); raises :class:`InterpreterError` if the state space exceeds
    ``max_states``.
    """

    def freeze(threads: List[ThreadState], memory: Dict[int, int]):
        return (
            tuple((t.pc, t.halted, tuple(t.regs)) for t in threads),
            tuple(sorted(memory.items())),
        )

    initial_threads = [ThreadState(tid, prog) for tid, prog in enumerate(programs)]
    outcomes: Set[Outcome] = set()
    visited = set()
    stack = [(initial_threads, dict(initial_memory or {}))]

    while stack:
        threads, memory = stack.pop()
        key = freeze(threads, memory)
        if key in visited:
            continue
        visited.add(key)
        if len(visited) > max_states:
            raise InterpreterError(f"interleaving exploration exceeded {max_states} states")
        runnable = [t for t in threads if not t.halted]
        if not runnable:
            outcomes.add(observe(threads, memory))
            continue
        for chosen in runnable:
            if chosen.steps >= max_steps_per_thread:
                raise InterpreterError(
                    f"thread {chosen.tid} exceeded {max_steps_per_thread} steps during "
                    "exploration; litmus programs must be loop-free or tightly bounded"
                )
            new_threads = [t.clone() for t in threads]
            new_memory = dict(memory)
            execute_instruction(new_threads[chosen.tid], new_memory)
            stack.append((new_threads, new_memory))

    return frozenset(outcomes)

"""Set-associative cache array with LRU replacement.

This is pure storage + replacement policy: protocol logic lives in the
L1 controller.  Each resident block carries its MESI state, a dirty
flag, the block's data words, and the InvisiFence speculation bits
(speculatively-read / speculatively-written) plus the per-word access
sets used by the idealised word-granularity ablation.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Set

from repro.sim.config import CacheConfig


class CacheState(enum.Enum):
    """MESI stable states (transient states live in the controller's MSHRs)."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"


# ``readable``/``writable`` are per-member constants; plain attributes
# (assigned once below) make the L1's permission checks attribute loads
# instead of property-descriptor calls -- they sit on every access.
for _state in CacheState:
    _state.readable = _state is not CacheState.INVALID
    _state.writable = _state in (CacheState.EXCLUSIVE, CacheState.MODIFIED)
del _state


class CacheBlock:
    """One resident cache block."""

    __slots__ = (
        "addr", "state", "dirty", "data",
        "spec_read", "spec_written", "spec_read_words", "spec_written_words",
    )

    def __init__(self, addr: int, state: CacheState, data: List[int]):
        self.addr = addr
        self.state = state
        self.dirty = False
        self.data = data
        self.spec_read = False
        self.spec_written = False
        self.spec_read_words: Set[int] = set()
        self.spec_written_words: Set[int] = set()

    @property
    def speculative(self) -> bool:
        return self.spec_read or self.spec_written

    def clear_speculation(self) -> None:
        self.spec_read = False
        self.spec_written = False
        self.spec_read_words.clear()
        self.spec_written_words.clear()

    def __repr__(self) -> str:
        flags = ""
        if self.dirty:
            flags += "d"
        if self.spec_read:
            flags += "r"
        if self.spec_written:
            flags += "w"
        return f"<Block {self.addr:#x} {self.state.value}{(':' + flags) if flags else ''}>"


class CacheArray:
    """Set-associative block storage with true-LRU replacement.

    The array never makes protocol decisions; it only answers lookups,
    performs insertions (reporting what must be evicted) and maintains
    recency.  Blocks are keyed by block-aligned address.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: List[Dict[int, CacheBlock]] = [dict() for _ in range(config.n_sets)]
        # Recency per set as an insertion-ordered dict (LRU first, MRU
        # last): move-to-end is del + reinsert, both O(1), instead of the
        # O(assoc) list.remove.  ``_mru`` caches each set's newest key so
        # the touch of an already-MRU block (spins hammering one block)
        # is a single compare; it must be kept exact -- a stale value
        # would silently change eviction order.
        self._lru: List[Dict[int, None]] = [dict() for _ in range(config.n_sets)]
        self._mru: List[int] = [-1] * config.n_sets
        # Geometry scalars cached once: the config's block_of/set_index
        # recompute offset_bits/n_sets per call, and both sit on the
        # per-access hot path.
        self._block_mask = ~(config.block_bytes - 1)
        self._offset_bits = config.offset_bits
        self._set_mask = config.n_sets - 1
        self._word_mask = config.block_bytes - 1

    @property
    def words_per_block(self) -> int:
        return self.config.block_bytes // 8

    def _set_for(self, addr: int) -> int:
        return (addr >> self._offset_bits) & self._set_mask

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Return the resident block containing ``addr`` (or None).

        ``touch=True`` (default) updates LRU recency.
        """
        block_addr = addr & self._block_mask
        index = (block_addr >> self._offset_bits) & self._set_mask
        block = self._sets[index].get(block_addr)
        if block is not None and touch and self._mru[index] != block_addr:
            order = self._lru[index]
            del order[block_addr]
            order[block_addr] = None
            self._mru[index] = block_addr
        return block

    def victim_for(self, addr: int) -> Optional[CacheBlock]:
        """The block that would be evicted to make room for ``addr``.

        Returns None when the set has a free way (no eviction needed).
        Raises if ``addr`` is already resident.
        """
        block_addr = addr & self._block_mask
        index = (block_addr >> self._offset_bits) & self._set_mask
        members = self._sets[index]
        if block_addr in members:
            raise ValueError(f"block {block_addr:#x} already resident")
        if len(members) < self.config.assoc:
            return None
        return members[next(iter(self._lru[index]))]

    def lru_block(self, addr: int) -> Optional[CacheBlock]:
        """Least-recently-used resident block of ``addr``'s set (or None
        if the set is empty).  Unlike :meth:`victim_for` this answers
        even when the set has free ways -- the controller evicts early
        when outstanding fills have reserved those ways."""
        index = ((addr & self._block_mask) >> self._offset_bits) & self._set_mask
        order = self._lru[index]
        if not order:
            return None
        return self._sets[index][next(iter(order))]

    def insert(self, addr: int, state: CacheState, data: List[int]) -> CacheBlock:
        """Insert a block (the caller must have evicted the victim first)."""
        block_addr = addr & self._block_mask
        index = (block_addr >> self._offset_bits) & self._set_mask
        members = self._sets[index]
        if block_addr in members:
            raise ValueError(f"block {block_addr:#x} already resident")
        if len(members) >= self.config.assoc:
            raise ValueError(f"set {index} is full; evict before inserting")
        if len(data) != self.words_per_block:
            raise ValueError(
                f"block data must have {self.words_per_block} words, got {len(data)}"
            )
        block = CacheBlock(block_addr, state, data)
        members[block_addr] = block
        self._lru[index][block_addr] = None
        self._mru[index] = block_addr
        return block

    def remove(self, addr: int) -> CacheBlock:
        """Remove and return the block containing ``addr``."""
        block_addr = addr & self._block_mask
        index = (block_addr >> self._offset_bits) & self._set_mask
        block = self._sets[index].pop(block_addr, None)
        if block is None:
            raise KeyError(f"block {block_addr:#x} not resident")
        order = self._lru[index]
        del order[block_addr]
        if self._mru[index] == block_addr:
            self._mru[index] = next(reversed(order)) if order else -1
        return block

    def set_occupancy(self, addr: int) -> int:
        """Number of resident blocks in the set that ``addr`` maps to."""
        index = ((addr & self._block_mask) >> self._offset_bits) & self._set_mask
        return len(self._sets[index])

    def __iter__(self) -> Iterator[CacheBlock]:
        for s in self._sets:
            yield from s.values()

    def resident_count(self) -> int:
        return sum(len(s) for s in self._sets)

    def speculative_blocks(self) -> List[CacheBlock]:
        """All blocks with SR or SW set (used by commit / rollback)."""
        return [b for b in self if b.speculative]

    def word_index(self, addr: int) -> int:
        """Index of the word containing byte address ``addr`` within its block."""
        return (addr & self._word_mask) >> 3

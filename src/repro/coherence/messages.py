"""Coherence protocol message types.

All messages travel over the interconnect between L1 controllers
(node ids 0..n_cores-1) and the directory (node id ``n_cores``).  Data
payloads are lists of 64-bit words (one block).  ``data is None`` in a
response from an owner means "my copy is clean -- the directory/L2 copy
is current"; this is how a rolled-back speculative block is surrendered
without leaking speculative values.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional


class MessageType(enum.Enum):
    # L1 -> directory requests
    GET_S = enum.auto()       #: read permission (load miss)
    GET_M = enum.auto()       #: write permission (store/atomic miss or S->M upgrade)
    PUT_S = enum.auto()       #: evicting a Shared block
    PUT_E = enum.auto()       #: relinquishing a clean Exclusive/Modified block
    PUT_M = enum.auto()       #: evicting a dirty block (carries data)
    WB_CLEAN = enum.auto()    #: clean-before-write: update L2 copy, keep ownership
    WB_WORD = enum.auto()     #: write one committed word through to the L2 copy
                              #: (a committed store landed on a speculatively
                              #: written block; the rollback image must keep it)

    # directory -> L1 responses / probes
    DATA_S = enum.auto()      #: data granted in Shared
    DATA_E = enum.auto()      #: data granted in Exclusive (no other sharers)
    DATA_M = enum.auto()      #: data (or upgrade ack) granted in Modified
    INV = enum.auto()         #: invalidate your copy (remote writer)
    FWD_GET_S = enum.auto()   #: downgrade M/E -> S and surrender data (remote reader)
    PUT_ACK = enum.auto()     #: eviction acknowledged

    # L1 -> directory responses
    INV_ACK = enum.auto()     #: copy invalidated (data attached if it was dirty)
    DOWNGRADE_ACK = enum.auto()  #: downgraded to S (data attached if it was dirty)

    # fault layer -> original sender (fault-injection runs only)
    NACK = enum.auto()        #: your message was dropped; ``orig`` carries it
                              #: and ``src`` names the node it never reached


#: Request types the directory serialises per block.
DIRECTORY_REQUESTS = frozenset({
    MessageType.GET_S,
    MessageType.GET_M,
    MessageType.PUT_S,
    MessageType.PUT_E,
    MessageType.PUT_M,
})

_msg_ids = itertools.count()


@dataclass
class Message:
    """One coherence message.

    ``addr`` is always block-aligned.  ``src`` is the sending node id.
    ``word_addr`` (GET_S/GET_M and the INV/FWD probes derived from them)
    carries the requestor's word address -- used only by the idealised
    word-granularity violation-detection ablation.  ``uid`` exists for
    debugging, trace readability, and duplicate suppression under fault
    injection (an injected duplicate shares its original's uid; a retry
    is a fresh message with a fresh uid and ``attempt`` bumped).
    ``orig`` is set only on NACKs: the dropped message being bounced
    back to its sender.
    """

    mtype: MessageType
    addr: int
    src: int
    data: Optional[List[int]] = None
    word_addr: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_msg_ids))
    attempt: int = 0
    orig: Optional["Message"] = None

    def __repr__(self) -> str:
        has_data = "+data" if self.data is not None else ""
        retry = f" retry{self.attempt}" if self.attempt else ""
        return (f"<{self.mtype.name} addr={self.addr:#x} src={self.src}"
                f"{has_data}{retry} #{self.uid}>")

"""Coherence protocol message types.

All messages travel over the interconnect between L1 controllers
(node ids 0..n_cores-1) and the directory (node id ``n_cores``).  Data
payloads are lists of 64-bit words (one block).  ``data is None`` in a
response from an owner means "my copy is clean -- the directory/L2 copy
is current"; this is how a rolled-back speculative block is surrendered
without leaking speculative values.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional


class MessageType(enum.IntEnum):
    # L1 -> directory requests
    GET_S = 1           #: read permission (load miss)
    GET_M = 2           #: write permission (store/atomic miss or S->M upgrade)
    PUT_S = 3           #: evicting a Shared block
    PUT_E = 4           #: relinquishing a clean Exclusive/Modified block
    PUT_M = 5           #: evicting a dirty block (carries data)
    WB_CLEAN = 6        #: clean-before-write: update L2 copy, keep ownership
    WB_WORD = 7         #: write one committed word through to the L2 copy
                        #: (a committed store landed on a speculatively
                        #: written block; the rollback image must keep it)

    # directory -> L1 responses / probes
    DATA_S = 8          #: data granted in Shared
    DATA_E = 9          #: data granted in Exclusive (no other sharers)
    DATA_M = 10         #: data (or upgrade ack) granted in Modified
    INV = 11            #: invalidate your copy (remote writer)
    FWD_GET_S = 12      #: downgrade M/E -> S and surrender data (remote reader)
    PUT_ACK = 13        #: eviction acknowledged

    # L1 -> directory responses
    INV_ACK = 14        #: copy invalidated (data attached if it was dirty)
    DOWNGRADE_ACK = 15  #: downgraded to S (data attached if it was dirty)

    # fault layer -> original sender (fault-injection runs only)
    NACK = 16           #: your message was dropped; ``orig`` carries it
                        #: and ``src`` names the node it never reached


# Enum's __hash__ is a Python-level function (hash of the value); the
# controllers' dispatch tables hash an mtype on every message received,
# so route it to the C int hash.  Members keep identity, .name, and
# int equality -- only the hash path changes (to an equal hash).
MessageType.__hash__ = int.__hash__  # type: ignore[method-assign]


#: Request types the directory serialises per block.
DIRECTORY_REQUESTS = frozenset({
    MessageType.GET_S,
    MessageType.GET_M,
    MessageType.PUT_S,
    MessageType.PUT_E,
    MessageType.PUT_M,
})

_msg_ids = itertools.count()


class Message:
    """One coherence message.

    ``addr`` is always block-aligned.  ``src`` is the sending node id.
    ``word_addr`` (GET_S/GET_M and the INV/FWD probes derived from them)
    carries the requestor's word address -- used only by the idealised
    word-granularity violation-detection ablation.  ``uid`` exists for
    debugging, trace readability, and duplicate suppression under fault
    injection (an injected duplicate shares its original's uid; a retry
    is a fresh message with a fresh uid and ``attempt`` bumped).  uids
    are assigned lazily on first read -- fault-free, untraced runs never
    touch the counter, so construction is a plain slot fill.  ``orig``
    is set only on NACKs: the dropped message being bounced back to its
    sender.
    """

    __slots__ = ("mtype", "addr", "src", "data", "word_addr", "_uid",
                 "attempt", "orig")

    def __init__(self, mtype: MessageType, addr: int, src: int,
                 data: Optional[List[int]] = None,
                 word_addr: Optional[int] = None,
                 uid: int = -1,
                 attempt: int = 0,
                 orig: Optional["Message"] = None) -> None:
        self.mtype = mtype
        self.addr = addr
        self.src = src
        self.data = data
        self.word_addr = word_addr
        self._uid = uid
        self.attempt = attempt
        self.orig = orig

    @property
    def uid(self) -> int:
        """Lazily-assigned unique id (monotone in first-read order)."""
        u = self._uid
        if u < 0:
            u = self._uid = next(_msg_ids)
        return u

    @uid.setter
    def uid(self, value: int) -> None:
        self._uid = value

    def __repr__(self) -> str:
        has_data = "+data" if self.data is not None else ""
        retry = f" retry{self.attempt}" if self.attempt else ""
        uid = f" #{self._uid}" if self._uid >= 0 else ""
        return (f"<{self.mtype.name} addr={self.addr:#x} src={self.src}"
                f"{has_data}{retry}{uid}>")

"""Private L1 data-cache controller (MESI, directory-mediated).

Besides ordinary MESI duties -- serving core reads/writes/RMWs, miss
handling with MSHRs, evictions through a writeback buffer -- this
controller implements the L1 side of InvisiFence:

* speculative accesses set per-block SR (speculatively-read) / SW
  (speculatively-written) bits;
* the first speculative write to a dirty block *cleans* it first
  (``WB_CLEAN`` pushes the pre-speculation data to the L2 copy), so a
  later rollback can discard the block outright;
* incoming invalidations that hit SR/SW blocks, incoming downgrades
  that hit SW blocks, and evictions of SR/SW blocks raise a
  **violation** through ``violation_listener`` (synchronously cleaning
  the L1's speculative state before any data is surrendered);
* :meth:`commit_speculation` flash-clears all SR/SW bits;
  :meth:`rollback_speculation` discards SW blocks (relinquishing
  ownership to the directory) and clears SR bits.

Requests carry an optional ``guard`` predicate evaluated at apply time;
the core uses it to neutralise in-flight requests squashed by a
rollback.
"""

from __future__ import annotations

import enum
from heapq import heappush as _heappush
from typing import Callable, Dict, List, Optional, Tuple

from repro.coherence.cache import CacheArray, CacheBlock, CacheState
from repro.coherence.messages import Message, MessageType
from repro.sim.config import (
    CacheConfig,
    RollbackStrategy,
    SpeculationConfig,
    ViolationGranularity,
)
from repro.sim.engine import SimulationError, Simulator
from repro.sim.stats import StatsRegistry

Guard = Callable[[], bool]
ModifyFn = Callable[[int], Tuple[int, Optional[int]]]

_GET_S = MessageType.GET_S
_GET_M = MessageType.GET_M
_PUT_S = MessageType.PUT_S
_PUT_E = MessageType.PUT_E
_PUT_M = MessageType.PUT_M
_WB_CLEAN = MessageType.WB_CLEAN
_WB_WORD = MessageType.WB_WORD
_INV_ACK = MessageType.INV_ACK
_DOWNGRADE_ACK = MessageType.DOWNGRADE_ACK

#: Cache state granted by each data-response type (prebuilt: the per-call
#: dict literal in the fill path was measurable).
_GRANTED = {
    MessageType.DATA_S: CacheState.SHARED,
    MessageType.DATA_E: CacheState.EXCLUSIVE,
    MessageType.DATA_M: CacheState.MODIFIED,
}


def _identity(data):
    return data


class ViolationReason(enum.Enum):
    """Why a speculation was aborted (reported to the core)."""

    EXTERNAL_INVALIDATION = "external-invalidation"
    EXTERNAL_DOWNGRADE = "external-downgrade"
    CAPACITY_EVICTION = "capacity-eviction"
    VICTIM_BUFFER_OVERFLOW = "victim-buffer-overflow"


class _Kind(enum.Enum):
    READ = enum.auto()
    WRITE = enum.auto()
    RMW = enum.auto()
    PREFETCH_W = enum.auto()  #: acquire write permission, apply nothing


class _Request:
    """A core-side access waiting inside the L1 (possibly in an MSHR)."""

    __slots__ = ("kind", "addr", "value", "modify", "callback", "guard", "_spec", "po")

    def __init__(self, kind: _Kind, addr: int, value: Optional[int], modify: Optional[ModifyFn],
                 callback: Callable, guard: Optional[Guard], speculative,
                 po: int = -1):
        self.kind = kind
        self.addr = addr
        self.value = value
        self.modify = modify
        self.callback = callback
        self.guard = guard
        self._spec = speculative
        self.po = po

    @property
    def speculative(self) -> bool:
        """Evaluated lazily: the flag may change while the request waits."""
        return self._spec() if callable(self._spec) else bool(self._spec)

    @property
    def needs_write(self) -> bool:
        return self.kind is not _Kind.READ


class _Mshr:
    """Miss status for one block: transient state + queued requests."""

    __slots__ = ("block_addr", "want_m", "has_s_copy", "waiters")

    def __init__(self, block_addr: int, want_m: bool, has_s_copy: bool):
        self.block_addr = block_addr
        self.want_m = want_m
        self.has_s_copy = has_s_copy  # True for the SM upgrade transient
        self.waiters: List[_Request] = []


class _WbEntry:
    """A block evicted from the array, awaiting the directory's PUT_ACK."""

    __slots__ = ("data", "dirty", "surrendered")

    def __init__(self, data: Optional[List[int]], dirty: bool):
        self.data = data
        self.dirty = dirty
        self.surrendered = False  # data already handed over via INV_ACK/DOWNGRADE


class L1Cache:
    """One core's private L1 data cache + MESI controller."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        config: CacheConfig,
        spec_config: SpeculationConfig,
        interconnect,
        directory_id: int,
        stats: StatsRegistry,
        copy_blocks: bool = False,
        home_map=None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.spec_config = spec_config
        self.net = interconnect
        self.directory_id = directory_id
        # block addr -> directory home node.  With one home (or no map)
        # this is a constant closure on directory_id, preserving the
        # historical behaviour exactly; with n_homes > 1 it routes
        # through the shared consistent-hash ring (repro.coherence
        # .homemap).  Only directory-bound sends consult it -- the hit
        # fast path never does.
        if home_map is None or home_map.n_homes == 1:
            self._home_of = lambda addr, _d=directory_id: _d
        else:
            self._home_of = home_map.node_id
        self.array = CacheArray(config)
        self._mshrs: Dict[int, _Mshr] = {}
        self._wb: Dict[int, _WbEntry] = {}
        self._reserved: Dict[int, int] = {}
        # Victim buffer for the VICTIM_BUFFER rollback strategy: block -> saved data.
        self._victim_buffer: Dict[int, List[int]] = {}
        # Speculatively forwarded loads whose block is not resident yet:
        # block_addr -> word indices read.  The SR bit lands when the
        # forwarded-from store's drain (or any other access) fills the
        # block -- guaranteed before commit, which waits for the store
        # buffer to empty.  See note_speculative_forward.
        self._pending_spec_reads: Dict[int, set] = {}
        # Registry of blocks carrying SR/SW bits, so commit and footprint
        # queries touch only the speculative set instead of scanning the
        # whole array.  Rollback still walks the array (its relinquish
        # messages must keep array iteration order -- see
        # rollback_speculation).
        self._spec_blocks: Dict[int, CacheBlock] = {}
        # Copy-elision debug mode: ``_take`` re-copies payloads whose
        # ownership the fast path transfers (dead senders only), proving
        # the elision creates no live aliases.
        self._take = list if copy_blocks else _identity
        #: set by the core/speculation controller; called as listener(reason, block_addr)
        self.violation_listener: Optional[Callable[[ViolationReason, int], None]] = None
        #: optional execution recorder hooks (see repro.verification):
        #: access_listener(kind, addr, value, written, speculative, po) fires
        #: at L1 apply time; forward_listener(addr, value, speculative, po)
        #: fires for store-buffer-forwarded loads (which never reach the L1);
        #: fence_listener(kind, po, speculative) records retired fences so
        #: the ordering checker can place them in the program-order stream.
        self.access_listener: Optional[Callable] = None
        self.forward_listener: Optional[Callable] = None
        self.fence_listener: Optional[Callable] = None

        prefix = f"l1.{node_id}"
        self.stat_hits = stats.counter(f"{prefix}.hits")
        self.stat_misses = stats.counter(f"{prefix}.misses")
        self.stat_evictions = stats.counter(f"{prefix}.evictions")
        self.stat_writebacks = stats.counter(f"{prefix}.writebacks")
        self.stat_clean_before_write = stats.counter(f"{prefix}.clean_before_write")
        self.stat_inv_received = stats.counter(f"{prefix}.invalidations_received")
        self.stat_downgrades = stats.counter(f"{prefix}.downgrades_received")
        self.stat_spec_relinquish = stats.counter(f"{prefix}.spec_relinquish")
        self.stat_sm_demotions = stats.counter(f"{prefix}.sm_demotions")
        self.stat_wb_surrenders = stats.counter(f"{prefix}.wb_surrenders")
        self.stat_committed_writethrough = stats.counter(
            f"{prefix}.committed_writethroughs")

        # Hot-path caches: core-side accesses are never cancelled (guards
        # neutralise squashed requests), so they ride the fast path.
        self._schedule_fast = sim.schedule_fast
        self._hit_latency = config.hit_latency
        self._block_mask = ~(config.block_bytes - 1)
        self._word_mask = config.block_bytes - 1
        self._offset_bits = config.offset_bits
        self._set_mask = config.n_sets - 1
        self._lookup = self.array.lookup
        self._receive_handlers = {
            MessageType.DATA_S: self._on_data,
            MessageType.DATA_E: self._on_data,
            MessageType.DATA_M: self._on_data,
            MessageType.INV: self._on_inv,
            MessageType.FWD_GET_S: self._on_fwd_get_s,
            MessageType.PUT_ACK: self._on_put_ack,
        }
        # Fault hardening (armed by enable_fault_hardening; see repro.faults).
        self._retry_plan = None
        self._seen_uids: Optional[set] = None
        # The core-facing access methods inline the schedule_fast body
        # (a calendar-bucket append); on the compat engine they fall
        # back to variants that call the Event-allocating shadow.
        self._start_h = self._start
        # Specialised non-speculative read path: the owning core (the
        # L1 is private, 1:1) installs its load-completion callback here
        # and schedules (self._start_read_h, (addr, po)) entries
        # directly -- no _Request allocation and no keyword-argument
        # call on the dominant event class (see _start_read).
        self._read_callback: Optional[Callable[[int], None]] = None
        self._start_read_h = self._start_read
        if not sim.fastpath:
            self.read = self._read_compat        # type: ignore[method-assign]
            self.write = self._write_compat      # type: ignore[method-assign]
            self.rmw = self._rmw_compat          # type: ignore[method-assign]

    # ------------------------------------------------------------ core API

    def read(self, addr: int, callback: Callable[[int], None],
             guard: Optional[Guard] = None, speculative: bool = False,
             po: int = -1) -> None:
        """Read the word at ``addr``; ``callback(value)`` fires when done."""
        req = _Request(_Kind.READ, addr, None, None, callback, guard, speculative, po)
        # Inlined self._schedule_fast(self._hit_latency, self._start, req):
        sim = self.sim
        time = sim._now + self._hit_latency
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(self._start_h, (req,))]
            _heappush(sim._times, time)
        else:
            bucket.append((self._start_h, (req,)))
        sim._pending += 1

    def write(self, addr: int, value: int, callback: Callable[[], None],
              guard: Optional[Guard] = None, speculative: bool = False,
              po: int = -1) -> None:
        """Write ``value`` to the word at ``addr``; ``callback()`` fires
        once the store is globally performed (block in M, write applied)."""
        req = _Request(_Kind.WRITE, addr, value, None, callback, guard, speculative, po)
        sim = self.sim
        time = sim._now + self._hit_latency
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(self._start_h, (req,))]
            _heappush(sim._times, time)
        else:
            bucket.append((self._start_h, (req,)))
        sim._pending += 1

    def rmw(self, addr: int, modify: ModifyFn, callback: Callable[[int], None],
            guard: Optional[Guard] = None, speculative: bool = False,
            po: int = -1) -> None:
        """Atomic read-modify-write.  ``modify(old) -> (loaded, new|None)``
        runs once write permission is held; ``callback(loaded)`` fires on
        completion."""
        req = _Request(_Kind.RMW, addr, None, modify, callback, guard, speculative, po)
        sim = self.sim
        time = sim._now + self._hit_latency
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(self._start_h, (req,))]
            _heappush(sim._times, time)
        else:
            bucket.append((self._start_h, (req,)))
        sim._pending += 1

    # Compat-engine variants (fastpath=False): route through the
    # (shadowed, Event-allocating) schedule_fast so the equivalence
    # proof exercises the slow path end to end.

    def _read_compat(self, addr: int, callback: Callable[[int], None],
                     guard: Optional[Guard] = None, speculative: bool = False,
                     po: int = -1) -> None:
        req = _Request(_Kind.READ, addr, None, None, callback, guard, speculative, po)
        self._schedule_fast(self._hit_latency, self._start, req)

    def _write_compat(self, addr: int, value: int, callback: Callable[[], None],
                      guard: Optional[Guard] = None, speculative: bool = False,
                      po: int = -1) -> None:
        req = _Request(_Kind.WRITE, addr, value, None, callback, guard, speculative, po)
        self._schedule_fast(self._hit_latency, self._start, req)

    def _rmw_compat(self, addr: int, modify: ModifyFn,
                    callback: Callable[[int], None],
                    guard: Optional[Guard] = None, speculative: bool = False,
                    po: int = -1) -> None:
        req = _Request(_Kind.RMW, addr, None, modify, callback, guard, speculative, po)
        self._schedule_fast(self._hit_latency, self._start, req)

    def prefetch_write(self, addr: int) -> None:
        """Begin acquiring write permission for ``addr`` without writing.

        Used by the store-buffer drain engine to overlap the coherence
        transactions of queued stores (exclusive prefetching), exactly
        as aggressive write buffers do; *visibility* order is still
        enforced by applying the writes strictly in FIFO order.
        No-op if the block is already writable or a miss is pending.
        """
        block_addr = self.config.block_of(addr)
        block = self.array.lookup(block_addr, touch=False)
        if block is not None and block.state.writable:
            return
        if block_addr in self._mshrs:
            return  # a miss is already in flight for this block
        req = _Request(_Kind.PREFETCH_W, addr, None, None,
                       lambda *a: None, None, False)
        self._schedule_fast(self._hit_latency, self._start, req)

    # -------------------------------------------------------- access logic

    def _start_read(self, addr: int, po: int) -> None:
        """:meth:`_start` specialised for a non-speculative read.

        Semantically identical to ``_start`` on a ``_Request(READ,
        guard=None, speculative=False)`` -- same single (LRU-touching)
        lookup, same stat bumps, same callback timing -- but the request
        record only materialises on the miss path, so the dominant event
        class (spin-loop load hits) allocates nothing.
        """
        block = self._lookup(addr & self._block_mask)
        if block is not None:
            if block.state.readable:
                self.stat_hits.value += 1
                value = block.data[(addr & self._word_mask) >> 3]
                if self.access_listener is not None:
                    self._record_read_fast(addr, value, po)
                self._read_callback(value)
                return
            raise SimulationError(
                f"L1 {self.node_id}: unexpected state {block.state}")
        self.stat_misses.value += 1
        block_addr = addr & self._block_mask
        req = _Request(_Kind.READ, addr, None, None, self._read_callback,
                       None, False, po)
        self._miss(block_addr, req, has_s_copy=False)

    def _record_read_fast(self, addr: int, value: int, po: int) -> None:
        from repro.verification.recorder import AccessKind
        self.access_listener(AccessKind.READ, addr, value, None, False, po)

    def _start(self, req: _Request) -> None:
        if req.guard is not None and not req.guard():
            return  # squashed by a rollback while queued
        block_addr = req.addr & self._block_mask
        block = self._lookup(block_addr)
        if block is not None:
            if req.kind is _Kind.READ and block.state.readable:
                self.stat_hits.value += 1
                # Inlined _apply's read branch (the dominant access):
                # the guard was evaluated on entry this same cycle, so
                # _apply's re-check is redundant from here.
                word = (req.addr & self._word_mask) >> 3
                spec = req._spec
                speculative = spec if spec.__class__ is bool else spec()
                if speculative:
                    block.spec_read = True
                    block.spec_read_words.add(word)
                    self._spec_blocks[block.addr] = block
                value = block.data[word]
                if self.access_listener is not None:
                    self._record(req, value, None, speculative)
                req.callback(value)
                return
            if req.needs_write and block.state.writable:
                self.stat_hits.value += 1
                self._apply(req, block)
                return
            if req.needs_write and block.state is CacheState.SHARED:
                # S -> M upgrade.
                self.stat_misses.value += 1
                self._miss(block_addr, req, has_s_copy=True)
                return
            raise SimulationError(f"L1 {self.node_id}: unexpected state {block.state}")
        self.stat_misses.value += 1
        self._miss(block_addr, req, has_s_copy=False)

    def _apply(self, req: _Request, block: CacheBlock) -> None:
        """Perform a request against a block with sufficient permission."""
        if req.guard is not None and not req.guard():
            return
        if req.kind is _Kind.PREFETCH_W:
            return  # permission acquired; the drain write applies later
        word = (req.addr & self._word_mask) >> 3
        # Inlined _Request.speculative: this flag is re-read per apply.
        # (bool-class test instead of callable(): the flag is either a
        # plain bool or a zero-arg closure, and the builtin call costs.)
        spec = req._spec
        speculative = spec if spec.__class__ is bool else spec()
        if req.kind is _Kind.READ:
            if speculative:
                block.spec_read = True
                block.spec_read_words.add(word)
                self._spec_blocks[block.addr] = block
            value = block.data[word]
            if self.access_listener is not None:
                self._record(req, value, None, speculative)
            req.callback(value)
            return
        # WRITE or RMW: E silently upgrades to M.
        if block.state is CacheState.EXCLUSIVE:
            block.state = CacheState.MODIFIED
        if req.kind is _Kind.WRITE:
            if self._write_word(block, word, req.value, speculative):
                if self.access_listener is not None:
                    self._record(req, req.value, None, speculative)
                req.callback()
            return
        # RMW reads then conditionally writes, atomically (we hold M).
        old = block.data[word]
        loaded, new_value = req.modify(old)
        if new_value is not None:
            if not self._write_word(block, word, new_value, speculative):
                return  # aborted by victim-buffer overflow; will re-execute
        if speculative:
            block.spec_read = True
            block.spec_read_words.add(word)
            self._spec_blocks[block.addr] = block
        if self.access_listener is not None:
            self._record(req, loaded, new_value, speculative)
        req.callback(loaded)

    def _record(self, req: _Request, value: int, written, speculative: bool) -> None:
        if self.access_listener is None:
            return
        from repro.verification.recorder import AccessKind
        kind = {_Kind.READ: AccessKind.READ, _Kind.WRITE: AccessKind.WRITE,
                _Kind.RMW: AccessKind.RMW}[req.kind]
        self.access_listener(kind, req.addr, value, written, speculative, req.po)

    def _write_word(self, block: CacheBlock, word: int, value: int, speculative: bool) -> bool:
        """Apply one word write; returns False if the write was aborted
        because preparing the block for speculation raised a violation."""
        if speculative and not block.spec_written:
            if not self._prepare_first_speculative_write(block):
                return False
        if not speculative and block.spec_written:
            # A *committed* store (an older buffered entry draining while
            # the core speculates) landing on a speculatively written
            # block: a later rollback discards the whole block, so the
            # committed word must be preserved in the rollback image --
            # write it through to the L2 copy (clean-before-write) or
            # patch the saved copy (victim buffer).  A speculative RMW
            # overtaking older buffered stores is what creates this case.
            saved = self._victim_buffer.get(block.addr)
            if saved is not None:
                saved[word] = value
            else:
                self.stat_committed_writethrough.value += 1
                self.net.send(self.node_id, self._home_of(block.addr),
                              Message(_WB_WORD, block.addr,
                                      self.node_id, data=[value],
                                      word_addr=block.addr + 8 * word))
        block.data[word] = value
        block.dirty = True
        if speculative:
            block.spec_written = True
            block.spec_written_words.add(word)
            self._spec_blocks[block.addr] = block
        return True

    def _prepare_first_speculative_write(self, block: CacheBlock) -> bool:
        """Make the block recoverable before its first speculative write.

        Returns False when a victim-buffer overflow aborted the
        speculation (the write must then be dropped; the triggering
        instruction re-executes after the core's rollback).
        """
        strategy = self.spec_config.rollback_strategy
        if strategy is RollbackStrategy.VICTIM_BUFFER:
            if len(self._victim_buffer) >= self.spec_config.victim_buffer_entries:
                self._violation(ViolationReason.VICTIM_BUFFER_OVERFLOW, block.addr,
                                exclude=None)
                return False
            self._victim_buffer[block.addr] = list(block.data)
            return True
        # CLEAN_BEFORE_WRITE: push the pre-speculation data to the L2 copy so
        # rollback can simply invalidate this block.
        if block.dirty:
            self.stat_clean_before_write.value += 1
            self.net.send(self.node_id, self._home_of(block.addr),
                          Message(_WB_CLEAN, block.addr, self.node_id,
                                  data=list(block.data)))
            block.dirty = False
        return True

    # --------------------------------------------------------- miss path

    def _miss(self, block_addr: int, req: _Request, has_s_copy: bool) -> None:
        mshr = self._mshrs.get(block_addr)
        if mshr is not None:
            mshr.waiters.append(req)
            if req.needs_write and not mshr.want_m:
                # Escalate: when the GetS data arrives in S we will issue GetM.
                mshr.want_m = True
            return
        if not has_s_copy:
            self._reserve_way(block_addr)
        mshr = _Mshr(block_addr, want_m=req.needs_write, has_s_copy=has_s_copy)
        mshr.waiters.append(req)
        self._mshrs[block_addr] = mshr
        mtype = _GET_M if req.needs_write else _GET_S
        self.net.send(self.node_id, self._home_of(block_addr),
                      Message(mtype, block_addr, self.node_id, word_addr=req.addr))

    def _reserve_way(self, block_addr: int) -> None:
        """Free (and reserve) a way in the target set for an incoming fill.

        Ways already reserved by other outstanding fills count as
        occupied, so a resident block may be evicted even when the set
        is not nominally full.
        """
        index = (block_addr >> self._offset_bits) & self._set_mask
        reserved = self._reserved.get(index, 0)
        while self.array.set_occupancy(block_addr) + reserved >= self.config.assoc:
            victim = self.array.lru_block(block_addr)
            if victim is None:
                raise SimulationError(
                    f"L1 {self.node_id}: set {index} oversubscribed "
                    f"(assoc={self.config.assoc} too small for outstanding misses)"
                )
            self._evict(victim)
        self._reserved[index] = reserved + 1

    def _evict(self, victim: CacheBlock) -> None:
        """Evict ``victim`` (raising a violation first if it is speculative)."""
        if victim.speculative:
            self._violation(ViolationReason.CAPACITY_EVICTION, victim.addr, exclude=None)
            # rollback_speculation() ran inside _violation; the victim may be
            # gone now (it was SW).  If it survived (SR-only), evict normally.
            if self.array.lookup(victim.addr, touch=False) is None:
                return
        self.stat_evictions.value += 1
        self.array.remove(victim.addr)
        if victim.state is CacheState.SHARED:
            self._wb[victim.addr] = _WbEntry(None, dirty=False)
            self.net.send(self.node_id, self._home_of(victim.addr),
                          Message(_PUT_S, victim.addr, self.node_id))
        elif victim.dirty:
            self.stat_writebacks.value += 1
            # The victim dies here: the writeback entry and the PUT_M may
            # share its word list (both readers, never writers).  Debug
            # mode keeps the two historical copies.
            self._wb[victim.addr] = _WbEntry(self._take(victim.data), dirty=True)
            self.net.send(self.node_id, self._home_of(victim.addr),
                          Message(_PUT_M, victim.addr, self.node_id,
                                  data=self._take(victim.data)))
        else:
            # Clean E (or M cleaned by clean-before-write): L2 copy is current.
            self._wb[victim.addr] = _WbEntry(None, dirty=False)
            self.net.send(self.node_id, self._home_of(victim.addr),
                          Message(_PUT_E, victim.addr, self.node_id))
        self._victim_buffer.pop(victim.addr, None)

    # ------------------------------------------------- network message side

    def receive(self, msg: Message) -> None:
        handler = self._receive_handlers.get(msg.mtype)
        if handler is None:
            raise SimulationError(f"L1 {self.node_id}: unexpected message {msg}")
        handler(msg)

    # -------------------------------------------- fault hardening (opt-in)

    def enable_fault_hardening(self, plan, stats: StatsRegistry) -> None:
        """Arm duplicate suppression and NACK-driven retries.

        Installed only when a :class:`repro.faults.FaultPlan` is active.
        The retry/dedup counters are created lazily *here* so fault-free
        runs keep their stats snapshots -- and hence their result
        fingerprints -- byte-identical to before the fault subsystem
        existed.  The hardened receive path shadows the plain one via an
        instance attribute, keeping the fault-free hot path untouched.
        """
        prefix = f"l1.{self.node_id}"
        self._retry_plan = plan
        self._seen_uids = set()
        self._wb_blocked: Dict[int, List] = {}
        self.stat_nacks = stats.counter(f"{prefix}.nacks_received")
        self.stat_retries = stats.counter(f"{prefix}.retries")
        self.stat_dups_suppressed = stats.counter(f"{prefix}.dups_suppressed")
        self._receive_handlers[MessageType.NACK] = self._on_nack
        self._receive_handlers[MessageType.PUT_ACK] = self._on_put_ack_hardened
        self.receive = self._receive_hardened  # type: ignore[method-assign]
        self._miss = self._miss_hardened  # type: ignore[method-assign]

    def _receive_hardened(self, msg: Message) -> None:
        """receive() with duplicate suppression (fault-injection runs).

        Injected duplicates share the original's uid, so filtering on
        uid drops exactly the injected copies; retries carry fresh uids
        and pass through.
        """
        seen = self._seen_uids
        if msg.uid in seen:
            self.stat_dups_suppressed.value += 1
            return
        seen.add(msg.uid)
        handler = self._receive_handlers.get(msg.mtype)
        if handler is None:
            raise SimulationError(f"L1 {self.node_id}: unexpected message {msg}")
        handler(msg)

    def _miss_hardened(self, block_addr: int, req: "_Request",
                       has_s_copy: bool) -> None:
        """``_miss`` with the writeback/retry overtaking race closed.

        The base protocol may issue a GET while its own PUT for the same
        block is still in flight: per-(src, dst) FIFO guarantees the
        directory sees the PUT first.  A *dropped* PUT breaks that
        guarantee -- its retry waits out a backoff, so a fresh GET issued
        now would overtake it and reach a directory that still records
        this node as owner.  Park the miss until the writeback completes
        (PUT_ACK) and replay it then.
        """
        if block_addr in self._wb and block_addr not in self._mshrs:
            self._wb_blocked.setdefault(block_addr, []).append(
                (req, has_s_copy))
            return
        L1Cache._miss(self, block_addr, req, has_s_copy)

    def _on_put_ack_hardened(self, msg: Message) -> None:
        self._on_put_ack(msg)
        parked = self._wb_blocked.pop(msg.addr, None)
        if parked:
            for req, has_s_copy in parked:
                self._miss(msg.addr, req, has_s_copy)

    def _on_nack(self, msg: Message) -> None:
        """The fault layer dropped one of our requests; re-issue it.

        The retry waits out an exponential backoff
        (``base << min(attempt, cap)`` cycles) and is guarded -- at
        schedule time and again at fire time -- on the request's
        transient state still being open, so a request that became moot
        is not re-sent.  With retries disabled the loss is permanent and
        liveness rests on the watchdog (that is the point: proving the
        watchdog catches the resulting deadlock).
        """
        self.stat_nacks.value += 1
        plan = self._retry_plan
        orig = msg.orig
        if plan is None or not plan.retries_enabled or orig is None:
            return
        if not self._retry_wanted(orig):
            return
        backoff = plan.retry_backoff_base << min(orig.attempt, plan.retry_backoff_cap)
        self._schedule_fast(backoff, self._retry, orig)

    def _retry_wanted(self, orig: Message) -> bool:
        """Is the dropped request's transient state still open?"""
        if orig.mtype in (_GET_S, _GET_M):
            return orig.addr in self._mshrs
        return orig.addr in self._wb  # PUT_S / PUT_E / PUT_M

    def _retry(self, orig: Message) -> None:
        if not self._retry_wanted(orig):
            return
        self.stat_retries.value += 1
        self.net.send(self.node_id, self._home_of(orig.addr),
                      Message(orig.mtype, orig.addr, self.node_id,
                              data=orig.data, word_addr=orig.word_addr,
                              attempt=orig.attempt + 1))

    def _on_data(self, msg: Message) -> None:
        mshr = self._mshrs.get(msg.addr)
        if mshr is None:
            raise SimulationError(f"L1 {self.node_id}: fill without MSHR: {msg}")
        granted = _GRANTED[msg.mtype]
        if mshr.has_s_copy:
            # SM upgrade completing: the resident S copy gains write permission.
            block = self.array.lookup(msg.addr, touch=False)
            if block is None:
                raise SimulationError(f"L1 {self.node_id}: SM upgrade lost its S copy")
            block.state = granted
        else:
            index = (msg.addr >> self._offset_bits) & self._set_mask
            self._reserved[index] -= 1
            assert msg.data is not None, "fill must carry data"
            # The fill payload is the directory's own fresh copy and this
            # is its sole delivery (duplicates are uid-suppressed before
            # dispatch), so the block may adopt it without copying.
            block = self.array.insert(msg.addr, granted, self._take(msg.data))
            pending = self._pending_spec_reads.pop(msg.addr, None)
            if pending is not None:
                # A speculatively forwarded load read this block while it
                # was absent; the fill joins it to the read set.
                block.spec_read = True
                block.spec_read_words.update(pending)
                self._spec_blocks[block.addr] = block

        # Drain waiters in order; a write waiter under an S grant forces a
        # follow-up GetM upgrade carrying the remaining waiters.
        waiters = mshr.waiters
        del self._mshrs[msg.addr]
        for i, req in enumerate(waiters):
            if req.needs_write and not block.state.writable:
                upgrade = _Mshr(msg.addr, want_m=True, has_s_copy=True)
                upgrade.waiters = waiters[i:]
                self._mshrs[msg.addr] = upgrade
                self.net.send(self.node_id, self._home_of(msg.addr),
                              Message(_GET_M, msg.addr, self.node_id,
                                      word_addr=req.addr))
                return
            self._apply(req, block)

    def _inv_conflicts(self, block: CacheBlock, msg: Message) -> bool:
        """Does this invalidation abort the current speculation?

        BLOCK granularity (the hardware design): any SR/SW hit aborts.
        WORD granularity (idealised oracle, E4 ablation): an SR-only
        block survives when the remote writer's word provably misses the
        speculatively read words (false sharing); SW blocks always abort
        -- speculative data must never escape.
        """
        if not block.speculative:
            return False
        if block.spec_written:
            return True
        if (self.spec_config.granularity is ViolationGranularity.WORD
                and msg.word_addr is not None):
            remote_word = self.array.word_index(msg.word_addr)
            return remote_word in block.spec_read_words
        return True

    def _on_inv(self, msg: Message) -> None:
        self.stat_inv_received.value += 1
        block = self.array.lookup(msg.addr, touch=False)
        if block is not None:
            if self._inv_conflicts(block, msg):
                self._violation(ViolationReason.EXTERNAL_INVALIDATION, msg.addr,
                                exclude=msg.addr)
                block = self.array.lookup(msg.addr, touch=False)
                if block is None:
                    # The block was SW and rollback removed it; the directory
                    # copy is current (clean-before-write).
                    self._respond(_INV_ACK, msg.addr, None)
                    self._demote_sm_mshr(msg.addr)
                    return
            # The block dies here, so ownership of its word list moves
            # into the INV_ACK (no copy on the fast path).
            data = self._take(block.data) if block.dirty else None
            self.array.remove(msg.addr)
            self._victim_buffer.pop(msg.addr, None)
            # WORD-granularity false sharing can remove an SR-only block
            # without a rollback: drop it from the speculative registry.
            self._spec_blocks.pop(msg.addr, None)
            self._respond(_INV_ACK, msg.addr, data)
            self._demote_sm_mshr(msg.addr)
            return
        wb = self._wb.get(msg.addr)
        if wb is not None:
            self.stat_wb_surrenders.value += 1
            data = wb.data if (wb.dirty and not wb.surrendered) else None
            wb.surrendered = True
            self._respond(_INV_ACK, msg.addr, data)
            return
        raise SimulationError(f"L1 {self.node_id}: INV for absent block {msg.addr:#x}")

    def _demote_sm_mshr(self, block_addr: int) -> None:
        """An INV killed our S copy while a GetM upgrade was in flight:
        the upgrade becomes a full IM miss (DATA_M will carry data), and the
        way the S copy occupied must be re-reserved for the fill."""
        mshr = self._mshrs.get(block_addr)
        if mshr is not None and mshr.has_s_copy:
            self.stat_sm_demotions.value += 1
            mshr.has_s_copy = False
            index = (block_addr >> self._offset_bits) & self._set_mask
            self._reserved[index] = self._reserved.get(index, 0) + 1

    def _on_fwd_get_s(self, msg: Message) -> None:
        self.stat_downgrades.value += 1
        block = self.array.lookup(msg.addr, touch=False)
        if block is not None:
            if block.spec_written:
                # A remote reader must never observe speculative data.
                self._violation(ViolationReason.EXTERNAL_DOWNGRADE, msg.addr,
                                exclude=msg.addr)
                if self.array.lookup(msg.addr, touch=False) is None:
                    # SW block discarded by rollback: tell the directory we
                    # dropped to I; its copy (clean-before-write) is current.
                    self._respond(_INV_ACK, msg.addr, None)
                    return
                block = self.array.lookup(msg.addr, touch=False)
            # Plain downgrade M/E -> S (an SR-only block stays tracked in S).
            data = list(block.data) if block.dirty else None
            block.dirty = False
            block.state = CacheState.SHARED
            self._victim_buffer.pop(msg.addr, None)
            self._respond(_DOWNGRADE_ACK, msg.addr, data)
            return
        wb = self._wb.get(msg.addr)
        if wb is not None:
            self.stat_wb_surrenders.value += 1
            data = wb.data if (wb.dirty and not wb.surrendered) else None
            wb.surrendered = True
            self._respond(_INV_ACK, msg.addr, data)
            return
        raise SimulationError(f"L1 {self.node_id}: FWD_GET_S for absent block {msg.addr:#x}")

    def _on_put_ack(self, msg: Message) -> None:
        if msg.addr not in self._wb:
            raise SimulationError(f"L1 {self.node_id}: PUT_ACK without writeback entry")
        del self._wb[msg.addr]

    def _respond(self, mtype: MessageType, addr: int, data: Optional[List[int]]) -> None:
        self.net.send(self.node_id, self._home_of(addr),
                      Message(mtype, addr, self.node_id, data=data))

    # ------------------------------------------------ speculation interface

    def note_speculative_forward(self, addr: int) -> None:
        """Add a store-buffer-forwarded speculative load to the read set.

        A forwarded load never reaches the L1, but the episode may have
        hoisted it above a drain point (an elided fence, an SC load's
        buffer wait), so the forwarded value becomes order-visible if a
        remote write to the block slips in before commit.  Mark the block
        SR so that write aborts the episode.  If the block is not resident
        (the forwarded-from store has not drained), park the mark in
        ``_pending_spec_reads``; the fill transfers it.  A remote write
        that lands *before* the drain re-acquires the block is harmless:
        it is then coherence-ordered before our store, and the forwarded
        value is simply the newest.
        """
        block_addr = addr & self._block_mask
        word = (addr & self._word_mask) >> 3
        block = self._lookup(block_addr, touch=False)
        if block is not None:
            block.spec_read = True
            block.spec_read_words.add(word)
            self._spec_blocks[block_addr] = block
        else:
            self._pending_spec_reads.setdefault(block_addr, set()).add(word)

    def speculative_footprint(self) -> Tuple[int, int]:
        """(number of SR blocks, number of SW blocks) currently tracked."""
        sr = sw = 0
        for block in self._spec_blocks.values():
            if block.spec_read:
                sr += 1
            if block.spec_written:
                sw += 1
        return sr, sw

    def commit_speculation(self) -> None:
        """Flash-clear all SR/SW bits (speculation became architectural).

        Touches only the registered speculative set -- commit is the
        frequent case and must not scan the whole array.  No messages
        are emitted, so iteration order is free here (unlike rollback).
        """
        for block in self._spec_blocks.values():
            block.clear_speculation()
        self._spec_blocks.clear()
        self._victim_buffer.clear()
        self._pending_spec_reads.clear()

    def rollback_speculation(self, exclude: Optional[int] = None) -> None:
        """Discard all speculative state.

        SW blocks are removed: under clean-before-write their
        pre-speculation data lives in the L2 copy, so ownership is simply
        relinquished (PUT_E); under the victim-buffer strategy the saved
        data is restored in place.  SR-only blocks just lose their bit.
        ``exclude`` names a block whose coherence response the *caller*
        will send (the block that took the external request), so no
        relinquish message is emitted for it -- but it is still removed.
        """
        # NOTE: rollback walks the *array* (not the registry): the PUT_E
        # relinquish messages below must be emitted in array iteration
        # order -- registry insertion order differs, and message order is
        # timing-visible.  Rollbacks are rare; commits take the fast path.
        for block in list(self.array.speculative_blocks()):
            if block.spec_written:
                saved = self._victim_buffer.pop(block.addr, None)
                if (self.spec_config.rollback_strategy is RollbackStrategy.VICTIM_BUFFER
                        and saved is not None):
                    block.data = saved
                    block.dirty = True
                    block.clear_speculation()
                    continue
                self.array.remove(block.addr)
                if block.addr != exclude:
                    self.stat_spec_relinquish.value += 1
                    self._wb[block.addr] = _WbEntry(None, dirty=False)
                    self.net.send(self.node_id, self._home_of(block.addr),
                                  Message(_PUT_E, block.addr, self.node_id))
            else:
                block.clear_speculation()
        self._spec_blocks.clear()
        self._victim_buffer.clear()
        self._pending_spec_reads.clear()

    def _violation(self, reason: ViolationReason, addr: int,
                   exclude: Optional[int]) -> None:
        """Abort the current speculation.

        The L1-side rollback (discarding SW blocks, clearing SR bits) runs
        synchronously *here*, before any data is surrendered; the listener
        then performs the core-side rollback (squash speculative store
        buffer entries, restore the checkpoint after the penalty).
        ``exclude`` names the block whose coherence response the caller
        sends itself (so no relinquish message is emitted for it).
        """
        if self.violation_listener is None:
            raise SimulationError(
                f"L1 {self.node_id}: violation ({reason.value}) with no listener"
            )
        self.rollback_speculation(exclude=exclude)
        self.violation_listener(reason, addr)

    # ------------------------------------------------------------- helpers

    def peek_word(self, addr: int) -> Optional[int]:
        """Non-intrusive read for debugging/tests (no LRU update)."""
        block = self.array.lookup(addr, touch=False)
        if block is None or not block.state.readable:
            return None
        return block.data[self.array.word_index(addr)]

"""Blocking coherence directory, co-located with the inclusive shared L2.

The directory is the per-block serialisation point: it processes one
transaction per block at a time and queues further requests for that
block.  All data moves through the directory (no cache-to-cache
forwarding), which together with the crossbar's per-(src,dst) FIFO
delivery eliminates the classic protocol races.

Backing storage models an inclusive L2 + DRAM: data is always
available; *timing* distinguishes a warm L2 hit from a cold first-touch
(DRAM latency).  Capacity effects are modelled in the L1s only -- the
shared L2 is treated as large enough to hold every workload's footprint
(documented substitution; the paper's phenomena live in the L1s).
"""

from __future__ import annotations

import enum
from collections import deque
from heapq import heappush as _heappush
from typing import Deque, Dict, List, Optional, Set

from repro.coherence.messages import DIRECTORY_REQUESTS, Message, MessageType
from repro.sim.config import CacheConfig, MemoryConfig
from repro.sim.engine import SimulationError, Simulator
from repro.sim.stats import StatsRegistry

_GET_S = MessageType.GET_S
_GET_M = MessageType.GET_M
_PUT_S = MessageType.PUT_S
_PUT_E = MessageType.PUT_E
_PUT_M = MessageType.PUT_M
_DATA_S = MessageType.DATA_S
_DATA_E = MessageType.DATA_E
_DATA_M = MessageType.DATA_M
_INV = MessageType.INV
_FWD_GET_S = MessageType.FWD_GET_S
_PUT_ACK = MessageType.PUT_ACK
_DOWNGRADE_ACK = MessageType.DOWNGRADE_ACK
_NACK = MessageType.NACK


def _identity(data):
    return data


class DirState(enum.Enum):
    INVALID = "I"       #: no L1 holds the block
    SHARED = "S"        #: one or more read-only copies
    EXCLUSIVE = "E"     #: one L1 owns the block (E or M there)


class _Entry:
    """Directory state for one block."""

    __slots__ = ("state", "sharers", "owner")

    def __init__(self) -> None:
        self.state = DirState.INVALID
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None


class _Transaction:
    """An in-flight request the directory is serialising for one block."""

    __slots__ = ("msg", "acks_needed", "kind")

    def __init__(self, msg: Message, acks_needed: int, kind: str):
        self.msg = msg
        self.acks_needed = acks_needed
        self.kind = kind  # "gets_recall" | "getm_inval"


class Directory:
    """MESI directory + inclusive L2 backing store."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        cache_config: CacheConfig,
        memory_config: MemoryConfig,
        interconnect,
        stats: StatsRegistry,
        copy_blocks: bool = False,
    ):
        self.sim = sim
        self.node_id = node_id
        self.cache_config = cache_config
        self.memory_config = memory_config
        self.net = interconnect
        self._entries: Dict[int, _Entry] = {}
        self._backing: Dict[int, List[int]] = {}
        self._touched: Set[int] = set()
        self._active: Dict[int, _Transaction] = {}
        self._pending: Dict[int, Deque[Message]] = {}

        # Copy-elision debug mode: ``_take`` re-copies incoming payloads
        # when ``copy_blocks`` is set, proving the ownership-transfer
        # fast path creates no live aliases (results must be identical).
        self._take = list if copy_blocks else _identity

        # Hot-path caches (PR 2 idiom: one attribute walk at init).
        self._schedule_fast = sim.schedule_fast
        self._directory_latency = memory_config.directory_latency
        # Inline the schedule_fast body (calendar-bucket append) at the
        # per-request sites when the engine really runs the fast path.
        self._fp = sim.fastpath

        # Table dispatch, keyed by integer mtype codes.
        self._receive_handlers = {
            _GET_S: self._on_request,
            _GET_M: self._on_request,
            _PUT_S: self._on_request,
            _PUT_E: self._on_request,
            _PUT_M: self._on_request,
            MessageType.WB_CLEAN: self._on_wb_clean,
            MessageType.WB_WORD: self._on_wb_word,
            MessageType.INV_ACK: self._on_ack,
            _DOWNGRADE_ACK: self._on_ack,
        }
        self._process_handlers = {
            _GET_S: self._process_get_s,
            _GET_M: self._process_get_m,
            _PUT_S: self._process_put_s,
            _PUT_E: self._process_put_e,
            _PUT_M: self._process_put_m,
        }

        self.stat_requests = stats.counter("dir.requests")
        self.stat_recalls = stats.counter("dir.recalls")
        self.stat_invalidations = stats.counter("dir.invalidations_sent")
        self.stat_dram_fetches = stats.counter("dir.dram_fetches")
        self.stat_l2_hits = stats.counter("dir.l2_hits")
        self.stat_stale_puts = stats.counter("dir.stale_puts")
        self.stat_queued = stats.counter("dir.requests_queued")

        # Fault hardening (armed by enable_fault_hardening; see repro.faults).
        self._retry_plan = None
        self._seen_uids: Optional[Set[int]] = None

    # ------------------------------------------------------------- storage

    @property
    def words_per_block(self) -> int:
        return self.cache_config.block_bytes // 8

    def _entry(self, addr: int) -> _Entry:
        entry = self._entries.get(addr)
        if entry is None:
            entry = _Entry()
            self._entries[addr] = entry
        return entry

    def backing_data(self, addr: int) -> List[int]:
        data = self._backing.get(addr)
        if data is None:
            data = [0] * self.words_per_block
            self._backing[addr] = data
        return data

    def preload(self, addr: int, value: int) -> None:
        """Initialise one word of memory (used to set up workload data).

        Marks the block warm so initialisation does not perturb the
        cold-miss timing of the measured region... it *does* mark it
        touched, which is the right model for data the workload set up.
        """
        block_addr = self.cache_config.block_of(addr)
        data = self.backing_data(block_addr)
        data[(addr - block_addr) // 8] = value

    def backing_blocks(self):
        """Iterate ``(block_addr, word_list)`` over the L2 backing store."""
        return self._backing.items()

    def peek_word(self, addr: int) -> int:
        """Directory/L2 copy of one word (tests and result extraction).

        Note: an L1 may hold a dirtier copy; use the system-level
        ``read_final_memory`` helpers after a run has drained.
        """
        block_addr = self.cache_config.block_of(addr)
        data = self._backing.get(block_addr)
        if data is None:
            return 0
        return data[(addr - block_addr) // 8]

    def _fetch_latency(self, addr: int) -> int:
        if addr in self._touched:
            self.stat_l2_hits.value += 1
            return self.memory_config.l2_hit_latency
        self._touched.add(addr)
        self.stat_dram_fetches.value += 1
        return self.memory_config.dram_latency

    # ------------------------------------------------------------ receive

    def receive(self, msg: Message) -> None:
        handler = self._receive_handlers.get(msg.mtype)
        if handler is None:
            raise SimulationError(f"directory: unexpected message {msg}")
        handler(msg)

    def _on_request(self, msg: Message) -> None:
        if msg.addr in self._active:
            self.stat_queued.value += 1
            self._pending.setdefault(msg.addr, deque()).append(msg)
            return
        # Schedule the type's process handler itself (skipping the
        # _process dispatch hop) and count the request here -- every
        # request passes through exactly one of the two schedule sites
        # (here or the _complete queue drain), so the total is the same.
        self.stat_requests.value += 1
        if self._fp:
            sim = self.sim
            time = sim._now + self._directory_latency
            buckets = sim._buckets
            bucket = buckets.get(time)
            entry = (self._process_handlers[msg.mtype], (msg,))
            if bucket is None:
                buckets[time] = [entry]
                _heappush(sim._times, time)
            else:
                bucket.append(entry)
            sim._pending += 1
        else:
            self._schedule_fast(self._directory_latency,
                                self._process_handlers[msg.mtype], msg)
        # Mark busy immediately so same-cycle requests queue behind us.
        self._active[msg.addr] = _Transaction(msg, acks_needed=0, kind="pending")

    def _on_wb_clean(self, msg: Message) -> None:
        assert msg.data is not None
        self._backing[msg.addr] = self._take(msg.data)
        self._touched.add(msg.addr)

    def _on_wb_word(self, msg: Message) -> None:
        # One committed word written through from an owner whose block
        # is speculatively modified: patch the rollback image.
        assert msg.data is not None and len(msg.data) == 1
        assert msg.word_addr is not None
        data = self.backing_data(msg.addr)
        data[(msg.word_addr - msg.addr) // 8] = msg.data[0]
        self._touched.add(msg.addr)

    # -------------------------------------------- fault hardening (opt-in)

    def enable_fault_hardening(self, plan, stats: StatsRegistry) -> None:
        """Arm duplicate suppression and NACK-driven probe retries.

        Counterpart of :meth:`repro.coherence.l1.L1Cache.
        enable_fault_hardening`: counters are created lazily so
        fault-free stats snapshots (and result fingerprints) are
        unchanged, and the hardened receive path shadows the plain one.
        Duplicate *requests* matter especially here -- an un-suppressed
        duplicate GET would enqueue a second transaction for a requester
        that expects one response.
        """
        self._retry_plan = plan
        self._seen_uids = set()
        self.stat_nacks = stats.counter("dir.nacks_received")
        self.stat_retries = stats.counter("dir.retries")
        self.stat_dups_suppressed = stats.counter("dir.dups_suppressed")
        self.receive = self._receive_hardened  # type: ignore[method-assign]

    def _receive_hardened(self, msg: Message) -> None:
        seen = self._seen_uids
        if msg.uid in seen:
            self.stat_dups_suppressed.increment()
            return
        seen.add(msg.uid)
        if msg.mtype is _NACK:
            self._on_nack(msg)
            return
        Directory.receive(self, msg)

    def _on_nack(self, msg: Message) -> None:
        """One of our probes (INV / FWD_GET_S) was dropped; re-issue it.

        The retry is guarded on the block's transaction still being open
        past the "pending" stage -- the stage whose probes are in
        flight.  ``msg.src`` is the node the probe never reached (set by
        the fault layer), which is where the retry must go.
        """
        self.stat_nacks.increment()
        plan = self._retry_plan
        orig = msg.orig
        if plan is None or not plan.retries_enabled or orig is None:
            return
        if not self._probe_wanted(orig):
            return
        backoff = plan.retry_backoff_base << min(orig.attempt, plan.retry_backoff_cap)
        self.sim.schedule_fast(backoff, self._retry_probe, orig, msg.src)

    def _probe_wanted(self, orig: Message) -> bool:
        txn = self._active.get(orig.addr)
        return txn is not None and txn.kind != "pending"

    def _retry_probe(self, orig: Message, target: int) -> None:
        if not self._probe_wanted(orig):
            return
        self.stat_retries.increment()
        self.net.send(self.node_id, target,
                      Message(orig.mtype, orig.addr, self.node_id,
                              word_addr=orig.word_addr,
                              attempt=orig.attempt + 1))

    # ------------------------------------------------------- transactions

    def _process(self, msg: Message) -> None:
        self.stat_requests.value += 1
        self._process_handlers[msg.mtype](msg)

    def _process_get_s(self, msg: Message) -> None:
        entry = self._entry(msg.addr)
        if entry.state is DirState.INVALID:
            entry.state = DirState.EXCLUSIVE
            entry.owner = msg.src
            self._send_data(msg.src, _DATA_E, msg.addr)
        elif entry.state is DirState.SHARED:
            entry.sharers.add(msg.src)
            self._send_data(msg.src, _DATA_S, msg.addr)
        else:  # EXCLUSIVE: recall data from the owner, downgrading it
            assert entry.owner is not None and entry.owner != msg.src, \
                f"owner re-requesting S for {msg.addr:#x}"
            self.stat_recalls.value += 1
            self._active[msg.addr] = _Transaction(msg, acks_needed=1, kind="gets_recall")
            self.net.send(self.node_id, entry.owner,
                          Message(_FWD_GET_S, msg.addr, self.node_id,
                                  word_addr=msg.word_addr))

    def _process_get_m(self, msg: Message) -> None:
        entry = self._entry(msg.addr)
        if entry.state is DirState.INVALID:
            entry.state = DirState.EXCLUSIVE
            entry.owner = msg.src
            self._send_data(msg.src, _DATA_M, msg.addr)
        elif entry.state is DirState.SHARED:
            targets = entry.sharers - {msg.src}
            if not targets:
                entry.state = DirState.EXCLUSIVE
                entry.sharers.clear()
                entry.owner = msg.src
                self._send_data(msg.src, _DATA_M, msg.addr)
                return
            self._active[msg.addr] = _Transaction(msg, acks_needed=len(targets),
                                                  kind="getm_inval")
            for target in sorted(targets):
                self.stat_invalidations.value += 1
                self.net.send(self.node_id, target,
                              Message(_INV, msg.addr, self.node_id,
                                      word_addr=msg.word_addr))
        else:  # EXCLUSIVE held elsewhere: invalidate the owner, recalling data
            assert entry.owner is not None and entry.owner != msg.src, \
                f"owner re-requesting M for {msg.addr:#x}"
            self.stat_invalidations.value += 1
            self._active[msg.addr] = _Transaction(msg, acks_needed=1, kind="getm_inval")
            self.net.send(self.node_id, entry.owner,
                          Message(_INV, msg.addr, self.node_id,
                                  word_addr=msg.word_addr))

    def _process_put_s(self, msg: Message) -> None:
        entry = self._entry(msg.addr)
        if entry.state is DirState.SHARED and msg.src in entry.sharers:
            entry.sharers.discard(msg.src)
            if not entry.sharers:
                entry.state = DirState.INVALID
        else:
            self.stat_stale_puts.value += 1
        self._ack_put(msg)

    def _process_put_e(self, msg: Message) -> None:
        entry = self._entry(msg.addr)
        if entry.state is DirState.EXCLUSIVE and entry.owner == msg.src:
            entry.state = DirState.INVALID
            entry.owner = None
        else:
            self.stat_stale_puts.value += 1
        self._ack_put(msg)

    def _process_put_m(self, msg: Message) -> None:
        entry = self._entry(msg.addr)
        if entry.state is DirState.EXCLUSIVE and entry.owner == msg.src:
            assert msg.data is not None, "PUT_M must carry data"
            self._backing[msg.addr] = self._take(msg.data)
            self._touched.add(msg.addr)
            entry.state = DirState.INVALID
            entry.owner = None
        else:
            # The evictor was invalidated while its PUT_M was in flight; it
            # already surrendered (identical) data via INV_ACK.
            self.stat_stale_puts.value += 1
        self._ack_put(msg)

    def _ack_put(self, msg: Message) -> None:
        self.net.send(self.node_id, msg.src,
                      Message(_PUT_ACK, msg.addr, self.node_id))
        self._complete(msg.addr)

    # ----------------------------------------------------------- responses

    def _on_ack(self, msg: Message) -> None:
        txn = self._active.get(msg.addr)
        if txn is None or txn.kind == "pending":
            raise SimulationError(f"directory: ack with no open transaction: {msg}")
        if msg.data is not None:
            self._backing[msg.addr] = self._take(msg.data)
            self._touched.add(msg.addr)
        entry = self._entry(msg.addr)

        if txn.kind == "gets_recall":
            requester = txn.msg.src
            if msg.mtype is _DOWNGRADE_ACK:
                # Owner kept a Shared copy.
                entry.state = DirState.SHARED
                entry.sharers = {entry.owner, requester}
                entry.owner = None
                self._send_data(requester, _DATA_S, msg.addr)
            else:
                # Owner dropped to I (eviction race or speculative rollback):
                # the requester becomes the sole, exclusive holder.
                entry.state = DirState.EXCLUSIVE
                entry.owner = requester
                entry.sharers.clear()
                self._send_data(requester, _DATA_E, msg.addr)
            return

        # getm_inval: count invalidation acks, then grant M.
        txn.acks_needed -= 1
        if txn.acks_needed > 0:
            return
        requester = txn.msg.src
        entry.state = DirState.EXCLUSIVE
        entry.sharers.clear()
        entry.owner = requester
        self._send_data(requester, _DATA_M, msg.addr)

    # ------------------------------------------------------------ helpers

    def _send_data(self, dst: int, mtype: MessageType, addr: int) -> None:
        """Fetch the block (L2/DRAM latency), send it, then release the
        block's transaction slot.  Completion must not precede injection:
        a queued transaction's probes would otherwise overtake this grant
        on the network."""
        latency = self._fetch_latency(addr)
        if self._fp:
            sim = self.sim
            time = sim._now + latency
            buckets = sim._buckets
            bucket = buckets.get(time)
            entry = (self._send_data_now, (dst, mtype, addr))
            if bucket is None:
                buckets[time] = [entry]
                _heappush(sim._times, time)
            else:
                bucket.append(entry)
            sim._pending += 1
        else:
            self._schedule_fast(latency, self._send_data_now, dst, mtype, addr)

    def _send_data_now(self, dst: int, mtype: MessageType, addr: int) -> None:
        data = list(self.backing_data(addr))
        self.net.send(self.node_id, dst, Message(mtype, addr, self.node_id, data=data))
        self._complete(addr)

    def _complete(self, addr: int) -> None:
        """Finish the current transaction and start the next queued one."""
        self._active.pop(addr, None)
        queue = self._pending.get(addr)
        if queue:
            nxt = queue.popleft()
            if not queue:
                del self._pending[addr]
            self._active[addr] = _Transaction(nxt, acks_needed=0, kind="pending")
            self.stat_requests.value += 1
            self._schedule_fast(self._directory_latency,
                                self._process_handlers[nxt.mtype], nxt)

    # ------------------------------------------------------------- debug

    def entry_state(self, addr: int) -> DirState:
        return self._entry(self.cache_config.block_of(addr)).state

    def sharers_of(self, addr: int) -> Set[int]:
        return set(self._entry(self.cache_config.block_of(addr)).sharers)

    def owner_of(self, addr: int) -> Optional[int]:
        return self._entry(self.cache_config.block_of(addr)).owner

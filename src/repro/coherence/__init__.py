"""Invalidation-based MESI cache-coherence substrate.

The simulated memory system consists of one private L1 data cache per
core (:mod:`repro.coherence.l1`), a blocking directory co-located with
an inclusive shared L2 (:mod:`repro.coherence.directory`), and a
crossbar interconnect (:mod:`repro.interconnect`).  The protocol is
directory-mediated: all data moves through the directory, which is the
per-block serialisation point.  Messages are defined in
:mod:`repro.coherence.messages`.

InvisiFence hooks into the L1 through the listener interface in
:class:`repro.coherence.l1.L1Cache` -- external invalidations and
downgrades, and evictions, are reported to the attached speculation
controller before data is surrendered.
"""

from repro.coherence.cache import CacheArray, CacheBlock, CacheState
from repro.coherence.messages import Message, MessageType
from repro.coherence.l1 import L1Cache
from repro.coherence.directory import Directory

__all__ = [
    "CacheArray",
    "CacheBlock",
    "CacheState",
    "Message",
    "MessageType",
    "L1Cache",
    "Directory",
]

"""Directory home-node mapping: block address -> directory home.

Historically the machine had exactly one directory (node id
``n_cores``) and the address-to-home function was the constant map.
The sharded simulator (:mod:`repro.sim.sharded`) distributes directory
state over ``n_homes`` home nodes so each shard can own a slice of the
directory, and the *same* mapping object must be used by the serial
oracle and every shard worker -- otherwise the two engines would route
the same request to different homes and nothing downstream could match.
This module is that single shared definition.

Two maps:

* :class:`IdentityHomeMap` -- everything homes to index 0.  Used when
  ``n_homes == 1``; byte-identical to the pre-multi-home machine.
* :class:`ConsistentHashHomeMap` -- classic consistent-hash ring with
  virtual nodes over block addresses.  Balanced (each home gets an
  ~equal slice of the address space) and remap-stable: growing the ring
  from H to H+1 homes moves only ~1/(H+1) of the addresses, so cached
  placement decisions mostly survive a re-shard.

Hashing is an explicit 64-bit mix (splitmix64 finaliser), **not**
Python's ``hash()``: the builtin is salted per process, and home
placement must agree across the oracle process and forked shard
workers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Tuple

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """splitmix64 finaliser: a fast, high-quality, process-stable mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class IdentityHomeMap:
    """The single-directory map: every block homes to index 0."""

    n_homes = 1

    def __init__(self, first_node: int):
        self.first_node = first_node

    def home_index(self, block_addr: int) -> int:
        return 0

    def node_id(self, block_addr: int) -> int:
        return self.first_node


class ConsistentHashHomeMap:
    """Consistent-hash ring over block addresses with virtual nodes.

    Each home contributes ``vnodes`` points on a 64-bit ring; a block
    address hashes to a ring position and is owned by the next point
    clockwise.  ``vnodes`` trades lookup-table size against balance;
    the default keeps every home within a few percent of its fair share
    (the unit tests pin this).
    """

    def __init__(self, n_homes: int, first_node: int, vnodes: int = 64):
        if n_homes < 1:
            raise ValueError("n_homes must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.n_homes = n_homes
        self.first_node = first_node
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for home in range(n_homes):
            for v in range(vnodes):
                points.append((_mix64((home << 20) | v), home))
        points.sort()
        self._ring_keys = [key for key, _ in points]
        self._ring_homes = [home for _, home in points]

    def home_index(self, block_addr: int) -> int:
        keys = self._ring_keys
        index = bisect_left(keys, _mix64(block_addr))
        if index == len(keys):
            index = 0
        return self._ring_homes[index]

    def node_id(self, block_addr: int) -> int:
        return self.first_node + self.home_index(block_addr)


def build_home_map(n_homes: int, first_node: int):
    """The map both engines share for a machine with ``n_homes`` homes."""
    if n_homes == 1:
        return IdentityHomeMap(first_node)
    return ConsistentHashHomeMap(n_homes, first_node)

"""Per-store-granularity speculation baseline (storage & coverage model).

Designs that buffer speculative state per store need one entry (address
+ data + status) per in-flight speculative store.  Their storage grows
linearly with the speculation depth they support, and any episode
deeper than the provisioned depth must stall.  InvisiFence's storage is
constant; its capacity limit is the L1 itself (hundreds of blocks).

The coverage helpers turn a measured distribution of episode depths
(from the simulator's ``spec.N.footprint_blocks`` /
``sb_occupancy`` histograms) into "what fraction of episodes would a
depth-D per-store design have covered without stalling".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.core.storage import CHECKPOINT_BITS, per_store_storage_bits
from repro.sim.stats import Histogram


@dataclass(frozen=True)
class PerStoreDesign:
    """A per-store speculation design provisioned for a fixed depth."""

    depth: int
    address_bits: int = 48
    data_bits: int = 64

    @property
    def storage_bits(self) -> int:
        return per_store_storage_bits(self.depth, self.address_bits, self.data_bits)

    @property
    def storage_bytes(self) -> float:
        return self.storage_bits / 8

    def covers(self, episode_depth: int) -> bool:
        """Can an episode with this many speculative stores proceed
        without stalling?"""
        return episode_depth <= self.depth


def coverage_at_depth(episode_depths: Histogram, depth: int) -> float:
    """Fraction of measured episodes a depth-``depth`` design covers.

    ``episode_depths`` is a histogram of per-episode speculative store
    counts.  Returns 1.0 when there were no episodes.
    """
    if episode_depths.count == 0:
        return 1.0
    covered = sum(count for edge, count in episode_depths.items() if edge <= depth)
    return covered / episode_depths.count


def depth_for_coverage(episode_depths: Histogram, target: float) -> int:
    """Smallest depth whose coverage reaches ``target`` (e.g. 0.99)."""
    if not 0.0 < target <= 1.0:
        raise ValueError("target coverage must be in (0, 1]")
    if episode_depths.count == 0:
        return 0
    edges = sorted(edge for edge, _ in episode_depths.items())
    for edge in edges:
        if coverage_at_depth(episode_depths, edge) >= target:
            return edge
    return edges[-1]


def storage_scaling_table(depths: Iterable[int],
                          l1_blocks: int = 1024) -> Dict[int, Tuple[int, int]]:
    """(per-store bits, InvisiFence bits) for each depth.

    InvisiFence's column is constant: 2 bits x ``l1_blocks`` + one
    checkpoint + misc -- it does not depend on the depth row.
    """
    from repro.core.storage import CONTROLLER_MISC_BITS
    invisi = 2 * l1_blocks + CHECKPOINT_BITS + CONTROLLER_MISC_BITS
    return {d: (PerStoreDesign(d).storage_bits, invisi) for d in depths}

"""Models of the prior post-retirement-speculation designs the paper
compares against.

The paper positions InvisiFence against two design families:

1. **Per-store speculative state** (scalable store buffers and kin):
   storage grows linearly with speculation depth.
   :mod:`repro.baselines.per_store` quantifies that scaling and the
   coverage a bounded depth achieves on measured episode footprints.
2. **Chunk-based designs with distributed global commit arbitration**
   (BulkSC-style): commits serialise through a global arbiter.
   :mod:`repro.baselines.chunk` provides the arbiter the simulator uses
   when ``SpeculationConfig.commit_arbitration`` is enabled.
"""

from repro.baselines.per_store import (
    PerStoreDesign,
    coverage_at_depth,
    depth_for_coverage,
)
from repro.baselines.chunk import CommitArbiter

__all__ = [
    "PerStoreDesign",
    "coverage_at_depth",
    "depth_for_coverage",
    "CommitArbiter",
]

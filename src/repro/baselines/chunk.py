"""Global commit arbitration (the chunk-based prior-design baseline).

Chunk-based memory-ordering designs (BulkSC-style) make every chunk
commit acquire a *global* arbitration token so that chunks appear
atomic system-wide.  InvisiFence's contrast claim is that its commits
are local and instantaneous (flash-clearing bits), needing no
arbitration.

:class:`CommitArbiter` models the prior design: one commit grant at a
time system-wide, each occupying the arbiter for ``latency`` cycles
(request propagation + decision + release).  Cores keep speculating
while their request queues -- the cost appears as extended violation
exposure and, under contention, as commit backpressure that grows with
core count (experiment E7).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple

from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


class CommitArbiter:
    """Serialises speculation commits through a single global token."""

    def __init__(self, sim: Simulator, latency: int, stats: StatsRegistry):
        if latency < 1:
            raise ValueError("arbitration latency must be >= 1")
        self.sim = sim
        self.latency = latency
        self._busy = False
        self._queue: Deque[Tuple[int, int, Callable[[], None]]] = deque()
        self.stat_grants = stats.counter("arbiter.grants")
        self.stat_queue_cycles = stats.accumulator("arbiter.queue_cycles")
        self.stat_max_queue = stats.accumulator("arbiter.queue_depth")

    def request(self, core_id: int, on_grant: Callable[[], None]) -> None:
        """Queue a commit request; ``on_grant`` fires when the token is
        acquired (after the arbitration latency)."""
        self._queue.append((core_id, self.sim.now, on_grant))
        self.stat_max_queue.add(len(self._queue))
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        core_id, requested_at, on_grant = self._queue.popleft()
        self.sim.schedule_fast(self.latency, self._grant, requested_at, on_grant)

    def _grant(self, requested_at: int, on_grant: Callable[[], None]) -> None:
        self.stat_grants.increment()
        # Queue delay beyond the intrinsic arbitration latency.
        self.stat_queue_cycles.add(self.sim.now - requested_at - self.latency)
        on_grant()
        self._busy = False
        self._pump()

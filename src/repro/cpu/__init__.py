"""Core pipeline model: in-order core, store buffer, register file.

The core executes one instruction at a time but overlaps execution with
store-buffer drain -- precisely the overlap that memory consistency
models restrict and that InvisiFence's speculation restores.
"""

from repro.cpu.regfile import RegisterFile
from repro.cpu.storebuffer import StoreBuffer, StoreEntry
from repro.cpu.core import Core, StallCause

__all__ = ["RegisterFile", "StoreBuffer", "StoreEntry", "Core", "StallCause"]

"""In-order timing core with store buffer and InvisiFence speculation.

Execution model: one instruction at a time, overlapped with store-buffer
drain.  Every ordering decision goes through the consistency policy;
wherever the policy demands a store-buffer drain, the core either stalls
(conventional baseline) or -- with InvisiFence enabled -- checkpoints
and continues speculatively.

Cycle accounting: every elapsed cycle of a core's runtime is attributed
to exactly one category (busy, memory, or one of the stall causes),
which is what the E1 breakdown figure reports.

Rollback correctness relies on an *epoch* counter: every continuation
the core schedules (step events, L1 callbacks) captures the epoch at
issue; a rollback bumps the epoch, atomically invalidating all in-flight
speculative continuations.
"""

from __future__ import annotations

import enum
from heapq import heappush as _heappush
from typing import Callable, Optional, Tuple

from repro.consistency import ConsistencyPolicy, policy_for
from repro.coherence.l1 import L1Cache, ViolationReason
from repro.core.checkpoint import Checkpoint
from repro.core.invisifence import InvisiFenceController, SpecTrigger
from repro.cpu.regfile import RegisterFile
from repro.cpu.storebuffer import StoreBuffer
from repro.isa import semantics
from repro.isa.instructions import _ALU, _ATOMICS, _BRANCHES, Instruction, Opcode
from repro.isa.interpreter import SuperblockSpan, superblock_spans
from repro.isa.program import Program
from repro.sim.config import CoreConfig, SpeculationConfig, SpeculationMode
from repro.sim.engine import SimulationError, Simulator
from repro.sim.stats import StatsRegistry

_WORD_MASK = semantics.WORD_MASK


class StallCause(enum.Enum):
    """Where a core's non-busy cycles go (E1 breakdown categories)."""

    FENCE = "fence"            #: draining at an explicit fence
    ATOMIC = "atomic"          #: draining before an atomic RMW
    ATOMIC_DEP = "atomic-dep"  #: true same-address store->RMW dependence
    SC_ORDER = "sc-order"      #: SC's per-operation store-completion wait
    SB_FULL = "sb-full"        #: store buffer structurally full
    MEMORY = "memory"          #: cache/memory access time (not ordering)
    ROLLBACK = "rollback"      #: misspeculation recovery penalty
    HALT_DRAIN = "halt-drain"  #: draining/committing before HALT

    @property
    def is_ordering(self) -> bool:
        """Ordering-induced categories (the ones InvisiFence removes)."""
        return self in (StallCause.FENCE, StallCause.ATOMIC, StallCause.SC_ORDER)


class Core:
    """One simulated processor core."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        config: CoreConfig,
        spec_config: SpeculationConfig,
        program: Program,
        l1: L1Cache,
        stats: StatsRegistry,
        on_halt: Optional[Callable[["Core"], None]] = None,
        commit_arbiter=None,
        superblocks: bool = False,
    ):
        self.sim = sim
        self.core_id = core_id
        self.config = config
        self.spec_config = spec_config
        self.program = program
        self.l1 = l1
        self.on_halt = on_halt

        self.policy: ConsistencyPolicy = policy_for(config.consistency)
        self.regs = RegisterFile()
        self.pc = 0
        self.halted = False
        self.epoch = 0
        self.instructions = 0
        # Program-order index for ordering-relevant instructions (memory
        # ops and fences).  Assigned at issue and carried on every
        # recorded access so the verification layer can reconstruct each
        # core's program-order stream from the (apply-ordered) log.
        # Monotonically increasing; re-execution after a rollback takes
        # fresh indices, so committed records are po-sorted per core.
        self._po = 0
        self.sb = StoreBuffer(config.store_buffer_entries,
                              coalescing=config.store_buffer_coalescing)
        self.spec: Optional[InvisiFenceController] = (
            InvisiFenceController(spec_config, stats, core_id)
            if spec_config.enabled else None
        )
        # Incremental checkpointing: while speculating, every register
        # write first journals (reg, old_value) here; rollback replays
        # the journal in reverse instead of restoring a full register
        # snapshot, and entering speculation copies nothing.  The list
        # object is stable (cleared in place) so decoded closures may
        # capture it.
        self._reg_undo: list = []
        self.l1.violation_listener = self._on_violation

        self.commit_arbiter = commit_arbiter
        self._commit_requested = False
        self._draining = False
        # (predicate, cause, started_at, action) -- at most one pending wait.
        self._pending_wait: Optional[Tuple[Callable[[], bool], StallCause, int, Callable[[], None]]] = None
        self._rolling_back = False
        self.finish_cycle: Optional[int] = None

        # Node-fault (chaos) state: 0 = live, 1 = paused, 2 = crashed.
        # Plain attributes on every core (cheap to initialise), but the
        # dispatch guard that reads them is only installed on cores named
        # by an active NodeFaultPlan (see enable_node_faults) -- cores
        # outside a plan execute the exact same closures as before, so
        # fault-free runs stay byte-identical.
        self.nf_state = 0
        self.nf_crashed_at: Optional[int] = None
        self.nf_paused_at: Optional[int] = None
        self.nf_resume_at: Optional[int] = None
        self._nf_guarded = False
        # While paused, the one deferred dispatch: (handler, instr, epoch).
        self._nf_stash: Optional[Tuple[Callable, Instruction, int]] = None
        self._nf_stat_deferred = None  # shared counter, set at enable time

        prefix = f"core.{core_id}"
        self.stat_instructions = stats.counter(f"{prefix}.instructions")
        self.stat_busy = stats.counter(f"{prefix}.busy_cycles")
        self.stat_stall = {
            cause: stats.counter(f"{prefix}.stall.{cause.value}")
            for cause in StallCause
        }
        self.stat_forwards = stats.counter(f"{prefix}.store_forwards")
        self.stat_drained = stats.counter(f"{prefix}.stores_drained")
        self.stat_ordering_avoided = stats.counter(f"{prefix}.ordering_stalls_avoided")
        self.stat_sb_occupancy = stats.histogram(f"{prefix}.sb_occupancy")

        # Hot-path caches (resolved once; attribute walks cost on every event).
        self._schedule_fast = sim.schedule_fast
        self._regfile = self.regs._regs  # raw list; restore() copies in place
        self._sb_entries = self.sb._entries  # raw deque; truthy iff non-empty
        self._alu_latency = config.alu_latency
        self._spec_continuous = (
            self.spec is not None
            and spec_config.mode is SpeculationMode.CONTINUOUS
        )
        self._spec_note = (self.spec.note_instruction
                           if self.spec is not None else None)
        # Policies are stateless: their per-class answers are constants,
        # cached here so memory ops pay attribute reads, not method calls.
        self._load_needs_drain = self.policy.load_requires_drain()
        self._store_needs_drain = self.policy.store_requires_drain()
        self._atomic_needs_drain = self.policy.atomic_requires_drain()
        self._allows_forwarding = self.policy.allows_store_forwarding
        self._stat_mem_stall = self.stat_stall[StallCause.MEMORY]
        # In-order core: at most one load/RMW is outstanding (its
        # callback schedules the next instruction) and a squashed
        # request's callback never fires, so the pending access's
        # operands live here instead of in a per-access partial().
        # Loads and RMWs share the slots -- they can never overlap.
        self._mem_instr: Optional[Instruction] = None
        self._mem_issued_at = 0
        self._load_done_h = self._load_done
        self._rmw_done_h = self._rmw_done
        if sim.fastpath:
            if self.spec is None:
                # Non-speculating fast-path core: load completion inlines
                # retirement (_load_done_fast), and the L1's request-free
                # read specialisation dispatches straight into it.
                self._load_done_h = self._load_done_fast
                self.l1._read_callback = self._load_done_fast
            else:
                # Speculation-capable core: the request-free read path is
                # used only for loads issued OUTSIDE an active episode
                # (see _make_load: episodes cannot begin while an
                # in-order core is stalled on its one outstanding load,
                # so issue-time inactivity holds through completion).
                # Its miss path completes through the generic _load_done,
                # whose active-episode journaling check is then vacuous.
                self.l1._read_callback = self._load_done
        # Same idea for the store-buffer drain (one in flight, gated by
        # _draining): the head entry lives here, not in a per-drain lambda.
        self._drain_entry = None
        self._drain_done_h = self._drain_done_head
        # Decode once at program load: every instruction slot resolves to
        # its exec callable, so _step is a list index + call instead of
        # an elif chain over Opcode properties.  (A list, not a tuple:
        # non-speculating cores' closures capture it for direct
        # next-instruction dispatch, and it must be the same object.)
        # Prebuilt per-slot (handler, (instr,)) bucket entries: successor
        # appends reuse these immutable tuples instead of allocating two
        # tuples per dispatched instruction.  Created empty here so the
        # decode/fusion closures can capture the list object; filled
        # below once the decoded table is final.
        self._entries: list = []
        # Fused L1-read-hit + load-retirement event (see _make_load_hit);
        # built before decode so _make_load closures can capture it.
        self._load_hit_h: Optional[Callable] = (
            _make_load_hit(self) if sim.fastpath else None)
        self._decoded: List[Tuple[Callable, Instruction]] = \
            self._decode_program(program)
        # Trace compilation (superblock fusion): only on the real
        # fast-path engine (the compat engine stays per-instruction so
        # the determinism proof has a reference), and never in
        # CONTINUOUS speculation -- that mode is active at essentially
        # every instruction boundary, so fusion would always fall back
        # and only add a guard to the hot path.  Coverage counters are
        # plain attributes (surfaced via CoreSummary), NOT StatsRegistry
        # counters: fusion must not change the fingerprinted stats
        # snapshot.
        self.superblocks = bool(
            superblocks and sim.fastpath
            and spec_config.mode is not SpeculationMode.CONTINUOUS)
        self.fused_instructions = 0
        self.fused_blocks = 0
        if self.superblocks:
            self._install_superblocks(program)
        self._entries.extend((h, (ins,)) for h, ins in self._decoded)
        if self.spec is None:
            # No speculation: the epoch never advances and a halted core
            # schedules nothing, so the _step trampoline's guards are
            # dead weight.  Retirement schedules the next instruction's
            # handler directly (see _finish_direct and _make_alu).  On
            # the real fast-path engine the schedule itself is inlined
            # too (a bucket append instead of a schedule_fast call).
            self._finish = (self._finish_direct_fast if sim.fastpath
                            else self._finish_direct)  # type: ignore[method-assign]
        elif sim.fastpath:
            # Speculation-capable core on the real fast-path engine:
            # retirement still goes through the _step trampoline (epoch
            # guard, commit housekeeping), but the schedule itself is a
            # plain calendar-bucket append.
            self._finish = self._finish_fast  # type: ignore[method-assign]

    # -------------------------------------------------------------- decode

    def _decode_program(self, program: Program) -> List[Tuple[Callable, Instruction]]:
        """Resolve every instruction slot to its exec callable, once.

        ALU and branch slots -- the dominant dynamic instruction classes
        -- compile to specialised closures with the operand registers,
        semantic evaluator, latency and branch target pre-resolved (see
        :func:`_make_alu` / :func:`_make_branch`).  All other opcodes
        bind their ``_exec_*`` handler from the dispatch table.
        Dispatching an instruction is then one list index and one call,
        with no per-step Opcode classification.
        """
        dispatch = _exec_dispatch()
        decoded: List[Tuple[Callable, Instruction]] = []
        for index, instr in enumerate(program.instructions):
            op = instr.op
            if op in _ALU:
                decoded.append((_make_alu(self, instr, index, decoded), instr))
            elif op in _BRANCHES:
                if instr.target is None:
                    raise SimulationError(
                        f"core {self.core_id}: unresolved branch at load: {instr}")
                decoded.append((_make_branch(self, instr, index, decoded), instr))
            elif op is Opcode.LOAD and self.sim.fastpath:
                decoded.append((_make_load(self, instr), instr))
            else:
                decoded.append((dispatch[op].__get__(self), instr))
        return decoded

    def _install_superblocks(self, program: Program) -> None:
        """Overlay fused closures onto superblock head slots.

        Only the *head* slot of each span is replaced; interior slots
        keep their per-instruction closures.  For non-speculating cores
        the interiors are unreachable (no slot after the head is a
        branch target); speculation-capable cores execute them when the
        fused closure falls back to per-instruction dispatch during an
        active episode (see :func:`_make_superblock`).
        """
        decoded = self._decoded
        instructions = program.instructions
        for span in superblock_spans(program):
            fused = _make_superblock(self, span, decoded)
            decoded[span.start] = (fused, instructions[span.start])

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Schedule the first instruction."""
        self._schedule_step(0)

    # ---------------------------------------------------------- node faults

    def enable_node_faults(self) -> None:
        """Install the crash/pause dispatch guard on every instruction slot.

        Every dispatch path -- the ``_step`` trampoline, the direct
        successor appends of non-speculating cores, fused superblocks and
        their relays, the load-completion retirement paths -- fetches the
        next handler from the shared ``_decoded``/``_entries`` list
        objects *at dispatch time*, so wrapping the handlers in place
        gates all of them at instruction boundaries.  Only cores named by
        an active :class:`~repro.faults.nodeplan.NodeFaultPlan` are
        wrapped; every other core keeps its original closures.
        """
        if self._nf_guarded:
            return
        self._nf_guarded = True
        decoded = self._decoded
        entries = self._entries
        for index, (handler, instr) in enumerate(decoded):
            guarded = _make_node_guard(self, handler)
            decoded[index] = (guarded, instr)
            entries[index] = (guarded, (instr,))

    def nf_crash(self) -> bool:
        """Fail-stop this core at the next instruction boundary.

        The core stops dispatching permanently.  Its store buffer is
        frozen -- buffered-but-undrained stores are lost -- while the L1
        stays attached to the coherence protocol, so survivors can still
        read whatever this node made architecturally visible.  An active
        speculative episode is aborted first (registers roll back, the
        L1 relinquishes SW ownership): a dead node's *uncommitted*
        speculative state must never become visible to the survivors.

        Returns False (no-op) if the core already halted or crashed.
        """
        if self.halted or self.nf_state == 2:
            return False
        self.nf_state = 2
        self.nf_crashed_at = self.sim.now
        self._nf_stash = None
        if self.spec is not None and self.spec.active:
            self.l1.rollback_speculation()
            self._on_violation(ViolationReason.EXTERNAL_INVALIDATION, 0)
        # The instruction blocked on a wait (SB slot, drain, HALT) dies
        # with the core; without this the next SB event would run its
        # action post-mortem.
        self._pending_wait = None
        # Freeze the store buffer: the instance attribute shadows the
        # class method, so nothing new issues.  A drain already in
        # flight completes (the line was on the wire when the node died).
        self._maybe_drain = _nf_drain_frozen.__get__(self)  # type: ignore[method-assign]
        return True

    def nf_pause(self, resume_at: int) -> bool:
        """Suspend instruction dispatch until :meth:`nf_resume`.

        In-flight memory operations and store-buffer drain continue --
        the node is stalled (think GC pause or preemption), not dead.
        Returns False (no-op) if the core already halted, paused, or
        crashed.
        """
        if self.halted or self.nf_state != 0:
            return False
        self.nf_state = 1
        self.nf_paused_at = self.sim.now
        self.nf_resume_at = resume_at
        return True

    def nf_resume(self) -> bool:
        """End a pause; replay the deferred dispatch, if any.

        The stash carries the epoch it was captured under: a rollback
        during the pause bumps the epoch and re-steps on its own, making
        a stale stash dead (replaying it would double-dispatch).
        """
        if self.nf_state != 1:
            return False
        self.nf_state = 0
        self.nf_resume_at = None
        stash = self._nf_stash
        self._nf_stash = None
        if stash is not None and stash[2] == self.epoch:
            self._schedule_fast(0, stash[0], stash[1])
        return True

    @property
    def speculating(self) -> bool:
        return self.spec is not None and self.spec.active

    def _guard(self) -> Callable[[], bool]:
        """An epoch guard closing over the current epoch."""
        epoch = self.epoch
        return lambda: self.epoch == epoch

    def _schedule_step(self, delay: int) -> None:
        # Step events are never cancelled (rollbacks neutralise them via
        # the epoch guard), so they ride the allocation-free fast path.
        self._schedule_fast(delay, self._step, self.epoch)

    # ------------------------------------------------------------ stepping

    def _step(self, epoch: int) -> None:
        if epoch != self.epoch or self.halted or self._rolling_back:
            return
        spec = self.spec
        if spec is not None:
            # Continuous-mode housekeeping at the instruction boundary:
            # commit a matured episode, then immediately re-checkpoint.
            # (Guarded so the common idle/on-demand case costs two plain
            # attribute reads, not two policy calls.)
            if spec.active and spec.should_commit(self.sb.empty, at_drain=False):
                self._do_commit()
            if self._spec_continuous and spec.wants_continuous_entry():
                self._enter_speculation(SpecTrigger.CONTINUOUS)
        handler, instr = self._decoded[self.pc]
        handler(instr)

    def _finish(self, busy_cycles: int, next_pc: int) -> None:
        """Complete the current instruction and schedule the next."""
        self.stat_busy.value += busy_cycles
        self.stat_instructions.value += 1
        self.instructions += 1
        if self._spec_note is not None:
            self._spec_note()
        self.pc = next_pc
        self._schedule_fast(busy_cycles, self._step, self.epoch)

    def _finish_fast(self, busy_cycles: int, next_pc: int) -> None:
        """:meth:`_finish` with the schedule_fast body inlined (real
        fast-path engine only; see Simulator.fastpath)."""
        self.stat_busy.value += busy_cycles
        self.stat_instructions.value += 1
        self.instructions += 1
        if self._spec_note is not None:
            self._spec_note()
        self.pc = next_pc
        sim = self.sim
        time = sim._now + busy_cycles
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(self._step, (self.epoch,))]
            _heappush(sim._times, time)
        else:
            bucket.append((self._step, (self.epoch,)))
        sim._pending += 1

    def _finish_direct(self, busy_cycles: int, next_pc: int) -> None:
        """_finish for non-speculating cores: schedule the next
        instruction's handler itself, skipping the _step trampoline
        (its epoch/halt/speculation guards can never fire here)."""
        self.stat_busy.value += busy_cycles
        self.stat_instructions.value += 1
        self.instructions += 1
        self.pc = next_pc
        handler, instr = self._decoded[next_pc]
        self._schedule_fast(busy_cycles, handler, instr)

    def _finish_direct_fast(self, busy_cycles: int, next_pc: int) -> None:
        """:meth:`_finish_direct` with the schedule_fast body inlined --
        used only on the real fast-path engine (``sim.fastpath``), where
        the schedule is a plain calendar-bucket append."""
        self.stat_busy.value += busy_cycles
        self.stat_instructions.value += 1
        self.instructions += 1
        self.pc = next_pc
        entry = self._entries[next_pc]
        sim = self.sim
        time = sim._now + busy_cycles
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [entry]
            _heappush(sim._times, time)
        else:
            bucket.append(entry)
        sim._pending += 1

    # ------------------------------------------------------- waits & drain

    def _wait_for(self, predicate: Callable[[], bool], cause: StallCause,
                  action: Callable[[], None]) -> None:
        """Block the core until ``predicate`` holds, then run ``action``.

        Predicates become true only through store-buffer drain events, so
        re-checking on each drain suffices.  A rollback cancels the wait
        (the waiting instruction was speculative and will re-execute).
        """
        if predicate():
            action()
            return
        if self._pending_wait is not None:
            raise SimulationError(f"core {self.core_id}: nested wait")
        self._pending_wait = (predicate, cause, self.sim._now, action)

    def _on_sb_event(self) -> None:
        """A store drained: check the commit condition, then wake waiters.

        Commit must run first: a HALT waiting for ``not speculating``
        would otherwise never see its predicate become true.
        """
        if (self.spec is not None
                and self.spec.should_commit(self.sb.empty, at_drain=True)):
            self._do_commit()
        if self._pending_wait is not None:
            predicate, cause, started_at, action = self._pending_wait
            if predicate():
                self._pending_wait = None
                self.stat_stall[cause].increment(self.sim._now - started_at)
                action()

    def _maybe_drain(self) -> None:
        if self._draining or self.sb.empty:
            return
        entry = self.sb.head()
        entry.in_flight = True
        self._draining = True
        if self.spec is None:
            # No speculation: entries are never speculative, the epoch
            # never advances; skip the guard and flag closures entirely
            # (and the per-drain lambda: one drain in flight at a time).
            self._drain_entry = entry
            self.l1.write(entry.addr, entry.value,
                          callback=self._drain_done_h, po=entry.po)
        else:
            guard = self._guard() if entry.speculative else None
            # The speculation flag is re-read at L1 apply time: a commit
            # that races with this in-flight drain clears the entry's
            # flag, and the write must then land non-speculatively.
            self.l1.write(entry.addr, entry.value,
                          callback=lambda e=entry: self._drain_done(e),
                          guard=guard, speculative=lambda e=entry: e.speculative,
                          po=entry.po)
        self._prefetch_queued_stores(entry)

    def _prefetch_queued_stores(self, head) -> None:
        """Overlap queued stores' coherence misses (exclusive prefetch).

        Write *application* stays FIFO; only permission acquisition is
        hoisted, which is TSO-safe and mirrors real write buffers.
        """
        depth = self.config.store_prefetch_depth
        if depth == 0:
            return
        head_block = self.l1.config.block_of(head.addr)
        seen = {head_block}
        for entry in self.sb:
            if len(seen) > depth:
                break
            block = self.l1.config.block_of(entry.addr)
            if block not in seen:
                seen.add(block)
                self.l1.prefetch_write(entry.addr)

    def _drain_done_head(self) -> None:
        self._drain_done(self._drain_entry)

    def _drain_done(self, entry) -> None:
        self.sb.pop_head(entry)
        self.stat_drained.increment()
        self._draining = False
        self._maybe_drain()
        self._on_sb_event()

    # ------------------------------------------------------------ nop
    # (ALU and branch slots compile to closures in _decode_program.)

    def _exec_nop(self, instr: Instruction) -> None:
        self._finish(1, self.pc + 1)

    # --------------------------------------------------------------- loads

    def _exec_load(self, instr: Instruction) -> None:
        addr = (self._regfile[instr.rs] + instr.imm) & _WORD_MASK
        po = self._po = self._po + 1
        self._exec_load_ordered(instr, addr, po)

    def _exec_load_ordered(self, instr: Instruction, addr: int, po: int) -> None:
        """Ordering checks + issue for a load whose addr/po are assigned.

        Split from :meth:`_exec_load` so the decode-time load closure
        (see :func:`_make_load`) can delegate here when the store buffer
        is non-empty -- the only case with drain/forwarding concerns.
        """
        spec = self.spec
        if (self._load_needs_drain and self._sb_entries
                and (spec is None or not spec.active)):
            if self._try_speculate(SpecTrigger.SC_ORDER):
                self._issue_load(instr, addr, po)
                return
            self._wait_for(lambda: self.sb.empty, StallCause.SC_ORDER,
                           lambda: self._issue_load(instr, addr, po))
            return
        self._issue_load(instr, addr, po)

    def _issue_load(self, instr: Instruction, addr: int, po: int = -1) -> None:
        # SC disables forwarding only because its loads wait for the
        # buffer to drain (the L1 value then equals the store's).  A
        # *speculative* SC load skips that wait, so it must forward --
        # otherwise a same-address load would read the pre-store value
        # and no violation would ever flag it (our own drain triggers no
        # invalidation).
        if self._sb_entries and (self._allows_forwarding or self.speculating):
            forwarded = self.sb.forward_value(addr)
            if forwarded is not None:
                self.stat_forwards.increment()
                if instr.rd:
                    if self.speculating:
                        self._reg_undo.append((instr.rd, self._regfile[instr.rd]))
                    self._regfile[instr.rd] = forwarded & _WORD_MASK
                if self.speculating:
                    # A speculative load that forwards never touches the
                    # L1, but it still belongs to the episode's read set:
                    # the episode may have reordered this load above a
                    # drain point (an elided fence, an SC load's wait), so
                    # a remote write to the block before commit makes the
                    # forwarded value order-visible.  Mark the block SR --
                    # pending until the forwarded-from store's drain makes
                    # it resident -- so such a write aborts the episode.
                    self.l1.note_speculative_forward(addr)
                listener = self.l1.forward_listener
                if listener is not None:
                    listener(addr, forwarded, self.speculating, po)
                self._finish(1, self.pc + 1)
                return
        self._mem_instr = instr
        self._mem_issued_at = self.sim._now
        # `speculative` is a callable evaluated when the L1 applies the
        # access: if the episode commits while this load is in flight, the
        # load must not leave a stale SR bit behind.  With speculation
        # disabled the epoch never advances and nothing is speculative,
        # so both closures are elided.
        if self.spec is None:
            self.l1.read(addr, callback=self._load_done_h, po=po)
            return
        self.l1.read(
            addr,
            callback=self._load_done_h,
            guard=self._guard(),
            speculative=lambda: self.speculating,
            po=po,
        )

    def _load_done(self, value: int) -> None:
        instr = self._mem_instr
        if instr.rd:  # r0 stays hardwired to zero
            spec = self.spec
            if spec is not None and spec.active:
                self._reg_undo.append((instr.rd, self._regfile[instr.rd]))
            self._regfile[instr.rd] = value & _WORD_MASK
        self._stat_mem_stall.value += self.sim._now - self._mem_issued_at
        self._finish(1, self.pc + 1)

    def _load_done_fast(self, value: int) -> None:
        """:meth:`_load_done` for non-speculating fast-path cores, with
        the ``_finish_direct_fast`` body inlined (one fewer call on the
        dominant completion path; byte-identical effects)."""
        instr = self._mem_instr
        if instr.rd:  # r0 stays hardwired to zero
            self._regfile[instr.rd] = value & _WORD_MASK
        sim = self.sim
        self._stat_mem_stall.value += sim._now - self._mem_issued_at
        self.stat_busy.value += 1
        self.stat_instructions.value += 1
        self.instructions += 1
        pc = self.pc + 1
        self.pc = pc
        entry = self._entries[pc]
        time = sim._now + 1
        buckets = sim._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [entry]
            _heappush(sim._times, time)
        else:
            bucket.append(entry)
        sim._pending += 1

    # -------------------------------------------------------------- stores

    def _exec_store(self, instr: Instruction) -> None:
        addr = (self._regfile[instr.rs] + instr.imm) & _WORD_MASK
        value = self._regfile[instr.rt]
        po = self._po = self._po + 1
        spec = self.spec
        if (self._store_needs_drain and self._sb_entries
                and (spec is None or not spec.active)):
            if self._try_speculate(SpecTrigger.SC_ORDER):
                self._issue_store(addr, value, po)
                return
            self._wait_for(lambda: self.sb.empty, StallCause.SC_ORDER,
                           lambda: self._issue_store(addr, value, po))
            return
        self._issue_store(addr, value, po)

    def _issue_store(self, addr: int, value: int, po: int = -1) -> None:
        if self.sb.full:
            self._wait_for(lambda: not self.sb.full, StallCause.SB_FULL,
                           lambda: self._issue_store(addr, value, po))
            return
        self.sb.enqueue(addr, value, speculative=self.speculating,
                        now=self.sim._now, po=po)
        if self.speculating:
            self.spec.note_speculative_store()
        self.stat_sb_occupancy.add(self.sb.occupancy)
        self._maybe_drain()
        self._finish(1, self.pc + 1)

    # ------------------------------------------------------------- atomics

    def _exec_atomic(self, instr: Instruction) -> None:
        addr = (self._regfile[instr.rs] + instr.imm) & _WORD_MASK
        po = self._po = self._po + 1
        if self.sb.contains(addr):
            # True same-address dependence: the RMW must observe the
            # buffered store; drain it first (no RMW forwarding).  Not an
            # ordering stall -- no speculation mechanism can remove it.
            self._wait_for(lambda: not self.sb.contains(addr), StallCause.ATOMIC_DEP,
                           lambda: self._exec_atomic(instr))
            return
        spec = self.spec
        if (self._atomic_needs_drain and self._sb_entries
                and (spec is None or not spec.active)):
            if self._try_speculate(SpecTrigger.ATOMIC):
                self._issue_rmw(instr, addr, po)
                return
            self._wait_for(lambda: self.sb.empty, StallCause.ATOMIC,
                           lambda: self._issue_rmw(instr, addr, po))
            return
        self._issue_rmw(instr, addr, po)

    def _issue_rmw(self, instr: Instruction, addr: int, po: int = -1) -> None:
        rt_val = self.regs.read(instr.rt)
        ru_val = self.regs.read(instr.ru)

        def modify(old: int):
            return semantics.atomic_result(instr, old, rt_val, ru_val)

        self._mem_instr = instr
        self._mem_issued_at = self.sim._now
        if self.spec is None:
            self.l1.rmw(addr, modify, callback=self._rmw_done_h, po=po)
            return
        self.l1.rmw(
            addr, modify,
            callback=self._rmw_done_h,
            guard=self._guard(),
            speculative=lambda: self.speculating,
            po=po,
        )

    def _rmw_done(self, loaded: int) -> None:
        instr = self._mem_instr
        if instr.rd:  # r0 stays hardwired to zero
            spec = self.spec
            if spec is not None and spec.active:
                self._reg_undo.append((instr.rd, self._regfile[instr.rd]))
            self._regfile[instr.rd] = loaded & _WORD_MASK
        self._stat_mem_stall.value += self.sim._now - self._mem_issued_at
        self._finish(self.config.atomic_latency, self.pc + 1)

    # -------------------------------------------------------------- fences

    def _exec_fence(self, instr: Instruction) -> None:
        assert instr.fence is not None
        po = self._po = self._po + 1
        needs_drain = (self.policy.fence_requires_drain(instr.fence)
                       and not self.sb.empty)
        if not needs_drain:
            self._retire_fence(instr.fence, po)
            return
        if self.speculating:
            # Already speculating: the fence is speculatively satisfied;
            # the commit condition (buffer drained) enforces it for real.
            self.stat_ordering_avoided.increment()
            self._retire_fence(instr.fence, po)
            return
        if self._try_speculate(SpecTrigger.FENCE):
            self._retire_fence(instr.fence, po)
            return
        self._wait_for(lambda: self.sb.empty, StallCause.FENCE,
                       lambda: self._retire_fence(instr.fence, po))

    def _retire_fence(self, kind, po: int) -> None:
        """Complete a fence, recording it in the program-order stream.

        A fence retired inside a speculative episode is recorded as
        speculative: it is discarded with the episode on rollback (the
        re-executed fence takes a fresh program-order index).
        """
        listener = self.l1.fence_listener
        if listener is not None:
            listener(kind, po, self.speculating)
        self._finish(1, self.pc + 1)

    # ---------------------------------------------------------------- halt

    def _exec_halt(self, instr: Optional[Instruction] = None) -> None:
        if self.speculating and self.sb.empty:
            # Nothing left to drain; commit immediately so HALT can retire.
            self._do_commit()
        if self.sb.empty and not self.speculating:
            self._halt()
            return
        self._wait_for(lambda: self.sb.empty and not self.speculating,
                       StallCause.HALT_DRAIN, self._halt)

    def _halt(self) -> None:
        self.halted = True
        self.finish_cycle = self.sim.now
        if self.on_halt is not None:
            self.on_halt(self)

    # ---------------------------------------------------------- speculation

    def _try_speculate(self, trigger: SpecTrigger) -> bool:
        """Enter speculation instead of stalling, if allowed."""
        if self.spec is None or not self.spec.can_speculate():
            return False
        self._enter_speculation(trigger)
        self.stat_ordering_avoided.increment()
        return True

    def _enter_speculation(self, trigger: SpecTrigger) -> None:
        # Incremental checkpoint: no register copy -- the journal starts
        # empty and rollback replays it (see _finish_rollback).
        del self._reg_undo[:]
        checkpoint = Checkpoint(None, self.pc, self.sim.now, self.instructions)
        self.spec.enter(checkpoint, trigger)

    def _do_commit(self) -> None:
        if self.commit_arbiter is not None:
            # Chunk-baseline: the commit must win global arbitration first.
            if self._commit_requested:
                return
            self._commit_requested = True
            epoch = self.epoch
            self.commit_arbiter.request(self.core_id,
                                        lambda: self._commit_granted(epoch))
            return
        self._commit_now()

    def _commit_granted(self, epoch: int) -> None:
        self._commit_requested = False
        # A violation may have killed the episode while the request queued.
        if epoch != self.epoch or self.spec is None or not self.spec.active:
            return
        self._commit_now()
        # The commit may unblock a HALT (or other drain waiter) that was
        # waiting on `not speculating`.
        if self._pending_wait is not None:
            predicate, cause, started_at, action = self._pending_wait
            if predicate():
                self._pending_wait = None
                self.stat_stall[cause].increment(self.sim._now - started_at)
                action()

    def _commit_now(self) -> None:
        sr, sw = self.l1.speculative_footprint()
        self.spec.commit(self.sim.now, sr + sw)
        self.l1.commit_speculation()
        self.sb.commit_speculative()
        del self._reg_undo[:]  # the journaled writes became architectural

    def _on_violation(self, reason: ViolationReason, addr: int) -> None:
        """Called synchronously by the L1 after its own state rollback."""
        if self.spec is None or not self.spec.active:
            raise SimulationError(
                f"core {self.core_id}: violation ({reason.value}) without "
                "active speculation"
            )
        checkpoint = self.spec.on_violation(reason, self.sim.now)
        self.epoch += 1  # invalidates every in-flight speculative continuation
        head = self.sb.head()
        if head is not None and head.in_flight and head.speculative:
            self._draining = False  # its L1 callback is epoch-guarded away
        self.sb.squash_speculative()
        self._pending_wait = None  # the waiting instruction was speculative
        self._rolling_back = True
        started_at = self.sim.now
        self.sim.schedule(self.spec_config.rollback_penalty,
                          self._finish_rollback, checkpoint, started_at)

    def _finish_rollback(self, checkpoint: Checkpoint, started_at: int) -> None:
        self.stat_stall[StallCause.ROLLBACK].increment(self.sim.now - started_at)
        if checkpoint.regs is None:
            # Replay the undo log newest-first.  A register written twice
            # is journaled twice; the reverse replay applies its oldest
            # (pre-checkpoint) value last.
            regs = self._regfile
            for reg, old in reversed(self._reg_undo):
                regs[reg] = old
            del self._reg_undo[:]
        else:
            # Full-snapshot checkpoint (kept for direct constructions).
            self.regs.restore(checkpoint.regs)
        self.pc = checkpoint.pc
        self._rolling_back = False
        self._maybe_drain()  # non-speculative entries keep draining
        self._schedule_step(0)

    # ------------------------------------------------------------- queries

    def read_reg(self, index: int) -> int:
        return self.regs.read(index)

    def ordering_stall_cycles(self) -> int:
        """Total ordering-induced stall cycles (E1's headline quantity)."""
        return sum(self.stat_stall[c].value for c in StallCause if c.is_ordering)


def _make_alu(core: Core, instr: Instruction, index: int,
              decoded: list) -> Callable:
    """Compile one ALU slot to a closure over the raw register list.

    The evaluators in ``semantics._ALU_EVAL`` produce already-masked
    words given masked inputs, and slot 0 of the register list is never
    written, so the closure can index the list directly -- no bounds
    check, no re-mask, no method call.  ``RegisterFile.restore`` copies
    in place, keeping the captured list valid across rollbacks.

    The closure belongs to program slot ``index``, so the fall-through
    pc is a decode-time constant, and :meth:`Core._finish` is inlined
    bodily -- retiring an ALU instruction is a single Python call.

    ``decoded`` is the (still-filling) program decode list; the
    non-speculating variants capture it and schedule the *next
    instruction's handler* directly instead of the _step trampoline --
    with no speculation there is no epoch to guard and no commit
    housekeeping at the boundary, so the trampoline's checks are dead.
    """
    evaluate = semantics._ALU_EVAL[instr.op]
    latency = instr.imm if instr.op is Opcode.EXEC else core._alu_latency
    regs = core.regs._regs
    if core.spec is None:
        # The schedule_fast body is inlined as well when the engine
        # really runs the allocation-free path (a calendar-bucket append
        # -- see Simulator.fastpath); the compat engine keeps the call
        # so its Event-allocating shadow is exercised.
        if instr.rd:
            def exec_alu(instr, _regs=regs, _eval=evaluate, _rd=instr.rd,
                         _rs=instr.rs, _rt=instr.rt, _lat=latency,
                         _next=index + 1, _busy=core.stat_busy,
                         _icnt=core.stat_instructions,
                         _sched=core._schedule_fast, _dec=decoded,
                         _core=core, _sim=core.sim, _fp=core.sim.fastpath,
                         _buckets=core.sim._buckets, _times=core.sim._times,
                         _push=_heappush):
                _regs[_rd] = _eval(instr, _regs[_rs], _regs[_rt])
                # Inlined _finish_direct(_lat, _next):
                _busy.value += _lat
                _icnt.value += 1
                _core.instructions += 1
                _core.pc = _next
                h, ins = _dec[_next]
                if _fp:
                    time = _sim._now + _lat
                    b = _buckets.get(time)
                    if b is None:
                        _buckets[time] = [(h, (ins,))]
                        _push(_times, time)
                    else:
                        b.append((h, (ins,)))
                    _sim._pending += 1
                else:
                    _sched(_lat, h, ins)
        else:
            def exec_alu(instr, _regs=regs, _eval=evaluate,
                         _rs=instr.rs, _rt=instr.rt, _lat=latency,
                         _next=index + 1, _busy=core.stat_busy,
                         _icnt=core.stat_instructions,
                         _sched=core._schedule_fast, _dec=decoded,
                         _core=core, _sim=core.sim, _fp=core.sim.fastpath,
                         _buckets=core.sim._buckets, _times=core.sim._times,
                         _push=_heappush):
                _eval(instr, _regs[_rs], _regs[_rt])  # result discarded (r0)
                _busy.value += _lat
                _icnt.value += 1
                _core.instructions += 1
                _core.pc = _next
                h, ins = _dec[_next]
                if _fp:
                    time = _sim._now + _lat
                    b = _buckets.get(time)
                    if b is None:
                        _buckets[time] = [(h, (ins,))]
                        _push(_times, time)
                    else:
                        b.append((h, (ins,)))
                    _sim._pending += 1
                else:
                    _sched(_lat, h, ins)
        return exec_alu
    if instr.rd and core.spec is not None:
        # Speculation-capable core: journal the overwritten value while
        # an episode is active so rollback can undo it incrementally.
        def exec_alu(instr, _regs=regs, _eval=evaluate, _rd=instr.rd,
                     _rs=instr.rs, _rt=instr.rt, _lat=latency,
                     _next=index + 1, _busy=core.stat_busy,
                     _icnt=core.stat_instructions, _note=core._spec_note,
                     _sched=core._schedule_fast, _step=core._step,
                     _core=core, _spec=core.spec, _undo=core._reg_undo,
                     _sim=core.sim, _fp=core.sim.fastpath,
                     _buckets=core.sim._buckets, _times=core.sim._times,
                     _push=_heappush):
            if _spec.active:
                _undo.append((_rd, _regs[_rd]))
            _regs[_rd] = _eval(instr, _regs[_rs], _regs[_rt])
            # Inlined _finish(_lat, _next):
            _busy.value += _lat
            _icnt.value += 1
            _core.instructions += 1
            if _note is not None:
                _note()
            _core.pc = _next
            if _fp:
                time = _sim._now + _lat
                b = _buckets.get(time)
                if b is None:
                    _buckets[time] = [(_step, (_core.epoch,))]
                    _push(_times, time)
                else:
                    b.append((_step, (_core.epoch,)))
                _sim._pending += 1
            else:
                _sched(_lat, _step, _core.epoch)
    elif instr.rd:
        def exec_alu(instr, _regs=regs, _eval=evaluate, _rd=instr.rd,
                     _rs=instr.rs, _rt=instr.rt, _lat=latency,
                     _next=index + 1, _busy=core.stat_busy,
                     _icnt=core.stat_instructions, _note=core._spec_note,
                     _sched=core._schedule_fast, _step=core._step,
                     _core=core):
            _regs[_rd] = _eval(instr, _regs[_rs], _regs[_rt])
            # Inlined _finish(_lat, _next):
            _busy.value += _lat
            _icnt.value += 1
            _core.instructions += 1
            if _note is not None:
                _note()
            _core.pc = _next
            _sched(_lat, _step, _core.epoch)
    else:
        def exec_alu(instr, _regs=regs, _eval=evaluate,
                     _rs=instr.rs, _rt=instr.rt, _lat=latency,
                     _next=index + 1, _busy=core.stat_busy,
                     _icnt=core.stat_instructions, _note=core._spec_note,
                     _sched=core._schedule_fast, _step=core._step,
                     _core=core, _sim=core.sim, _fp=core.sim.fastpath,
                     _buckets=core.sim._buckets, _times=core.sim._times,
                     _push=_heappush):
            _eval(instr, _regs[_rs], _regs[_rt])  # result discarded (r0)
            _busy.value += _lat
            _icnt.value += 1
            _core.instructions += 1
            if _note is not None:
                _note()
            _core.pc = _next
            if _fp:
                time = _sim._now + _lat
                b = _buckets.get(time)
                if b is None:
                    _buckets[time] = [(_step, (_core.epoch,))]
                    _push(_times, time)
                else:
                    b.append((_step, (_core.epoch,)))
                _sim._pending += 1
            else:
                _sched(_lat, _step, _core.epoch)
    return exec_alu


def _make_branch(core: Core, instr: Instruction, index: int,
                 decoded: list) -> Callable:
    """Compile one branch slot to a closure (see :func:`_make_alu`)."""
    evaluate = semantics._BRANCH_EVAL[instr.op]
    if core.spec is None:
        def exec_branch(instr, _regs=core.regs._regs, _eval=evaluate,
                        _target=instr.target, _rs=instr.rs, _rt=instr.rt,
                        _next=index + 1, _busy=core.stat_busy,
                        _icnt=core.stat_instructions,
                        _sched=core._schedule_fast, _dec=decoded,
                        _core=core, _sim=core.sim, _fp=core.sim.fastpath,
                        _buckets=core.sim._buckets, _times=core.sim._times,
                        _push=_heappush):
            # Inlined _finish_direct(1, taken ? target : fall-through):
            _busy.value += 1
            _icnt.value += 1
            _core.instructions += 1
            pc = (_target if _eval(instr, _regs[_rs], _regs[_rt])
                  else _next)
            _core.pc = pc
            h, ins = _dec[pc]
            if _fp:
                time = _sim._now + 1
                b = _buckets.get(time)
                if b is None:
                    _buckets[time] = [(h, (ins,))]
                    _push(_times, time)
                else:
                    b.append((h, (ins,)))
                _sim._pending += 1
            else:
                _sched(1, h, ins)
        return exec_branch

    def exec_branch(instr, _regs=core.regs._regs, _eval=evaluate,
                    _target=instr.target, _rs=instr.rs, _rt=instr.rt,
                    _next=index + 1, _busy=core.stat_busy,
                    _icnt=core.stat_instructions, _note=core._spec_note,
                    _sched=core._schedule_fast, _step=core._step,
                    _core=core, _sim=core.sim, _fp=core.sim.fastpath,
                    _buckets=core.sim._buckets, _times=core.sim._times,
                    _push=_heappush):
        # Inlined _finish(1, taken ? target : fall-through):
        _busy.value += 1
        _icnt.value += 1
        _core.instructions += 1
        if _note is not None:
            _note()
        _core.pc = (_target if _eval(instr, _regs[_rs], _regs[_rt])
                    else _next)
        if _fp:
            time = _sim._now + 1
            b = _buckets.get(time)
            if b is None:
                _buckets[time] = [(_step, (_core.epoch,))]
                _push(_times, time)
            else:
                b.append((_step, (_core.epoch,)))
            _sim._pending += 1
        else:
            _sched(1, _step, _core.epoch)
    return exec_branch


def _make_load_hit(core: Core) -> Callable:
    """Fuse the L1 read hit and the load's retirement into one closure.

    For a non-speculating fast-path core, the scheduled L1 access event
    and the completion callback it invokes
    (:meth:`L1Cache._start_read` -> :meth:`Core._load_done_fast`) are
    always this core's own private L1 and this core's own completion --
    both statically known at program load.  This closure is that whole
    event: cache lookup (LRU touch inlined), hit stat, word extract,
    register write, stall/retire stats and the next instruction's
    bucket append, with no intermediate Python calls.  Anything off the
    plain-hit path -- a miss, a non-readable resident block, or an
    attached access listener (verification runs) -- delegates to the
    generic ``_start_read``, whose lookup re-touch is a no-op.

    Speculation-capable cores get the same fusion for loads issued
    outside an active episode (the only ones _make_load routes here):
    an in-order core executes nothing while its one outstanding load is
    in flight, episodes only begin at instruction execution, and
    rollback requires an active episode -- so issue-time inactivity
    holds through completion, the epoch guard could never fire, the
    speculative flag evaluates False, and no register journaling is
    due.  Their completion keeps the _step trampoline (commit
    housekeeping runs at the next boundary, as _finish_fast would).
    """
    l1 = core.l1
    array = l1.array

    if core.spec is None:
        def load_hit(addr, po, _l1=l1, _sets=array._sets, _lru=array._lru,
                     _mru=array._mru, _bmask=array._block_mask,
                     _obits=array._offset_bits, _smask=array._set_mask,
                     _wmask=array._word_mask, _hits=l1.stat_hits,
                     _start_read=l1._start_read_h, _core=core,
                     _regs=core.regs._regs, _stall=core._stat_mem_stall,
                     _busy=core.stat_busy, _icnt=core.stat_instructions,
                     _entries=core._entries, _sim=core.sim,
                     _buckets=core.sim._buckets, _times=core.sim._times,
                     _push=_heappush):
            block_addr = addr & _bmask
            index = (block_addr >> _obits) & _smask
            block = _sets[index].get(block_addr)
            if (block is None or not block.state.readable
                    or _l1.access_listener is not None):
                _start_read(addr, po)
                return
            if _mru[index] != block_addr:
                order = _lru[index]
                del order[block_addr]
                order[block_addr] = None
                _mru[index] = block_addr
            _hits.value += 1
            value = block.data[(addr & _wmask) >> 3]
            # Inlined _load_done_fast(value):
            rd = _core._mem_instr.rd
            if rd:  # r0 stays hardwired to zero
                _regs[rd] = value & _WORD_MASK
            now = _sim._now
            _stall.value += now - _core._mem_issued_at
            _busy.value += 1
            _icnt.value += 1
            _core.instructions += 1
            pc = _core.pc + 1
            _core.pc = pc
            entry = _entries[pc]
            time = now + 1
            b = _buckets.get(time)
            if b is None:
                _buckets[time] = [entry]
                _push(_times, time)
            else:
                b.append(entry)
            _sim._pending += 1

        return load_hit

    def load_hit_spec(addr, po, _l1=l1, _sets=array._sets, _lru=array._lru,
                      _mru=array._mru, _bmask=array._block_mask,
                      _obits=array._offset_bits, _smask=array._set_mask,
                      _wmask=array._word_mask, _hits=l1.stat_hits,
                      _start_read=l1._start_read_h, _core=core,
                      _regs=core.regs._regs, _stall=core._stat_mem_stall,
                      _busy=core.stat_busy, _icnt=core.stat_instructions,
                      _note=core._spec_note, _step=core._step,
                      _sim=core.sim, _buckets=core.sim._buckets,
                      _times=core.sim._times, _push=_heappush):
        block_addr = addr & _bmask
        index = (block_addr >> _obits) & _smask
        block = _sets[index].get(block_addr)
        if (block is None or not block.state.readable
                or _l1.access_listener is not None):
            _start_read(addr, po)
            return
        if _mru[index] != block_addr:
            order = _lru[index]
            del order[block_addr]
            order[block_addr] = None
            _mru[index] = block_addr
        _hits.value += 1
        value = block.data[(addr & _wmask) >> 3]
        # Inlined _load_done(value) + _finish_fast(1, pc + 1); the
        # episode is inactive (see above), so journaling is skipped.
        rd = _core._mem_instr.rd
        if rd:  # r0 stays hardwired to zero
            _regs[rd] = value & _WORD_MASK
        now = _sim._now
        _stall.value += now - _core._mem_issued_at
        _busy.value += 1
        _icnt.value += 1
        _core.instructions += 1
        _note()
        _core.pc = _core.pc + 1
        time = now + 1
        b = _buckets.get(time)
        if b is None:
            _buckets[time] = [(_step, (_core.epoch,))]
            _push(_times, time)
        else:
            b.append((_step, (_core.epoch,)))
        _sim._pending += 1

    return load_hit_spec


def _make_load(core: Core, instr: Instruction) -> Callable:
    """Compile one LOAD slot to a closure (non-speculating cores on the
    real fast-path engine only).

    The common case -- empty store buffer -- skips
    _exec_load/_exec_load_ordered/_issue_load/L1.read entirely: address
    computation, program-order stamp, issue bookkeeping and the L1
    access's bucket append are one closure body, and the scheduled entry
    dispatches the L1's request-free read specialisation
    (:meth:`L1Cache._start_read`), so a load hit allocates only the
    ``(addr, po)`` args tuple.  A non-empty store buffer (drain
    ordering, store forwarding) delegates to the generic path unchanged.

    Speculation-capable cores (any mode) get the same closure with one
    extra fallback condition: an active episode routes to the generic
    path, which journals, guards and marks the read set.  Loads issued
    while inactive stay inactive through completion (see
    :func:`_make_load_hit`), so the request-free path is exact.
    """
    l1 = core.l1
    if core.spec is not None:
        def exec_load_spec(instr, _regs=core.regs._regs, _rs=instr.rs,
                           _imm=instr.imm, _core=core, _sb=core._sb_entries,
                           _spec=core.spec, _sim=core.sim,
                           _load_hit=core._load_hit_h, _lat=l1._hit_latency,
                           _buckets=core.sim._buckets, _times=core.sim._times,
                           _push=_heappush):
            addr = (_regs[_rs] + _imm) & _WORD_MASK
            po = _core._po = _core._po + 1
            if _sb or _spec.active:
                _core._exec_load_ordered(instr, addr, po)
                return
            _core._mem_instr = instr
            _core._mem_issued_at = _sim._now
            time = _sim._now + _lat
            b = _buckets.get(time)
            if b is None:
                _buckets[time] = [(_load_hit, (addr, po))]
                _push(_times, time)
            else:
                b.append((_load_hit, (addr, po)))
            _sim._pending += 1

        return exec_load_spec

    def exec_load(instr, _regs=core.regs._regs, _rs=instr.rs,
                  _imm=instr.imm, _core=core, _sb=core._sb_entries,
                  _sim=core.sim, _start_read=core._load_hit_h,
                  _lat=l1._hit_latency, _buckets=core.sim._buckets,
                  _times=core.sim._times, _push=_heappush):
        addr = (_regs[_rs] + _imm) & _WORD_MASK
        po = _core._po = _core._po + 1
        if _sb:
            _core._exec_load_ordered(instr, addr, po)
            return
        _core._mem_instr = instr
        _core._mem_issued_at = _sim._now
        # Inlined l1.read(addr, callback=_load_done_h, po=po), with the
        # _Request record elided until a miss (see L1Cache._start_read):
        time = _sim._now + _lat
        b = _buckets.get(time)
        if b is None:
            _buckets[time] = [(_start_read, (addr, po))]
            _push(_times, time)
        else:
            b.append((_start_read, (addr, po)))
        _sim._pending += 1

    return exec_load


def _make_superblock(core: Core, span: SuperblockSpan,
                     decoded: list) -> Callable:
    """Trace-compile one superblock span into a single fused closure.

    The span's register work is code-generated into straight-line
    Python with the exact single-source semantics of
    ``repro.isa.semantics`` inlined per opcode (64-bit masking, the
    XOR-sign-bit trick for signed compares), so N instructions execute
    their ALU work, branch decisions, and pc update in ONE head event
    with no per-instruction dispatch.  Conditional branches inside the
    span become early exits: each exit point gets its own epilogue with
    the executed-prefix instruction count, summed busy cycles, and exit
    pc folded in as constants.

    What the head does NOT collapse is the span's event cadence.  Every
    bucket append happens at a definite moment, and that moment fixes
    the entry's FIFO position among same-cycle events -- which decides
    crossbar arbitration and same-cycle hit/miss races downstream, and
    is therefore part of the simulated semantics.  So each exit
    schedules a *relay chain* (see :meth:`Simulator.make_relay`): one
    zero-work engine-level entry per elided instruction, each appended
    exactly when the per-instruction engine would have appended that
    instruction's event, with the span's successor appended by the last
    relay.  Event counts and all bucket positions are bit-identical to
    the unfused engine; only the Python work per event changes.

    Speculation-capable cores get a guard: while an episode is active
    the closure falls back to the span head's per-instruction closure
    (captured before the overlay), because active-episode execution
    must journal register undo entries for rollback.  A span can never
    *start* mid-episode: entry into speculation happens only at
    memory/fence slots, which are always outside spans.  While idle,
    the only speculation state the span touches is the
    conservative-window countdown, batch-decremented by the executed
    count -- arithmetically identical to N ``note_instruction`` calls.

    Only built for the real fast-path engine (callers guarantee it), so
    every schedule is a raw calendar-bucket append.
    """
    assert core.sim.fastpath, "superblocks require the fast-path engine"
    instructions = core.program.instructions
    start, stop = span.start, span.stop
    spec = core.spec
    alu_latency = core._alu_latency

    M = semantics.WORD_MASK
    S = semantics.SIGN_BIT
    _SIGNED_MIN, _SIGNED_MAX = -(1 << 63), (1 << 63) - 1

    # Per-slot latencies drive the relay cadence; deltas[k - start] is
    # the cycle count between slot k's event and its successor's.
    deltas = []
    for k in range(start, stop):
        op = instructions[k].op
        if op in _BRANCHES or op is Opcode.NOP:
            deltas.append(1)  # branches and NOPs always retire in 1
        elif op is Opcode.EXEC:
            deltas.append(instructions[k].imm)
        else:
            deltas.append(alu_latency)
    payload = [tuple(deltas), 0, 0, None]
    relay = (None, payload)

    bindings = {
        "_r": core.regs._regs,
        "_busy": core.stat_busy,
        "_icnt": core.stat_instructions,
        "_core": core,
        "_sim": core.sim,
        "_buckets": core.sim._buckets,
        "_times": core.sim._times,
        "_push": _heappush,
        "_pl": payload,
        "_relay": relay,
    }
    if spec is not None:
        bindings["_spec"] = spec
        bindings["_plain"] = decoded[start][0]
        bindings["_step"] = core._step
    else:
        # Successor entries are the core's prebuilt (handler, (instr,))
        # tuples -- the list object is captured now and filled after the
        # decode/overlay pass completes (see Core.__init__).
        bindings["_entries"] = core._entries

    def alu_stmt(instr, indent: str):
        """One inlined register-update statement (exact semantics)."""
        op, rd, rs, rt = instr.op, instr.rd, instr.rs, instr.rt
        if op is Opcode.NOP or rd == 0:
            return None  # pure ops with discarded results emit nothing
        if op is Opcode.LI:
            return f"{indent}_r[{rd}] = {instr.imm & M}"
        if op is Opcode.MOV:
            return f"{indent}_r[{rd}] = _r[{rs}]"
        if op is Opcode.ADD:
            return f"{indent}_r[{rd}] = (_r[{rs}] + _r[{rt}]) & {M}"
        if op is Opcode.ADDI:
            return f"{indent}_r[{rd}] = (_r[{rs}] + {instr.imm}) & {M}"
        if op is Opcode.SUB:
            return f"{indent}_r[{rd}] = (_r[{rs}] - _r[{rt}]) & {M}"
        if op is Opcode.MUL:
            return f"{indent}_r[{rd}] = (_r[{rs}] * _r[{rt}]) & {M}"
        if op is Opcode.AND:
            return f"{indent}_r[{rd}] = _r[{rs}] & _r[{rt}]"
        if op is Opcode.OR:
            return f"{indent}_r[{rd}] = _r[{rs}] | _r[{rt}]"
        if op is Opcode.XOR:
            return f"{indent}_r[{rd}] = _r[{rs}] ^ _r[{rt}]"
        if op is Opcode.SLT:
            return (f"{indent}_r[{rd}] = 1 if (_r[{rs}] ^ {S}) < "
                    f"(_r[{rt}] ^ {S}) else 0")
        if op is Opcode.SLTI and _SIGNED_MIN <= instr.imm <= _SIGNED_MAX:
            return (f"{indent}_r[{rd}] = 1 if (_r[{rs}] ^ {S}) < "
                    f"{(instr.imm & M) ^ S} else 0")
        if op is Opcode.EXEC:
            return f"{indent}_r[{rd}] = 0"
        # Fallback: evaluate through the shared semantics table.
        name = f"_e{instr and id(instr)}"
        bindings[name] = semantics._ALU_EVAL[op]
        bindings[name + "i"] = instr
        return (f"{indent}_r[{rd}] = {name}({name}i, _r[{rs}], _r[{rt}])")

    def cond_expr(instr):
        """The branch-taken condition (exact semantics, inlined)."""
        op, rs, rt = instr.op, instr.rs, instr.rt
        if op is Opcode.BEQ:
            return f"_r[{rs}] == _r[{rt}]"
        if op is Opcode.BNE:
            return f"_r[{rs}] != _r[{rt}]"
        if op is Opcode.BLT:
            return f"(_r[{rs}] ^ {S}) < (_r[{rt}] ^ {S})"
        if op is Opcode.BGE:
            return f"(_r[{rs}] ^ {S}) >= (_r[{rt}] ^ {S})"
        raise SimulationError(f"unexpected branch opcode {op}")

    def exit_lines(pc: int, n_exec: int, lat: int, indent: str,
                   is_last: bool):
        """The epilogue for one exit point: stats, pc, relay schedule.

        Every quantity is an exit-point constant, so the per-instruction
        sums the unfused engine would have accumulated are charged as
        single constant adds.
        """
        out = [
            f"{indent}_busy.value += {lat}",
            f"{indent}_icnt.value += {n_exec}",
            f"{indent}_core.instructions += {n_exec}",
            f"{indent}_core.fused_instructions += {n_exec}",
            f"{indent}_core.fused_blocks += 1",
        ]
        if spec is not None:
            # Batched note_instruction(): idle episodes only tick the
            # conservative-window countdown.
            out += [
                f"{indent}_rem = _spec._conservative_remaining",
                f"{indent}if _rem > 0:",
                f"{indent}    _spec._conservative_remaining = "
                f"_rem - {n_exec} if _rem > {n_exec} else 0",
            ]
        out.append(f"{indent}_core.pc = {pc}")
        successor = ("(_step, (_core.epoch,))" if spec is not None
                     else f"_entries[{pc}]")
        if n_exec == 1:
            # Nothing elided: the head's schedule IS the successor
            # append, at the same moment as the unfused instruction's.
            out.append(f"{indent}_item = {successor}")
        else:
            out += [
                f"{indent}_pl[1] = 1",
                f"{indent}_pl[2] = {n_exec}",
                f"{indent}_pl[3] = {successor}",
                f"{indent}_item = _relay",
            ]
        out += [
            f"{indent}_t = _sim._now + {deltas[0]}",
            f"{indent}_b = _buckets.get(_t)",
            f"{indent}if _b is None:",
            f"{indent}    _buckets[_t] = [_item]",
            f"{indent}    _push(_times, _t)",
            f"{indent}else:",
            f"{indent}    _b.append(_item)",
            f"{indent}_sim._pending += 1",
        ]
        if not is_last:
            out.append(f"{indent}return")
        return out

    lines = []
    if spec is not None:
        lines += [
            "    if _spec.active:",
            "        _plain(instr)",
            "        return",
        ]
    cum = 0
    count = 0
    terminated = False
    for k in range(start, stop):
        instr = instructions[k]
        op = instr.op
        cum += deltas[k - start]
        count += 1
        if op in _BRANCHES:
            if op is Opcode.JMP:
                # Unconditional: the span ends here (detector guarantees
                # this is the final slot).
                lines += exit_lines(instr.target, count, cum, "    ",
                                    is_last=True)
                terminated = True
                break
            lines.append(f"    if {cond_expr(instr)}:")
            last = (k == stop - 1)
            lines += exit_lines(instr.target, count, cum, "        ",
                                is_last=False)
            if last:
                lines += exit_lines(stop, count, cum, "    ",
                                    is_last=True)
                terminated = True
        else:
            stmt = alu_stmt(instr, "    ")
            if stmt is not None:
                lines.append(stmt)
    if not terminated:
        lines += exit_lines(stop, count, cum, "    ", is_last=True)

    params = ", ".join(f"{name}={name}" for name in bindings)
    source = (f"def _superblock(instr, {params}):\n"
              + "\n".join(lines) + "\n")
    code = compile(source, f"<superblock core{core.core_id}@{start}>", "exec")
    namespace = dict(bindings)
    exec(code, namespace)
    return namespace["_superblock"]


_DISPATCH: Optional[dict] = None


def _exec_dispatch() -> dict:
    """Opcode -> unbound exec handler, built once per process.

    Cores bind these to themselves at program load (see ``_decoded``),
    replacing the per-instruction elif chain over Opcode-class
    properties with a single tuple index.
    """
    global _DISPATCH
    if _DISPATCH is None:
        table = {}
        for op in Opcode:
            if op in _ALU or op in _BRANCHES:
                continue  # specialised to closures in Core._decode_program
            if op is Opcode.LOAD:
                table[op] = Core._exec_load
            elif op is Opcode.STORE:
                table[op] = Core._exec_store
            elif op in _ATOMICS:
                table[op] = Core._exec_atomic
            elif op is Opcode.FENCE:
                table[op] = Core._exec_fence
            elif op is Opcode.NOP:
                table[op] = Core._exec_nop
            elif op is Opcode.HALT:
                table[op] = Core._exec_halt
            else:  # pragma: no cover - new opcodes must be classified here
                raise SimulationError(f"no exec handler for opcode {op.name}")
        _DISPATCH = table
    return _DISPATCH


# ------------------------------------------------------------ node faults


def _nf_drain_frozen(self: "Core") -> None:
    """Instance shadow for ``_maybe_drain`` on a crashed core.

    The store buffer froze at the crash: whatever had not drained yet is
    lost, exactly the lost-update window a fail-stop node exposes.
    """


def _make_node_guard(core: "Core", inner: Callable) -> Callable:
    """Wrap one decoded handler with the crash/pause dispatch gate.

    The guard fires at dispatch time, i.e. at the instruction boundary:
    a crashed core drops the dispatch forever, a paused core stashes it
    (an in-order core has at most one next-instruction dispatch
    outstanding) for :meth:`Core.nf_resume` to replay.  Live cores pay
    one attribute read and fall straight through to the original
    closure.
    """

    def dispatch(instr, _inner=inner, _core=core):
        state = _core.nf_state
        if state:
            if state == 1:
                stash = _core._nf_stash
                if stash is not None and stash[2] == _core.epoch:
                    raise SimulationError(
                        f"core {_core.core_id}: second dispatch while "
                        "paused (in-order cores defer at most one)")
                _core._nf_stash = (_inner, instr, _core.epoch)
                stat = _core._nf_stat_deferred
                if stat is not None:
                    stat.value += 1
            return
        _inner(instr)

    return dispatch

"""In-order timing core with store buffer and InvisiFence speculation.

Execution model: one instruction at a time, overlapped with store-buffer
drain.  Every ordering decision goes through the consistency policy;
wherever the policy demands a store-buffer drain, the core either stalls
(conventional baseline) or -- with InvisiFence enabled -- checkpoints
and continues speculatively.

Cycle accounting: every elapsed cycle of a core's runtime is attributed
to exactly one category (busy, memory, or one of the stall causes),
which is what the E1 breakdown figure reports.

Rollback correctness relies on an *epoch* counter: every continuation
the core schedules (step events, L1 callbacks) captures the epoch at
issue; a rollback bumps the epoch, atomically invalidating all in-flight
speculative continuations.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Tuple

from repro.consistency import ConsistencyPolicy, policy_for
from repro.coherence.l1 import L1Cache, ViolationReason
from repro.core.checkpoint import Checkpoint
from repro.core.invisifence import InvisiFenceController, SpecTrigger
from repro.cpu.regfile import RegisterFile
from repro.cpu.storebuffer import StoreBuffer
from repro.isa import semantics
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.sim.config import CoreConfig, SpeculationConfig
from repro.sim.engine import SimulationError, Simulator
from repro.sim.stats import StatsRegistry


class StallCause(enum.Enum):
    """Where a core's non-busy cycles go (E1 breakdown categories)."""

    FENCE = "fence"            #: draining at an explicit fence
    ATOMIC = "atomic"          #: draining before an atomic RMW
    ATOMIC_DEP = "atomic-dep"  #: true same-address store->RMW dependence
    SC_ORDER = "sc-order"      #: SC's per-operation store-completion wait
    SB_FULL = "sb-full"        #: store buffer structurally full
    MEMORY = "memory"          #: cache/memory access time (not ordering)
    ROLLBACK = "rollback"      #: misspeculation recovery penalty
    HALT_DRAIN = "halt-drain"  #: draining/committing before HALT

    @property
    def is_ordering(self) -> bool:
        """Ordering-induced categories (the ones InvisiFence removes)."""
        return self in (StallCause.FENCE, StallCause.ATOMIC, StallCause.SC_ORDER)


class Core:
    """One simulated processor core."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        config: CoreConfig,
        spec_config: SpeculationConfig,
        program: Program,
        l1: L1Cache,
        stats: StatsRegistry,
        on_halt: Optional[Callable[["Core"], None]] = None,
        commit_arbiter=None,
    ):
        self.sim = sim
        self.core_id = core_id
        self.config = config
        self.spec_config = spec_config
        self.program = program
        self.l1 = l1
        self.on_halt = on_halt

        self.policy: ConsistencyPolicy = policy_for(config.consistency)
        self.regs = RegisterFile()
        self.pc = 0
        self.halted = False
        self.epoch = 0
        self.instructions = 0
        self.sb = StoreBuffer(config.store_buffer_entries,
                              coalescing=config.store_buffer_coalescing)
        self.spec: Optional[InvisiFenceController] = (
            InvisiFenceController(spec_config, stats, core_id)
            if spec_config.enabled else None
        )
        self.l1.violation_listener = self._on_violation

        self.commit_arbiter = commit_arbiter
        self._commit_requested = False
        self._draining = False
        # (predicate, cause, started_at, action) -- at most one pending wait.
        self._pending_wait: Optional[Tuple[Callable[[], bool], StallCause, int, Callable[[], None]]] = None
        self._rolling_back = False
        self.finish_cycle: Optional[int] = None

        prefix = f"core.{core_id}"
        self.stat_instructions = stats.counter(f"{prefix}.instructions")
        self.stat_busy = stats.counter(f"{prefix}.busy_cycles")
        self.stat_stall = {
            cause: stats.counter(f"{prefix}.stall.{cause.value}")
            for cause in StallCause
        }
        self.stat_forwards = stats.counter(f"{prefix}.store_forwards")
        self.stat_drained = stats.counter(f"{prefix}.stores_drained")
        self.stat_ordering_avoided = stats.counter(f"{prefix}.ordering_stalls_avoided")
        self.stat_sb_occupancy = stats.histogram(f"{prefix}.sb_occupancy")

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Schedule the first instruction."""
        self._schedule_step(0)

    @property
    def speculating(self) -> bool:
        return self.spec is not None and self.spec.active

    def _guard(self) -> Callable[[], bool]:
        """An epoch guard closing over the current epoch."""
        epoch = self.epoch
        return lambda: self.epoch == epoch

    def _schedule_step(self, delay: int) -> None:
        self.sim.schedule(delay, self._step, self.epoch)

    # ------------------------------------------------------------ stepping

    def _step(self, epoch: int) -> None:
        if epoch != self.epoch or self.halted or self._rolling_back:
            return
        if self.spec is not None:
            # Continuous-mode housekeeping at the instruction boundary:
            # commit a matured episode, then immediately re-checkpoint.
            if self.spec.should_commit(self.sb.empty, at_drain=False):
                self._do_commit()
            if self.spec.wants_continuous_entry():
                self._enter_speculation(SpecTrigger.CONTINUOUS)
        instr = self.program[self.pc]
        op = instr.op
        if instr.is_alu:
            self._exec_alu(instr)
        elif instr.is_branch:
            self._exec_branch(instr)
        elif op is Opcode.LOAD:
            self._exec_load(instr)
        elif op is Opcode.STORE:
            self._exec_store(instr)
        elif instr.is_atomic:
            self._exec_atomic(instr)
        elif op is Opcode.FENCE:
            self._exec_fence(instr)
        elif op is Opcode.NOP:
            self._finish(1, self.pc + 1)
        elif op is Opcode.HALT:
            self._exec_halt()
        else:  # pragma: no cover - exhaustive over Opcode
            raise SimulationError(f"core {self.core_id}: unhandled opcode {op}")

    def _finish(self, busy_cycles: int, next_pc: int) -> None:
        """Complete the current instruction and schedule the next."""
        self.stat_busy.increment(busy_cycles)
        self.stat_instructions.increment()
        self.instructions += 1
        if self.spec is not None:
            self.spec.note_instruction()
        self.pc = next_pc
        self._schedule_step(busy_cycles)

    # ------------------------------------------------------- waits & drain

    def _wait_for(self, predicate: Callable[[], bool], cause: StallCause,
                  action: Callable[[], None]) -> None:
        """Block the core until ``predicate`` holds, then run ``action``.

        Predicates become true only through store-buffer drain events, so
        re-checking on each drain suffices.  A rollback cancels the wait
        (the waiting instruction was speculative and will re-execute).
        """
        if predicate():
            action()
            return
        if self._pending_wait is not None:
            raise SimulationError(f"core {self.core_id}: nested wait")
        self._pending_wait = (predicate, cause, self.sim.now, action)

    def _on_sb_event(self) -> None:
        """A store drained: check the commit condition, then wake waiters.

        Commit must run first: a HALT waiting for ``not speculating``
        would otherwise never see its predicate become true.
        """
        if (self.spec is not None
                and self.spec.should_commit(self.sb.empty, at_drain=True)):
            self._do_commit()
        if self._pending_wait is not None:
            predicate, cause, started_at, action = self._pending_wait
            if predicate():
                self._pending_wait = None
                self.stat_stall[cause].increment(self.sim.now - started_at)
                action()

    def _maybe_drain(self) -> None:
        if self._draining or self.sb.empty:
            return
        entry = self.sb.head()
        entry.in_flight = True
        self._draining = True
        guard = self._guard() if entry.speculative else None
        # The speculation flag is re-read at L1 apply time: a commit that
        # races with this in-flight drain clears the entry's flag, and the
        # write must then land non-speculatively.
        self.l1.write(entry.addr, entry.value,
                      callback=lambda e=entry: self._drain_done(e),
                      guard=guard, speculative=lambda e=entry: e.speculative)
        self._prefetch_queued_stores(entry)

    def _prefetch_queued_stores(self, head) -> None:
        """Overlap queued stores' coherence misses (exclusive prefetch).

        Write *application* stays FIFO; only permission acquisition is
        hoisted, which is TSO-safe and mirrors real write buffers.
        """
        depth = self.config.store_prefetch_depth
        if depth == 0:
            return
        head_block = self.l1.config.block_of(head.addr)
        seen = {head_block}
        for entry in self.sb:
            if len(seen) > depth:
                break
            block = self.l1.config.block_of(entry.addr)
            if block not in seen:
                seen.add(block)
                self.l1.prefetch_write(entry.addr)

    def _drain_done(self, entry) -> None:
        self.sb.pop_head(entry)
        self.stat_drained.increment()
        self._draining = False
        self._maybe_drain()
        self._on_sb_event()

    # --------------------------------------------------------- ALU, branch

    def _exec_alu(self, instr: Instruction) -> None:
        result = semantics.alu_result(instr, self.regs.read(instr.rs),
                                      self.regs.read(instr.rt))
        self.regs.write(instr.rd, result)
        latency = instr.imm if instr.op is Opcode.EXEC else self.config.alu_latency
        self._finish(latency, self.pc + 1)

    def _exec_branch(self, instr: Instruction) -> None:
        taken = semantics.branch_taken(instr, self.regs.read(instr.rs),
                                       self.regs.read(instr.rt))
        assert instr.target is not None, "unresolved branch"
        self._finish(1, instr.target if taken else self.pc + 1)

    # --------------------------------------------------------------- loads

    def _exec_load(self, instr: Instruction) -> None:
        addr = semantics.effective_address(instr, self.regs.read(instr.rs))
        if (self.policy.load_requires_drain() and not self.sb.empty
                and not self.speculating):
            if self._try_speculate(SpecTrigger.SC_ORDER):
                self._issue_load(instr, addr)
                return
            self._wait_for(lambda: self.sb.empty, StallCause.SC_ORDER,
                           lambda: self._issue_load(instr, addr))
            return
        self._issue_load(instr, addr)

    def _issue_load(self, instr: Instruction, addr: int) -> None:
        # SC disables forwarding only because its loads wait for the
        # buffer to drain (the L1 value then equals the store's).  A
        # *speculative* SC load skips that wait, so it must forward --
        # otherwise a same-address load would read the pre-store value
        # and no violation would ever flag it (our own drain triggers no
        # invalidation).
        if self.policy.allows_store_forwarding or self.speculating:
            forwarded = self.sb.forward_value(addr)
            if forwarded is not None:
                self.stat_forwards.increment()
                self.regs.write(instr.rd, forwarded)
                self._finish(1, self.pc + 1)
                return
        issued_at = self.sim.now
        # `speculative` is a callable evaluated when the L1 applies the
        # access: if the episode commits while this load is in flight, the
        # load must not leave a stale SR bit behind.
        self.l1.read(
            addr,
            callback=lambda value: self._load_done(instr, issued_at, value),
            guard=self._guard(),
            speculative=lambda: self.speculating,
        )

    def _load_done(self, instr: Instruction, issued_at: int, value: int) -> None:
        self.regs.write(instr.rd, value)
        self.stat_stall[StallCause.MEMORY].increment(self.sim.now - issued_at)
        self._finish(1, self.pc + 1)

    # -------------------------------------------------------------- stores

    def _exec_store(self, instr: Instruction) -> None:
        addr = semantics.effective_address(instr, self.regs.read(instr.rs))
        value = self.regs.read(instr.rt)
        if (self.policy.store_requires_drain() and not self.sb.empty
                and not self.speculating):
            if self._try_speculate(SpecTrigger.SC_ORDER):
                self._issue_store(addr, value)
                return
            self._wait_for(lambda: self.sb.empty, StallCause.SC_ORDER,
                           lambda: self._issue_store(addr, value))
            return
        self._issue_store(addr, value)

    def _issue_store(self, addr: int, value: int) -> None:
        if self.sb.full:
            self._wait_for(lambda: not self.sb.full, StallCause.SB_FULL,
                           lambda: self._issue_store(addr, value))
            return
        self.sb.enqueue(addr, value, speculative=self.speculating, now=self.sim.now)
        if self.speculating:
            self.spec.note_speculative_store()
        self.stat_sb_occupancy.add(self.sb.occupancy)
        self._maybe_drain()
        self._finish(1, self.pc + 1)

    # ------------------------------------------------------------- atomics

    def _exec_atomic(self, instr: Instruction) -> None:
        addr = semantics.effective_address(instr, self.regs.read(instr.rs))
        if self.sb.contains(addr):
            # True same-address dependence: the RMW must observe the
            # buffered store; drain it first (no RMW forwarding).  Not an
            # ordering stall -- no speculation mechanism can remove it.
            self._wait_for(lambda: not self.sb.contains(addr), StallCause.ATOMIC_DEP,
                           lambda: self._exec_atomic(instr))
            return
        if (self.policy.atomic_requires_drain() and not self.sb.empty
                and not self.speculating):
            if self._try_speculate(SpecTrigger.ATOMIC):
                self._issue_rmw(instr, addr)
                return
            self._wait_for(lambda: self.sb.empty, StallCause.ATOMIC,
                           lambda: self._issue_rmw(instr, addr))
            return
        self._issue_rmw(instr, addr)

    def _issue_rmw(self, instr: Instruction, addr: int) -> None:
        rt_val = self.regs.read(instr.rt)
        ru_val = self.regs.read(instr.ru)

        def modify(old: int):
            return semantics.atomic_result(instr, old, rt_val, ru_val)

        issued_at = self.sim.now
        self.l1.rmw(
            addr, modify,
            callback=lambda loaded: self._rmw_done(instr, issued_at, loaded),
            guard=self._guard(),
            speculative=lambda: self.speculating,
        )

    def _rmw_done(self, instr: Instruction, issued_at: int, loaded: int) -> None:
        self.regs.write(instr.rd, loaded)
        self.stat_stall[StallCause.MEMORY].increment(self.sim.now - issued_at)
        self._finish(self.config.atomic_latency, self.pc + 1)

    # -------------------------------------------------------------- fences

    def _exec_fence(self, instr: Instruction) -> None:
        assert instr.fence is not None
        needs_drain = (self.policy.fence_requires_drain(instr.fence)
                       and not self.sb.empty)
        if not needs_drain:
            self._finish(1, self.pc + 1)
            return
        if self.speculating:
            # Already speculating: the fence is speculatively satisfied;
            # the commit condition (buffer drained) enforces it for real.
            self.stat_ordering_avoided.increment()
            self._finish(1, self.pc + 1)
            return
        if self._try_speculate(SpecTrigger.FENCE):
            self._finish(1, self.pc + 1)
            return
        self._wait_for(lambda: self.sb.empty, StallCause.FENCE,
                       lambda: self._finish(1, self.pc + 1))

    # ---------------------------------------------------------------- halt

    def _exec_halt(self) -> None:
        if self.speculating and self.sb.empty:
            # Nothing left to drain; commit immediately so HALT can retire.
            self._do_commit()
        if self.sb.empty and not self.speculating:
            self._halt()
            return
        self._wait_for(lambda: self.sb.empty and not self.speculating,
                       StallCause.HALT_DRAIN, self._halt)

    def _halt(self) -> None:
        self.halted = True
        self.finish_cycle = self.sim.now
        if self.on_halt is not None:
            self.on_halt(self)

    # ---------------------------------------------------------- speculation

    def _try_speculate(self, trigger: SpecTrigger) -> bool:
        """Enter speculation instead of stalling, if allowed."""
        if self.spec is None or not self.spec.can_speculate():
            return False
        self._enter_speculation(trigger)
        self.stat_ordering_avoided.increment()
        return True

    def _enter_speculation(self, trigger: SpecTrigger) -> None:
        checkpoint = Checkpoint(self.regs.snapshot(), self.pc,
                                self.sim.now, self.instructions)
        self.spec.enter(checkpoint, trigger)

    def _do_commit(self) -> None:
        if self.commit_arbiter is not None:
            # Chunk-baseline: the commit must win global arbitration first.
            if self._commit_requested:
                return
            self._commit_requested = True
            epoch = self.epoch
            self.commit_arbiter.request(self.core_id,
                                        lambda: self._commit_granted(epoch))
            return
        self._commit_now()

    def _commit_granted(self, epoch: int) -> None:
        self._commit_requested = False
        # A violation may have killed the episode while the request queued.
        if epoch != self.epoch or self.spec is None or not self.spec.active:
            return
        self._commit_now()
        # The commit may unblock a HALT (or other drain waiter) that was
        # waiting on `not speculating`.
        if self._pending_wait is not None:
            predicate, cause, started_at, action = self._pending_wait
            if predicate():
                self._pending_wait = None
                self.stat_stall[cause].increment(self.sim.now - started_at)
                action()

    def _commit_now(self) -> None:
        sr, sw = self.l1.speculative_footprint()
        self.spec.commit(self.sim.now, sr + sw)
        self.l1.commit_speculation()
        self.sb.commit_speculative()

    def _on_violation(self, reason: ViolationReason, addr: int) -> None:
        """Called synchronously by the L1 after its own state rollback."""
        if self.spec is None or not self.spec.active:
            raise SimulationError(
                f"core {self.core_id}: violation ({reason.value}) without "
                "active speculation"
            )
        checkpoint = self.spec.on_violation(reason, self.sim.now)
        self.epoch += 1  # invalidates every in-flight speculative continuation
        head = self.sb.head()
        if head is not None and head.in_flight and head.speculative:
            self._draining = False  # its L1 callback is epoch-guarded away
        self.sb.squash_speculative()
        self._pending_wait = None  # the waiting instruction was speculative
        self._rolling_back = True
        started_at = self.sim.now
        self.sim.schedule(self.spec_config.rollback_penalty,
                          self._finish_rollback, checkpoint, started_at)

    def _finish_rollback(self, checkpoint: Checkpoint, started_at: int) -> None:
        self.stat_stall[StallCause.ROLLBACK].increment(self.sim.now - started_at)
        self.regs.restore(checkpoint.regs)
        self.pc = checkpoint.pc
        self._rolling_back = False
        self._maybe_drain()  # non-speculative entries keep draining
        self._schedule_step(0)

    # ------------------------------------------------------------- queries

    def read_reg(self, index: int) -> int:
        return self.regs.read(index)

    def ordering_stall_cycles(self) -> int:
        """Total ordering-induced stall cycles (E1's headline quantity)."""
        return sum(self.stat_stall[c].value for c in StallCause if c.is_ordering)

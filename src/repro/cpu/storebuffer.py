"""FIFO store buffer with forwarding, optional coalescing, and
speculative-entry squash.

Entries drain to the L1 in program order; the head entry is handed to
the L1 and popped when the write is globally performed.  Entries
enqueued while the core speculates are marked ``speculative`` and are
discarded wholesale by :meth:`squash_speculative` on a rollback --
because speculation begins at an instruction boundary, speculative
entries always form a suffix of the FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class StoreEntry:
    """One buffered store."""

    __slots__ = ("addr", "value", "speculative", "enqueued_at", "in_flight", "po")

    def __init__(self, addr: int, value: int, speculative: bool, enqueued_at: int,
                 po: int = -1):
        self.addr = addr
        self.value = value
        self.speculative = speculative
        self.enqueued_at = enqueued_at
        self.in_flight = False
        self.po = po  #: program-order index of the producing store

    def __repr__(self) -> str:
        flags = "s" if self.speculative else ""
        flags += "!" if self.in_flight else ""
        return f"<Store {self.addr:#x}={self.value}{(':' + flags) if flags else ''}>"


class StoreBuffer:
    """Bounded FIFO of pending stores."""

    def __init__(self, capacity: int, coalescing: bool = False):
        if capacity < 1:
            raise ValueError("store buffer capacity must be >= 1")
        self.capacity = capacity
        self.coalescing = coalescing
        self._entries: Deque[StoreEntry] = deque()

    # ------------------------------------------------------------- queries

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def contains(self, addr: int) -> bool:
        """Is there a pending store to ``addr`` (exact word match)?"""
        return any(e.addr == addr for e in self._entries)

    def forward_value(self, addr: int) -> Optional[int]:
        """Value of the youngest pending store to ``addr`` (or None).

        This is the TSO/RMO load bypass: a load reads its own core's
        latest buffered store without waiting for global visibility.
        """
        for entry in reversed(self._entries):
            if entry.addr == addr:
                return entry.value
        return None

    def head(self) -> Optional[StoreEntry]:
        return self._entries[0] if self._entries else None

    def speculative_count(self) -> int:
        return sum(1 for e in self._entries if e.speculative)

    # ----------------------------------------------------------- mutation

    def enqueue(self, addr: int, value: int, speculative: bool, now: int,
                po: int = -1) -> bool:
        """Append a store; returns False when the buffer is full.

        With coalescing enabled, a pending not-in-flight store to the
        same address *with the same speculation flag* is overwritten in
        place (merging across the speculation boundary would make
        rollback impossible).  The merged entry represents the *newer*
        store: its value, enqueue timestamp, and program-order index are
        all refreshed, so drain-latency/occupancy-age statistics measure
        the store that will actually become globally visible.
        """
        if self.coalescing:
            for entry in reversed(self._entries):
                if (entry.addr == addr and not entry.in_flight
                        and entry.speculative == speculative):
                    entry.value = value
                    entry.enqueued_at = now
                    entry.po = po
                    return True
                if entry.addr == addr:
                    break  # an older same-address entry exists but can't merge
        if self.full:
            return False
        self._entries.append(StoreEntry(addr, value, speculative, now, po))
        return True

    def pop_head(self, expected: StoreEntry) -> StoreEntry:
        """Remove the drained head entry (must match ``expected``)."""
        if not self._entries or self._entries[0] is not expected:
            raise RuntimeError("store buffer drain completion out of order")
        return self._entries.popleft()

    def squash_speculative(self) -> int:
        """Discard every speculative entry (they form a suffix).

        Returns the number of squashed entries.  An in-flight
        speculative head is also discarded; its L1 request is neutralised
        by the core's epoch guard.
        """
        squashed = 0
        while self._entries and self._entries[-1].speculative:
            self._entries.pop()
            squashed += 1
        if any(e.speculative for e in self._entries):
            raise RuntimeError(
                "speculative store-buffer entries were not a suffix; "
                "checkpointing must happen at instruction boundaries"
            )
        return squashed

    def commit_speculative(self) -> int:
        """Mark every speculative entry as architectural (on commit)."""
        count = 0
        for entry in self._entries:
            if entry.speculative:
                entry.speculative = False
                count += 1
        return count

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

"""FIFO store buffer with forwarding, optional coalescing, and
speculative-entry squash.

Entries drain to the L1 in program order; the head entry is handed to
the L1 and popped when the write is globally performed.  Entries
enqueued while the core speculates are marked ``speculative`` and are
discarded wholesale by :meth:`squash_speculative` on a rollback --
because speculation begins at an instruction boundary, speculative
entries always form a suffix of the FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional


class StoreEntry:
    """One buffered store."""

    __slots__ = ("addr", "value", "speculative", "enqueued_at", "in_flight", "po")

    def __init__(self, addr: int, value: int, speculative: bool, enqueued_at: int,
                 po: int = -1):
        self.addr = addr
        self.value = value
        self.speculative = speculative
        self.enqueued_at = enqueued_at
        self.in_flight = False
        self.po = po  #: program-order index of the producing store

    def __repr__(self) -> str:
        flags = "s" if self.speculative else ""
        flags += "!" if self.in_flight else ""
        return f"<Store {self.addr:#x}={self.value}{(':' + flags) if flags else ''}>"


class StoreBuffer:
    """Bounded FIFO of pending stores."""

    def __init__(self, capacity: int, coalescing: bool = False):
        if capacity < 1:
            raise ValueError("store buffer capacity must be >= 1")
        self.capacity = capacity
        self.coalescing = coalescing
        self._entries: Deque[StoreEntry] = deque()
        # Per-address index over ``_entries`` (each list in FIFO order):
        # forwarding and same-address checks are O(1) dict probes instead
        # of linear scans.  The FIFO invariant makes maintenance cheap --
        # the global head is the oldest entry for its address, and a
        # squashed suffix entry is the youngest for its address.
        self._by_addr: Dict[int, List[StoreEntry]] = {}

    # ------------------------------------------------------------- queries

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def contains(self, addr: int) -> bool:
        """Is there a pending store to ``addr`` (exact word match)?"""
        return addr in self._by_addr

    def forward_value(self, addr: int) -> Optional[int]:
        """Value of the youngest pending store to ``addr`` (or None).

        This is the TSO/RMO load bypass: a load reads its own core's
        latest buffered store without waiting for global visibility.
        """
        same = self._by_addr.get(addr)
        return same[-1].value if same else None

    def head(self) -> Optional[StoreEntry]:
        return self._entries[0] if self._entries else None

    def speculative_count(self) -> int:
        return sum(1 for e in self._entries if e.speculative)

    # ----------------------------------------------------------- mutation

    def enqueue(self, addr: int, value: int, speculative: bool, now: int,
                po: int = -1) -> bool:
        """Append a store; returns False when the buffer is full.

        With coalescing enabled, a pending not-in-flight store to the
        same address *with the same speculation flag* is overwritten in
        place (merging across the speculation boundary would make
        rollback impossible).  The merged entry represents the *newer*
        store: its value, enqueue timestamp, and program-order index are
        all refreshed, so drain-latency/occupancy-age statistics measure
        the store that will actually become globally visible.
        """
        same = self._by_addr.get(addr)
        if self.coalescing and same:
            # Only the youngest same-address entry may absorb the store
            # (merging past it would reorder same-address writes).
            entry = same[-1]
            if not entry.in_flight and entry.speculative == speculative:
                entry.value = value
                entry.enqueued_at = now
                entry.po = po
                return True
        if self.full:
            return False
        entry = StoreEntry(addr, value, speculative, now, po)
        self._entries.append(entry)
        if same is None:
            self._by_addr[addr] = [entry]
        else:
            same.append(entry)
        return True

    def pop_head(self, expected: StoreEntry) -> StoreEntry:
        """Remove the drained head entry (must match ``expected``)."""
        if not self._entries or self._entries[0] is not expected:
            raise RuntimeError("store buffer drain completion out of order")
        entry = self._entries.popleft()
        same = self._by_addr[entry.addr]
        # FIFO: the global head is the oldest entry for its address.
        del same[0]
        if not same:
            del self._by_addr[entry.addr]
        return entry

    def squash_speculative(self) -> int:
        """Discard every speculative entry (they form a suffix).

        Returns the number of squashed entries.  An in-flight
        speculative head is also discarded; its L1 request is neutralised
        by the core's epoch guard.
        """
        squashed = 0
        while self._entries and self._entries[-1].speculative:
            entry = self._entries.pop()
            same = self._by_addr[entry.addr]
            # FIFO: the squashed tail is the youngest for its address.
            same.pop()
            if not same:
                del self._by_addr[entry.addr]
            squashed += 1
        if any(e.speculative for e in self._entries):
            raise RuntimeError(
                "speculative store-buffer entries were not a suffix; "
                "checkpointing must happen at instruction boundaries"
            )
        return squashed

    def commit_speculative(self) -> int:
        """Mark every speculative entry as architectural (on commit)."""
        count = 0
        for entry in self._entries:
            if entry.speculative:
                entry.speculative = False
                count += 1
        return count

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

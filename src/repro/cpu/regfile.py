"""Architectural register file with checkpoint support."""

from __future__ import annotations

from typing import List

from repro.isa.instructions import REG_COUNT
from repro.isa import semantics


class RegisterFile:
    """32 general-purpose 64-bit registers; register 0 reads as zero."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs: List[int] = [0] * REG_COUNT

    def read(self, index: int) -> int:
        if not 0 <= index < REG_COUNT:
            raise IndexError(f"register {index} out of range")
        return 0 if index == 0 else self._regs[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < REG_COUNT:
            raise IndexError(f"register {index} out of range")
        if index != 0:
            self._regs[index] = semantics.to_word(value)

    def snapshot(self) -> List[int]:
        """A copy of all register values (for checkpointing)."""
        return list(self._regs)

    def restore(self, snapshot: List[int]) -> None:
        # In place: the core's decoded closures hold a reference to the
        # underlying list, which must stay valid across rollbacks.
        if len(snapshot) != REG_COUNT:
            raise ValueError("snapshot has wrong length")
        self._regs[:] = snapshot

    def __repr__(self) -> str:
        nonzero = {i: v for i, v in enumerate(self._regs) if v}
        return f"<RegisterFile {nonzero}>"

"""Perf-bench harness: events/sec and simulated-cycles/sec per grid point.

Every PR that touches the simulator's hot path needs a measured
trajectory, not an anecdote.  This module times each point of the
canonical experiment grids (E1 ordering stalls, E9 scaling) directly
against a live :class:`~repro.system.System` -- wall-clock per point,
dispatched events per second, simulated cycles per second -- and emits a
``BENCH_<n>.json`` document.  Alongside the throughput numbers every
point records its :func:`~repro.harness.parallel.result_fingerprint`,
so a bench file doubles as proof that an optimization left the
experiment stats tables byte-identical to the baseline it is compared
against.

Entry points:

* ``examples/run_bench.py``   -- the CLI (full run, ``--quick``,
  ``--check`` smoke mode, ``--baseline`` comparison);
* ``benchmarks/perf/``        -- pytest wrappers (marked ``slow``).
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.experiments import e1_plan, e9_plan, mem_plan
from repro.harness.parallel import RunSpec, result_fingerprint
from repro.system import System

#: Schema identifier written into every bench document.
BENCH_SCHEMA = "repro-bench/1"

#: Top-level keys every bench document must carry.
_REQUIRED_DOC_KEYS = ("schema", "repeats", "grids")

#: Keys every per-point record must carry.
_REQUIRED_POINT_KEYS = ("label", "cycles", "events", "wall_seconds",
                        "events_per_sec", "cycles_per_sec", "fingerprint")

#: Keys every per-grid totals record must carry.
_REQUIRED_TOTAL_KEYS = ("points", "events", "cycles", "wall_seconds",
                        "events_per_sec", "cycles_per_sec")


class BenchError(RuntimeError):
    """A bench run or bench-document comparison failed."""


@dataclass
class BenchPoint:
    """Measured throughput of one (config, workload) simulation point."""

    label: str
    cycles: int
    events: int
    instructions: int
    wall_seconds: float
    events_per_sec: float
    cycles_per_sec: float
    fingerprint: str
    #: Dynamic instructions retired inside fused superblocks and the
    #: number of fused dispatches (trace-compiled execution; zero when
    #: the point runs with ``superblocks=False`` or nothing fuses).
    #: These ride along in the document but are not required keys, so
    #: bench files recorded before fusion existed still validate.
    fused_instructions: int = 0
    fused_blocks: int = 0
    fusion_coverage: float = 0.0


def measure_point(spec: RunSpec, repeats: int = 1) -> BenchPoint:
    """Simulate one point ``repeats`` times; keep the best wall time.

    Simulation is deterministic, so every repeat produces the identical
    result; the minimum wall time is the least-noisy throughput sample.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best_wall = None
    result = None
    for _ in range(repeats):
        system = System(spec.config, spec.workload.programs,
                        spec.workload.initial_memory)
        started = time.perf_counter()
        result = system.run()
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall = wall
    wall = max(best_wall, 1e-9)
    return BenchPoint(
        label=spec.label,
        cycles=result.cycles,
        events=result.events,
        instructions=result.total_instructions(),
        wall_seconds=round(best_wall, 6),
        events_per_sec=round(result.events / wall, 1),
        cycles_per_sec=round(result.cycles / wall, 1),
        fingerprint=result_fingerprint(result),
        fused_instructions=result.fused_instructions(),
        fused_blocks=result.fused_blocks(),
        fusion_coverage=round(result.fusion_coverage(), 4),
    )


def bench_grids(grids: Dict[str, List[RunSpec]], repeats: int = 1,
                progress=None) -> Dict:
    """Measure every point of every grid; returns the bench document."""
    doc: Dict = {"schema": BENCH_SCHEMA, "repeats": repeats, "grids": {}}
    for grid_id, specs in grids.items():
        points = []
        for spec in specs:
            if progress is not None:
                progress(f"{grid_id}: {spec.label}")
            points.append(measure_point(spec, repeats=repeats))
        events = sum(p.events for p in points)
        cycles = sum(p.cycles for p in points)
        wall = sum(p.wall_seconds for p in points)
        doc["grids"][grid_id] = {
            "points": [asdict(p) for p in points],
            "totals": {
                "points": len(points),
                "events": events,
                "cycles": cycles,
                "wall_seconds": round(wall, 6),
                "events_per_sec": round(events / wall, 1) if wall else 0.0,
                "cycles_per_sec": round(cycles / wall, 1) if wall else 0.0,
            },
        }
    return doc


def default_grids(quick: bool = False) -> Dict[str, List[RunSpec]]:
    """The canonical bench grids: E1 (ordering stalls), E9 (scaling),
    and MEM (coherence-heavy memory-system fast path)."""
    if quick:
        return {"E1": e1_plan(n_cores=4, scale=0.3),
                "E9": e9_plan(core_counts=(2, 4), scale=0.3),
                "MEM": mem_plan(n_cores=4, scale=0.3)}
    return {"E1": e1_plan(), "E9": e9_plan(), "MEM": mem_plan()}


def check_grids() -> Dict[str, List[RunSpec]]:
    """Three small points for the ``--check`` smoke mode (seconds, not
    minutes -- this runs in the default test pass)."""
    return {"E1-smoke": e1_plan(n_cores=2, scale=0.2)[:3]}


def validate_bench(doc: Dict) -> None:
    """Assert ``doc`` is a structurally valid bench document.

    Raises :class:`BenchError` naming the first missing/invalid field.
    """
    for key in _REQUIRED_DOC_KEYS:
        if key not in doc:
            raise BenchError(f"bench document missing key {key!r}")
    if doc["schema"] != BENCH_SCHEMA:
        raise BenchError(
            f"unknown bench schema {doc['schema']!r} (want {BENCH_SCHEMA!r})")
    if not doc["grids"]:
        raise BenchError("bench document has no grids")
    for grid_id, grid in doc["grids"].items():
        if "points" not in grid or "totals" not in grid:
            raise BenchError(f"grid {grid_id!r} missing points/totals")
        if not grid["points"]:
            raise BenchError(f"grid {grid_id!r} has no points")
        for point in grid["points"]:
            for key in _REQUIRED_POINT_KEYS:
                if key not in point:
                    raise BenchError(
                        f"grid {grid_id!r} point missing key {key!r}")
        for key in _REQUIRED_TOTAL_KEYS:
            if key not in grid["totals"]:
                raise BenchError(f"grid {grid_id!r} totals missing {key!r}")


def attach_baseline(doc: Dict, baseline: Dict) -> None:
    """Embed ``baseline`` measurements into ``doc`` and compute speedups.

    Every grid shared by both documents must cover the same point labels
    with *identical result fingerprints* -- an engine change that altered
    any stats table is rejected here, not silently reported as a speedup.
    """
    validate_bench(baseline)
    speedup = {}
    base_section = {}
    for grid_id, grid in doc["grids"].items():
        base_grid = baseline["grids"].get(grid_id)
        if base_grid is None:
            continue
        ours = {p["label"]: p for p in grid["points"]}
        theirs = {p["label"]: p for p in base_grid["points"]}
        if set(ours) != set(theirs):
            raise BenchError(
                f"grid {grid_id!r}: point labels differ from baseline "
                f"(ours-only: {sorted(set(ours) - set(theirs))}, "
                f"baseline-only: {sorted(set(theirs) - set(ours))})")
        for label, point in ours.items():
            if point["fingerprint"] != theirs[label]["fingerprint"]:
                raise BenchError(
                    f"grid {grid_id!r} point {label!r}: result fingerprint "
                    "differs from baseline -- the engines do not produce "
                    "identical stats tables")
        base_section[grid_id] = {"totals": base_grid["totals"]}
        speedup[grid_id] = {
            "events_per_sec": round(
                grid["totals"]["events_per_sec"]
                / base_grid["totals"]["events_per_sec"], 3),
            "cycles_per_sec": round(
                grid["totals"]["cycles_per_sec"]
                / base_grid["totals"]["cycles_per_sec"], 3),
            "fingerprints_match": True,
        }
    if not speedup:
        raise BenchError("baseline shares no grids with this bench run")
    doc["baseline"] = base_section
    doc["speedup"] = speedup


def next_bench_path(directory: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` path in ``directory``."""
    taken = []
    for name in os.listdir(directory):
        match = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if match:
            taken.append(int(match.group(1)))
    n = max(taken) + 1 if taken else 1
    return os.path.join(directory, f"BENCH_{n}.json")


def write_bench(doc: Dict, path: str) -> str:
    validate_bench(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict:
    with open(path) as handle:
        doc = json.load(handle)
    validate_bench(doc)
    return doc


def render_bench(doc: Dict) -> str:
    """One summary line per grid (plus speedup when a baseline is set)."""
    lines = []
    for grid_id, grid in sorted(doc["grids"].items()):
        totals = grid["totals"]
        line = (f"{grid_id}: {totals['points']} points, "
                f"{totals['events']} events in {totals['wall_seconds']:.2f}s "
                f"-> {totals['events_per_sec']:,.0f} events/s, "
                f"{totals['cycles_per_sec']:,.0f} sim-cycles/s")
        speedup = doc.get("speedup", {}).get(grid_id)
        if speedup:
            line += (f"  ({speedup['events_per_sec']:.2f}x events/s vs "
                     "baseline, stats tables identical)")
        lines.append(line)
    return "\n".join(lines)

"""Perf-bench harness: events/sec and simulated-cycles/sec per grid point.

Every PR that touches the simulator's hot path needs a measured
trajectory, not an anecdote.  This module times each point of the
canonical experiment grids (E1 ordering stalls, E9 scaling) directly
against a live :class:`~repro.system.System` -- wall-clock per point,
dispatched events per second, simulated cycles per second -- and emits a
``BENCH_<n>.json`` document.  Alongside the throughput numbers every
point records its :func:`~repro.harness.parallel.result_fingerprint`,
so a bench file doubles as proof that an optimization left the
experiment stats tables byte-identical to the baseline it is compared
against.

Entry points:

* ``examples/run_bench.py``   -- the CLI (full run, ``--quick``,
  ``--check`` smoke mode, ``--baseline`` comparison);
* ``benchmarks/perf/``        -- pytest wrappers (marked ``slow``).
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.experiments import e1_plan, e9_plan, mem_plan
from repro.harness.parallel import RunSpec, result_fingerprint
from repro.system import System

#: Schema identifier written into every bench document.
BENCH_SCHEMA = "repro-bench/1"

#: Top-level keys every bench document must carry.
_REQUIRED_DOC_KEYS = ("schema", "repeats", "grids")

#: Keys every per-point record must carry.
_REQUIRED_POINT_KEYS = ("label", "cycles", "events", "wall_seconds",
                        "events_per_sec", "cycles_per_sec", "fingerprint")

#: Keys every per-grid totals record must carry.
_REQUIRED_TOTAL_KEYS = ("points", "events", "cycles", "wall_seconds",
                        "events_per_sec", "cycles_per_sec")

#: Keys every point of the optional "sharded" section must carry
#: (BENCH_5 onward; see sharded_bench_section).
_REQUIRED_SHARDED_KEYS = (
    "label", "shards", "mode", "events",
    "serial_wall_seconds", "serial_events_per_sec",
    "sharded_wall_seconds", "sharded_events_per_sec",
    "max_shard_busy_seconds", "critical_path_events_per_sec",
    "wall_speedup", "critical_path_speedup", "epochs", "crossings")


class BenchError(RuntimeError):
    """A bench run or bench-document comparison failed."""


@dataclass
class BenchPoint:
    """Measured throughput of one (config, workload) simulation point."""

    label: str
    cycles: int
    events: int
    instructions: int
    wall_seconds: float
    events_per_sec: float
    cycles_per_sec: float
    fingerprint: str
    #: Dynamic instructions retired inside fused superblocks and the
    #: number of fused dispatches (trace-compiled execution; zero when
    #: the point runs with ``superblocks=False`` or nothing fuses).
    #: These ride along in the document but are not required keys, so
    #: bench files recorded before fusion existed still validate.
    fused_instructions: int = 0
    fused_blocks: int = 0
    fusion_coverage: float = 0.0


def measure_point(spec: RunSpec, repeats: int = 1) -> BenchPoint:
    """Simulate one point ``repeats`` times; keep the best wall time.

    Simulation is deterministic, so every repeat produces the identical
    result; the minimum wall time is the least-noisy throughput sample.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best_wall = None
    result = None
    for _ in range(repeats):
        system = System(spec.config, spec.workload.programs,
                        spec.workload.initial_memory)
        started = time.perf_counter()
        result = system.run()
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall = wall
    wall = max(best_wall, 1e-9)
    return BenchPoint(
        label=spec.label,
        cycles=result.cycles,
        events=result.events,
        instructions=result.total_instructions(),
        wall_seconds=round(best_wall, 6),
        events_per_sec=round(result.events / wall, 1),
        cycles_per_sec=round(result.cycles / wall, 1),
        fingerprint=result_fingerprint(result),
        fused_instructions=result.fused_instructions(),
        fused_blocks=result.fused_blocks(),
        fusion_coverage=round(result.fusion_coverage(), 4),
    )


def bench_grids(grids: Dict[str, List[RunSpec]], repeats: int = 1,
                progress=None) -> Dict:
    """Measure every point of every grid; returns the bench document."""
    doc: Dict = {"schema": BENCH_SCHEMA, "repeats": repeats, "grids": {}}
    for grid_id, specs in grids.items():
        points = []
        for spec in specs:
            if progress is not None:
                progress(f"{grid_id}: {spec.label}")
            points.append(measure_point(spec, repeats=repeats))
        events = sum(p.events for p in points)
        cycles = sum(p.cycles for p in points)
        wall = sum(p.wall_seconds for p in points)
        doc["grids"][grid_id] = {
            "points": [asdict(p) for p in points],
            "totals": {
                "points": len(points),
                "events": events,
                "cycles": cycles,
                "wall_seconds": round(wall, 6),
                "events_per_sec": round(events / wall, 1) if wall else 0.0,
                "cycles_per_sec": round(cycles / wall, 1) if wall else 0.0,
            },
        }
    return doc


def default_grids(quick: bool = False) -> Dict[str, List[RunSpec]]:
    """The canonical bench grids: E1 (ordering stalls), E9 (scaling),
    and MEM (coherence-heavy memory-system fast path)."""
    if quick:
        return {"E1": e1_plan(n_cores=4, scale=0.3),
                "E9": e9_plan(core_counts=(2, 4), scale=0.3),
                "MEM": mem_plan(n_cores=4, scale=0.3)}
    return {"E1": e1_plan(), "E9": e9_plan(), "MEM": mem_plan()}


def check_grids() -> Dict[str, List[RunSpec]]:
    """Three small points for the ``--check`` smoke mode (seconds, not
    minutes -- this runs in the default test pass)."""
    return {"E1-smoke": e1_plan(n_cores=2, scale=0.2)[:3]}


def measure_sharded_point(label: str, config, workload, shards: int,
                          repeats: int = 1, mode: str = "fork") -> Dict:
    """Serial vs sharded throughput for one large point, honestly.

    Two throughput views are recorded, because they answer different
    questions:

    * ``sharded_wall_seconds`` / ``wall_speedup`` -- what *this host*
      measured.  On a box with fewer idle CPUs than shards (CI
      containers are often single-CPU) the workers time-slice one core
      and the wall clock cannot show a speedup; reporting it anyway is
      the honest baseline.
    * ``max_shard_busy_seconds`` / ``critical_path_speedup`` -- the
      longest any one worker spent *computing* (its wall time minus the
      time it sat blocked at the epoch barrier, as measured inside the
      worker).  On a host with ``shards`` idle CPUs the workers run
      concurrently and the wall clock converges to this critical path,
      so it is the hardware-independent capacity number.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    from repro.sim.sharded import run_sharded

    serial_wall = None
    serial_result = None
    for _ in range(repeats):
        system = System(config, workload.programs, workload.initial_memory)
        started = time.perf_counter()
        serial_result = system.run()
        wall = time.perf_counter() - started
        if serial_wall is None or wall < serial_wall:
            serial_wall = wall
    serial_wall = max(serial_wall, 1e-9)

    sharded_wall = None
    sharded_result = None
    for _ in range(repeats):
        started = time.perf_counter()
        candidate = run_sharded(config, workload.programs,
                                workload.initial_memory, shards=shards,
                                mode=mode)
        wall = time.perf_counter() - started
        if sharded_wall is None or wall < sharded_wall:
            sharded_wall = wall
            sharded_result = candidate
    sharded_wall = max(sharded_wall, 1e-9)
    telemetry = sharded_result.sharding
    busy = telemetry.get("busy_seconds") or [sharded_wall]
    max_busy = max(max(busy), 1e-9)

    return {
        "label": label,
        "shards": shards,
        "mode": telemetry["mode"],
        "events": sharded_result.events,
        "serial_events": serial_result.events,
        "serial_wall_seconds": round(serial_wall, 6),
        "serial_events_per_sec": round(serial_result.events / serial_wall, 1),
        "sharded_wall_seconds": round(sharded_wall, 6),
        "sharded_events_per_sec": round(
            sharded_result.events / sharded_wall, 1),
        "max_shard_busy_seconds": round(max_busy, 6),
        "critical_path_events_per_sec": round(
            sharded_result.events / max_busy, 1),
        "wall_speedup": round(serial_wall / sharded_wall, 3),
        "critical_path_speedup": round(serial_wall / max_busy, 3),
        "epochs": telemetry["epochs"],
        "crossings": telemetry.get("crossings", 0),
    }


def sharded_oracle_entry(label: str, config, workload, shards: int) -> Dict:
    """Fingerprint-equality evidence for the sharded section.

    Run on a configuration from the documented exact-match grid
    (docs/SHARDING.md), this proves the engine being benchmarked
    reproduces the serial oracle's stats tables bit for bit -- the same
    role the baseline fingerprints play for the main grids.
    """
    from repro.sim.sharded import run_sharded

    serial = System(config, workload.programs,
                    workload.initial_memory).run()
    sharded = run_sharded(config, workload.programs, workload.initial_memory,
                          shards=shards, mode="fork")
    return {
        "label": label,
        "shards": shards,
        "fingerprints_match":
            result_fingerprint(serial) == result_fingerprint(sharded),
        "fingerprint": result_fingerprint(sharded),
    }


def sharded_bench_section(points: List[Dict], oracle: Dict) -> Dict:
    """Assemble the optional ``"sharded"`` document section."""
    return {
        "host_cpus": os.cpu_count() or 1,
        "points": points,
        "oracle": oracle,
        "note": ("wall_speedup is what this host measured; on hosts with "
                 "fewer idle CPUs than shards the workers time-slice and "
                 "wall time cannot improve.  critical_path_speedup = "
                 "serial wall / max per-shard busy time (worker compute "
                 "excluding barrier blocking) is the capacity a host with "
                 ">= shards idle CPUs realises."),
    }


def validate_bench(doc: Dict) -> None:
    """Assert ``doc`` is a structurally valid bench document.

    Raises :class:`BenchError` naming the first missing/invalid field.
    """
    for key in _REQUIRED_DOC_KEYS:
        if key not in doc:
            raise BenchError(f"bench document missing key {key!r}")
    if doc["schema"] != BENCH_SCHEMA:
        raise BenchError(
            f"unknown bench schema {doc['schema']!r} (want {BENCH_SCHEMA!r})")
    if not doc["grids"]:
        raise BenchError("bench document has no grids")
    for grid_id, grid in doc["grids"].items():
        if "points" not in grid or "totals" not in grid:
            raise BenchError(f"grid {grid_id!r} missing points/totals")
        if not grid["points"]:
            raise BenchError(f"grid {grid_id!r} has no points")
        for point in grid["points"]:
            for key in _REQUIRED_POINT_KEYS:
                if key not in point:
                    raise BenchError(
                        f"grid {grid_id!r} point missing key {key!r}")
        for key in _REQUIRED_TOTAL_KEYS:
            if key not in grid["totals"]:
                raise BenchError(f"grid {grid_id!r} totals missing {key!r}")
    sharded = doc.get("sharded")
    if sharded is not None:
        for key in ("host_cpus", "points", "oracle"):
            if key not in sharded:
                raise BenchError(f"sharded section missing key {key!r}")
        if not sharded["points"]:
            raise BenchError("sharded section has no points")
        for point in sharded["points"]:
            for key in _REQUIRED_SHARDED_KEYS:
                if key not in point:
                    raise BenchError(
                        f"sharded point missing key {key!r}")
        if "fingerprints_match" not in sharded["oracle"]:
            raise BenchError(
                "sharded oracle entry missing 'fingerprints_match'")


def attach_baseline(doc: Dict, baseline: Dict) -> None:
    """Embed ``baseline`` measurements into ``doc`` and compute speedups.

    Every grid shared by both documents must cover the same point labels
    with *identical result fingerprints* -- an engine change that altered
    any stats table is rejected here, not silently reported as a speedup.
    """
    validate_bench(baseline)
    speedup = {}
    base_section = {}
    for grid_id, grid in doc["grids"].items():
        base_grid = baseline["grids"].get(grid_id)
        if base_grid is None:
            continue
        ours = {p["label"]: p for p in grid["points"]}
        theirs = {p["label"]: p for p in base_grid["points"]}
        if set(ours) != set(theirs):
            raise BenchError(
                f"grid {grid_id!r}: point labels differ from baseline "
                f"(ours-only: {sorted(set(ours) - set(theirs))}, "
                f"baseline-only: {sorted(set(theirs) - set(ours))})")
        for label, point in ours.items():
            if point["fingerprint"] != theirs[label]["fingerprint"]:
                raise BenchError(
                    f"grid {grid_id!r} point {label!r}: result fingerprint "
                    "differs from baseline -- the engines do not produce "
                    "identical stats tables")
        base_section[grid_id] = {"totals": base_grid["totals"]}
        speedup[grid_id] = {
            "events_per_sec": round(
                grid["totals"]["events_per_sec"]
                / base_grid["totals"]["events_per_sec"], 3),
            "cycles_per_sec": round(
                grid["totals"]["cycles_per_sec"]
                / base_grid["totals"]["cycles_per_sec"], 3),
            "fingerprints_match": True,
        }
    if not speedup:
        raise BenchError("baseline shares no grids with this bench run")
    doc["baseline"] = base_section
    doc["speedup"] = speedup


def next_bench_path(directory: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` path in ``directory``."""
    taken = []
    for name in os.listdir(directory):
        match = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if match:
            taken.append(int(match.group(1)))
    n = max(taken) + 1 if taken else 1
    return os.path.join(directory, f"BENCH_{n}.json")


def write_bench(doc: Dict, path: str) -> str:
    validate_bench(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict:
    with open(path) as handle:
        doc = json.load(handle)
    validate_bench(doc)
    return doc


def render_bench(doc: Dict) -> str:
    """One summary line per grid (plus speedup when a baseline is set)."""
    lines = []
    for grid_id, grid in sorted(doc["grids"].items()):
        totals = grid["totals"]
        line = (f"{grid_id}: {totals['points']} points, "
                f"{totals['events']} events in {totals['wall_seconds']:.2f}s "
                f"-> {totals['events_per_sec']:,.0f} events/s, "
                f"{totals['cycles_per_sec']:,.0f} sim-cycles/s")
        speedup = doc.get("speedup", {}).get(grid_id)
        if speedup:
            line += (f"  ({speedup['events_per_sec']:.2f}x events/s vs "
                     "baseline, stats tables identical)")
        lines.append(line)
    sharded = doc.get("sharded")
    if sharded:
        lines.append(f"sharded (host has {sharded['host_cpus']} cpu(s)):")
        for point in sharded["points"]:
            lines.append(
                f"  {point['label']} x{point['shards']} shards: "
                f"serial {point['serial_events_per_sec']:,.0f} ev/s, "
                f"sharded wall {point['wall_speedup']:.2f}x, "
                f"critical path {point['critical_path_speedup']:.2f}x "
                f"({point['critical_path_events_per_sec']:,.0f} ev/s, "
                f"{point['epochs']} epochs)")
        oracle = sharded["oracle"]
        lines.append(
            f"  oracle {oracle['label']}: fingerprints_match="
            f"{oracle['fingerprints_match']}")
    return "\n".join(lines)

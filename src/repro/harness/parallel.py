"""Parallel sweep execution with cross-experiment result caching.

The reproduction's experiments are sweeps over independent
``(SystemConfig, Workload)`` points -- hundreds of single-threaded,
deterministic simulations with no shared state.  This module runs them
through one shared :class:`SweepScheduler` that

* **deduplicates** identical points across experiments (the six-point
  comparison grids repeat ``base-rmo`` etc. constantly) via a stable
  content fingerprint of the configuration and the assembled programs,
* **caches** every result in-process, so a scheduler reused across
  experiments simulates each unique point exactly once, and
* **fans out** unique points over a ``ProcessPoolExecutor`` when
  ``jobs > 1``, shipping back picklable :class:`~repro.system.SystemResult`
  summaries instead of live ``System`` objects.

Determinism: each point is one single-process discrete-event simulation,
so its result is bit-identical whether it ran in this process
(``jobs=1``, the plain serial path) or in a worker -- a parallel sweep
regenerates exactly the tables a serial sweep does, just faster.

Workload ``validate`` closures are *not* picklable and never cross the
process boundary: workers receive only ``(config, programs,
initial_memory, fault_plan, node_plan)`` and validation runs in the
parent on the returned memory/register snapshot.

**Resilience** (see docs/ROBUSTNESS.md): constructing the scheduler with
``point_timeout`` and/or ``retries`` switches execution to a managed
per-point process path -- a point that hangs past its wall-clock budget
or whose worker process dies is retried with exponential backoff and,
once its attempts are exhausted, lands on an ``excluded`` skip list
instead of sinking the whole grid.  ``checkpoint_dir`` persists each
completed point's result to disk (atomically, keyed by fingerprint), so
a killed sweep resumes from its cached points and still produces a
table bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.faults.nodeplan import NodeFaultPlan
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import Watchdog
from repro.sim.config import SystemConfig
from repro.system import System, SystemResult
from repro.workloads.base import Workload

#: Simulated-time safety cap for harness-driven points: no experiment in
#: this suite comes near it, so tripping it means a liveness bug (the
#: library-level ``System.run`` default stays uncapped).
DEFAULT_MAX_CYCLES = 20_000_000


class SweepError(RuntimeError):
    """A sweep point failed (simulation error, bad result, dead worker)."""


@dataclass
class RunSpec:
    """One named simulation point inside an experiment's run grid."""

    label: str
    config: SystemConfig
    workload: Workload
    #: Run the workload's answer validation on the result (in the parent).
    check: bool = True
    #: Optional deterministic fault scenario (see repro.faults).
    fault_plan: Optional[FaultPlan] = None
    #: Optional deterministic node-fault (chaos) scenario.
    node_plan: Optional[NodeFaultPlan] = None
    #: Run this point on the sharded engine (repro.sim.sharded) with
    #: this many shard workers.  0 (the default) and 1 both mean the
    #: plain serial engine; >= 2 partitions the machine.
    shards: int = 0

    def fingerprint(self) -> str:
        return point_fingerprint(self.config, self.workload, self.fault_plan,
                                 self.node_plan, shards=self.shards)


def point_fingerprint(config: SystemConfig, workload: Workload,
                      fault_plan: Optional[FaultPlan] = None,
                      node_plan: Optional[NodeFaultPlan] = None,
                      shards: int = 0) -> str:
    """A stable content key for one ``(config, workload)`` point.

    Hashes the configuration (frozen dataclasses with deterministic
    ``repr``) and the *assembled* instruction streams plus initial
    memory.  Symbolic label names are excluded -- they contain a
    process-global uniquifying counter, so two builds of the same
    workload factory would otherwise never match -- while branch targets
    are already resolved to instruction indices and are covered.  An
    active fault plan is part of the point's identity; ``None`` hashes
    exactly as before the fault subsystem existed, so historical
    fingerprints (and the golden files built on them) are unchanged.
    """
    hasher = hashlib.sha256()
    hasher.update(repr(config).encode())
    hasher.update(b"\x00")
    hasher.update(workload.name.encode())
    for program in workload.programs:
        hasher.update(b"\x00prog\x00")
        for instr in program.instructions:
            hasher.update(repr(instr).encode())
            hasher.update(b";")
    for addr in sorted(workload.initial_memory):
        hasher.update(f"\x00{addr}={workload.initial_memory[addr]}".encode())
    if fault_plan is not None:
        hasher.update(b"\x00faults\x00")
        hasher.update(repr(fault_plan).encode())
    if node_plan is not None:
        hasher.update(b"\x00nodefaults\x00")
        hasher.update(repr(node_plan).encode())
    if shards >= 2:
        # Sharded execution is part of the point's identity: off the
        # documented oracle grid a sharded run may legitimately settle
        # message ties differently from the serial engine, so its cached
        # result must never satisfy a serial request (or vice versa).
        # shards in {0, 1} is the serial engine and hashes exactly as
        # before sharding existed, keeping historical fingerprints (and
        # checkpoints/golden files built on them) unchanged.
        hasher.update(f"\x00shards={shards}".encode())
    return hasher.hexdigest()


def result_fingerprint(result: SystemResult) -> str:
    """A stable content key for one :class:`SystemResult`.

    Hashes everything the experiment tables are built from: the final
    cycle count, the full scalar stats snapshot, every core's
    architectural registers, and the architectural memory image.  Two
    runs with equal fingerprints regenerate byte-identical stats tables,
    which is how the golden/determinism tests prove an engine
    optimization changed nothing observable.
    """
    hasher = hashlib.sha256()
    hasher.update(f"cycles={result.cycles}".encode())
    for name, value in sorted(result.stats.snapshot().items()):
        hasher.update(f"\x00{name}={value!r}".encode())
    for core in result.cores:
        hasher.update(f"\x00core{core.core_id}:".encode())
        hasher.update(repr(core.registers).encode())
        hasher.update(f"fin={core.finish_cycle}".encode())
    for addr in sorted(result._memory):
        hasher.update(f"\x00{addr}={result._memory[addr]}".encode())
    return hasher.hexdigest()


def simulate_point(config: SystemConfig, programs, initial_memory,
                   fault_plan: Optional[FaultPlan] = None,
                   node_plan: Optional[NodeFaultPlan] = None,
                   shards: int = 0) -> Tuple[SystemResult, float]:
    """Run one point; returns the result and its wall-time in seconds.

    Module-level so it is picklable as a process-pool task.  Used
    unchanged by the serial path, keeping the two paths literally the
    same code.  Harness points always run under the ``max_cycles``
    safety cap, and fault-injected points (either axis: link faults or
    node faults) additionally get a liveness
    :class:`~repro.faults.Watchdog` -- a stuck point raises with a
    diagnostic dump instead of hanging the sweep.

    ``shards >= 2`` routes the point through the sharded engine
    (:func:`repro.sim.sharded.run_sharded`).  Inside a process-pool
    worker (daemonic) the sharded engine automatically falls back to its
    bit-identical inline mode, so ``--shards`` composes with
    ``REPRO_JOBS``/``--jobs`` point-level parallelism: jobs spread
    points over processes, and each sharded point then partitions its
    own machine in-process.
    """
    started = time.perf_counter()
    if shards >= 2:
        # Late import: repro.sim.sharded imports System helpers from
        # repro.system, which this module also feeds.
        from repro.sim.sharded import run_sharded
        result = run_sharded(config, programs, initial_memory,
                             shards=shards, fault_plan=fault_plan,
                             node_plan=node_plan,
                             max_cycles=DEFAULT_MAX_CYCLES)
        return result, time.perf_counter() - started
    system = System(config, programs, initial_memory, fault_plan=fault_plan,
                    node_plan=node_plan)
    perturbed = system.fault_plan is not None or system.node_plan is not None
    watchdog = Watchdog(system) if perturbed else None
    result = system.run(max_cycles=DEFAULT_MAX_CYCLES, watchdog=watchdog)
    return result, time.perf_counter() - started


def _worker_args(spec: RunSpec) -> tuple:
    """The positional worker-call tuple for one spec.

    ``shards`` is appended only when set, so the historical five-field
    wire format -- and every custom ``worker`` callable written against
    it -- is untouched for serial points.
    """
    args = (spec.config, spec.workload.programs,
            spec.workload.initial_memory, spec.fault_plan, spec.node_plan)
    if spec.shards >= 2:
        args += (spec.shards,)
    return args


def _isolated_point_worker(conn, worker, *args) -> None:
    """Child-process entry for the resilient path: run one point, ship
    the outcome back over ``conn``.  Exceptions become ("err", message)
    -- the parent re-raises them as a :class:`SweepError` naming the
    point -- and a crash (the process dying without sending) surfaces as
    EOF on the parent's end."""
    try:
        payload = worker(*args)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


class ResilientPointRunner:
    """Managed per-point worker processes, reusable outside the scheduler.

    This is the fault-tolerant execution tier shared by
    :class:`SweepScheduler` (its ``point_timeout``/``retries`` path) and
    the resident experiment service (:mod:`repro.service.server`): one
    :mod:`multiprocessing` process per in-flight point (up to ``jobs``),
    talking back over a pipe.  Timeouts kill the process; crashes
    surface as EOF; both requeue the point with exponential backoff and,
    once attempts are exhausted, report it to ``on_exclude`` instead of
    sinking the rest of the batch.  Deterministic worker exceptions go
    straight to ``on_error`` -- retrying a deterministic simulation
    cannot change its outcome.

    Kill semantics: a timed-out worker gets SIGTERM, then up to
    ``term_grace`` seconds to die, then SIGKILL -- a worker wedged in a
    state where it ignores SIGTERM can therefore never hang the batch.
    Each point's wall-clock budget starts at *its own* launch, not at
    the top of the launch loop, so sibling start-up cost is never
    charged against a point's ``point_timeout``.
    """

    def __init__(self, worker: Callable = simulate_point, jobs: int = 1,
                 point_timeout: Optional[float] = None,
                 retries: int = 0,
                 retry_backoff: float = 0.25,
                 term_grace: float = 5.0):
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if term_grace <= 0:
            raise ValueError("term_grace must be positive")
        self.worker = worker
        self.jobs = max(1, jobs)
        self.point_timeout = point_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.term_grace = term_grace
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context("spawn")

    def _launch(self, spec: RunSpec):
        """Start one worker process; returns (parent_conn, process)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_isolated_point_worker,
            args=(child_conn, self.worker) + _worker_args(spec))
        proc.start()
        child_conn.close()
        return parent_conn, proc

    def _reap(self, proc) -> None:
        """SIGTERM, wait ``term_grace`` seconds, then escalate to SIGKILL."""
        proc.terminate()
        proc.join(self.term_grace)
        if proc.is_alive():
            proc.kill()
            proc.join()

    def _join_or_reap(self, proc) -> None:
        """Bounded join for a worker that already reported its outcome."""
        proc.join(self.term_grace)
        if proc.is_alive():  # pragma: no cover - sent a result, then wedged
            self._reap(proc)

    def run(self, pending: List[Tuple[str, RunSpec]],
            on_result: Callable, on_error: Callable, on_exclude: Callable,
            on_retry: Optional[Callable] = None) -> None:
        """Run every ``(key, spec)`` point, reporting through callbacks:

        ``on_result(key, spec, result, seconds)`` for a completed point,
        ``on_error(key, spec, message)`` for a deterministic worker
        exception (raising from it aborts the batch; returning skips the
        point), ``on_exclude(key, spec, reason)`` for a point dropped
        after exhausting its retries, and optional
        ``on_retry(key, spec, reason)`` before each re-attempt.
        """
        work = [{"key": key, "spec": spec, "attempt": 0, "ready_at": 0.0}
                for key, spec in pending]
        #: conn -> (item, process, deadline or None)
        active: Dict = {}

        def requeue_or_exclude(item, reason):
            attempt = item["attempt"] + 1
            if attempt > self.retries:
                on_exclude(item["key"], item["spec"],
                           f"{reason}; gave up after {attempt} attempt(s)")
                return
            if on_retry is not None:
                on_retry(item["key"], item["spec"], reason)
            item["attempt"] = attempt
            item["ready_at"] = time.monotonic() \
                + self.retry_backoff * (2 ** (attempt - 1))
            work.append(item)

        try:
            while work or active:
                now = time.monotonic()
                while len(active) < self.jobs:
                    index = next((i for i, item in enumerate(work)
                                  if item["ready_at"] <= now), None)
                    if index is None:
                        break
                    item = work.pop(index)
                    conn, proc = self._launch(item["spec"])
                    # Budget the timeout from *this* launch: a clock read
                    # taken before sibling launches would charge their
                    # start-up cost against this point.
                    now = time.monotonic()
                    deadline = (now + self.point_timeout
                                if self.point_timeout is not None else None)
                    active[conn] = (item, proc, deadline)
                if not active:
                    # Everything left is backing off; sleep to the nearest
                    # retry release.
                    time.sleep(max(0.0, min(item["ready_at"] for item in work)
                                   - time.monotonic()))
                    continue
                now = time.monotonic()
                wait_for = 0.05
                deadlines = [d for _, _, d in active.values() if d is not None]
                if deadlines:
                    wait_for = min(wait_for, max(0.0, min(deadlines) - now))
                for conn in mp_connection.wait(list(active), timeout=wait_for):
                    item, proc, _ = active.pop(conn)
                    try:
                        status, payload = conn.recv()
                    except (EOFError, OSError):
                        self._join_or_reap(proc)
                        conn.close()
                        requeue_or_exclude(
                            item,
                            f"worker process died (exit code {proc.exitcode})")
                        continue
                    conn.close()
                    self._join_or_reap(proc)
                    if status == "ok":
                        result, seconds = payload
                        on_result(item["key"], item["spec"], result, seconds)
                    else:
                        on_error(item["key"], item["spec"], payload)
                now = time.monotonic()
                for conn, (item, proc, deadline) in list(active.items()):
                    if deadline is not None and now > deadline and not conn.poll():
                        del active[conn]
                        self._reap(proc)
                        conn.close()
                        requeue_or_exclude(
                            item,
                            f"timed out after {self.point_timeout:g}s")
        finally:
            for conn, (item, proc, _) in active.items():
                self._reap(proc)
                conn.close()


@dataclass
class SweepReport:
    """Aggregate timing/dedup evidence for one :meth:`SweepScheduler.run`."""

    jobs: int
    unique_points: int
    duplicate_hits: int
    cached_hits: int
    wall_seconds: float
    point_seconds: Dict[str, float] = field(default_factory=dict)
    #: points restored from the on-disk checkpoint directory
    checkpoint_hits: int = 0
    #: timeout/crash retries performed during this run
    retries: int = 0
    #: label -> reason for points dropped after exhausting their retries
    excluded: Dict[str, str] = field(default_factory=dict)

    @property
    def serial_seconds(self) -> float:
        """Sum of per-point wall times (the serial-equivalent cost)."""
        return sum(self.point_seconds.values())

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.wall_seconds if self.wall_seconds else 0.0

    def render(self) -> str:
        line = (f"sweep: {self.unique_points} unique points "
                f"({self.duplicate_hits} deduplicated, "
                f"{self.cached_hits} cached), jobs={self.jobs}, "
                f"wall {self.wall_seconds:.1f}s")
        if self.checkpoint_hits:
            line += f", {self.checkpoint_hits} restored from checkpoint"
        if self.retries:
            line += f", {self.retries} retried"
        if self.unique_points and self.wall_seconds:
            line += (f", serial-equivalent {self.serial_seconds:.1f}s, "
                     f"speedup {self.speedup:.2f}x")
        if self.excluded:
            details = "; ".join(f"{label!r}: {reason}"
                                for label, reason in self.excluded.items())
            line += f"\nsweep: EXCLUDED {len(self.excluded)} point(s): {details}"
        return line


class SweepScheduler:
    """Deduplicating, optionally parallel executor for sweep grids.

    Usage::

        scheduler = SweepScheduler(jobs=4)
        scheduler.add("E1", e1_plan())
        scheduler.add("E2", e2_plan())   # shared points dedup against E1
        scheduler.run()                  # each unique point simulated once
        e1 = e1_build(scheduler.results_for("E1"))

    ``jobs=1`` executes in-process and strictly serially (the debugging
    path); ``jobs>1`` uses a process pool.  Results are cached by point
    fingerprint, so calling :meth:`run` again after adding more
    experiments only simulates points not seen before.

    Resilience options (any of them set switches execution to the
    managed per-point-process path):

    ``point_timeout``
        wall-clock seconds one point may take before its worker is
        killed and the point retried;
    ``retries``
        how many times a timed-out or crashed point is re-attempted
        (with ``retry_backoff * 2**attempt`` seconds between attempts)
        before landing on the :attr:`excluded` skip list -- deterministic
        Python exceptions are *not* retried, they raise immediately;
    ``checkpoint_dir``
        directory of per-fingerprint result records (the service store's
        versioned, integrity-checked format), written atomically after
        each completed point and loaded before simulating, so a killed
        sweep resumes where it left off; records failing validation are
        re-simulated rather than trusted.
    """

    def __init__(self, jobs: Optional[int] = None,
                 worker: Callable = simulate_point,
                 point_timeout: Optional[float] = None,
                 retries: int = 0,
                 retry_backoff: float = 0.25,
                 term_grace: float = 5.0,
                 checkpoint_dir: Optional[str] = None):
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if term_grace <= 0:
            raise ValueError("term_grace must be positive")
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self._worker = worker
        self.point_timeout = point_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.term_grace = term_grace
        self.checkpoint_dir = checkpoint_dir
        #: fingerprint -> reason: points dropped after exhausting retries.
        self.excluded: Dict[str, str] = {}
        #: subset of :attr:`excluded` added during the current run() call.
        self._excluded_this_run: Dict[str, str] = {}
        self._retries_this_run = 0
        #: exp_id -> list of (fingerprint, spec), in plan order.
        self._grids: Dict[str, List[Tuple[str, RunSpec]]] = {}
        #: fingerprint -> representative spec, insertion-ordered.
        self._points: Dict[str, RunSpec] = {}
        self._results: Dict[str, SystemResult] = {}
        self._checked: Set[Tuple[str, str]] = set()
        self._point_seconds: Dict[str, float] = {}
        self.duplicate_hits = 0
        self.last_report: Optional[SweepReport] = None

    # ---------------------------------------------------------------- grid

    def add(self, exp_id: str, specs: List[RunSpec]) -> None:
        """Register one experiment's run grid (labels unique per grid)."""
        grid = self._grids.setdefault(exp_id, [])
        seen_labels = {s.label for _, s in grid}
        for spec in specs:
            if spec.label in seen_labels:
                raise ValueError(
                    f"duplicate label {spec.label!r} in grid {exp_id!r}")
            seen_labels.add(spec.label)
            if len(spec.workload.programs) != spec.config.n_cores:
                raise ValueError(
                    f"{exp_id}/{spec.label}: workload {spec.workload.name!r} "
                    f"has {len(spec.workload.programs)} threads but config "
                    f"has {spec.config.n_cores} cores")
            fp = spec.fingerprint()
            if fp in self._points:
                self.duplicate_hits += 1
            else:
                self._points[fp] = spec
            grid.append((fp, spec))

    @property
    def unique_points(self) -> int:
        return len(self._points)

    # ----------------------------------------------------------- execution

    def run(self) -> SweepReport:
        """Simulate every not-yet-cached unique point, then validate.

        Returns a :class:`SweepReport`; raises :class:`SweepError` with
        the failing point's label if any simulation or validation fails.
        Previously excluded points are skipped, not re-attempted.
        """
        todo = [(fp, spec) for fp, spec in self._points.items()
                if fp not in self._results]
        cached = len(self._points) - len(todo)
        pending = [(fp, spec) for fp, spec in todo if fp not in self.excluded]
        checkpoint_hits = self._load_checkpoints(pending)
        if checkpoint_hits:
            pending = [(fp, spec) for fp, spec in pending
                       if fp not in self._results]
        self._retries_this_run = 0
        self._excluded_this_run = {}
        started = time.perf_counter()
        if self.point_timeout is not None or self.retries > 0:
            self._run_resilient(pending)
        elif self.jobs == 1 or len(pending) <= 1:
            self._run_serial(pending)
        else:
            self._run_pool(pending)
        wall = time.perf_counter() - started
        self._validate()
        self.last_report = SweepReport(
            jobs=self.jobs,
            unique_points=len(pending),
            duplicate_hits=self.duplicate_hits,
            cached_hits=cached,
            wall_seconds=wall,
            point_seconds={self._points[fp].label: self._point_seconds[fp]
                           for fp, _ in pending if fp in self._point_seconds},
            checkpoint_hits=checkpoint_hits,
            retries=self._retries_this_run,
            # Only exclusions added by *this* run: a cumulative list would
            # re-report prior runs' drops as this run's.
            excluded={self._points[fp].label: reason
                      for fp, reason in self._excluded_this_run.items()},
        )
        return self.last_report

    @staticmethod
    def _point_error(spec: RunSpec, exc: Exception) -> SweepError:
        """A SweepError identifying the offending (config, workload) point."""
        return SweepError(
            f"sweep point {spec.label!r} (workload {spec.workload.name!r}, "
            f"{spec.config.describe()}) failed: {exc}")

    def _run_serial(self, pending: List[Tuple[str, RunSpec]]) -> None:
        for fp, spec in pending:
            try:
                result, seconds = self._worker(*_worker_args(spec))
            except Exception as exc:
                raise self._point_error(spec, exc) from exc
            self._store(fp, result, seconds)

    def _run_pool(self, pending: List[Tuple[str, RunSpec]]) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                fp: pool.submit(self._worker, *_worker_args(spec))
                for fp, spec in pending
            }
            for fp, spec in pending:
                try:
                    result, seconds = futures[fp].result()
                except BrokenProcessPool as exc:
                    raise SweepError(
                        f"worker process died while simulating "
                        f"{spec.label!r} (workload {spec.workload.name!r}, "
                        f"{spec.config.describe()}); "
                        "rerun with --jobs 1 to debug in-process") from exc
                except Exception as exc:
                    raise self._point_error(spec, exc) from exc
                self._store(fp, result, seconds)

    # ------------------------------------------------- resilient execution

    def _run_resilient(self, pending: List[Tuple[str, RunSpec]]) -> None:
        """Delegate to a :class:`ResilientPointRunner` wired into this
        scheduler's result store, exclusion list, and retry counter."""
        runner = ResilientPointRunner(
            worker=self._worker, jobs=self.jobs,
            point_timeout=self.point_timeout, retries=self.retries,
            retry_backoff=self.retry_backoff, term_grace=self.term_grace)

        def on_result(fp, spec, result, seconds):
            self._store(fp, result, seconds)

        def on_error(fp, spec, message):
            raise self._point_error(spec, RuntimeError(message))

        def on_exclude(fp, spec, reason):
            self.excluded[fp] = reason
            self._excluded_this_run[fp] = reason

        def on_retry(fp, spec, reason):
            self._retries_this_run += 1

        runner.run(pending, on_result=on_result, on_error=on_error,
                   on_exclude=on_exclude, on_retry=on_retry)

    # --------------------------------------------------------- checkpoints

    def _checkpoint_path(self, fp: str) -> str:
        return os.path.join(self.checkpoint_dir, f"{fp}.pkl")

    def _load_checkpoints(self, pending: List[Tuple[str, RunSpec]]) -> int:
        """Restore completed points from ``checkpoint_dir``; returns the
        number restored.  Checkpoints use the service store's versioned
        record format (:mod:`repro.service.store`), so every restore is
        validated -- format version, owning point fingerprint, and the
        embedded ``result_fingerprint`` recomputed over the payload.  A
        file that fails any check (truncated by the kill that
        interrupted the previous sweep, written by a different code
        version, or copied from a foreign point) is ignored and the
        point is simply re-simulated."""
        if self.checkpoint_dir is None:
            return 0
        # Late import: repro.service.store imports result_fingerprint
        # from this module.
        from repro.service.store import RecordError, unpack_record
        hits = 0
        for fp, _spec in pending:
            path = self._checkpoint_path(fp)
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                continue
            try:
                result, _rfp = unpack_record(data, expected_point=fp)
            except RecordError:
                continue
            self._results[fp] = result
            self._point_seconds.setdefault(fp, 0.0)
            hits += 1
        return hits

    def _store(self, fp: str, result: SystemResult, seconds: float) -> None:
        self._results[fp] = result
        self._point_seconds[fp] = seconds
        if self.checkpoint_dir is None:
            return
        from repro.service.store import pack_record
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        path = self._checkpoint_path(fp)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(pack_record(result, point_fp=fp))
        os.replace(tmp, path)  # atomic: a kill leaves no partial checkpoint

    def _validate(self) -> None:
        """Run each spec's workload validation once, in the parent."""
        for exp_id, grid in self._grids.items():
            for fp, spec in grid:
                key = (exp_id, spec.label)
                if not spec.check or key in self._checked:
                    continue
                if fp not in self._results:
                    continue
                try:
                    spec.workload.check(self._results[fp])
                except AssertionError as exc:
                    raise SweepError(
                        f"sweep point {spec.label!r} in {exp_id} produced a "
                        f"wrong answer: {exc}") from exc
                self._checked.add(key)

    # ------------------------------------------------------------- results

    def results_for(self, exp_id: str) -> Dict[str, SystemResult]:
        """Label -> result mapping for one registered experiment.

        Raises :class:`SweepError` if any of the experiment's points was
        excluded by the resilience policy -- a table silently built from
        a partial grid would be worse than no table.
        """
        grid = self._grids[exp_id]
        dropped = [(spec.label, self.excluded[fp]) for fp, spec in grid
                   if fp in self.excluded and fp not in self._results]
        if dropped:
            details = "; ".join(f"{label!r} ({reason})"
                                for label, reason in dropped)
            raise SweepError(
                f"{exp_id}: {len(dropped)} point(s) excluded by the "
                f"resilience policy: {details}")
        missing = [spec.label for fp, spec in grid if fp not in self._results]
        if missing:
            raise SweepError(
                f"{exp_id}: points {missing} not simulated yet; call run()")
        return {spec.label: self._results[fp] for fp, spec in grid}


def execute_specs(specs: List[RunSpec], jobs: int = 1
                  ) -> Dict[str, SystemResult]:
    """One-shot helper: run a single grid and return label -> result."""
    scheduler = SweepScheduler(jobs=jobs)
    scheduler.add("adhoc", specs)
    scheduler.run()
    return scheduler.results_for("adhoc")

"""Parallel sweep execution with cross-experiment result caching.

The reproduction's experiments are sweeps over independent
``(SystemConfig, Workload)`` points -- hundreds of single-threaded,
deterministic simulations with no shared state.  This module runs them
through one shared :class:`SweepScheduler` that

* **deduplicates** identical points across experiments (the six-point
  comparison grids repeat ``base-rmo`` etc. constantly) via a stable
  content fingerprint of the configuration and the assembled programs,
* **caches** every result in-process, so a scheduler reused across
  experiments simulates each unique point exactly once, and
* **fans out** unique points over a ``ProcessPoolExecutor`` when
  ``jobs > 1``, shipping back picklable :class:`~repro.system.SystemResult`
  summaries instead of live ``System`` objects.

Determinism: each point is one single-process discrete-event simulation,
so its result is bit-identical whether it ran in this process
(``jobs=1``, the plain serial path) or in a worker -- a parallel sweep
regenerates exactly the tables a serial sweep does, just faster.

Workload ``validate`` closures are *not* picklable and never cross the
process boundary: workers receive only ``(config, programs,
initial_memory)`` and validation runs in the parent on the returned
memory/register snapshot.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.sim.config import SystemConfig
from repro.system import SystemResult, run_system
from repro.workloads.base import Workload


class SweepError(RuntimeError):
    """A sweep point failed (simulation error, bad result, dead worker)."""


@dataclass
class RunSpec:
    """One named simulation point inside an experiment's run grid."""

    label: str
    config: SystemConfig
    workload: Workload
    #: Run the workload's answer validation on the result (in the parent).
    check: bool = True

    def fingerprint(self) -> str:
        return point_fingerprint(self.config, self.workload)


def point_fingerprint(config: SystemConfig, workload: Workload) -> str:
    """A stable content key for one ``(config, workload)`` point.

    Hashes the configuration (frozen dataclasses with deterministic
    ``repr``) and the *assembled* instruction streams plus initial
    memory.  Symbolic label names are excluded -- they contain a
    process-global uniquifying counter, so two builds of the same
    workload factory would otherwise never match -- while branch targets
    are already resolved to instruction indices and are covered.
    """
    hasher = hashlib.sha256()
    hasher.update(repr(config).encode())
    hasher.update(b"\x00")
    hasher.update(workload.name.encode())
    for program in workload.programs:
        hasher.update(b"\x00prog\x00")
        for instr in program.instructions:
            hasher.update(repr(instr).encode())
            hasher.update(b";")
    for addr in sorted(workload.initial_memory):
        hasher.update(f"\x00{addr}={workload.initial_memory[addr]}".encode())
    return hasher.hexdigest()


def result_fingerprint(result: SystemResult) -> str:
    """A stable content key for one :class:`SystemResult`.

    Hashes everything the experiment tables are built from: the final
    cycle count, the full scalar stats snapshot, every core's
    architectural registers, and the architectural memory image.  Two
    runs with equal fingerprints regenerate byte-identical stats tables,
    which is how the golden/determinism tests prove an engine
    optimization changed nothing observable.
    """
    hasher = hashlib.sha256()
    hasher.update(f"cycles={result.cycles}".encode())
    for name, value in sorted(result.stats.snapshot().items()):
        hasher.update(f"\x00{name}={value!r}".encode())
    for core in result.cores:
        hasher.update(f"\x00core{core.core_id}:".encode())
        hasher.update(repr(core.registers).encode())
        hasher.update(f"fin={core.finish_cycle}".encode())
    for addr in sorted(result._memory):
        hasher.update(f"\x00{addr}={result._memory[addr]}".encode())
    return hasher.hexdigest()


def simulate_point(config: SystemConfig, programs, initial_memory
                   ) -> Tuple[SystemResult, float]:
    """Run one point; returns the result and its wall-time in seconds.

    Module-level so it is picklable as a process-pool task.  Used
    unchanged by the serial path, keeping the two paths literally the
    same code.
    """
    started = time.perf_counter()
    result = run_system(config, programs, initial_memory)
    return result, time.perf_counter() - started


@dataclass
class SweepReport:
    """Aggregate timing/dedup evidence for one :meth:`SweepScheduler.run`."""

    jobs: int
    unique_points: int
    duplicate_hits: int
    cached_hits: int
    wall_seconds: float
    point_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def serial_seconds(self) -> float:
        """Sum of per-point wall times (the serial-equivalent cost)."""
        return sum(self.point_seconds.values())

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.wall_seconds if self.wall_seconds else 0.0

    def render(self) -> str:
        line = (f"sweep: {self.unique_points} unique points "
                f"({self.duplicate_hits} deduplicated, "
                f"{self.cached_hits} cached), jobs={self.jobs}, "
                f"wall {self.wall_seconds:.1f}s")
        if self.unique_points and self.wall_seconds:
            line += (f", serial-equivalent {self.serial_seconds:.1f}s, "
                     f"speedup {self.speedup:.2f}x")
        return line


class SweepScheduler:
    """Deduplicating, optionally parallel executor for sweep grids.

    Usage::

        scheduler = SweepScheduler(jobs=4)
        scheduler.add("E1", e1_plan())
        scheduler.add("E2", e2_plan())   # shared points dedup against E1
        scheduler.run()                  # each unique point simulated once
        e1 = e1_build(scheduler.results_for("E1"))

    ``jobs=1`` executes in-process and strictly serially (the debugging
    path); ``jobs>1`` uses a process pool.  Results are cached by point
    fingerprint, so calling :meth:`run` again after adding more
    experiments only simulates points not seen before.
    """

    def __init__(self, jobs: Optional[int] = None,
                 worker: Callable = simulate_point):
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self._worker = worker
        #: exp_id -> list of (fingerprint, spec), in plan order.
        self._grids: Dict[str, List[Tuple[str, RunSpec]]] = {}
        #: fingerprint -> representative spec, insertion-ordered.
        self._points: Dict[str, RunSpec] = {}
        self._results: Dict[str, SystemResult] = {}
        self._checked: Set[Tuple[str, str]] = set()
        self._point_seconds: Dict[str, float] = {}
        self.duplicate_hits = 0
        self.last_report: Optional[SweepReport] = None

    # ---------------------------------------------------------------- grid

    def add(self, exp_id: str, specs: List[RunSpec]) -> None:
        """Register one experiment's run grid (labels unique per grid)."""
        grid = self._grids.setdefault(exp_id, [])
        seen_labels = {s.label for _, s in grid}
        for spec in specs:
            if spec.label in seen_labels:
                raise ValueError(
                    f"duplicate label {spec.label!r} in grid {exp_id!r}")
            seen_labels.add(spec.label)
            if len(spec.workload.programs) != spec.config.n_cores:
                raise ValueError(
                    f"{exp_id}/{spec.label}: workload {spec.workload.name!r} "
                    f"has {len(spec.workload.programs)} threads but config "
                    f"has {spec.config.n_cores} cores")
            fp = spec.fingerprint()
            if fp in self._points:
                self.duplicate_hits += 1
            else:
                self._points[fp] = spec
            grid.append((fp, spec))

    @property
    def unique_points(self) -> int:
        return len(self._points)

    # ----------------------------------------------------------- execution

    def run(self) -> SweepReport:
        """Simulate every not-yet-cached unique point, then validate.

        Returns a :class:`SweepReport`; raises :class:`SweepError` with
        the failing point's label if any simulation or validation fails.
        """
        pending = [(fp, spec) for fp, spec in self._points.items()
                   if fp not in self._results]
        cached = len(self._points) - len(pending)
        started = time.perf_counter()
        if self.jobs == 1 or len(pending) <= 1:
            self._run_serial(pending)
        else:
            self._run_pool(pending)
        wall = time.perf_counter() - started
        self._validate()
        self.last_report = SweepReport(
            jobs=self.jobs,
            unique_points=len(pending),
            duplicate_hits=self.duplicate_hits,
            cached_hits=cached,
            wall_seconds=wall,
            point_seconds={self._points[fp].label: self._point_seconds[fp]
                           for fp, _ in pending},
        )
        return self.last_report

    def _run_serial(self, pending: List[Tuple[str, RunSpec]]) -> None:
        for fp, spec in pending:
            try:
                result, seconds = self._worker(
                    spec.config, spec.workload.programs,
                    spec.workload.initial_memory)
            except Exception as exc:
                raise SweepError(
                    f"sweep point {spec.label!r} "
                    f"({spec.config.describe()}) failed: {exc}") from exc
            self._results[fp] = result
            self._point_seconds[fp] = seconds

    def _run_pool(self, pending: List[Tuple[str, RunSpec]]) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                fp: pool.submit(self._worker, spec.config,
                                spec.workload.programs,
                                spec.workload.initial_memory)
                for fp, spec in pending
            }
            for fp, spec in pending:
                try:
                    result, seconds = futures[fp].result()
                except BrokenProcessPool as exc:
                    raise SweepError(
                        f"worker process died while simulating "
                        f"{spec.label!r} ({spec.config.describe()}); "
                        "rerun with --jobs 1 to debug in-process") from exc
                except Exception as exc:
                    raise SweepError(
                        f"sweep point {spec.label!r} "
                        f"({spec.config.describe()}) failed: {exc}") from exc
                self._results[fp] = result
                self._point_seconds[fp] = seconds

    def _validate(self) -> None:
        """Run each spec's workload validation once, in the parent."""
        for exp_id, grid in self._grids.items():
            for fp, spec in grid:
                key = (exp_id, spec.label)
                if not spec.check or key in self._checked:
                    continue
                if fp not in self._results:
                    continue
                try:
                    spec.workload.check(self._results[fp])
                except AssertionError as exc:
                    raise SweepError(
                        f"sweep point {spec.label!r} in {exp_id} produced a "
                        f"wrong answer: {exc}") from exc
                self._checked.add(key)

    # ------------------------------------------------------------- results

    def results_for(self, exp_id: str) -> Dict[str, SystemResult]:
        """Label -> result mapping for one registered experiment."""
        grid = self._grids[exp_id]
        missing = [spec.label for fp, spec in grid if fp not in self._results]
        if missing:
            raise SweepError(
                f"{exp_id}: points {missing} not simulated yet; call run()")
        return {spec.label: self._results[fp] for fp, spec in grid}


def execute_specs(specs: List[RunSpec], jobs: int = 1
                  ) -> Dict[str, SystemResult]:
    """One-shot helper: run a single grid and return label -> result."""
    scheduler = SweepScheduler(jobs=jobs)
    scheduler.add("adhoc", specs)
    scheduler.run()
    return scheduler.results_for("adhoc")

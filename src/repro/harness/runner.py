"""Shared run helpers for experiments, examples and benchmarks."""

from __future__ import annotations

from typing import Dict

from repro.sim.config import ConsistencyModel, SpeculationMode, SystemConfig
from repro.system import SystemResult, run_system
from repro.workloads.base import Workload


def run_workload(config: SystemConfig, workload: Workload,
                 check: bool = True) -> SystemResult:
    """Run one workload on one configuration, validating the answer."""
    if len(workload.programs) != config.n_cores:
        raise ValueError(
            f"workload {workload.name!r} has {len(workload.programs)} threads "
            f"but config has {config.n_cores} cores"
        )
    result = run_system(config, workload.programs, workload.initial_memory)
    if check:
        workload.check(result)
    return result


def compare_configs(workload: Workload,
                    configs: Dict[str, SystemConfig],
                    check: bool = True) -> Dict[str, SystemResult]:
    """Run one workload under several named configurations."""
    return {name: run_workload(cfg, workload, check=check)
            for name, cfg in configs.items()}


def six_point_configs(base: SystemConfig,
                      mode: SpeculationMode = SpeculationMode.ON_DEMAND
                      ) -> Dict[str, SystemConfig]:
    """The paper's main comparison grid: {SC,TSO,RMO} x {base, InvisiFence}."""
    grid: Dict[str, SystemConfig] = {}
    for model in ConsistencyModel:
        grid[f"base-{model.value}"] = (
            base.with_consistency(model).with_speculation(SpeculationMode.NONE))
        grid[f"if-{model.value}"] = (
            base.with_consistency(model).with_speculation(mode))
    return grid

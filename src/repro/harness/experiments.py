"""The reproduced experiments, one declared run grid per table/figure.

Each experiment is an :class:`Experiment` with two phases:

* ``plan(**kwargs)`` declares the run grid -- a list of named
  :class:`~repro.harness.parallel.RunSpec` points, each an independent
  ``(SystemConfig, Workload)`` simulation;
* ``build(results, **kwargs)`` consumes a ``label -> SystemResult``
  mapping and assembles the :class:`ExperimentResult` whose rows
  regenerate the paper artifact's data (``render()`` prints the table).

Splitting the phases lets one shared
:class:`~repro.harness.parallel.SweepScheduler` deduplicate identical
points across experiments (the six-point grids repeat ``base-rmo`` etc.
constantly) and execute unique points concurrently.  Calling an
experiment directly -- ``e2_transparency(n_cores=8)`` -- still works and
runs its own grid, serially by default (``jobs=`` or the ``REPRO_JOBS``
environment variable fan it out).  Benchmarks in ``benchmarks/`` call
these and assert the qualitative shape; EXPERIMENTS.md records the
measured numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Sequence

from repro.analysis.breakdown import system_breakdown
from repro.analysis.tables import ascii_table
from repro.baselines.per_store import PerStoreDesign, coverage_at_depth
from repro.core.storage import StorageModel
from repro.cpu.core import StallCause
from repro.harness.parallel import RunSpec, execute_specs
from repro.harness.runner import six_point_configs
from repro.sim.config import (
    CacheConfig,
    ConsistencyModel,
    SpeculationMode,
    SystemConfig,
    ViolationGranularity,
)
from repro.sim.stats import Histogram
from repro.system import SystemResult
from repro.workloads import randmix
from repro.workloads.suite import SUITE_NAMES, standard_suite

#: Result mapping handed to every experiment's ``build`` phase.
Results = Mapping[str, SystemResult]


@dataclass
class ExperimentResult:
    """Rows + metadata for one reproduced table/figure."""

    exp_id: str
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: str = ""
    data: Dict = field(default_factory=dict)

    def render(self) -> str:
        table = ascii_table(self.headers, self.rows,
                            title=f"[{self.exp_id}] {self.title}")
        if self.notes:
            table += f"\n  note: {self.notes}"
        return table

    def to_csv(self) -> str:
        """The table as CSV (for plotting outside the repo)."""
        from repro.analysis.tables import to_csv
        return to_csv(self.headers, self.rows)

    def write_csv(self, directory: str) -> str:
        """Write ``<exp_id>.csv`` into ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.exp_id.lower()}.csv")
        with open(path, "w") as handle:
            handle.write(self.to_csv())
        return path


class Experiment:
    """One reproduced artifact: a declared run grid plus a result builder.

    Instances are callable with the experiment's historical signature
    (``e2_transparency(n_cores=4, scale=0.3)``); the call plans the
    grid, executes it (serially unless ``jobs``/``REPRO_JOBS`` says
    otherwise), and builds the table.  ``plan``/``build`` stay exposed
    for the shared-scheduler path in ``examples/run_experiments.py``.
    """

    def __init__(self, exp_id: str,
                 plan: Callable[..., List[RunSpec]],
                 build: Callable[..., ExperimentResult]):
        self.exp_id = exp_id
        self.plan = plan
        self.build = build
        self.__name__ = build.__name__.replace("_build", "")
        self.__doc__ = build.__doc__

    def __call__(self, jobs: int = None, **kwargs) -> ExperimentResult:
        if jobs is None:
            jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
        results = execute_specs(self.plan(**kwargs), jobs=jobs)
        return self.build(results, **kwargs)

    def __repr__(self) -> str:
        return f"<Experiment {self.exp_id}>"


def _default_config(n_cores: int) -> SystemConfig:
    return SystemConfig(n_cores=n_cores)


# --------------------------------------------------------------------- E1

def e1_plan(n_cores: int = 8, scale: float = 1.0) -> List[RunSpec]:
    specs = []
    for name, workload in standard_suite(n_cores, scale).items():
        for model in ConsistencyModel:
            specs.append(RunSpec(
                label=f"{name}|{model.value}",
                config=_default_config(n_cores).with_consistency(model),
                workload=workload))
    return specs


def e1_build(results: Results, n_cores: int = 8,
             scale: float = 1.0) -> ExperimentResult:
    """Fig.1-style: where conventional implementations spend their time.

    For each workload x {SC, TSO, RMO}: fraction of core-cycles in busy
    work, memory stalls, and ordering stalls (fence/atomic/SC-wait).
    Claim reproduced: SC pays heavily everywhere; TSO and even RMO still
    pay at fences and atomics.
    """
    result = ExperimentResult(
        exp_id="E1",
        title="Ordering-stall time breakdown (conventional baselines)",
        headers=["workload", "model", "busy%", "memory%", "fence%",
                 "atomic%", "sc-wait%", "ordering% (total)"],
    )
    for name in SUITE_NAMES:
        for model in ConsistencyModel:
            run = results[f"{name}|{model.value}"]
            bd = system_breakdown(run)
            result.rows.append([
                name, model.value,
                round(100 * bd.fraction("busy"), 1),
                round(100 * bd.fraction(StallCause.MEMORY.value), 1),
                round(100 * bd.fraction(StallCause.FENCE.value), 1),
                round(100 * bd.fraction(StallCause.ATOMIC.value), 1),
                round(100 * bd.fraction(StallCause.SC_ORDER.value), 1),
                round(100 * bd.ordering_fraction, 1),
            ])
            result.data[(name, model.value)] = bd
    return result


# --------------------------------------------------------------------- E2

_E2_POINTS = ("base-sc", "base-tso", "base-rmo", "if-sc", "if-tso", "if-rmo")


def e2_plan(n_cores: int = 8, scale: float = 1.0,
            mode: SpeculationMode = SpeculationMode.ON_DEMAND
            ) -> List[RunSpec]:
    specs = []
    grid = six_point_configs(_default_config(n_cores), mode)
    for name, workload in standard_suite(n_cores, scale).items():
        for label, cfg in grid.items():
            specs.append(RunSpec(f"{name}|{label}", cfg, workload))
    return specs


def e2_build(results: Results, n_cores: int = 8, scale: float = 1.0,
             mode: SpeculationMode = SpeculationMode.ON_DEMAND
             ) -> ExperimentResult:
    """The headline figure: InvisiFence makes ordering transparent.

    Runtime of {SC, TSO, RMO} x {base, IF} normalised to base-RMO
    (lower is better).  Claims reproduced: base-SC is clearly slower
    than base-RMO; all three IF variants land within a few percent of
    one another and at (or below) base-RMO.
    """
    result = ExperimentResult(
        exp_id="E2",
        title="Normalised runtime (base-RMO = 1.00, lower is better)",
        headers=["workload", "base-sc", "base-tso", "base-rmo",
                 "if-sc", "if-tso", "if-rmo"],
    )
    for name in SUITE_NAMES:
        cycles = {label: results[f"{name}|{label}"].cycles
                  for label in _E2_POINTS}
        baseline = cycles["base-rmo"]
        result.rows.append(
            [name] + [round(cycles[label] / baseline, 3)
                      for label in _E2_POINTS])
        result.data[name] = cycles
    return result


# --------------------------------------------------------------------- E3

_E3_MODES = (SpeculationMode.ON_DEMAND, SpeculationMode.CONTINUOUS)


def e3_plan(n_cores: int = 8, scale: float = 1.0) -> List[RunSpec]:
    specs = []
    for name, workload in standard_suite(n_cores, scale).items():
        for mode in _E3_MODES:
            specs.append(RunSpec(
                label=f"{name}|{mode.value}",
                config=_default_config(n_cores).with_speculation(mode),
                workload=workload))
    return specs


def e3_build(results: Results, n_cores: int = 8,
             scale: float = 1.0) -> ExperimentResult:
    """On-demand vs continuous speculation.

    Claims reproduced: both modes deliver the transparency win;
    on-demand speculates less (fewer episodes, fewer violations),
    continuous decouples enforcement (more episodes, more exposure).
    """
    result = ExperimentResult(
        exp_id="E3",
        title="Speculation modes: on-demand vs continuous",
        headers=["workload", "mode", "cycles", "episodes", "commits",
                 "violations", "wasted-instr"],
    )
    for name in SUITE_NAMES:
        for mode in _E3_MODES:
            run = results[f"{name}|{mode.value}"]
            episodes = int(run.stats.sum(
                f"spec.{i}.episodes" for i in range(n_cores)))
            wasted = int(run.stats.sum(
                f"spec.{i}.wasted_instructions" for i in range(n_cores)))
            result.rows.append([name, mode.value, run.cycles, episodes,
                                run.commits(), run.violations(), wasted])
            result.data[(name, mode.value)] = run
    return result


# ------------------------------------------------------- MEM bench grid

#: Sharing-heavy subset of the suite used by the MEM bench grid: the
#: fence-bound communication workload plus both barrier kernels, whose
#: runtime is dominated by coherence traffic rather than local compute.
_MEM_WORKLOADS = ("producer-consumer", "barrier-stencil", "barrier-reduction")


def mem_plan(n_cores: int = 8, scale: float = 1.0) -> List[RunSpec]:
    """Coherence-heavy bench grid: the sharing-bound workloads crossed
    with the E2 six-point configs plus the E3 speculation modes.

    This is a *bench* grid -- an events/sec tracking target for the
    memory-system fast path (message dispatch, block transfers, LRU,
    store-buffer forwarding all run hot here) -- not a reproduced
    figure, so there is no ``mem_build``.
    """
    suite = standard_suite(n_cores, scale)
    grid = six_point_configs(_default_config(n_cores), SpeculationMode.ON_DEMAND)
    specs = []
    for name in _MEM_WORKLOADS:
        workload = suite[name]
        for label, cfg in grid.items():
            specs.append(RunSpec(f"{name}|{label}", cfg, workload))
        for mode in _E3_MODES:
            specs.append(RunSpec(
                f"{name}|{mode.value}",
                _default_config(n_cores).with_speculation(mode),
                workload))
    return specs


# --------------------------------------------------------------------- E4

_E4_L1_SIZES_KB = (2, 4, 16, 64)


def _e4_sharing_workload(n_cores: int):
    return randmix.read_side_false_sharing(n_readers=n_cores - 1,
                                           iterations=40)


def _e4_capacity_workload(n_cores: int):
    return randmix.random_mix(n_cores, n_instructions=300, seed=7,
                              private_words=512, shared_words=0,
                              pct_store=0.5, pct_load=0.2, pct_fence=0.1,
                              pct_atomic=0.0)


def e4_plan(n_cores: int = 4) -> List[RunSpec]:
    specs = []
    # (a) granularity ablation on read-side false sharing
    wl = _e4_sharing_workload(n_cores)
    for granularity in ViolationGranularity:
        config = _default_config(n_cores).with_speculation(
            SpeculationMode.ON_DEMAND, granularity=granularity)
        specs.append(RunSpec(f"granularity|{granularity.value}", config, wl))
    # (b) L1-size sweep on a store-heavy workload (capacity pressure)
    wl = _e4_capacity_workload(n_cores)
    for size_kb in _E4_L1_SIZES_KB:
        l1 = CacheConfig(size_bytes=size_kb * 1024, assoc=4, block_bytes=64)
        config = SystemConfig(n_cores=n_cores, l1=l1).with_speculation(
            SpeculationMode.ON_DEMAND)
        specs.append(RunSpec(f"l1|{size_kb}", config, wl))
    return specs


def e4_build(results: Results, n_cores: int = 4) -> ExperimentResult:
    """Violation characterisation: sharing conflicts, false sharing,
    and L1-capacity pressure.

    Claims reproduced: (a) false sharing causes block-granularity aborts
    that the idealised word oracle avoids; (b) shrinking the L1 converts
    speculative footprint into capacity-eviction violations.
    """
    result = ExperimentResult(
        exp_id="E4",
        title="Violation sources: granularity and capacity",
        headers=["workload", "variant", "cycles", "violations",
                 "viol-external", "viol-capacity"],
    )

    def viol_by(run, reason: str) -> int:
        return int(run.stats.sum(
            f"spec.{i}.violations.{reason}" for i in range(n_cores)))

    for granularity in ViolationGranularity:
        run = results[f"granularity|{granularity.value}"]
        result.rows.append([
            "read-side-false-sharing", f"granularity={granularity.value}",
            run.cycles, run.violations(),
            viol_by(run, "external-invalidation"),
            viol_by(run, "capacity-eviction"),
        ])
        result.data[("granularity", granularity.value)] = run
    for size_kb in _E4_L1_SIZES_KB:
        run = results[f"l1|{size_kb}"]
        result.rows.append([
            "random-mix", f"L1={size_kb}KB", run.cycles, run.violations(),
            viol_by(run, "external-invalidation"),
            viol_by(run, "capacity-eviction"),
        ])
        result.data[("l1_kb", size_kb)] = run
    return result


# --------------------------------------------------------------------- E5

_E5_DENSITIES = (1, 2, 4, 8, 16)
_E5_PENALTIES = (0, 8, 32, 128)


def _e5_conflict_workload(n_cores: int):
    return randmix.false_sharing(min(n_cores, 8), iterations=40,
                                 fence_every=2)


def e5_plan(n_cores: int = 8) -> List[RunSpec]:
    specs = []
    for ops_per_fence in _E5_DENSITIES:
        wl = randmix.fence_density_sweep_program(
            n_cores, work_units=60, ops_per_fence=ops_per_fence)
        specs.append(RunSpec(f"density|{ops_per_fence}|base",
                             _default_config(n_cores), wl))
        specs.append(RunSpec(
            f"density|{ops_per_fence}|if",
            _default_config(n_cores).with_speculation(
                SpeculationMode.ON_DEMAND), wl))
    conflict_cores = min(n_cores, 8)
    wl = _e5_conflict_workload(n_cores)
    specs.append(RunSpec("penalty|base", _default_config(conflict_cores), wl))
    for penalty in _E5_PENALTIES:
        config = _default_config(conflict_cores).with_speculation(
            SpeculationMode.ON_DEMAND, rollback_penalty=penalty)
        specs.append(RunSpec(f"penalty|{penalty}", config, wl))
    return specs


def e5_build(results: Results, n_cores: int = 8) -> ExperimentResult:
    """Sensitivity: rollback penalty and fence density.

    Claims reproduced: the speedup is robust across rollback penalties
    when violations are rare, and grows with fence density (the more
    ordering the baseline pays for, the more InvisiFence recovers).
    """
    result = ExperimentResult(
        exp_id="E5",
        title="Sensitivity to rollback penalty and fence density",
        headers=["sweep", "point", "base cycles", "if cycles", "speedup"],
    )
    for ops_per_fence in _E5_DENSITIES:
        base = results[f"density|{ops_per_fence}|base"]
        invisi = results[f"density|{ops_per_fence}|if"]
        result.rows.append([
            "fence-density", f"1/{ops_per_fence} ops",
            base.cycles, invisi.cycles,
            round(base.cycles / invisi.cycles, 3),
        ])
        result.data[("density", ops_per_fence)] = (base, invisi)
    base = results["penalty|base"]
    for penalty in _E5_PENALTIES:
        run = results[f"penalty|{penalty}"]
        result.rows.append([
            "rollback-penalty", f"{penalty} cycles",
            base.cycles, run.cycles,
            round(base.cycles / run.cycles, 3),
        ])
        result.data[("penalty", penalty)] = run
    return result


# --------------------------------------------------------------------- E6

def e6_plan(n_cores: int = 8, scale: float = 1.0) -> List[RunSpec]:
    # Measured episode depths: how deep does real speculation get?
    # Continuous mode is the probe -- its checkpoint-to-checkpoint
    # windows are what a per-store design would have to buffer.  (These
    # points coincide with E3's continuous runs, so a shared scheduler
    # simulates them once for both experiments.)
    specs = []
    for name, workload in standard_suite(n_cores, scale).items():
        config = _default_config(n_cores).with_speculation(
            SpeculationMode.CONTINUOUS)
        specs.append(RunSpec(f"continuous|{name}", config, workload))
    return specs


def e6_build(results: Results, n_cores: int = 8,
             scale: float = 1.0) -> ExperimentResult:
    """The ~1 KB storage claim, against per-store designs.

    Per-store storage grows linearly with supported depth; InvisiFence
    is constant (2 bits/L1 block + checkpoint ~= 1 KB for a 64 KB L1) and
    its effective capacity -- measured episode footprints -- is covered
    by construction.
    """
    l1 = CacheConfig()
    model = StorageModel(l1)
    result = ExperimentResult(
        exp_id="E6",
        title="Speculative-state storage vs supported depth (bytes/core)",
        headers=["supported depth (stores)", "per-store design (B)",
                 "InvisiFence (B)", "per-store / InvisiFence"],
        notes=(f"InvisiFence breakdown: {model.breakdown_bits()} -> "
               f"{model.total_bytes:.0f} B total"),
    )
    invisi_bytes = model.total_bytes
    for depth in (8, 16, 32, 64, 128, 256, 512):
        per_store = PerStoreDesign(depth).storage_bytes
        result.rows.append([
            depth, round(per_store, 0), round(invisi_bytes, 0),
            round(per_store / invisi_bytes, 2),
        ])
    merged = Histogram("episode_stores.merged")
    for name in SUITE_NAMES:
        run = results[f"continuous|{name}"]
        for i in range(n_cores):
            hist = run.stats.get(f"spec.{i}.episode_stores")
            for edge, count in hist.items():
                merged.add(edge, count)
    result.data["episode_stores"] = merged
    result.data["invisifence_bytes"] = invisi_bytes
    if merged.count:
        result.notes += (
            f"; measured episodes: mean {merged.mean:.1f} spec stores, "
            f"p99 <= {merged.percentile(0.99)}, depth-8 per-store coverage "
            f"{100 * coverage_at_depth(merged, 8):.0f}%"
        )
    return result


# --------------------------------------------------------------------- E7

_E7_WORKLOADS = ("producer-consumer", "locks-ticket")


def e7_plan(scale: float = 1.0,
            core_counts: Sequence[int] = (2, 4, 8),
            arbitration_latency: int = 40) -> List[RunSpec]:
    specs = []
    for n in core_counts:
        suite = standard_suite(n, scale)
        for name in _E7_WORKLOADS:
            workload = suite[name]
            specs.append(RunSpec(
                f"{n}|{name}|local",
                _default_config(n).with_speculation(SpeculationMode.ON_DEMAND),
                workload))
            specs.append(RunSpec(
                f"{n}|{name}|arb",
                _default_config(n).with_speculation(
                    SpeculationMode.ON_DEMAND, commit_arbitration=True,
                    arbitration_latency=arbitration_latency),
                workload))
    return specs


def e7_build(results: Results, scale: float = 1.0,
             core_counts: Sequence[int] = (2, 4, 8),
             arbitration_latency: int = 40) -> ExperimentResult:
    """Local flash commit vs chunk-style global commit arbitration.

    Claim reproduced: arbitration extends the vulnerability window and
    serialises commits, costing cycles and extra violations -- and the
    gap grows with core count.
    """
    result = ExperimentResult(
        exp_id="E7",
        title="Commit: InvisiFence local vs global arbitration",
        headers=["cores", "workload", "local cycles", "arbitrated cycles",
                 "slowdown", "local viol", "arb viol"],
    )
    for n in core_counts:
        for name in _E7_WORKLOADS:
            local = results[f"{n}|{name}|local"]
            arb = results[f"{n}|{name}|arb"]
            result.rows.append([
                n, name, local.cycles, arb.cycles,
                round(arb.cycles / local.cycles, 3),
                local.violations(), arb.violations(),
            ])
            result.data[(n, name)] = (local, arb)
    return result


# --------------------------------------------------------------------- E8

_E8_ENTRIES = (1, 2, 4, 8, 16, 32)
_E8_WORKLOAD = "producer-consumer"


def e8_plan(n_cores: int = 8, scale: float = 1.0) -> List[RunSpec]:
    specs = []
    workload = standard_suite(n_cores, scale)[_E8_WORKLOAD]
    for entries in _E8_ENTRIES:
        base_cfg = SystemConfig(n_cores=n_cores).with_consistency(
            ConsistencyModel.TSO)
        base_cfg = replace(base_cfg, core=replace(
            base_cfg.core, store_buffer_entries=entries))
        specs.append(RunSpec(f"sb{entries}|base", base_cfg, workload))
        specs.append(RunSpec(
            f"sb{entries}|if",
            base_cfg.with_speculation(SpeculationMode.ON_DEMAND), workload))
    return specs


def e8_build(results: Results, n_cores: int = 8,
             scale: float = 1.0) -> ExperimentResult:
    """Store-buffer-depth sensitivity: base TSO vs InvisiFence.

    Claim reproduced: the conventional machine wants deeper buffers
    (fence drains hurt more when the buffer backs up), while InvisiFence
    is largely insensitive -- ordering is off the critical path.
    """
    result = ExperimentResult(
        exp_id="E8",
        title="Runtime vs store-buffer entries (TSO)",
        headers=["sb entries", "workload", "base cycles", "if cycles",
                 "base/if"],
    )
    for entries in _E8_ENTRIES:
        base = results[f"sb{entries}|base"]
        invisi = results[f"sb{entries}|if"]
        result.rows.append([
            entries, _E8_WORKLOAD, base.cycles, invisi.cycles,
            round(base.cycles / invisi.cycles, 3),
        ])
        result.data[entries] = (base, invisi)
    return result


# --------------------------------------------------------------------- E9

_E9_WORKLOADS = ("locks-ticket", "barrier-stencil")


def e9_plan(core_counts: Sequence[int] = (2, 4, 8, 16),
            scale: float = 1.0) -> List[RunSpec]:
    specs = []
    for n in core_counts:
        suite = standard_suite(n, scale)
        for name in _E9_WORKLOADS:
            workload = suite[name]
            specs.append(RunSpec(
                f"{n}|{name}|base-sc",
                _default_config(n).with_consistency(ConsistencyModel.SC),
                workload))
            specs.append(RunSpec(
                f"{n}|{name}|base-rmo",
                _default_config(n).with_consistency(ConsistencyModel.RMO),
                workload))
            specs.append(RunSpec(
                f"{n}|{name}|if-sc",
                _default_config(n).with_consistency(ConsistencyModel.SC)
                .with_speculation(SpeculationMode.ON_DEMAND),
                workload))
    return specs


def e9_build(results: Results,
             core_counts: Sequence[int] = (2, 4, 8, 16),
             scale: float = 1.0) -> ExperimentResult:
    """Does the transparency win persist as the machine grows?"""
    result = ExperimentResult(
        exp_id="E9",
        title="Scaling: base-SC / base-RMO / IF-SC runtime by core count",
        headers=["cores", "workload", "base-sc", "base-rmo", "if-sc",
                 "if-sc vs base-sc speedup"],
    )
    for n in core_counts:
        for name in _E9_WORKLOADS:
            base_sc = results[f"{n}|{name}|base-sc"]
            base_rmo = results[f"{n}|{name}|base-rmo"]
            if_sc = results[f"{n}|{name}|if-sc"]
            result.rows.append([
                n, name, base_sc.cycles, base_rmo.cycles, if_sc.cycles,
                round(base_sc.cycles / if_sc.cycles, 3),
            ])
            result.data[(n, name)] = (base_sc, base_rmo, if_sc)
    return result


# -------------------------------------------------------------------- E10

def e10_plan() -> List[RunSpec]:
    return []


def e10_build(results: Results = None) -> ExperimentResult:
    """Table-2-style system parameters plus simulator characterisation."""
    config = SystemConfig()
    result = ExperimentResult(
        exp_id="E10",
        title="Simulated system parameters",
        headers=["parameter", "value"],
    )
    storage = StorageModel(config.l1)
    result.rows = [
        ["cores", f"{config.n_cores} in-order, single-issue"],
        ["store buffer", f"{config.core.store_buffer_entries} entries, FIFO, "
                         "forwarding"],
        ["L1 D-cache", f"{config.l1.size_bytes // 1024} KB, "
                       f"{config.l1.assoc}-way, {config.l1.block_bytes} B blocks, "
                       f"{config.l1.hit_latency}-cycle hit"],
        ["coherence", "MESI, blocking directory, directory-mediated data"],
        ["shared L2", f"inclusive, {config.memory.l2_hit_latency}-cycle hit"],
        ["DRAM", f"{config.memory.dram_latency} cycles (cold miss)"],
        ["interconnect", f"crossbar, {config.interconnect.link_latency}-cycle "
                         "links, FIFO per (src,dst)"],
        ["consistency models", "SC, TSO, RMO"],
        ["speculation modes", "on-demand, continuous"],
        ["rollback penalty", f"{config.speculation.rollback_penalty} cycles"],
        ["IF storage/core", f"{storage.total_bytes:.0f} B "
                            f"({storage.breakdown_bits()})"],
    ]
    result.data["config"] = config
    return result


# -------------------------------------------------------------------- E11

def e11_plan(n_programs: int = 6, seed: int = 0) -> List[RunSpec]:
    # Fuzz runs are sub-millisecond simulations driven by the shrinking
    # loop; they run in build rather than through the shared scheduler.
    return []


def e11_build(results: Results = None, n_programs: int = 6,
              seed: int = 0) -> ExperimentResult:
    """Consistency-fuzz summary: the speculation machinery is invisible.

    Sweeps seeded random litmus programs over every consistency model x
    speculation mode x timing skew and checks each recorded execution
    against its own model's ordering axioms -- zero violations expected.
    Two deliberately broken machines (injected, test-only) demonstrate
    the pipeline catches real bugs and shrinks them to litmus size.
    """
    from repro.verification.fuzz import fuzz_sweep

    result = ExperimentResult(
        exp_id="E11",
        title="Consistency fuzzing: violations by model and injection",
        headers=["machine", "model", "cases", "violations",
                 "shrunk reproducer"],
    )
    for model in ConsistencyModel:
        report = fuzz_sweep(n_programs=n_programs, seed=seed,
                            models=[model], stop_after=None)
        result.rows.append(
            ["faithful", model.value.upper(), report.cases_run,
             len(report.failures), "-"])
        result.data[f"clean-{model.value}"] = report
    for inject, model in (("sc-load-no-drain", ConsistencyModel.SC),
                          ("stale-forward", ConsistencyModel.TSO)):
        report = fuzz_sweep(n_programs=4 * n_programs, seed=seed + 1,
                            ops_per_thread=10, models=[model],
                            inject=inject)
        shrunk = (f"{report.failures[0].shrunk.instruction_count()} instrs"
                  if report.failures else "NOT CAUGHT")
        result.rows.append(
            [f"broken ({inject})", model.value.upper(), report.cases_run,
             len(report.failures), shrunk])
        result.data[f"inject-{inject}"] = report
    result.notes = ("faithful machines must show 0 violations; "
                    "broken ones must be caught and shrunk")
    return result


# -------------------------------------------------------------------- E12

def e12_plan(n_programs: int = 4, seed: int = 0) -> List[RunSpec]:
    # Like E11, the grid is driven in build: each point needs the live
    # system's fault/retry counters, not just its SystemResult.
    return []


def e12_build(results: Results = None, n_programs: int = 4,
              seed: int = 0) -> ExperimentResult:
    """Fault-injection matrix: ordering survives an unreliable network.

    Runs seeded random litmus programs under every fault scenario
    (delay jitter, duplication, link stalls, drop-with-NACK-and-retry,
    and a combined storm) crossed with every consistency model and
    speculation mode, each under a liveness watchdog.  Every execution
    must pass its own model's ordering axioms: the retry/duplicate
    machinery may change *timing*, never *order*.
    """
    from repro.faults.plan import fault_scenarios
    from repro.verification.fuzz import (
        SKEW_CHOICES,
        SWEEP_SPECS,
        FuzzCase,
        execute_case,
    )
    from repro.workloads.randmix import random_litmus_ops
    import random as _random

    result = ExperimentResult(
        exp_id="E12",
        title="Fault injection: ordering checks under an unreliable network",
        headers=["scenario", "model", "runs", "checks passed", "retries",
                 "dups suppressed", "faults injected"],
    )
    rng = _random.Random(seed)
    cases = []
    for _ in range(n_programs):
        prog_seed = rng.randrange(2 ** 31)
        threads = tuple(tuple(ops) for ops in
                        random_litmus_ops(2, 6, seed=prog_seed))
        skews = tuple(rng.choice(SKEW_CHOICES) for _ in range(2))
        cases.append((threads, skews, prog_seed))
    scenarios = fault_scenarios(seed=seed)
    for scenario, plan in scenarios.items():
        for model in ConsistencyModel:
            runs = passed = retries = dups = injected = 0
            for threads, skews, prog_seed in cases:
                for si, spec in enumerate(SWEEP_SPECS):
                    # Reseed the plan per run: a litmus run sends only a
                    # few dozen messages, so a single shared RNG prefix
                    # would make rare faults fire never or always.
                    run_plan = None
                    if plan.active:
                        run_plan = replace(plan,
                                           seed=(prog_seed * 31 + si)
                                           & 0x7FFFFFFF)
                    case = FuzzCase(
                        threads=threads, model=model, spec=spec,
                        skews=skews, seed=prog_seed,
                        fault_plan=run_plan)
                    system, _report = execute_case(case)
                    runs += 1
                    passed += 1  # execute_case raises on violation
                    stats = system.stats
                    n = system.config.n_cores
                    retries += int(stats.sum(
                        [f"l1.{i}.retries" for i in range(n)]
                        + ["dir.retries"]))
                    dups += int(stats.sum(
                        [f"l1.{i}.dups_suppressed" for i in range(n)]
                        + ["dir.dups_suppressed"]))
                    injected += int(stats.sum(
                        ["faults.dropped", "faults.duplicated",
                         "faults.stalls", "faults.delayed"]))
            result.rows.append(
                [scenario, model.value.upper(), runs, passed,
                 retries, dups, injected])
            result.data[f"{scenario}-{model.value}"] = {
                "runs": runs, "passed": passed, "retries": retries,
                "dups_suppressed": dups, "faults_injected": injected,
            }
    result.notes = ("every run passes its model's ordering axioms under "
                    "a liveness watchdog; faults shift timing, not order")
    return result


# -------------------------------------------------------------------- E13

def e13_plan(seed: int = 0, max_queries: int = 200,
             skew_retries: int = 2) -> List[RunSpec]:
    # Synthesis drives its own litmus-sized simulations (the oracle's
    # dynamic layer and the cycle-cost probes); nothing for the shared
    # scheduler.
    return []


def e13_build(results: Results = None, seed: int = 0,
              max_queries: int = 200,
              skew_retries: int = 2) -> ExperimentResult:
    """Fence synthesis: minimal fence sets and their cost vs. speculation.

    For each canonical fence-free litmus shape (SB, MP, LB) and each
    stronger target model (SC, TSO), synthesize the minimal fence set
    that restores the target on the RMO machine, then measure what the
    synthesized fences cost in cycles with speculation off vs.
    InvisiFence ON_DEMAND / CONTINUOUS.  This is the paper's headline
    read from the other side: the conventional fix for relaxed-memory
    bugs is fences, whose StoreLoad drains stall the core -- speculation
    makes the *same fences* (nearly) free, so "performance-transparent
    memory ordering" means the synthesized repair costs no performance.
    """
    from repro.verification.fuzz import SWEEP_SPECS
    from repro.verification.synth import fence_cost, synthesize_fences
    from repro.workloads.litmus import canonical_litmus_ir

    result = ExperimentResult(
        exp_id="E13",
        title="Fence synthesis: minimal fences and cycle cost vs. speculation",
        headers=["workload", "target", "synthesized fences", "count",
                 "cyc unfenced", "cyc spec=none", "cyc on-demand",
                 "cyc continuous"],
    )
    for name, threads in canonical_litmus_ir().items():
        for target in (ConsistencyModel.SC, ConsistencyModel.TSO):
            synth = synthesize_fences(threads, target, seed=seed,
                                      max_queries=max_queries,
                                      skew_retries=skew_retries)
            fences = (", ".join(p.describe() for p in synth.placements)
                      or "none")
            unfenced = fence_cost(threads, ())
            costs = {spec: fence_cost(threads, synth.placements, spec=spec)
                     for spec in SWEEP_SPECS}
            result.rows.append(
                [name, target.value.upper(), fences, synth.fence_count,
                 unfenced,
                 costs[SpeculationMode.NONE],
                 costs[SpeculationMode.ON_DEMAND],
                 costs[SpeculationMode.CONTINUOUS]])
            result.data[f"{name}-{target.value}"] = {
                "synthesis": synth,
                "cycles_unfenced": unfenced,
                "cycles": {spec.value: costs[spec] for spec in SWEEP_SPECS},
            }
    result.notes = ("fences synthesized from RMO by the two-layer oracle "
                    "(exhaustive witnesses + machine sweep); only "
                    "StoreLoad/FULL fences drain the store buffer, so "
                    "speculation wins back exactly those stalls")
    return result


# -------------------------------------------------------------------- E14

#: Node-fault modes E14 sweeps (names from node_fault_scenarios).
E14_NODE_MODES = ("crash", "pause", "pause-crash")
#: Chaos window sized to the protocol workloads' runtimes (the shortest,
#: gossip, finishes near cycle 850 -- faults past that would be no-ops).
E14_WINDOW = (250, 700)
E14_PAUSE_CYCLES = (150, 450)


def _e14_link_plans(seed: int) -> Dict[str, "object"]:
    from repro.faults.plan import FaultPlan
    return {
        "clean": None,
        "drop": FaultPlan(seed=seed, drop_prob=0.08),
        "jitter": FaultPlan(seed=seed, jitter_prob=0.25, max_jitter=7),
    }


def e14_plan(seeds: Sequence[int] = (0, 1, 2),
             n_cores: int = 4) -> List[RunSpec]:
    """The chaos grid: seeds x node-fault modes x link plans x protocols.

    Every point keeps ``check=True``, so the sweep scheduler runs each
    protocol workload's safety checker (election safety / gossip
    convergence / log agreement) on the perturbed result -- a property
    violation fails the sweep, not just a table cell.
    """
    from repro.faults.nodeplan import node_fault_scenarios
    from repro.workloads.protocols import protocol_suite

    specs = []
    config = SystemConfig(n_cores=n_cores)
    for seed in seeds:
        node_modes = node_fault_scenarios(
            seed=seed, n_cores=n_cores, window=E14_WINDOW,
            pause_cycles=E14_PAUSE_CYCLES)
        links = _e14_link_plans(seed)
        for mode in E14_NODE_MODES:
            for link_name, link_plan in links.items():
                for workload in protocol_suite(n_cores):
                    specs.append(RunSpec(
                        label=(f"{workload.name}/s{seed}/{mode}"
                               f"/{link_name}"),
                        config=config, workload=workload,
                        fault_plan=link_plan,
                        node_plan=node_modes[mode]))
    return specs


def _e14_directed_scenarios(n_cores: int = 4) -> Dict:
    """The two directed chaos demonstrations that ride along with the grid.

    * **fail-stop deadlock**: one dropped coherence request with retries
      disabled (the PR 4 watchdog demo) *plus* a crash-stopped third
      core -- the resulting :class:`~repro.faults.DeadlockError` dump
      must name the dead node, so a chaos hang is diagnosable at a
      glance;
    * **recovery**: a paused gossip core resumes mid-protocol, rejoins,
      and the convergence property still holds -- fail-recover is a real
      recovery, not a euphemism for a crash.
    """
    from repro.faults import (CRASH, PAUSE, DeadlockError, FaultPlan,
                              NodeFault, NodeFaultPlan, Watchdog)
    from repro.isa.program import Assembler
    from repro.system import System
    from repro.workloads.protocols import gossip

    out: Dict = {}

    # --- fail-stop deadlock: the dump names the crashed core ----------
    programs = []
    for tid in range(3):
        asm = Assembler(f"chaos-demo.t{tid}")
        if tid == 2:
            asm.exec_(600)             # stay busy so the crash lands mid-run
        asm.li(1, 0x1_0000).li(2, tid + 1)
        asm.store(2, base=1, offset=8 * tid)
        asm.halt()
        programs.append(asm.build())
    link = FaultPlan(seed=0, drop_first_n=1, retries_enabled=False)
    node = NodeFaultPlan(seed=0, faults=(NodeFault(2, CRASH, 100),))
    system = System(SystemConfig(n_cores=3), programs, fault_plan=link,
                    node_plan=node)
    try:
        system.run(watchdog=Watchdog(system, check_interval=500))
    except DeadlockError as exc:
        dump = str(exc)
        if "CRASHED" not in dump or "core 2" not in dump:
            raise AssertionError(
                "fail-stop deadlock dump does not name the crashed core:\n"
                + dump)
        out["failstop"] = {"caught": True, "dump": dump}
    else:
        raise AssertionError(
            "directed fail-stop scenario unexpectedly completed")

    # --- recovery: a paused core resumes and the property holds -------
    workload = gossip(n_cores)
    node = NodeFaultPlan(seed=0, faults=(NodeFault(1, PAUSE, 300, 400),))
    system = System(SystemConfig(n_cores=n_cores), workload.programs,
                    workload.initial_memory, node_plan=node)
    result = system.run(watchdog=Watchdog(system))
    snapshot = result.stats.snapshot()
    if snapshot.get("nodefaults.resumes", 0) < 1:
        raise AssertionError("recovery scenario never resumed its core")
    if result.crashed_core_ids():
        raise AssertionError("recovery scenario unexpectedly crashed a core")
    report = workload.checker(result, **workload.protocol_params)
    out["recovery"] = {"resumes": snapshot["nodefaults.resumes"],
                       "report": report, "cycles": result.cycles}
    return out


def e14_build(results: Results, seeds: Sequence[int] = (0, 1, 2),
              n_cores: int = 4) -> ExperimentResult:
    """Chaos matrix: protocol safety under node faults + link faults.

    Aggregates the grid per (node mode, link plan): every point's
    protocol checker must pass (the scheduler already enforced it; the
    build re-runs the checkers to count obligations and collect benign
    notes), and the fault counters show the chaos actually landed.
    Directed scenarios ride along: the fail-stop watchdog demo (the
    deadlock dump names the dead node) and a pause-resume recovery run.
    """
    from repro.workloads.protocols import protocol_suite

    result = ExperimentResult(
        exp_id="E14",
        title="Chaos layer: protocol safety under node + link faults",
        headers=["node mode", "link plan", "points", "props checked",
                 "crashes", "pauses", "resumes", "deferred",
                 "link faults", "retries"],
    )
    specs = e14_plan(seeds=seeds, n_cores=n_cores)
    checkers = {wl.name: (wl.checker, wl.protocol_params)
                for wl in protocol_suite(n_cores)}
    agg: Dict = {}
    for spec in specs:
        point = results[spec.label]
        mode, link = spec.label.rsplit("/", 2)[-2:]
        checker, params = checkers[spec.workload.name]
        report = checker(point, **params)
        stats = point.stats.snapshot()
        n = spec.config.n_cores
        row = agg.setdefault((mode, link), {
            "points": 0, "checked": 0, "crashes": 0, "pauses": 0,
            "resumes": 0, "deferred": 0, "link_faults": 0, "retries": 0,
            "notes": []})
        row["points"] += 1
        row["checked"] += report.checked
        row["crashes"] += int(stats.get("nodefaults.crashes", 0))
        row["pauses"] += int(stats.get("nodefaults.pauses", 0))
        row["resumes"] += int(stats.get("nodefaults.resumes", 0))
        row["deferred"] += int(stats.get("nodefaults.deferred", 0))
        row["link_faults"] += int(sum(
            stats.get(key, 0) for key in
            ("faults.dropped", "faults.duplicated", "faults.stalls",
             "faults.delayed")))
        row["retries"] += int(sum(
            stats.get(f"l1.{i}.retries", 0) for i in range(n))
            + stats.get("dir.retries", 0))
        row["notes"].extend(report.notes)
    for (mode, link), row in agg.items():
        result.rows.append(
            [mode, link, row["points"], row["checked"], row["crashes"],
             row["pauses"], row["resumes"], row["deferred"],
             row["link_faults"], row["retries"]])
        result.data[f"{mode}/{link}"] = row
    resumed = sum(row["resumes"] for (mode, _), row in agg.items()
                  if "pause" in mode)
    if resumed < 1:
        raise AssertionError(
            "no paused core ever resumed across the chaos grid -- "
            "fail-recover never actually recovered")
    result.data["directed"] = _e14_directed_scenarios(n_cores)
    result.notes = ("every grid point passed its protocol safety checker "
                    "under a liveness watchdog; the directed fail-stop "
                    "hang was caught with the dead node named in the "
                    f"dump, and {resumed} pause(s) recovered cleanly")
    return result


# -------------------------------------------------------------------- E15

#: Core counts the sharded-scaling grid sweeps.  gossip's rumor mask is
#: one 64-bit word (bit per thread), so gossip points stop at 64 cores;
#: the barrier stencil scales to all of them.
E15_CORE_COUNTS = (64, 128, 256)
E15_SHARDS = 4


def _e15_config(n_cores: int) -> SystemConfig:
    """Large-machine mesh point: 2D mesh (hop latency 4 -- also the
    sharded engine's lookahead window) with 8 interleaved directory
    homes so the directory is not a single serialisation point at 256
    cores."""
    from repro.sim.config import InterconnectConfig, Topology
    return replace(
        SystemConfig(n_cores=n_cores, n_homes=8),
        interconnect=InterconnectConfig(topology=Topology.MESH,
                                        mesh_hop_latency=4))


def _e15_workloads(n_cores: int) -> List:
    from repro.workloads.barriers import stencil
    from repro.workloads.protocols import gossip

    workloads = [stencil(n_cores, phases=2, cells_per_thread=4,
                         compute_cycles=2)]
    if n_cores <= 64:
        workloads.append(gossip(n_cores, repeat=1))
    return workloads


def e15_plan(core_counts: Sequence[int] = E15_CORE_COUNTS,
             shards: int = E15_SHARDS) -> List[RunSpec]:
    """Each (cores, workload) point twice: the serial oracle and the
    sharded engine (``shards`` workers).  Both keep ``check=True``, so
    the scheduler asserts the workload's answer on *both* engines --
    sharded correctness is enforced end-to-end, not just compared."""
    specs = []
    for n in core_counts:
        config = _e15_config(n)
        for workload in _e15_workloads(n):
            specs.append(RunSpec(f"{n}|{workload.name}|serial",
                                 config, workload))
            specs.append(RunSpec(f"{n}|{workload.name}|sharded",
                                 config, workload, shards=shards))
    return specs


def e15_build(results: Results,
              core_counts: Sequence[int] = E15_CORE_COUNTS,
              shards: int = E15_SHARDS) -> ExperimentResult:
    """Sharded large-machine scaling: 64-256 simulated cores on a mesh.

    For every point the table shows both engines' cycle/event counts,
    the sharded run's epoch telemetry, and whether the two fingerprints
    match bit for bit.  High-contention mesh points can settle
    same-cycle message ties differently from the serial engine (the
    documented oracle-grid boundary, docs/SHARDING.md), so the
    fingerprint column is evidence, not an assertion -- the asserted
    property is that both engines produce *correct* answers, which the
    sweep scheduler enforced via each workload's validator.
    """
    from repro.harness.parallel import result_fingerprint

    result = ExperimentResult(
        exp_id="E15",
        title=f"Sharded scaling on mesh ({shards} shards)",
        headers=["cores", "workload", "cycles", "sharded cycles",
                 "events", "sharded events", "epochs", "crossings",
                 "fingerprints"],
    )
    matches = 0
    total = 0
    for n in core_counts:
        for workload in _e15_workloads(n):
            serial = results[f"{n}|{workload.name}|serial"]
            sharded = results[f"{n}|{workload.name}|sharded"]
            telemetry = getattr(sharded, "sharding", {})
            match = result_fingerprint(serial) == result_fingerprint(sharded)
            total += 1
            matches += match
            result.rows.append([
                n, workload.name, serial.cycles, sharded.cycles,
                serial.events, sharded.events,
                telemetry.get("epochs", "-"), telemetry.get("crossings", "-"),
                "match" if match else "tie-divergent",
            ])
            result.data[(n, workload.name)] = (serial, sharded)
    result.notes = (
        f"both engines passed every workload validator; {matches}/{total} "
        "points bit-identical to the serial oracle (mesh link contention "
        "admits same-cycle ties the shard interleave may settle "
        "differently -- see docs/SHARDING.md for the exact-match grid)")
    return result


e1_ordering_breakdown = Experiment("E1", e1_plan, e1_build)
e2_transparency = Experiment("E2", e2_plan, e2_build)
e3_modes = Experiment("E3", e3_plan, e3_build)
e4_violations = Experiment("E4", e4_plan, e4_build)
e5_sensitivity = Experiment("E5", e5_plan, e5_build)
e6_storage = Experiment("E6", e6_plan, e6_build)
e7_commit_arbitration = Experiment("E7", e7_plan, e7_build)
e8_store_buffer = Experiment("E8", e8_plan, e8_build)
e9_scaling = Experiment("E9", e9_plan, e9_build)
e10_system_parameters = Experiment("E10", e10_plan, e10_build)
e11_consistency_fuzz = Experiment("E11", e11_plan, e11_build)
e12_fault_injection = Experiment("E12", e12_plan, e12_build)
e13_fence_synthesis = Experiment("E13", e13_plan, e13_build)
e14_chaos = Experiment("E14", e14_plan, e14_build)
e15_sharded_scaling = Experiment("E15", e15_plan, e15_build)


def all_experiments() -> Dict[str, Experiment]:
    """Registry used by the CLI example and the benchmark suite."""
    return {
        "E1": e1_ordering_breakdown,
        "E2": e2_transparency,
        "E3": e3_modes,
        "E4": e4_violations,
        "E5": e5_sensitivity,
        "E6": e6_storage,
        "E7": e7_commit_arbitration,
        "E8": e8_store_buffer,
        "E9": e9_scaling,
        "E10": e10_system_parameters,
        "E11": e11_consistency_fuzz,
        "E12": e12_fault_injection,
        "E13": e13_fence_synthesis,
        "E14": e14_chaos,
        "E15": e15_sharded_scaling,
    }

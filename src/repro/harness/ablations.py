"""Ablations of the design choices DESIGN.md calls out.

* A1 -- interconnect topology: crossbar vs 2D mesh (does the
  transparency result depend on an idealised fabric?);
* A2 -- store-buffer coalescing on/off;
* A3 -- rollback strategy: clean-before-write vs victim buffer;
* A4 -- exclusive store prefetch depth (the store-miss overlap knob);
* A5 -- speculate-past-release: triggerable via the new workloads
  (work-stealing, reader-writer) which stress rotating CAS targets;
* A6 -- energy-delay view: stall time removed vs speculative work
  wasted, through the first-order energy model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.harness.experiments import ExperimentResult, _default_config
from repro.harness.runner import run_workload
from repro.sim.config import (
    InterconnectConfig,
    RollbackStrategy,
    SpeculationMode,
    SystemConfig,
    Topology,
)
from repro.workloads import rwlock, tasks
from repro.workloads.suite import standard_suite


def a1_topology(n_cores: int = 8, scale: float = 1.0) -> ExperimentResult:
    """Crossbar vs 2D mesh: the headline result (InvisiFence-SC recovers
    conventional SC's loss) must survive a real NoC, not just an
    idealised crossbar."""
    from repro.sim.config import ConsistencyModel

    result = ExperimentResult(
        exp_id="A1",
        title="Interconnect ablation: base-SC vs IF-SC per fabric",
        headers=["workload", "fabric", "base-sc cycles", "if-sc cycles",
                 "speedup"],
    )
    suite = standard_suite(n_cores, scale)
    for name in ("streaming-writer", "producer-consumer", "locks-ticket"):
        workload = suite[name]
        for topology in Topology:
            base_cfg = replace(
                _default_config(n_cores).with_consistency(ConsistencyModel.SC),
                interconnect=InterconnectConfig(topology=topology))
            if_cfg = base_cfg.with_speculation(SpeculationMode.ON_DEMAND)
            base = run_workload(base_cfg, workload)
            invisi = run_workload(if_cfg, workload)
            result.rows.append([
                name, topology.value, base.cycles, invisi.cycles,
                round(base.cycles / invisi.cycles, 3),
            ])
            result.data[(name, topology.value)] = (base, invisi)
    return result


def _repeat_store_workload(n_threads: int, bursts: int = 12,
                           stores_per_burst: int = 6):
    """Bursts of same-address stores (a hot status word being updated):
    exactly the pattern coalescing collapses."""
    from repro.isa.program import Assembler
    from repro.workloads.base import Layout, Workload

    layout = Layout()
    hot = [layout.word() for _ in range(n_threads)]
    programs = []
    for tid in range(n_threads):
        asm = Assembler(f"repeat.t{tid}")
        asm.li(1, hot[tid])
        value = 0
        for _ in range(bursts):
            for _ in range(stores_per_burst):
                value += 1
                asm.li(2, value)
                asm.store(2, base=1)
            asm.exec_(30)  # let the (possibly merged) burst drain
        asm.halt()
        programs.append(asm.build())

    final = bursts * stores_per_burst

    def validate(result):
        for tid in range(n_threads):
            assert result.read_word(hot[tid]) == final

    return Workload("repeat-stores", programs, {}, validate=validate)


def a2_coalescing(n_cores: int = 8, scale: float = 1.0) -> ExperimentResult:
    """Store-buffer coalescing: repeat-address bursts collapse to one
    drain each; workloads without such bursts are unaffected."""
    result = ExperimentResult(
        exp_id="A2",
        title="Store-buffer coalescing ablation",
        headers=["workload", "coalescing", "cycles", "stores drained"],
    )
    cases = {
        "repeat-stores": lambda: _repeat_store_workload(n_cores),
        "producer-consumer": lambda: standard_suite(n_cores, scale)["producer-consumer"],
    }
    for name, build in cases.items():
        for coalescing in (False, True):
            workload = build()
            config = _default_config(n_cores)
            config = replace(config, core=replace(config.core,
                                                  store_buffer_coalescing=coalescing))
            run = run_workload(config, workload)
            drained = int(run.stats.sum(
                f"core.{i}.stores_drained" for i in range(n_cores)))
            result.rows.append([name, coalescing, run.cycles, drained])
            result.data[(name, coalescing)] = run
    return result


def _dirty_rewrite_workload(n_threads: int, iterations: int = 20,
                            dirty_blocks: int = 12):
    """Speculative rewrites of blocks that are already dirty.

    Each iteration dirties several private blocks non-speculatively,
    then opens a window (cold store + fence) and rewrites them inside
    it: clean-before-write must write each one back first, while the
    victim buffer saves copies (and aborts when it overflows).
    """
    from repro.isa.instructions import FenceKind
    from repro.isa.program import Assembler
    from repro.workloads.base import Layout, Workload

    layout = Layout()
    blocks = [layout.padded_array(dirty_blocks) for _ in range(n_threads)]
    cold = [layout.array(8 * (iterations + 1)) for _ in range(n_threads)]
    programs = []
    for tid in range(n_threads):
        asm = Assembler(f"dirty_rewrite.t{tid}")
        asm.li(24, 1)
        asm.li(5, cold[tid])
        for i in range(iterations):
            for addr in blocks[tid]:
                asm.li(1, addr).li(2, i + 1)
                asm.store(2, base=1)          # dirty, non-speculative
            asm.exec_(60)                     # drains settle
            asm.store(24, base=5)             # cold store opens window
            asm.addi(5, 5, 64)
            asm.fence(FenceKind.FULL)
            for addr in blocks[tid]:
                asm.li(1, addr).li(2, 1000 + i)
                asm.store(2, base=1)          # speculative dirty rewrite
        asm.halt()
        programs.append(asm.build())

    final = 1000 + iterations - 1

    def validate(result):
        for tid in range(n_threads):
            for addr in blocks[tid]:
                assert result.read_word(addr) == final

    return Workload("dirty-rewrite", programs, {}, validate=validate)


def a3_rollback_strategy(n_cores: int = 4) -> ExperimentResult:
    """Clean-before-write vs victim buffer.

    Clean-before-write spends writeback bandwidth up front on every
    dirty block it speculatively rewrites; the victim buffer avoids
    that traffic but aborts whenever its capacity is exceeded.
    """
    result = ExperimentResult(
        exp_id="A3",
        title="Rollback-strategy ablation",
        headers=["workload", "strategy", "cycles", "violations",
                 "clean-writebacks"],
    )
    workloads = {
        "dirty-rewrite": _dirty_rewrite_workload(n_cores),
        "work-stealing": tasks.work_stealing(n_cores, tasks_per_thread=8),
    }
    for name, workload in workloads.items():
        for strategy in RollbackStrategy:
            config = _default_config(n_cores).with_speculation(
                SpeculationMode.ON_DEMAND, rollback_strategy=strategy,
                victim_buffer_entries=8)
            run = run_workload(config, workload)
            cleans = int(run.stats.sum(
                f"l1.{i}.clean_before_write" for i in range(n_cores)))
            result.rows.append([name, strategy.value, run.cycles,
                                run.violations(), cleans])
            result.data[(name, strategy.value)] = run
    return result


def a4_store_prefetch(n_cores: int = 8,
                      depths: Sequence[int] = (0, 1, 2, 4, 8)) -> ExperimentResult:
    """Exclusive-prefetch depth: how much store-miss overlap matters.

    Depth 0 reverts to a serial drain; the streaming workload shows the
    overlap directly (both baseline and InvisiFence benefit -- the knob
    is about modelling fidelity, not the mechanism).
    """
    from repro.workloads import streaming

    result = ExperimentResult(
        exp_id="A4",
        title="Store exclusive-prefetch depth ablation",
        headers=["prefetch depth", "base-TSO cycles", "if-TSO cycles"],
    )
    workload = streaming.streaming_writer(n_cores, iterations=30)
    for depth in depths:
        config = _default_config(n_cores)
        config = replace(config, core=replace(config.core,
                                              store_prefetch_depth=depth))
        base = run_workload(config, workload)
        invisi = run_workload(
            config.with_speculation(SpeculationMode.ON_DEMAND), workload)
        result.rows.append([depth, base.cycles, invisi.cycles])
        result.data[depth] = (base, invisi)
    return result


def a5_sync_rich_workloads(n_cores: int = 4) -> ExperimentResult:
    """The CAS-dense workloads: does transparency hold beyond spinlocks?"""
    result = ExperimentResult(
        exp_id="A5",
        title="Transparency on CAS-dense workloads (normalised to base-RMO)",
        headers=["workload", "base-sc", "base-rmo", "if-sc", "violations"],
    )
    from repro.sim.config import ConsistencyModel

    workloads = {
        "work-stealing": tasks.work_stealing(n_cores, tasks_per_thread=10,
                                             task_cycles=20),
        "reader-writer": rwlock.reader_writer(n_cores - 1, 1,
                                              reader_iterations=12,
                                              writer_iterations=8),
    }
    for name, workload in workloads.items():
        base_sc = run_workload(
            _default_config(n_cores).with_consistency(ConsistencyModel.SC),
            workload)
        base_rmo = run_workload(
            _default_config(n_cores).with_consistency(ConsistencyModel.RMO),
            workload)
        if_sc = run_workload(
            _default_config(n_cores).with_consistency(ConsistencyModel.SC)
            .with_speculation(SpeculationMode.ON_DEMAND), workload)
        rmo = base_rmo.cycles
        result.rows.append([
            name,
            round(base_sc.cycles / rmo, 3),
            1.0,
            round(if_sc.cycles / rmo, 3),
            if_sc.violations(),
        ])
        result.data[name] = (base_sc, base_rmo, if_sc)
    return result


def a6_energy(n_cores: int = 8, scale: float = 1.0) -> ExperimentResult:
    """Energy-delay view (extension): what does speculation cost in work?

    Speculation removes stall time but adds wasted (rolled-back) work;
    the energy model quantifies both sides.  On conflict-light workloads
    the energy-delay product improves with runtime; on the adversarial
    false-sharing stressor the wasted-work column shows the price.
    """
    from repro.analysis.energy import estimate_energy
    from repro.sim.config import ConsistencyModel
    from repro.workloads import randmix

    result = ExperimentResult(
        exp_id="A6",
        title="Energy-delay (arbitrary units): base-SC vs IF-SC",
        headers=["workload", "config", "cycles", "energy", "wasted%",
                 "energy-delay (norm)"],
    )
    suite = standard_suite(n_cores, scale)
    cases = {
        "streaming-writer": suite["streaming-writer"],
        "producer-consumer": suite["producer-consumer"],
        "false-sharing": randmix.false_sharing(min(n_cores, 8),
                                               iterations=40, fence_every=2),
    }
    for name, workload in cases.items():
        cores = workload.n_threads
        base_cfg = (SystemConfig(n_cores=cores)
                    .with_consistency(ConsistencyModel.SC))
        runs = {
            "base-sc": run_workload(base_cfg, workload),
            "if-sc": run_workload(
                base_cfg.with_speculation(SpeculationMode.ON_DEMAND), workload),
        }
        base_edp = None
        for label, run in runs.items():
            report = estimate_energy(run)
            edp = report.energy_delay_product(run.cycles)
            if base_edp is None:
                base_edp = edp
            result.rows.append([
                name, label, run.cycles, round(report.total, 0),
                round(100 * report.wasted / report.total, 2),
                round(edp / base_edp, 3),
            ])
            result.data[(name, label)] = (run, report)
    return result


def all_ablations():
    return {
        "A1": a1_topology,
        "A2": a2_coalescing,
        "A3": a3_rollback_strategy,
        "A4": a4_store_prefetch,
        "A5": a5_sync_rich_workloads,
        "A6": a6_energy,
    }

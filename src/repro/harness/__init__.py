"""Experiment harness: one declared run grid per reproduced table/figure.

``repro.harness.parallel`` supplies the sweep machinery (RunSpec,
SweepScheduler) that deduplicates identical simulation points across
experiments and fans unique points out over a process pool.
"""

from repro.harness.runner import compare_configs, run_workload
from repro.harness.parallel import (
    RunSpec,
    SweepError,
    SweepReport,
    SweepScheduler,
    execute_specs,
    point_fingerprint,
    result_fingerprint,
)
from repro.harness.experiments import (
    Experiment,
    ExperimentResult,
    e1_ordering_breakdown,
    e2_transparency,
    e3_modes,
    e4_violations,
    e5_sensitivity,
    e6_storage,
    e7_commit_arbitration,
    e8_store_buffer,
    e9_scaling,
    e10_system_parameters,
    e11_consistency_fuzz,
    e12_fault_injection,
    e13_fence_synthesis,
    e14_chaos,
    all_experiments,
)

__all__ = [
    "compare_configs",
    "run_workload",
    "RunSpec",
    "SweepError",
    "SweepReport",
    "SweepScheduler",
    "execute_specs",
    "point_fingerprint",
    "result_fingerprint",
    "Experiment",
    "ExperimentResult",
    "e1_ordering_breakdown",
    "e2_transparency",
    "e3_modes",
    "e4_violations",
    "e5_sensitivity",
    "e6_storage",
    "e7_commit_arbitration",
    "e8_store_buffer",
    "e9_scaling",
    "e10_system_parameters",
    "e11_consistency_fuzz",
    "e12_fault_injection",
    "e13_fence_synthesis",
    "e14_chaos",
    "all_experiments",
    "all_ablations",
    "a1_topology",
    "a2_coalescing",
    "a3_rollback_strategy",
    "a4_store_prefetch",
    "a5_sync_rich_workloads",
]

from repro.harness.ablations import (  # noqa: E402  (avoid circular import)
    a1_topology,
    a2_coalescing,
    a3_rollback_strategy,
    a4_store_prefetch,
    a5_sync_rich_workloads,
    all_ablations,
)

"""Memory consistency model enforcement policies."""

from repro.consistency.policies import (
    ConsistencyPolicy,
    RMOPolicy,
    SCPolicy,
    TSOPolicy,
    policy_for,
)

__all__ = ["ConsistencyPolicy", "SCPolicy", "TSOPolicy", "RMOPolicy", "policy_for"]

"""Consistency-model policies: when must the core wait for its store buffer?

Each policy answers, per instruction class, whether the operation may
proceed while (program-order-earlier) stores are still buffered.  This
is exactly the decision InvisiFence intercepts: wherever a policy says
"drain first", the speculative core checkpoints and continues instead.

Model summary for our in-order core with a FIFO store buffer:

========  =============  ===========  ==================  ==========
model     load w/ SB     store w/ SB  fence drains        forwarding
========  =============  ===========  ==================  ==========
SC        drain          drain        (trivially empty)   no
TSO       proceed        proceed      StoreLoad / FULL    yes
RMO       proceed        proceed      StoreLoad / FULL    yes
========  =============  ===========  ==================  ==========

Atomics drain the store buffer under every model (they are the
serialisation points of lock-based code; implementing them as
acquire+release barriers matches commercial practice and is what makes
the paper's "atomics hurt even RMO" observation appear).

Because the core is in-order and the store buffer is FIFO, RMO's
LoadLoad/LoadStore/StoreStore fences are satisfied by construction and
cost nothing; only StoreLoad ordering (and FULL) requires a drain.
"""

from __future__ import annotations

import abc

from repro.isa.instructions import FenceKind
from repro.sim.config import ConsistencyModel


class ConsistencyPolicy(abc.ABC):
    """Ordering decisions for one memory consistency model."""

    model: ConsistencyModel

    @abc.abstractmethod
    def load_requires_drain(self) -> bool:
        """Must a load wait for the store buffer to drain before issuing?"""

    @abc.abstractmethod
    def store_requires_drain(self) -> bool:
        """Must a store wait for earlier stores to be globally performed?"""

    @abc.abstractmethod
    def fence_requires_drain(self, kind: FenceKind) -> bool:
        """Does this fence kind require a store-buffer drain?"""

    @abc.abstractmethod
    def atomic_requires_drain(self) -> bool:
        """Must an atomic RMW wait for the store buffer to drain?"""

    @property
    @abc.abstractmethod
    def allows_store_forwarding(self) -> bool:
        """May loads read pending store-buffer values (bypass)?"""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class SCPolicy(ConsistencyPolicy):
    """Sequential consistency: every memory operation waits for all
    earlier stores to complete; the store buffer gives no overlap."""

    model = ConsistencyModel.SC

    def load_requires_drain(self) -> bool:
        return True

    def store_requires_drain(self) -> bool:
        return True

    def fence_requires_drain(self, kind: FenceKind) -> bool:
        # Redundant under SC (per-op draining keeps the buffer empty),
        # but semantically a fence still requires emptiness.
        return True

    def atomic_requires_drain(self) -> bool:
        return True

    @property
    def allows_store_forwarding(self) -> bool:
        return False


class TSOPolicy(ConsistencyPolicy):
    """Total store order: loads bypass the FIFO store buffer (with
    same-address forwarding); StoreLoad ordering costs a drain."""

    model = ConsistencyModel.TSO

    def load_requires_drain(self) -> bool:
        return False

    def store_requires_drain(self) -> bool:
        return False

    def fence_requires_drain(self, kind: FenceKind) -> bool:
        return kind.orders_store_load

    def atomic_requires_drain(self) -> bool:
        return True

    @property
    def allows_store_forwarding(self) -> bool:
        return True


class RMOPolicy(ConsistencyPolicy):
    """Relaxed memory order: only explicit StoreLoad/FULL fences (and
    atomics) drain.  The in-order core + FIFO buffer satisfy the other
    directional fences by construction (slightly stronger than
    architectural RMO; documented in DESIGN.md)."""

    model = ConsistencyModel.RMO

    def load_requires_drain(self) -> bool:
        return False

    def store_requires_drain(self) -> bool:
        return False

    def fence_requires_drain(self, kind: FenceKind) -> bool:
        return kind.orders_store_load

    def atomic_requires_drain(self) -> bool:
        return True

    @property
    def allows_store_forwarding(self) -> bool:
        return True


_POLICIES = {
    ConsistencyModel.SC: SCPolicy,
    ConsistencyModel.TSO: TSOPolicy,
    ConsistencyModel.RMO: RMOPolicy,
}


def policy_for(model: ConsistencyModel) -> ConsistencyPolicy:
    """Instantiate the policy object for a consistency model."""
    return _POLICIES[model]()

"""Fence-ordered producer/consumer handoff (message passing at scale).

This is the workload where fences are *semantically load-bearing*: the
producer's FULL fence orders the payload writes before the flag
publish, and under RMO removing it would be a bug.  It therefore
exercises exactly the ordering cost InvisiFence targets, on every
round.
"""

from __future__ import annotations

from repro.isa.instructions import FenceKind
from repro.isa.program import Assembler
from repro.workloads.base import Layout, Workload, fresh_label
from repro.workloads import primitives


def _spin_equals(asm: Assembler, addr_reg: int, want_reg: int,
                 scratch: int = 31) -> None:
    """Spin until ``mem[addr_reg] == want_reg``."""
    spin = fresh_label("spin_eq")
    asm.label(spin)
    asm.load(scratch, base=addr_reg)
    asm.bne(scratch, want_reg, spin)

R_ONE = 24
R_DATA = 1
R_FLAG = 2
R_ACK = 3
R_ROUND = 4
R_VAL = 5
R_SUM = 6
R_PTR = 7
R_CELL = 8


def pingpong(
    n_pairs: int = 2,
    rounds: int = 10,
    payload_words: int = 8,
) -> Workload:
    """``n_pairs`` producer/consumer pairs exchange fenced payloads.

    Per round ``r`` (1-based): the producer writes ``payload_words``
    words of value ``r``, issues a FULL fence, publishes ``flag = r``,
    and spins for ``ack == r``; the consumer spins for ``flag == r``,
    fences, sums the payload into a running accumulator, and publishes
    ``ack = r``.  Each consumer's final accumulator must equal
    ``payload_words * rounds * (rounds + 1) / 2``.
    """
    layout = Layout()
    pairs = []
    for _ in range(n_pairs):
        pairs.append({
            "data": layout.array(payload_words),
            "flag": layout.word(),
            "ack": layout.word(),
        })

    programs = []
    for pair_id in range(n_pairs):
        mem = pairs[pair_id]

        producer = Assembler(f"pingpong.p{pair_id}")
        producer.li(R_ONE, 1)
        producer.li(R_DATA, mem["data"])
        producer.li(R_FLAG, mem["flag"])
        producer.li(R_ACK, mem["ack"])
        producer.li(R_ROUND, 0)

        def producer_body(asm: Assembler) -> None:
            asm.add(R_ROUND, R_ROUND, R_ONE)
            for w in range(payload_words):
                asm.store(R_ROUND, base=R_DATA, offset=8 * w)
            asm.fence(FenceKind.FULL)       # payload before flag -- required
            asm.store(R_ROUND, base=R_FLAG)
            _spin_equals(asm, R_ACK, R_ROUND)

        primitives.emit_counted_loop(producer, rounds, R_CELL, producer_body)
        producer.halt()

        consumer = Assembler(f"pingpong.c{pair_id}")
        consumer.li(R_ONE, 1)
        consumer.li(R_DATA, mem["data"])
        consumer.li(R_FLAG, mem["flag"])
        consumer.li(R_ACK, mem["ack"])
        consumer.li(R_ROUND, 0)
        consumer.li(R_SUM, 0)

        def consumer_body(asm: Assembler) -> None:
            asm.add(R_ROUND, R_ROUND, R_ONE)
            _spin_equals(asm, R_FLAG, R_ROUND)
            asm.fence(FenceKind.FULL)       # flag before payload reads
            for w in range(payload_words):
                asm.load(R_VAL, base=R_DATA, offset=8 * w)
                asm.add(R_SUM, R_SUM, R_VAL)
            asm.store(R_ROUND, base=R_ACK)

        primitives.emit_counted_loop(consumer, rounds, R_CELL, consumer_body)
        consumer.halt()

        programs.append(producer.build())
        programs.append(consumer.build())

    expected_sum = payload_words * rounds * (rounds + 1) // 2

    def validate(result) -> None:
        for pair_id in range(n_pairs):
            consumer_core = 2 * pair_id + 1
            total = result.core_reg(consumer_core, R_SUM)
            assert total == expected_sum, (
                f"consumer {consumer_core}: sum {total} != {expected_sum} "
                "(a payload read overtook its flag)"
            )

    return Workload(
        name="producer-consumer",
        programs=programs,
        description=f"{n_pairs} pairs x {rounds} fenced handoffs "
                    f"x {payload_words} words",
        validate=validate,
    )

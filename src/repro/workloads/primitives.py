"""Synchronisation primitives as assembler macros.

Each ``emit_*`` function appends a synchronisation idiom to an
:class:`~repro.isa.program.Assembler`.  Register usage is explicit:
callers pass the registers holding addresses/constants and the scratch
registers the macro may clobber.  Labels are uniquified so a macro can
be emitted many times into one program.

Convention used throughout the workload suite:

* ``r24`` holds the constant 1,
* ``r25``-``r31`` are scratch for the macros,
* ``r1``-``r15`` belong to the workload body.
"""

from __future__ import annotations

from repro.isa.instructions import FenceKind
from repro.isa.program import Assembler
from repro.workloads.base import fresh_label

#: Word offset (in bytes) of the now-serving counter inside a ticket
#: lock's two-block home (keeps the two words in different blocks).
TICKET_SERVING_OFFSET = 64


def emit_tas_acquire(asm: Assembler, lock_reg: int, scratch: int = 30) -> None:
    """Test-and-set spinlock acquire: spin on the atomic itself.

    Highest-contention variant -- every spin iteration is an atomic that
    acquires the block in M state (heavy invalidation traffic).
    """
    retry = fresh_label("tas_retry")
    asm.label(retry)
    asm.tas(scratch, base=lock_reg)
    asm.bne(scratch, 0, retry)


def emit_ttas_acquire(asm: Assembler, lock_reg: int, scratch: int = 30) -> None:
    """Test-and-test-and-set acquire: spin on a plain load, TAS to claim."""
    retry = fresh_label("ttas_retry")
    asm.label(retry)
    asm.load(scratch, base=lock_reg)
    asm.bne(scratch, 0, retry)
    asm.tas(scratch, base=lock_reg)
    asm.bne(scratch, 0, retry)


def emit_release(asm: Assembler, lock_reg: int,
                 fence: FenceKind = FenceKind.STORE_STORE) -> None:
    """Spinlock release: order critical-section stores before the unlock.

    The StoreStore fence is free on this in-order/FIFO machine but is
    emitted anyway -- it is what correct RMO code must write.
    """
    asm.fence(fence)
    asm.store(0, base=lock_reg)  # register 0 reads as zero


def emit_ticket_acquire(asm: Assembler, base_reg: int, one_reg: int = 24,
                        my_reg: int = 29, cur_reg: int = 30) -> None:
    """Ticket lock acquire (FIFO fairness): fetch-and-add a ticket, then
    spin until now-serving reaches it.

    ``base_reg`` points at a 2-block region: next-ticket at offset 0,
    now-serving at :data:`TICKET_SERVING_OFFSET`.
    """
    spin = fresh_label("ticket_spin")
    done = fresh_label("ticket_done")
    asm.fetch_add(my_reg, base=base_reg, addend=one_reg)
    asm.label(spin)
    asm.load(cur_reg, base=base_reg, offset=TICKET_SERVING_OFFSET)
    asm.beq(cur_reg, my_reg, done)
    asm.jmp(spin)
    asm.label(done)


def emit_ticket_release(asm: Assembler, base_reg: int, one_reg: int = 24,
                        cur_reg: int = 30,
                        fence: FenceKind = FenceKind.STORE_STORE) -> None:
    """Ticket lock release: bump now-serving (holder-exclusive, plain ops)."""
    asm.fence(fence)
    asm.load(cur_reg, base=base_reg, offset=TICKET_SERVING_OFFSET)
    asm.add(cur_reg, cur_reg, one_reg)
    asm.store(cur_reg, base=base_reg, offset=TICKET_SERVING_OFFSET)


def emit_barrier(asm: Assembler, count_reg: int, sense_reg: int,
                 local_sense_reg: int, n_threads: int, one_reg: int = 24,
                 scratch: int = 30, scratch2: int = 31) -> None:
    """Sense-reversing centralised barrier.

    ``count_reg``/``sense_reg`` hold the addresses of the arrival
    counter and the global sense word (separate blocks);
    ``local_sense_reg`` holds this thread's sense and is flipped here.
    The last arriver resets the counter and publishes the new sense; the
    FIFO store buffer orders the two stores.
    """
    wait = fresh_label("barrier_wait")
    done = fresh_label("barrier_done")
    asm.xor(local_sense_reg, local_sense_reg, one_reg)
    asm.fetch_add(scratch, base=count_reg, addend=one_reg)
    asm.li(scratch2, n_threads - 1)
    asm.bne(scratch, scratch2, wait)
    # Last arriver: reset the counter, then flip the global sense.
    asm.store(0, base=count_reg)
    asm.store(local_sense_reg, base=sense_reg)
    asm.jmp(done)
    asm.label(wait)
    asm.load(scratch2, base=sense_reg)
    asm.bne(scratch2, local_sense_reg, wait)
    asm.label(done)


def emit_counted_loop(asm: Assembler, iterations: int, counter_reg: int,
                      body, one_reg: int = 24) -> None:
    """Run ``body(asm)`` ``iterations`` times using ``counter_reg``."""
    if iterations < 1:
        raise ValueError("loop needs at least one iteration")
    top = fresh_label("loop_top")
    asm.li(counter_reg, iterations)
    asm.label(top)
    body(asm)
    asm.sub(counter_reg, counter_reg, one_reg)
    asm.bne(counter_reg, 0, top)


def emit_tas_try_acquire(asm: Assembler, lock_reg: int, tries: int,
                         got_reg: int, one_reg: int = 24,
                         counter_reg: int = 29, scratch: int = 30) -> None:
    """Bounded test-and-set acquire: at most ``tries`` TAS attempts.

    Sets ``got_reg`` to 1 if the lock was acquired, 0 if the budget ran
    out.  This is the chaos-tolerant lock idiom: an unbounded spin on a
    lock whose holder crash-stops never terminates (and, because
    spinning commits instructions, is invisible to the watchdog's
    livelock detector) -- a bounded acquire turns a dead holder into an
    observable failed acquisition the protocol must handle.
    """
    if tries < 1:
        raise ValueError("bounded acquire needs at least one try")
    top = fresh_label("tastry_top")
    won = fresh_label("tastry_won")
    out = fresh_label("tastry_out")
    asm.li(counter_reg, tries)
    asm.label(top)
    asm.tas(scratch, base=lock_reg)
    asm.beq(scratch, 0, won)
    asm.sub(counter_reg, counter_reg, one_reg)
    asm.bne(counter_reg, 0, top)
    asm.li(got_reg, 0)
    asm.jmp(out)
    asm.label(won)
    asm.li(got_reg, 1)
    asm.label(out)

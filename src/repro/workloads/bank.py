"""Bank-transfer workload: two-lock transactions with a conserved sum.

Each thread performs transfers between randomly chosen accounts,
acquiring both account locks *in ascending address order* (the classic
deadlock-avoidance discipline) before moving money.  The validation
invariant -- the total balance is conserved exactly -- fails if mutual
exclusion, coherence, or speculation recovery ever loses or duplicates
an update, and the hold-two-locks pattern exercises speculation across
nested critical sections.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.program import Assembler
from repro.workloads.base import Layout, Workload
from repro.workloads import primitives

R_ONE = 24
R_LOCK = 1
R_ACC_A = 2
R_ACC_B = 3
R_BAL = 4
R_TMP = 5

INITIAL_BALANCE = 1000


def bank_transfer(
    n_threads: int,
    n_accounts: int = 8,
    transfers_per_thread: int = 10,
    amount: int = 7,
    seed: int = 1,
    think_cycles: int = 10,
) -> Workload:
    """Build the workload; transfer pairs are seeded per thread."""
    if n_accounts < 2:
        raise ValueError("need at least two accounts")
    layout = Layout()
    balances = layout.padded_array(n_accounts)
    account_locks = layout.padded_array(n_accounts)

    rng = random.Random(seed)
    programs: List = []
    for tid in range(n_threads):
        asm = Assembler(f"bank.t{tid}")
        asm.li(R_ONE, 1)
        for _ in range(transfers_per_thread):
            src, dst = rng.sample(range(n_accounts), 2)
            first, second = sorted((src, dst))
            # Lock both accounts in ascending order.
            for account in (first, second):
                asm.li(R_LOCK, account_locks[account])
                primitives.emit_tas_acquire(asm, R_LOCK)
            # Move `amount` from src to dst.
            asm.li(R_ACC_A, balances[src])
            asm.li(R_ACC_B, balances[dst])
            asm.li(R_TMP, amount)
            asm.load(R_BAL, base=R_ACC_A)
            asm.sub(R_BAL, R_BAL, R_TMP)
            asm.store(R_BAL, base=R_ACC_A)
            asm.load(R_BAL, base=R_ACC_B)
            asm.add(R_BAL, R_BAL, R_TMP)
            asm.store(R_BAL, base=R_ACC_B)
            # Unlock in reverse order.
            for account in (second, first):
                asm.li(R_LOCK, account_locks[account])
                primitives.emit_release(asm, R_LOCK)
            if think_cycles:
                asm.exec_(think_cycles)
        asm.halt()
        programs.append(asm.build())

    initial_memory = {balances[i]: INITIAL_BALANCE for i in range(n_accounts)}
    total = n_accounts * INITIAL_BALANCE

    def validate(result) -> None:
        final = sum(result.read_word(balances[i]) for i in range(n_accounts))
        assert final == total, (
            f"money not conserved: {final} != {total} "
            "(a transfer was lost, duplicated, or torn)"
        )
        for i in range(n_accounts):
            held = result.read_word(account_locks[i])
            assert held == 0, f"lock {i} left held ({held})"

    return Workload(
        name="bank-transfer",
        programs=programs,
        initial_memory=initial_memory,
        description=(f"{n_threads} threads x {transfers_per_thread} "
                     f"two-lock transfers over {n_accounts} accounts"),
        validate=validate,
    )

"""Barrier-phased scientific workloads (the SPLASH-2 stand-ins).

Ocean/barnes-style behaviour for these experiments means: phases of
mostly-private computation separated by global barriers, with the
barrier's fetch-and-add + sense spin being where atomics and sharing
concentrate.
"""

from __future__ import annotations

from repro.isa.program import Assembler
from repro.workloads.base import Layout, Workload
from repro.workloads import primitives

R_ONE = 24
R_COUNT = 1       # barrier arrival-counter address
R_SENSE = 2       # barrier sense-word address
R_LSENSE = 3      # local sense value
R_PTR = 4         # walking pointer into this thread's chunk
R_PHASE = 5       # outer phase loop counter
R_CELL = 6        # inner cell loop counter
R_VAL = 7
R_BASE = 8        # chunk base address
R_ACC = 9         # accumulator (reductions)
R_GLOBAL = 10     # global accumulator address


def stencil(
    n_threads: int,
    phases: int = 4,
    cells_per_thread: int = 16,
    compute_cycles: int = 4,
) -> Workload:
    """Barrier-phased private-array sweep (ocean-like).

    Each phase, every thread walks its own contiguous chunk: load the
    cell, add the phase-invariant constant 1 (plus ``compute_cycles`` of
    modelled FP work), store it back; then all threads meet at a
    sense-reversing barrier.  After ``phases`` phases every cell holds
    ``phases``.
    """
    layout = Layout()
    count_addr = layout.word()
    sense_addr = layout.word()
    chunk_addrs = [layout.array(cells_per_thread) for _ in range(n_threads)]

    programs = []
    for tid in range(n_threads):
        asm = Assembler(f"stencil.t{tid}")
        asm.li(R_ONE, 1)
        asm.li(R_COUNT, count_addr)
        asm.li(R_SENSE, sense_addr)
        asm.li(R_LSENSE, 0)
        asm.li(R_BASE, chunk_addrs[tid])

        def phase_body(asm: Assembler) -> None:
            asm.mov(R_PTR, R_BASE)

            def cell_body(asm: Assembler) -> None:
                asm.load(R_VAL, base=R_PTR)
                if compute_cycles > 0:
                    asm.exec_(compute_cycles)
                asm.add(R_VAL, R_VAL, R_ONE)
                asm.store(R_VAL, base=R_PTR)
                asm.addi(R_PTR, R_PTR, 8)

            primitives.emit_counted_loop(asm, cells_per_thread, R_CELL, cell_body)
            primitives.emit_barrier(asm, R_COUNT, R_SENSE, R_LSENSE, n_threads)

        primitives.emit_counted_loop(asm, phases, R_PHASE, phase_body)
        asm.halt()
        programs.append(asm.build())

    def validate(result) -> None:
        for tid in range(n_threads):
            for cell in range(cells_per_thread):
                value = result.read_word(chunk_addrs[tid] + 8 * cell)
                assert value == phases, (
                    f"thread {tid} cell {cell}: {value} != {phases}"
                )

    return Workload(
        name="barrier-stencil",
        programs=programs,
        description=(f"{n_threads} threads x {phases} phases x "
                     f"{cells_per_thread} cells"),
        validate=validate,
    )


def reduction(
    n_threads: int,
    rounds: int = 4,
    local_work: int = 8,
) -> Workload:
    """Barrier-phased global reduction.

    Each round, every thread accumulates ``local_work`` private values
    (modelled as EXEC + ADDs), atomically fetch-adds its partial sum
    into a global accumulator, and barriers.  The global accumulator
    ends at ``n_threads * rounds * local_work``.
    """
    layout = Layout()
    count_addr = layout.word()
    sense_addr = layout.word()
    global_addr = layout.word()

    programs = []
    for tid in range(n_threads):
        asm = Assembler(f"reduction.t{tid}")
        asm.li(R_ONE, 1)
        asm.li(R_COUNT, count_addr)
        asm.li(R_SENSE, sense_addr)
        asm.li(R_LSENSE, 0)
        asm.li(R_GLOBAL, global_addr)

        def round_body(asm: Assembler) -> None:
            asm.li(R_ACC, 0)

            def work_body(asm: Assembler) -> None:
                asm.exec_(3)
                asm.add(R_ACC, R_ACC, R_ONE)

            primitives.emit_counted_loop(asm, local_work, R_CELL, work_body)
            asm.fetch_add(R_VAL, base=R_GLOBAL, addend=R_ACC)
            primitives.emit_barrier(asm, R_COUNT, R_SENSE, R_LSENSE, n_threads)

        primitives.emit_counted_loop(asm, rounds, R_PHASE, round_body)
        asm.halt()
        programs.append(asm.build())

    expected = n_threads * rounds * local_work

    def validate(result) -> None:
        total = result.read_word(global_addr)
        assert total == expected, f"reduction total {total} != {expected}"

    return Workload(
        name="barrier-reduction",
        programs=programs,
        description=f"{n_threads} threads x {rounds} rounds x {local_work} work",
        validate=validate,
    )

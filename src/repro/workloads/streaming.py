"""Streaming-store workloads: where SC's load-after-store wait bites.

The paper attributes most ordering stall time to *store misses*: a
store that misses sits in the buffer for a full memory round trip, and
a strongly ordered machine stalls every subsequent load on it.  These
workloads produce exactly that pattern with no data races: each thread
streams stores through fresh (always-cold) blocks -- log writing,
output buffers -- while reading a small hot working set in between.

Under SC every hot load waits ~DRAM latency for the streaming store to
complete; TSO/RMO overlap them; InvisiFence-SC speculates through with
zero conflict risk (all blocks are private), recovering the full gap.
"""

from __future__ import annotations

from repro.isa.program import Assembler
from repro.workloads.base import Layout, Workload

R_ONE = 24
R_OUT = 1     # streaming output pointer
R_HOT = 2     # hot-region base
R_VAL = 3
R_SUM = 4
R_TMP = 5


def streaming_writer(
    n_threads: int,
    iterations: int = 40,
    hot_loads: int = 6,
    compute_cycles: int = 4,
) -> Workload:
    """Each iteration: one cold streaming store + ``hot_loads`` hot reads.

    Fully private (zero sharing): every performance difference between
    configurations is pure memory-ordering policy.  Validates the
    streamed values and each thread's read checksum.
    """
    layout = Layout()
    hot_bases = [layout.array(max(hot_loads, 1)) for _ in range(n_threads)]
    out_bases = [layout.array(8 * (iterations + 1)) for _ in range(n_threads)]

    programs = []
    for tid in range(n_threads):
        asm = Assembler(f"streaming.t{tid}")
        asm.li(R_ONE, 1)
        asm.li(R_OUT, out_bases[tid])
        asm.li(R_HOT, hot_bases[tid])
        asm.li(R_SUM, 0)
        # Warm the hot region so its loads are plain L1 hits.
        for w in range(hot_loads):
            asm.li(R_VAL, w + 1)
            asm.store(R_VAL, base=R_HOT, offset=8 * w)
        for i in range(iterations):
            asm.li(R_VAL, i + 1)
            asm.store(R_VAL, base=R_OUT)      # cold block: ~DRAM drain
            asm.addi(R_OUT, R_OUT, 64)
            for w in range(hot_loads):        # SC stalls these on the store
                asm.load(R_TMP, base=R_HOT, offset=8 * w)
                asm.add(R_SUM, R_SUM, R_TMP)
            if compute_cycles > 0:
                asm.exec_(compute_cycles)
        asm.halt()
        programs.append(asm.build())

    hot_sum = sum(range(1, hot_loads + 1))
    expected_checksum = hot_sum * iterations

    def validate(result) -> None:
        for tid in range(n_threads):
            checksum = result.core_reg(tid, R_SUM)
            assert checksum == expected_checksum, (
                f"thread {tid}: checksum {checksum} != {expected_checksum}"
            )
            for i in range(iterations):
                value = result.read_word(out_bases[tid] + 64 * i)
                assert value == i + 1, (
                    f"thread {tid}: streamed word {i} = {value} != {i + 1}"
                )

    return Workload(
        name="streaming-writer",
        programs=programs,
        description=(f"{n_threads} threads x {iterations} cold streaming "
                     f"stores with {hot_loads} hot loads each"),
        validate=validate,
    )

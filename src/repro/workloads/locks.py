"""Lock-based workloads (the commercial-workload stand-ins).

Apache/OLTP-style behaviour for these experiments means: short critical
sections guarded by atomics, fence-ordered unlocks, moderate shared
data touched inside the critical section, and think time between
acquisitions.  All of that is parameterised here.
"""

from __future__ import annotations

from typing import List

from repro.isa.program import Assembler
from repro.workloads.base import Layout, Workload
from repro.workloads import primitives

#: Register conventions (see primitives module docstring).
R_ONE = 24
R_LOCK = 1
R_COUNTER = 2
R_PAYLOAD = 3
R_LOOP = 5
R_TMP = 6
R_TMP2 = 7

LOCK_KINDS = ("tas", "ttas", "ticket")


def _emit_acquire(asm: Assembler, kind: str) -> None:
    if kind == "tas":
        primitives.emit_tas_acquire(asm, R_LOCK)
    elif kind == "ttas":
        primitives.emit_ttas_acquire(asm, R_LOCK)
    elif kind == "ticket":
        primitives.emit_ticket_acquire(asm, R_LOCK)
    else:
        raise ValueError(f"unknown lock kind {kind!r}; choose from {LOCK_KINDS}")


def _emit_release(asm: Assembler, kind: str) -> None:
    if kind == "ticket":
        primitives.emit_ticket_release(asm, R_LOCK)
    else:
        primitives.emit_release(asm, R_LOCK)


R_PRIV = 8


def lock_contention(
    n_threads: int,
    increments: int = 50,
    lock_kind: str = "tas",
    think_cycles: int = 30,
    payload_words: int = 4,
    think_loads: int = 4,
) -> Workload:
    """All threads pound one lock guarding a shared counter + payload.

    Each iteration: acquire -> counter++ -> touch ``payload_words``
    shared words -> fenced release -> think phase of local compute with
    ``think_loads`` private loads.  The think-phase loads are where SC's
    penalty surfaces: the unlock store is a coherence miss still
    draining, and SC makes every subsequent load wait for it while
    TSO/RMO (and InvisiFence-SC) proceed.  Validates that the counter
    equals ``n_threads * increments``.
    """
    if n_threads < 1:
        raise ValueError("need at least one thread")
    layout = Layout()
    lock_addr = layout.array(16)  # room for a ticket lock's two blocks
    counter_addr = layout.word()
    payload_addr = layout.array(max(payload_words, 1))
    private_addrs = [layout.array(max(think_loads, 1)) for _ in range(n_threads)]

    programs: List = []
    for tid in range(n_threads):
        asm = Assembler(f"lock_contention.t{tid}")
        asm.li(R_ONE, 1)
        asm.li(R_LOCK, lock_addr)
        asm.li(R_COUNTER, counter_addr)
        asm.li(R_PAYLOAD, payload_addr)
        asm.li(R_PRIV, private_addrs[tid])

        def body(asm: Assembler) -> None:
            _emit_acquire(asm, lock_kind)
            asm.load(R_TMP, base=R_COUNTER)
            asm.add(R_TMP, R_TMP, R_ONE)
            asm.store(R_TMP, base=R_COUNTER)
            for w in range(payload_words):
                asm.load(R_TMP2, base=R_PAYLOAD, offset=8 * w)
                asm.add(R_TMP2, R_TMP2, R_ONE)
                asm.store(R_TMP2, base=R_PAYLOAD, offset=8 * w)
            _emit_release(asm, lock_kind)
            for w in range(think_loads):
                asm.load(R_TMP2, base=R_PRIV, offset=8 * w)
                asm.add(R_TMP2, R_TMP2, R_TMP)
            if think_cycles > 0:
                asm.exec_(think_cycles)

        primitives.emit_counted_loop(asm, increments, R_LOOP, body)
        asm.halt()
        programs.append(asm.build())

    expected = n_threads * increments

    def validate(result) -> None:
        counter = result.read_word(counter_addr)
        assert counter == expected, (
            f"mutual exclusion broken: counter={counter}, expected {expected}"
        )
        for w in range(payload_words):
            value = result.read_word(payload_addr + 8 * w)
            assert value == expected, (
                f"payload word {w} = {value}, expected {expected}"
            )

    return Workload(
        name=f"locks-{lock_kind}",
        programs=programs,
        initial_memory={},
        description=(f"{n_threads} threads x {increments} critical sections "
                     f"({lock_kind} lock, {payload_words} payload words)"),
        validate=validate,
    )


def partitioned_locks(
    n_threads: int,
    increments: int = 60,
    share_every: int = 4,
    think_cycles: int = 20,
) -> Workload:
    """Mostly-private locking with periodic global contention.

    Each thread has its own lock+counter; every ``share_every``-th
    iteration it takes a global lock instead.  Models the lower-
    contention mix of real server workloads (locks are frequent, but
    contention is bursty).
    """
    if share_every < 1:
        raise ValueError("share_every must be >= 1")
    layout = Layout()
    global_lock = layout.word()
    global_counter = layout.word()
    local_locks = layout.padded_array(n_threads)
    local_counters = layout.padded_array(n_threads)

    programs = []
    for tid in range(n_threads):
        asm = Assembler(f"partitioned.t{tid}")
        asm.li(R_ONE, 1)
        # Unrolled: the lock choice alternates per iteration, which a
        # runtime loop over one emitted body cannot express.
        for i in range(increments):
            use_global = i % share_every == share_every - 1
            lock = global_lock if use_global else local_locks[tid]
            counter = global_counter if use_global else local_counters[tid]
            asm.li(R_LOCK, lock)
            asm.li(R_COUNTER, counter)
            primitives.emit_tas_acquire(asm, R_LOCK)
            asm.load(R_TMP, base=R_COUNTER)
            asm.add(R_TMP, R_TMP, R_ONE)
            asm.store(R_TMP, base=R_COUNTER)
            primitives.emit_release(asm, R_LOCK)
            if think_cycles > 0:
                asm.exec_(think_cycles)
        asm.halt()
        programs.append(asm.build())

    global_shares = sum(1 for i in range(increments)
                        if i % share_every == share_every - 1)

    def validate(result) -> None:
        total_global = result.read_word(global_counter)
        assert total_global == n_threads * global_shares, (
            f"global counter {total_global} != {n_threads * global_shares}"
        )
        for tid in range(n_threads):
            local = result.read_word(local_counters[tid])
            assert local == increments - global_shares, (
                f"thread {tid} local counter {local} != "
                f"{increments - global_shares}"
            )

    return Workload(
        name="locks-partitioned",
        programs=programs,
        description=(f"{n_threads} threads, private locks with 1/{share_every} "
                     "global contention"),
        validate=validate,
    )

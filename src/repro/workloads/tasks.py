"""Work-stealing task execution (CAS-heavy commercial-style workload).

Every thread owns a task counter; workers drain their own counter with
a CAS loop and steal from victims (round-robin) when empty, bumping a
global completion counter per task.  This is the atomic-dense,
contended-CAS pattern of server task schedulers -- a harder test for
speculation than simple spinlocks because the CAS targets rotate.

Validation is exact: the global counter must equal the total number of
tasks, every queue must reach zero, and no task may be executed twice
(the CAS discipline guarantees it; losing an update would leave the
global counter short).
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.program import Assembler
from repro.workloads.base import Layout, Workload, fresh_label

R_ONE = 24
R_COMPLETED = 1   # &completed
R_QUEUE = 3       # &queue[v] (current victim)
R_COUNT = 4       # loaded queue value
R_NEW = 5
R_TOTAL = 6
R_SEEN = 7
R_OLD = 8
R_SCRATCH = 9
R_MINE = 10       # tasks this thread executed


def work_stealing(
    n_threads: int,
    tasks_per_thread: int = 8,
    task_cycles: int = 12,
) -> Workload:
    """Build the work-stealing workload.

    Each thread's queue starts with ``tasks_per_thread`` tasks (set via
    initial memory); total work is fixed, placement is dynamic.
    """
    if n_threads < 1:
        raise ValueError("need at least one thread")
    layout = Layout()
    completed_addr = layout.word()
    queue_addrs = layout.padded_array(n_threads)
    total = n_threads * tasks_per_thread

    programs: List = []
    for tid in range(n_threads):
        asm = Assembler(f"worksteal.t{tid}")
        asm.li(R_ONE, 1)
        asm.li(R_COMPLETED, completed_addr)
        asm.li(R_TOTAL, total)
        asm.li(R_MINE, 0)
        main = fresh_label("ws_main")
        done = fresh_label("ws_done")
        asm.label(main)
        # Global termination check.
        asm.load(R_SEEN, base=R_COMPLETED)
        asm.beq(R_SEEN, R_TOTAL, done)
        # Visit queues starting with our own (owner-first placement).
        for offset in range(n_threads):
            victim = (tid + offset) % n_threads
            take = fresh_label(f"ws_take{victim}")
            skip = fresh_label(f"ws_skip{victim}")
            asm.li(R_QUEUE, queue_addrs[victim])
            asm.label(take)
            asm.load(R_COUNT, base=R_QUEUE)
            asm.beq(R_COUNT, 0, skip)
            asm.sub(R_NEW, R_COUNT, R_ONE)
            asm.cas(R_OLD, base=R_QUEUE, expected=R_COUNT, new=R_NEW)
            asm.bne(R_OLD, R_COUNT, take)     # lost the race: retry
            # Task claimed: execute it and publish completion.
            asm.exec_(task_cycles)
            asm.add(R_MINE, R_MINE, R_ONE)
            asm.fetch_add(R_SCRATCH, base=R_COMPLETED, addend=R_ONE)
            asm.label(skip)
        asm.jmp(main)
        asm.label(done)
        asm.halt()
        programs.append(asm.build())

    initial_memory: Dict[int, int] = {
        queue_addrs[tid]: tasks_per_thread for tid in range(n_threads)
    }

    def validate(result) -> None:
        completed = result.read_word(completed_addr)
        assert completed == total, (
            f"completed {completed} != {total} (a CAS lost or doubled a task)"
        )
        for tid in range(n_threads):
            remaining = result.read_word(queue_addrs[tid])
            assert remaining == 0, f"queue {tid} left at {remaining}"
        executed = sum(result.core_reg(tid, R_MINE)
                       for tid in range(n_threads))
        assert executed == total, f"executed {executed} != {total}"

    return Workload(
        name="work-stealing",
        programs=programs,
        initial_memory=initial_memory,
        description=(f"{n_threads} workers x {tasks_per_thread} tasks, "
                     "CAS take/steal"),
        validate=validate,
    )

"""Workloads: micro-ISA programs standing in for the paper's benchmarks.

The paper evaluated on commercial (Apache, Zeus, OLTP) and scientific
(barnes, ocean) workloads; what those contribute to the experiments is
their *synchronisation behaviour* -- frequent atomics and fences with
inter-processor sharing (commercial) versus barrier-phased mostly-
private computation (scientific).  The generators here produce programs
with the same structure, parameterised so the harness can sweep fence/
atomic density and sharing intensity:

* :mod:`repro.workloads.locks` -- spinlock/ticket-lock critical sections
  (commercial-style synchronisation);
* :mod:`repro.workloads.barriers` -- barrier-phased stencil and
  reduction kernels (scientific-style);
* :mod:`repro.workloads.producer_consumer` -- fence-ordered flag
  passing;
* :mod:`repro.workloads.randmix` -- seeded random instruction mixes and
  false-sharing stressors (property tests, ablations);
* :mod:`repro.workloads.litmus` -- classic consistency litmus tests
  with per-model allowed-outcome sets;
* :mod:`repro.workloads.protocols` -- distributed-protocol skeletons
  (leader election, gossip, replicated log) built to survive the chaos
  layer's node faults, each paired with a safety checker.
"""

from repro.workloads.base import Workload
from repro.workloads import (
    bank,
    barriers,
    litmus,
    locks,
    producer_consumer,
    protocols,
    randmix,
    rwlock,
    streaming,
    tasks,
)
from repro.workloads.suite import standard_suite

__all__ = [
    "Workload",
    "bank",
    "barriers",
    "litmus",
    "locks",
    "producer_consumer",
    "protocols",
    "randmix",
    "rwlock",
    "streaming",
    "tasks",
    "standard_suite",
]

"""Workload container and the shared address-space layout helpers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.isa.program import Program

#: Cache-block stride used to keep unrelated shared variables in
#: separate blocks (the default block size everywhere in the suite).
BLOCK_BYTES = 64


@dataclass
class Workload:
    """A bundle of per-thread programs plus everything needed to run and
    validate them."""

    name: str
    programs: List[Program]
    initial_memory: Dict[int, int] = field(default_factory=dict)
    description: str = ""
    #: Called with the SystemResult; raises AssertionError on a wrong answer.
    validate: Optional[Callable[..., None]] = None

    @property
    def n_threads(self) -> int:
        return len(self.programs)

    def check(self, result) -> None:
        """Validate the run's architectural outcome (no-op if unchecked)."""
        if self.validate is not None:
            self.validate(result)


class Layout:
    """Allocates word addresses in a simple bump-pointer address space.

    ``word()`` returns an isolated word in its own cache block (for
    locks, flags, counters -- avoiding accidental false sharing);
    ``array()`` returns a base address for ``n`` contiguous words;
    ``padded_array()`` gives each element its own block.
    """

    def __init__(self, base: int = 0x1_0000, block_bytes: int = BLOCK_BYTES):
        if base % block_bytes != 0:
            raise ValueError("layout base must be block-aligned")
        self._next = base
        self._block = block_bytes

    def _align_block(self) -> None:
        rem = self._next % self._block
        if rem:
            self._next += self._block - rem

    def word(self) -> int:
        """One word, alone in its own cache block."""
        self._align_block()
        addr = self._next
        self._next += self._block
        return addr

    def array(self, n_words: int) -> int:
        """``n_words`` contiguous words starting on a block boundary."""
        self._align_block()
        addr = self._next
        self._next += 8 * n_words
        self._align_block()
        return addr

    def padded_array(self, n_elements: int) -> List[int]:
        """``n_elements`` words, each in its own block (no false sharing)."""
        return [self.word() for _ in range(n_elements)]


_label_counter = itertools.count()


def fresh_label(prefix: str) -> str:
    """A globally unique assembler label (for reusable code macros)."""
    return f"{prefix}_{next(_label_counter)}"

"""Reader-writer lock workload with a *runtime* consistency check.

The lock word encodes: 0 = free, MAX_WORD (= -1) = writer held,
k > 0 = k readers.  Writers update two shared words A and B together
inside the lock; readers read both and count mismatches.  If mutual
exclusion, coherence, or speculation recovery ever let a reader see a
torn update (A != B), its mismatch register becomes non-zero and
validation fails -- a semantic check much stronger than a final-value
compare.
"""

from __future__ import annotations

from typing import List

from repro.isa.program import Assembler
from repro.isa.semantics import to_word
from repro.workloads.base import Layout, Workload, fresh_label

R_ONE = 24
R_LOCK = 1
R_A = 2
R_B = 3
R_STATE = 4
R_NEW = 5
R_OLD = 6
R_VA = 7
R_VB = 8
R_MISMATCH = 9
R_LOOP = 10
R_WMARK = 11   # the writer-held sentinel (-1 as a 64-bit word)

WRITER_MARK = to_word(-1)


def _emit_reader_acquire(asm: Assembler) -> None:
    retry = fresh_label("rd_retry")
    asm.label(retry)
    asm.load(R_STATE, base=R_LOCK)
    asm.beq(R_STATE, R_WMARK, retry)          # writer holds it
    asm.add(R_NEW, R_STATE, R_ONE)
    asm.cas(R_OLD, base=R_LOCK, expected=R_STATE, new=R_NEW)
    asm.bne(R_OLD, R_STATE, retry)


def _emit_reader_release(asm: Assembler) -> None:
    retry = fresh_label("rd_rel")
    asm.label(retry)
    asm.load(R_STATE, base=R_LOCK)
    asm.sub(R_NEW, R_STATE, R_ONE)
    asm.cas(R_OLD, base=R_LOCK, expected=R_STATE, new=R_NEW)
    asm.bne(R_OLD, R_STATE, retry)


def _emit_writer_acquire(asm: Assembler) -> None:
    retry = fresh_label("wr_retry")
    asm.label(retry)
    asm.cas(R_OLD, base=R_LOCK, expected=0, new=R_WMARK)
    asm.bne(R_OLD, 0, retry)                  # expected register 0 == value 0


def _emit_writer_release(asm: Assembler) -> None:
    from repro.isa.instructions import FenceKind
    asm.fence(FenceKind.STORE_STORE)
    asm.store(0, base=R_LOCK)


def reader_writer(
    n_readers: int = 3,
    n_writers: int = 1,
    reader_iterations: int = 10,
    writer_iterations: int = 6,
    think_cycles: int = 8,
) -> Workload:
    """Readers check A == B under the lock; writers bump both together."""
    if n_readers < 1 or n_writers < 1:
        raise ValueError("need at least one reader and one writer")
    layout = Layout()
    lock_addr = layout.word()
    a_addr = layout.word()
    b_addr = layout.word()

    def common_prelude(asm: Assembler) -> None:
        asm.li(R_ONE, 1)
        asm.li(R_LOCK, lock_addr)
        asm.li(R_A, a_addr)
        asm.li(R_B, b_addr)
        asm.li(R_WMARK, WRITER_MARK)

    programs: List = []
    for widx in range(n_writers):
        asm = Assembler(f"rw.writer{widx}")
        common_prelude(asm)
        top = fresh_label("w_loop")
        asm.li(R_LOOP, writer_iterations)
        asm.label(top)
        _emit_writer_acquire(asm)
        asm.load(R_VA, base=R_A)
        asm.add(R_VA, R_VA, R_ONE)
        asm.store(R_VA, base=R_A)
        asm.exec_(3)                    # widen the torn-update window
        asm.store(R_VA, base=R_B)       # B catches up to A
        _emit_writer_release(asm)
        asm.exec_(think_cycles)
        asm.sub(R_LOOP, R_LOOP, R_ONE)
        asm.bne(R_LOOP, 0, top)
        asm.halt()
        programs.append(asm.build())

    for ridx in range(n_readers):
        asm = Assembler(f"rw.reader{ridx}")
        common_prelude(asm)
        asm.li(R_MISMATCH, 0)
        top = fresh_label("r_loop")
        ok = fresh_label("r_ok")
        asm.li(R_LOOP, reader_iterations)
        asm.label(top)
        _emit_reader_acquire(asm)
        asm.load(R_VA, base=R_A)
        asm.load(R_VB, base=R_B)
        asm.beq(R_VA, R_VB, ok)
        asm.addi(R_MISMATCH, R_MISMATCH, 1)   # torn update observed!
        asm.label(ok)
        _emit_reader_release(asm)
        asm.exec_(think_cycles)
        asm.sub(R_LOOP, R_LOOP, R_ONE)
        asm.bne(R_LOOP, 0, top)
        asm.halt()
        programs.append(asm.build())

    total_writes = n_writers * writer_iterations

    def validate(result) -> None:
        assert result.read_word(a_addr) == total_writes
        assert result.read_word(b_addr) == total_writes
        assert result.read_word(lock_addr) == 0, "lock left held"
        for ridx in range(n_readers):
            mism = result.core_reg(n_writers + ridx, R_MISMATCH)
            assert mism == 0, (
                f"reader {ridx} observed {mism} torn updates: "
                "reader-writer exclusion broke"
            )

    return Workload(
        name="reader-writer",
        programs=programs,
        description=(f"{n_writers} writers x {writer_iterations}, "
                     f"{n_readers} readers x {reader_iterations}"),
        validate=validate,
    )

"""The standard workload suite used by the benchmark harness.

Mirrors the paper's commercial/scientific split:

========== ====================== ===================================
class      paper workload         our stand-in
========== ====================== ===================================
commercial apache / zeus          ``locks-tas`` (hot-lock server loop)
commercial oltp (db2/oracle)      ``locks-ticket``, ``locks-partitioned``
commercial store-miss behaviour   ``streaming-writer`` (log/output writes)
scientific ocean                  ``barrier-stencil``
scientific barnes                 ``barrier-reduction``
comm./sync --                     ``producer-consumer`` (fence-bound)
========== ====================== ===================================
"""

from __future__ import annotations

from typing import Dict

from repro.workloads import barriers, locks, producer_consumer, streaming
from repro.workloads.base import Workload

#: The suite's workload names, in table order.  Experiment ``build``
#: phases iterate these without paying to assemble the programs.
SUITE_NAMES = (
    "locks-tas",
    "locks-ticket",
    "locks-partitioned",
    "streaming-writer",
    "barrier-stencil",
    "barrier-reduction",
    "producer-consumer",
)


def standard_suite(n_cores: int, scale: float = 1.0) -> Dict[str, Workload]:
    """Build the benchmark suite for ``n_cores`` threads.

    ``scale`` multiplies the per-thread work (1.0 is the default used in
    EXPERIMENTS.md; tests use smaller scales for speed).
    """
    if n_cores < 2:
        raise ValueError("the suite needs at least 2 cores")
    if n_cores % 2 != 0:
        raise ValueError("producer-consumer pairs need an even core count")

    def n(base: int) -> int:
        return max(2, int(base * scale))

    # Synchronisation-to-work ratios are calibrated so that speculation
    # windows (a store-buffer drain, ~10^2 cycles) are small relative to
    # the interval between conflicting synchronisation events, as they
    # are in the paper's full-size workloads (see DESIGN.md).  locks-tas
    # is deliberately left at maximal contention as the stress point.
    suite = {
        "locks-tas": locks.lock_contention(
            n_cores, increments=n(30), lock_kind="tas"),
        "locks-ticket": locks.lock_contention(
            n_cores, increments=n(30), lock_kind="ticket"),
        "locks-partitioned": locks.partitioned_locks(
            n_cores, increments=n(40), share_every=8, think_cycles=200),
        "streaming-writer": streaming.streaming_writer(
            n_cores, iterations=n(30)),
        "barrier-stencil": barriers.stencil(
            n_cores, phases=n(4), cells_per_thread=n(32), compute_cycles=8),
        "barrier-reduction": barriers.reduction(
            n_cores, rounds=n(4), local_work=n(16)),
        "producer-consumer": producer_consumer.pingpong(
            n_pairs=n_cores // 2, rounds=n(8), payload_words=8),
    }
    assert tuple(suite) == SUITE_NAMES
    return suite


#: Workload classes for grouping in reports.
WORKLOAD_CLASS: Dict[str, str] = {
    "locks-tas": "commercial",
    "locks-ticket": "commercial",
    "locks-partitioned": "commercial",
    "streaming-writer": "commercial",
    "barrier-stencil": "scientific",
    "barrier-reduction": "scientific",
    "producer-consumer": "communication",
}

"""Distributed-protocol workloads: election, gossip, replicated log.

The chaos-layer counterpart of the microbenchmark suite (ROADMAP item
6): protocol skeletons that are *supposed* to survive node faults,
written against the ``emit_*`` primitives so they stress atomics
(TAS/CAS/fetch-add), fences, and the store buffer in patterns the
lock/barrier workloads cannot.  Each factory pairs its programs with a
safety checker from :mod:`repro.verification.protocols` via the
workload's ``validate`` hook, and exposes the checker plus its layout
binding as ``workload.checker`` / ``workload.protocol_params`` so tests
and E14 can re-run properties directly.

Every spin in this file is **bounded** (bounded TAS budgets, bounded
observation polls) -- deliberately.  An unbounded spin on state owned by
a crash-stopped core never terminates, and because spinning *commits*
instructions it is invisible to the watchdog's no-commit livelock
detector.  Bounded retries turn a dead peer into an observable failed
acquisition/observation the protocol handles, which is exactly how
fault-tolerant protocols are written on real machines.

Crash-atomicity idiom (used by the replicated log, worth stating once):
on this machine the store buffer drains FIFO, so a store's visibility
implies the visibility of every program-order-earlier store -- even
across a fail-stop, which freezes the buffer as-is.  Ordering
``log write -> index bump -> lock release -> journal claim`` therefore
guarantees a visible release implies the critical section fully landed,
and a visible journal claim implies its log write did.
"""

from __future__ import annotations

from repro.isa.instructions import FenceKind
from repro.isa.program import Assembler
from repro.verification.protocols import (check_election_safety,
                                          check_gossip_convergence,
                                          check_log_agreement)
from repro.workloads.base import Layout, Workload
from repro.workloads.primitives import emit_release, emit_tas_try_acquire

#: Bounded observation poll used by the election observers.
ELECTION_POLL_TRIES = 12


def leader_election(n_threads: int = 4, terms: int = 4,
                    think: int = 60) -> Workload:
    """Bully-flavored, term-based leader election, decided by CAS.

    Per term, every core announces candidacy with an atomic fetch-add
    into the term's bitmap, fences, and reads the bitmap back; a core
    that sees a higher-id candidate defers (bully deference -- the
    filter is heuristic, racy by design).  Non-deferring cores race a
    CAS on the term's claim word; the CAS is the actual safety
    mechanism, so *at most one* core can ever win a term regardless of
    how the filter races.  Winners record the win privately; everyone
    then polls the claim word (bounded) and records the leader they
    observed.  ``think`` cycles of staggered compute space the terms so
    chaos windows land mid-protocol.
    """
    layout = Layout()
    claims = layout.padded_array(terms)
    bully = layout.padded_array(terms)
    wins = [layout.array(terms) for _ in range(n_threads)]
    views = [layout.array(terms) for _ in range(n_threads)]
    initial = {addr: 0 for addr in claims + bully}
    for tid in range(n_threads):
        for t in range(terms):
            initial[wins[tid] + 8 * t] = 0
            initial[views[tid] + 8 * t] = 0

    programs = []
    for tid in range(n_threads):
        asm = Assembler()
        asm.li(24, 1)
        asm.li(3, 1 << tid)        # my candidacy bit
        asm.li(6, tid + 1)         # my claim value
        asm.li(14, wins[tid])
        asm.li(15, views[tid])
        for t in range(terms):
            defer = f"defer_{tid}_{t}"
            poll = f"poll_{tid}_{t}"
            seen = f"seen_{tid}_{t}"
            asm.li(1, bully[t])
            asm.li(2, claims[t])
            asm.fetch_add(25, base=1, addend=3)       # announce candidacy
            asm.fence(FenceKind.FULL)
            asm.load(4, base=1)                       # who else is running?
            asm.slti(5, 4, 1 << (tid + 1))            # 1 iff nobody higher
            asm.beq(5, 0, defer)
            asm.cas(7, base=2, expected=0, new=6)     # race for the term
            asm.bne(7, 0, defer)                      # lost: old value != 0
            asm.store(24, base=14, offset=8 * t)      # record my win
            asm.label(defer)
            asm.li(9, ELECTION_POLL_TRIES)
            asm.label(poll)
            asm.load(10, base=2)
            asm.bne(10, 0, seen)
            asm.sub(9, 9, 24)
            asm.bne(9, 0, poll)
            asm.label(seen)
            asm.store(10, base=15, offset=8 * t)      # observed leader
            asm.fence(FenceKind.FULL)
            asm.exec_(think + 17 * tid)               # staggered think time
        programs.append(asm.build())

    params = dict(terms=terms, n_threads=n_threads, claims=claims,
                  bully=bully, wins=wins, views=views)
    workload = Workload(
        name=f"leader-election-{n_threads}x{terms}",
        programs=programs,
        initial_memory=initial,
        description=(f"{n_threads} cores electing a leader for {terms} "
                     "terms: fetch-add candidacy, bully deference, CAS "
                     "arbitration, bounded observation polls"),
        validate=lambda result: check_election_safety(result, **params),
    )
    workload.checker = check_election_safety
    workload.protocol_params = params
    return workload


def gossip(n_threads: int = 4, repeat: int = 2, think: int = 40) -> Workload:
    """Epidemic rumor dissemination: pull-merge rounds over a ring.

    Each core owns a single-writer rumor-set word seeded with its own
    rumor bit.  Round ``r`` pulls the set of peer ``(tid + r) % n``, ORs
    it in, republishes, and bumps a heartbeat counter (store-buffer
    pressure: two publishes per round, ordered by a StoreStore fence).
    ``repeat`` full ring sweeps are run; any single complete sweep
    already reaches the union of *initial* rumors -- sets are monotone
    and seeded in memory, so even a peer that crashed before its first
    instruction still contributes its rumor -- which is why convergence
    of every live core is a hard obligation, not a probabilistic one.
    """
    layout = Layout()
    known = layout.padded_array(n_threads)
    beats = layout.padded_array(n_threads)
    rumors = [1 << tid for tid in range(n_threads)]
    initial = {known[tid]: rumors[tid] for tid in range(n_threads)}
    initial.update({beats[tid]: 0 for tid in range(n_threads)})
    rounds = repeat * (n_threads - 1)

    programs = []
    for tid in range(n_threads):
        asm = Assembler()
        asm.li(24, 1)
        asm.li(1, known[tid])
        asm.li(2, beats[tid])
        asm.li(3, 0)                   # heartbeat count
        asm.load(4, base=1)            # own set (= my initial rumor)
        for sweep in range(repeat):
            for step in range(1, n_threads):
                peer = (tid + step) % n_threads
                asm.li(5, known[peer])
                asm.load(6, base=5)            # pull the peer's set
                asm.or_(4, 4, 6)
                asm.store(4, base=1)           # republish mine
                asm.add(3, 3, 24)
                asm.store(3, base=2)           # heartbeat
                asm.fence(FenceKind.STORE_STORE)
                asm.exec_(think + 11 * tid)    # staggered think time
        asm.fence(FenceKind.FULL)
        programs.append(asm.build())

    params = dict(n_threads=n_threads, rounds=rounds, known=known,
                  beats=beats, rumors=rumors)
    workload = Workload(
        name=f"gossip-{n_threads}x{rounds}",
        programs=programs,
        initial_memory=initial,
        description=(f"{n_threads} cores gossiping over a ring for "
                     f"{rounds} pull-merge rounds with heartbeats"),
        validate=lambda result: check_gossip_convergence(result, **params),
    )
    workload.checker = check_gossip_convergence
    workload.protocol_params = params
    return workload


def replicated_log(n_threads: int = 4, appends: int = 3, tries: int = 8,
                   think: int = 30) -> Workload:
    """Replicated-log commit: lock-guarded appends with private journals.

    Each core tries to append ``appends`` values to a shared log behind
    a *bounded* TAS lock (budget ``tries`` -- a crash-stopped holder
    turns later acquisitions into observable give-ups, never a hang).
    Under the lock: read the next-index word, write the log slot, bump
    the index; the release and the private journal claim follow in
    program order, so the FIFO store buffer gives crash atomicity (see
    the module docstring).  Values encode ``(tid + 1) * 1000 + seq``.
    """
    layout = Layout()
    lock = layout.word()
    next_idx = layout.word()
    slots = n_threads * appends
    log = layout.array(slots)
    journals = [layout.array(2 * appends) for _ in range(n_threads)]
    ncommits = layout.padded_array(n_threads)
    initial = {lock: 0, next_idx: 0}
    for i in range(slots):
        initial[log + 8 * i] = 0
    for tid in range(n_threads):
        initial[ncommits[tid]] = 0
        for k in range(2 * appends):
            initial[journals[tid] + 8 * k] = 0

    programs = []
    for tid in range(n_threads):
        asm = Assembler()
        asm.li(24, 1)
        asm.li(1, lock)
        asm.li(2, next_idx)
        asm.li(3, log)
        asm.li(5, ncommits[tid])
        asm.li(6, 8)
        asm.li(13, 16)
        asm.li(10, 0)                  # committed count
        asm.li(12, journals[tid])      # journal write pointer
        for i in range(appends):
            skip = f"skip_{tid}_{i}"
            emit_tas_try_acquire(asm, lock_reg=1, tries=tries, got_reg=25)
            asm.beq(25, 0, skip)       # budget exhausted: give up this append
            asm.load(7, base=2)                    # idx = next_idx
            asm.mul(8, 7, 6)
            asm.add(8, 8, 3)                       # &log[idx]
            asm.li(9, (tid + 1) * 1000 + i)
            asm.store(9, base=8)                   # log[idx] = value
            asm.add(7, 7, 24)
            asm.store(7, base=2)                   # next_idx = idx + 1
            emit_release(asm, lock_reg=1)
            # Payload before publish: the value store precedes the claim
            # store in program order, so a crash that freezes the FIFO
            # buffer can lose the claim but never publish a claim whose
            # value is still in flight.
            asm.store(9, base=12, offset=8)        # journal: value
            asm.store(7, base=12)                  # journal: claim idx + 1
            asm.add(12, 12, 13)
            asm.add(10, 10, 24)
            asm.store(10, base=5)                  # commit count
            asm.fence(FenceKind.STORE_STORE)
            asm.label(skip)
            asm.exec_(think + 13 * tid)            # staggered think time
        programs.append(asm.build())

    params = dict(n_threads=n_threads, appends=appends, slots=slots,
                  log=log, journals=journals, ncommits=ncommits)
    workload = Workload(
        name=f"replicated-log-{n_threads}x{appends}",
        programs=programs,
        initial_memory=initial,
        description=(f"{n_threads} cores appending {appends} values each "
                     f"to a shared log behind a bounded TAS lock "
                     f"(budget {tries})"),
        validate=lambda result: check_log_agreement(result, **params),
    )
    workload.checker = check_log_agreement
    workload.protocol_params = params
    return workload


def protocol_suite(n_threads: int = 4) -> list:
    """The three protocol workloads at their default shapes."""
    return [leader_election(n_threads), gossip(n_threads),
            replicated_log(n_threads)]
